"""Analysis-layer tests for degraded LC service.

Covers the extended EDF-VD utilization condition, the dbf residual-demand
term, the incremental-context differential contract under degraded service
models, and the residual-aware UDP strategies.
"""

from __future__ import annotations

import pytest

from repro.analysis import ECDFTest, EDFVDTest, EYTest, get_test
from repro.analysis.dbf import DemandScenario, hi_mode_dbf, lc_hi_mode_dbf
from repro.analysis.edf_vd import edfvd_admits
from repro.core import (
    UnsupportedTasksetError,
    cu_udp,
    cu_udp_res,
    get_strategy,
    partition,
)
from repro.core.allocator import ProcessorState
from repro.degradation import ElasticPeriod, ImpreciseBudget
from repro.generator import GeneratorConfig, MCTaskSetGenerator
from repro.model import TaskSet
from repro.util.rng import derive_rng

from tests.conftest import hc_task, lc_task

SERVICE_SPECS = ("imprecise:0.25", "imprecise:0.5", "imprecise:1.0",
                 "elastic:1.5", "elastic:2.0")


def generated(deadline_type: str, count: int = 5, m: int = 2):
    generator = MCTaskSetGenerator(
        GeneratorConfig(m=m, deadline_type=deadline_type)
    )
    rng = derive_rng("degraded-analysis", deadline_type, m)
    targets = [(0.4, 0.2, 0.3), (0.6, 0.3, 0.3), (0.7, 0.35, 0.4)]
    out = []
    while len(out) < count:
        u_hh, u_lh, u_ll = targets[len(out) % len(targets)]
        taskset = generator.generate(rng, u_hh, u_lh, u_ll)
        if taskset is not None:
            out.append(taskset)
    return out


class TestExtendedEDFVD:
    def test_residual_zero_matches_classic(self):
        cases = [(0.3, 0.2, 0.5), (0.5, 0.3, 0.6), (0.2, 0.4, 0.9),
                 (0.45, 0.3, 0.75)]
        for a, b, c in cases:
            assert edfvd_admits(a, b, c) == edfvd_admits(a, b, c, 0.0)

    def test_monotone_in_residual(self):
        # a + c > 1 so the x-scaled condition is exercised.
        a, b, c = 0.5, 0.3, 0.6
        verdicts = [edfvd_admits(a, b, c, r) for r in (0.0, 0.1, 0.3, 0.5)]
        assert verdicts[0]  # x*a + c = 0.9 <= 1
        # once False, stays False as residual grows
        for earlier, later in zip(verdicts, verdicts[1:]):
            assert earlier or not later

    def test_full_residual_requires_full_reserve(self):
        # U_res == U_LL means LC keeps full service: the HI condition
        # becomes x*a + (1-x)a + c = a + c <= 1.
        a, b, c = 0.3, 0.3, 0.8
        assert not edfvd_admits(a, b, c, a)
        assert edfvd_admits(0.15, 0.3, 0.8, 0.15)

    def test_invalid_residual_rejected(self):
        with pytest.raises(ValueError, match="U_res"):
            edfvd_admits(0.3, 0.2, 0.5, 0.4)
        with pytest.raises(ValueError, match="U_res"):
            edfvd_admits(0.3, 0.2, 0.5, -0.1)

    def test_taskset_verdicts_monotone_in_rho(self):
        for taskset in generated("implicit"):
            test = EDFVDTest()
            previous = None
            for rho in (0.0, 0.25, 0.5, 0.75, 1.0):
                ok = test.analyze(
                    taskset.with_service_model(ImpreciseBudget(rho))
                ).schedulable
                if previous is not None:
                    assert previous or not ok  # more service never helps
                previous = ok

    def test_rho_zero_matches_drop_verdict(self):
        test = EDFVDTest()
        for taskset in generated("implicit"):
            drop = test.analyze(taskset)
            zero = test.analyze(
                taskset.with_service_model(ImpreciseBudget(0.0))
            )
            assert drop.schedulable == zero.schedulable
            assert drop.scaling_factor == zero.scaling_factor


class TestResidualDemand:
    def test_lc_hi_mode_dbf_matches_scenario(self):
        taskset = TaskSet(
            [hc_task(100, 20, 40), lc_task(40, 12), lc_task(60, 18)],
            service_model="imprecise:0.5",
        )
        scenario = DemandScenario(taskset)
        service = taskset.service_model
        hc_vd = {taskset[0].task_id: taskset[0].deadline}
        for length in range(0, 400, 7):
            expected = sum(
                lc_hi_mode_dbf(
                    service.degraded_budget(t),
                    service.degraded_period(t),
                    t.wcet_lo,
                    length,
                )
                for t in taskset.low_tasks
            )
            expected += sum(
                # vd untouched: HC contribution via the reference scalar
                hi_mode_dbf(t, hc_vd[t.task_id], length)
                for t in taskset.high_tasks
            )
            assert scenario.hi_demand_at(length) == expected, length

    def test_carry_over_clamped_at_budget(self):
        # At l = 0 the carry-over reduction fully discharges the degraded
        # budget: an LC job due at the switch was already served in LO.
        assert lc_hi_mode_dbf(5, 50, 10, 0) == 0
        # Deep in the window, whole jobs contribute the degraded budget.
        assert lc_hi_mode_dbf(5, 50, 10, 120) == 3 * 5 - 0
        # Partial discharge between the two.
        assert lc_hi_mode_dbf(5, 50, 10, 7) == 5 - min(5, 10 - 7)

    def test_no_hc_tasks_vacuously_pass(self):
        # Without a local HC task the core never switches, so degraded LC
        # demand never materializes.
        taskset = TaskSet(
            [lc_task(10, 9), lc_task(15, 1)], service_model="imprecise:1.0"
        )
        assert DemandScenario(taskset).hi_violation() is None
        assert ECDFTest().analyze(taskset).schedulable

    def test_degradation_helps_demand_tests(self):
        # A set rejected at full LC service but accepted when degraded.
        taskset = TaskSet([hc_task(100, 20, 50), hc_task(50, 8, 16),
                           lc_task(40, 12), lc_task(80, 16)])
        test = ECDFTest()
        assert test.analyze(
            taskset.with_service_model("imprecise:1.0")
        ).schedulable is False
        assert test.analyze(
            taskset.with_service_model("imprecise:0.2")
        ).schedulable is True
        assert test.analyze(taskset).schedulable is True


class TestDegradedContextsDifferential:
    """The PR-2 bit-identical-contexts contract must hold under every
    service model, not just drop-at-switch."""

    @pytest.mark.parametrize("spec", SERVICE_SPECS)
    @pytest.mark.parametrize("test_name", ("edf-vd", "ey", "ecdf"))
    def test_context_matches_from_scratch(self, test_name, spec):
        deadline_type = "implicit" if test_name == "edf-vd" else "constrained"
        test = get_test(test_name)
        from repro.degradation import parse_service_model

        service = parse_service_model(spec)
        probes = 0
        for base in generated(deadline_type, count=3):
            taskset = base.with_service_model(service)
            context = test.make_context(service)
            committed: list = []
            for task in taskset:
                candidate = TaskSet(committed + [task], service_model=service)
                scratch = test.analyze(candidate)
                incremental = context.analyze(task)
                assert incremental.schedulable == scratch.schedulable
                assert incremental.virtual_deadlines == scratch.virtual_deadlines
                assert incremental.scaling_factor == scratch.scaling_factor
                probes += 1
                if scratch.schedulable:
                    context.commit(task)
                    committed.append(task)
            assert context.taskset() == TaskSet(
                committed, service_model=service
            )
        assert probes > 0

    def test_snapshot_rollback_restores_residual(self):
        service = ImpreciseBudget(0.5)
        context = EDFVDTest().make_context(service)
        context.commit(hc_task(100, 10, 20))
        token = context.snapshot()
        before = context.analyze(lc_task(50, 5)).schedulable
        context.commit(lc_task(80, 8))
        context.rollback(token)
        assert context.analyze(lc_task(50, 5)).schedulable == before
        assert context._u_res == pytest.approx(0.0)


class TestPartitionUnderDegradedService:
    @pytest.mark.parametrize("spec", ("imprecise:0.5", "elastic:2.0"))
    @pytest.mark.parametrize("test_name", ("edf-vd", "ey", "ecdf"))
    def test_incremental_matches_scratch(self, test_name, spec):
        deadline_type = "implicit" if test_name == "edf-vd" else "constrained"
        for base in generated(deadline_type, count=3):
            taskset = base.with_service_model(spec)
            for strategy in (cu_udp(), cu_udp_res()):
                a = partition(
                    taskset, 2, get_test(test_name), strategy, incremental=True
                )
                b = partition(
                    taskset, 2, get_test(test_name), strategy, incremental=False
                )
                assert a.success == b.success
                assert a.assignment == b.assignment
                assert a.cores == b.cores

    def test_amc_rejects_degraded_service(self):
        taskset = generated("constrained", count=1)[0].with_service_model(
            "imprecise:0.5"
        )
        with pytest.raises(UnsupportedTasksetError, match="service model"):
            partition(taskset, 2, get_test("amc-max"), cu_udp())

    def test_core_tasksets_carry_service(self):
        taskset = generated("implicit", count=1)[0].with_service_model(
            "imprecise:0.5"
        )
        result = partition(taskset, 4, EDFVDTest(), cu_udp())
        for core in result.cores:
            assert core.service_model == ImpreciseBudget(0.5)


class TestResidualStrategy:
    def test_registered(self):
        assert get_strategy("cu-udp-res").name == "cu-udp-res"
        assert get_strategy("ca-udp-res").name == "ca-udp-res"

    def test_metric_counts_residual(self):
        state = ProcessorState(0, service=ImpreciseBudget(0.5))
        state.add(hc_task(100, 20, 40))
        state.add(lc_task(50, 10))
        assert state.utilization_difference == pytest.approx(0.4 - 0.2)
        assert state.residual_difference == pytest.approx(0.4 + 5 / 50 - 0.2)

    def test_metric_equals_udp_under_drop(self):
        state = ProcessorState(0)
        state.add(hc_task(100, 20, 40))
        state.add(lc_task(50, 10))
        assert state.residual_difference == state.utilization_difference

    def test_res_strategy_identical_under_full_drop(self):
        for base in generated("implicit", count=3):
            plain = partition(base, 2, EDFVDTest(), cu_udp())
            res = partition(base, 2, EDFVDTest(), cu_udp_res())
            assert plain.assignment == res.assignment
            assert plain.success == res.success
