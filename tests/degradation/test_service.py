"""Unit tests for the ServiceModel abstraction and its model threading."""

from __future__ import annotations

import pytest

from repro.degradation import (
    FULL_DROP,
    ElasticPeriod,
    FullDrop,
    ImpreciseBudget,
    parse_service_model,
    registered_service_models,
)
from repro.model import MCTask, TaskSet

from tests.conftest import hc_task, lc_task


class TestParsing:
    def test_registered_models(self):
        assert set(registered_service_models()) == {
            "full-drop",
            "imprecise",
            "elastic",
        }

    @pytest.mark.parametrize(
        "spec,expected",
        [
            (None, ("full-drop",)),
            ("", ("full-drop",)),
            ("full-drop", ("full-drop",)),
            ("imprecise:0.5", ("imprecise", 0.5)),
            ("imprecise:0", ("imprecise", 0.0)),
            ("elastic:2", ("elastic", 2.0)),
            ("elastic:1.5", ("elastic", 1.5)),
        ],
    )
    def test_parse(self, spec, expected):
        assert parse_service_model(spec).key() == expected

    def test_parse_passthrough(self):
        model = ImpreciseBudget(0.25)
        assert parse_service_model(model) is model

    def test_spec_round_trips(self):
        for model in (FULL_DROP, ImpreciseBudget(0.75), ElasticPeriod(3.0)):
            assert parse_service_model(model.spec()) == model

    @pytest.mark.parametrize(
        "spec", ["bogus", "imprecise", "elastic", "imprecise:x", "full-drop:1"]
    )
    def test_parse_rejects(self, spec):
        with pytest.raises(ValueError):
            parse_service_model(spec)

    def test_parse_rejects_non_string(self):
        with pytest.raises(TypeError):
            parse_service_model(0.5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ImpreciseBudget(1.5)
        with pytest.raises(ValueError):
            ImpreciseBudget(-0.1)
        with pytest.raises(ValueError):
            ElasticPeriod(0.5)


class TestModelSemantics:
    def test_full_drop_is_neutral(self):
        task = lc_task(50, 10)
        assert FULL_DROP.is_full_drop
        assert FULL_DROP.degraded_budget(task) == 0
        assert FULL_DROP.residual_utilization(task) == 0.0
        assert FULL_DROP.lc_hi_parameters(task) is None

    def test_imprecise_budget_floor(self):
        task = lc_task(50, 10)
        model = ImpreciseBudget(0.55)
        assert model.degraded_budget(task) == 5  # floor(0.55 * 10)
        assert model.degraded_period(task) == 50
        assert model.degraded_deadline(task) == 50
        assert model.residual_utilization(task) == 5 / 50
        assert model.lc_hi_parameters(task) == (5, 50)

    def test_imprecise_zero_drops_but_is_not_full_drop(self):
        task = lc_task(50, 10)
        model = ImpreciseBudget(0.0)
        assert not model.is_full_drop
        assert model.lc_hi_parameters(task) is None
        assert model.residual_utilization(task) == 0.0

    def test_elastic_stretches_period_and_deadline(self):
        task = lc_task(50, 10, deadline=40)
        model = ElasticPeriod(1.5)
        assert model.degraded_budget(task) == 10
        assert model.degraded_period(task) == 75
        # deadline stretches by the same absolute slack: stays constrained
        assert model.degraded_deadline(task) == 40 + 25
        assert model.residual_utilization(task) == 10 / 75

    def test_hc_tasks_are_untouched(self):
        task = hc_task(100, 20, 40)
        for model in (FULL_DROP, ImpreciseBudget(0.5), ElasticPeriod(2.0)):
            assert model.residual_utilization(task) == 0.0
            assert model.lc_hi_parameters(task) is None
            assert model.degraded_period(task) == 100

    def test_per_task_field_overrides(self):
        task = lc_task(50, 10)
        custom_budget = MCTask(
            period=50,
            criticality="LC",
            wcet_lo=10,
            wcet_hi=10,
            wcet_degraded=7,
        )
        assert ImpreciseBudget(0.1).degraded_budget(custom_budget) == 7
        assert ImpreciseBudget(0.1).degraded_budget(task) == 1
        custom_period = MCTask(
            period=50,
            criticality="LC",
            wcet_lo=10,
            wcet_hi=10,
            period_degraded=200,
        )
        assert ElasticPeriod(1.5).degraded_period(custom_period) == 200
        assert ElasticPeriod(1.5).degraded_period(task) == 75

    def test_equality_and_hash(self):
        assert ImpreciseBudget(0.5) == ImpreciseBudget(0.5)
        assert ImpreciseBudget(0.5) != ImpreciseBudget(0.6)
        assert ImpreciseBudget(0.5) != ElasticPeriod(2.0)
        assert FullDrop() == FULL_DROP
        assert hash(ImpreciseBudget(0.5)) == hash(ImpreciseBudget(0.5))


class TestTaskSetCarriage:
    def make(self):
        return TaskSet([hc_task(100, 20, 40), lc_task(50, 10), lc_task(80, 16)])

    def test_default_has_no_model(self):
        ts = self.make()
        assert ts.service_model is None
        assert ts.effective_service.is_full_drop
        assert ts.residual_utilization == 0.0

    def test_spec_string_accepted(self):
        ts = TaskSet(self.make(), service_model="imprecise:0.5")
        assert ts.service_model == ImpreciseBudget(0.5)

    def test_full_drop_equals_none(self):
        ts = self.make()
        assert ts.with_service_model(FullDrop()) == ts
        assert hash(ts.with_service_model(FullDrop())) == hash(ts)

    def test_degraded_model_distinguishes(self):
        ts = self.make()
        degraded = ts.with_service_model("imprecise:0.5")
        assert degraded != ts
        assert degraded == ts.with_service_model(ImpreciseBudget(0.5))
        assert degraded != ts.with_service_model("imprecise:0.6")

    def test_residual_utilization_sum(self):
        ts = self.make().with_service_model("imprecise:0.5")
        assert ts.residual_utilization == pytest.approx(5 / 50 + 8 / 80)
        elastic = self.make().with_service_model("elastic:2.0")
        assert elastic.residual_utilization == pytest.approx(
            10 / 100 + 16 / 160
        )

    def test_model_propagates_through_updates(self):
        ts = self.make().with_service_model("elastic:2.0")
        extra = lc_task(60, 6)
        for derived in (
            ts.with_task(extra),
            ts.without_task(ts[1]),
            ts.sorted_by(lambda t: t.period),
            ts[:2],
            ts.high_tasks,
            ts.low_tasks,
        ):
            assert derived.service_model == ElasticPeriod(2.0)

    def test_apply_attaches(self):
        ts = self.make()
        applied = ImpreciseBudget(0.5).apply(ts)
        assert applied.service_model == ImpreciseBudget(0.5)
        assert list(applied) == list(ts)


class TestDegradedTaskFields:
    def test_round_trip_serialization(self):
        task = MCTask(
            period=50,
            criticality="LC",
            wcet_lo=10,
            wcet_hi=10,
            wcet_degraded=4,
            period_degraded=100,
        )
        data = task.to_dict()
        assert data["wcet_degraded"] == 4
        assert data["period_degraded"] == 100
        again = MCTask.from_dict(data)
        assert again.wcet_degraded == 4
        assert again.period_degraded == 100

    def test_unset_fields_stay_out_of_dict(self):
        assert "wcet_degraded" not in lc_task(50, 10).to_dict()
        assert "period_degraded" not in lc_task(50, 10).to_dict()

    def test_validation(self):
        with pytest.raises(ValueError, match="wcet_degraded"):
            MCTask(
                period=50, criticality="LC", wcet_lo=10, wcet_hi=10,
                wcet_degraded=11,
            )
        with pytest.raises(ValueError, match="period_degraded"):
            MCTask(
                period=50, criticality="LC", wcet_lo=10, wcet_hi=10,
                period_degraded=40,
            )
        with pytest.raises(ValueError, match="LC tasks"):
            MCTask(
                period=50, criticality="HC", wcet_lo=10, wcet_hi=20,
                wcet_degraded=5,
            )
