"""Sim-vs-analysis cross-validation, per service model.

The degradation analogue of :mod:`tests.analysis.test_cross_validation`:
for every service model, any task set *accepted* by the extended analyses
must survive the adversarial simulation battery under the matching
degradation-aware runtime policy with zero MC violations — where, under
degraded service, an LC deadline miss in HI mode *is* a violation.
"""

from __future__ import annotations

import pytest

from repro.analysis import ECDFTest, EDFVDTest, EYTest
from repro.degradation import parse_service_model
from repro.generator import GeneratorConfig, MCTaskSetGenerator
from repro.sim import validate_against_simulation
from repro.util.rng import derive_rng

SERVICE_SPECS = (
    "full-drop",
    "imprecise:0.25",
    "imprecise:0.5",
    "imprecise:1.0",
    "elastic:1.5",
    "elastic:2.0",
)

#: generation targets spanning light to heavy single-core loads; the light
#: end keeps even full-LC-service (rho=1, small lambda) accepts in play
TARGETS = [
    (0.25, 0.1, 0.2),
    (0.35, 0.2, 0.25),
    (0.45, 0.25, 0.3),
    (0.6, 0.3, 0.35),
]


def tasksets(deadline_type: str, count: int):
    generator = MCTaskSetGenerator(
        GeneratorConfig(m=1, deadline_type=deadline_type, n_min=3, n_max=6)
    )
    rng = derive_rng("degradation-xval", deadline_type)
    out = []
    attempts = 0
    while len(out) < count and attempts < 40 * count:
        attempts += 1
        u_hh, u_lh, u_ll = TARGETS[attempts % len(TARGETS)]
        taskset = generator.generate(rng, u_hh, u_lh, u_ll)
        if taskset is not None:
            out.append(taskset)
    return out


@pytest.mark.parametrize("spec", SERVICE_SPECS)
class TestAcceptedSetsSimulateCleanly:
    def check(self, test, deadline_type: str, spec: str):
        service = parse_service_model(spec)
        accepted = 0
        for index, base in enumerate(tasksets(deadline_type, 12)):
            taskset = (
                base
                if service.is_full_drop
                else base.with_service_model(service)
            )
            if not test.analyze(taskset).schedulable:
                continue
            accepted += 1
            violations = validate_against_simulation(
                taskset,
                test,
                derive_rng("deg-xval-sim", spec, test.name, index),
                horizon=8000,
                random_runs=2,
            )
            assert violations == [], (
                f"{test.name} accepted a {spec} set that violated MC "
                f"correctness in simulation: {violations[:3]}"
            )
        # The targets are chosen so the battery actually validates accepts.
        assert accepted > 0, f"{test.name}/{spec}: no accepted set exercised"

    def test_edf_vd(self, spec):
        self.check(EDFVDTest(), "implicit", spec)

    def test_ecdf(self, spec):
        self.check(ECDFTest(), "implicit", spec)

    def test_ey(self, spec):
        self.check(EYTest(), "implicit", spec)


@pytest.mark.parametrize("spec", ("imprecise:0.25", "imprecise:0.5"))
@pytest.mark.parametrize("test_factory", (ECDFTest, EYTest))
def test_constrained_deadline_accepts_simulate_cleanly(test_factory, spec):
    """Constrained-deadline coverage for the degradation levels at which
    the demand tests retain an acceptance region (near-full LC service has
    essentially none there — the carry-over pessimism compounds)."""
    test = test_factory()
    service = parse_service_model(spec)
    accepted = 0
    for index, base in enumerate(tasksets("constrained", 12)):
        taskset = base.with_service_model(service)
        if not test.analyze(taskset).schedulable:
            continue
        accepted += 1
        violations = validate_against_simulation(
            taskset,
            test,
            derive_rng("deg-xval-constrained", spec, test.name, index),
            horizon=8000,
            random_runs=2,
        )
        assert violations == []
    assert accepted > 0
