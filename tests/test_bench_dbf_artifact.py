"""The committed BENCH_dbf.json must stay parseable and well-formed.

The dbf-kernel benchmark writes its trajectory to the repo root so the
perf history travels with the code (next to ``BENCH_batch.json``); this
check keeps a malformed or hand-mangled artifact from landing silently.
"""

from __future__ import annotations

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_dbf.json"

REQUIRED_FIGURE_KEYS = {
    "m",
    "tasksets",
    "algorithms",
    "forward_scalar_s",
    "qpa_scalar_s",
    "qpa_batched_s",
    "vec_scalar_s",
    "vec_batched_s",
    "block_batched_s",
    "speedup_end_to_end",
    "speedup_vec_end_to_end",
    "speedup_block_end_to_end",
    "tasksets_per_sec_forward",
    "tasksets_per_sec_qpa",
    "tasksets_per_sec_vec",
    "tasksets_per_sec_block",
    "kernel_counters",
    "descent_iterations",
}

KERNEL_COUNTER_KEYS = {"qpa-accept", "approx-accept", "approx-reject"}

BLOCK_PLANNER_KEYS = {
    "block-jumps",
    "block-settled",
    "block-residual",
    "block-fallback",
}

ITERS_ROW_KEYS = {"descents", "iterations", "iterations_mean"}

SWEEP_ROW_KEYS = {
    "seconds",
    "tasksets_per_sec",
    "spec_hit",
    "spec_waste",
    "spec_width_mean",
}


def test_bench_dbf_json_parses():
    data = json.loads(ARTIFACT.read_text(encoding="utf-8"))
    assert data["samples_per_bucket"] > 0
    assert set(data["kernels"]) == {"forward", "qpa", "vec", "block"}

    micro = data["microbench"]
    assert micro["tasksets"] > 0
    assert micro["forward_s"] > 0 and micro["qpa_s"] > 0 and micro["vec_s"] > 0
    assert micro["block_s"] > 0
    assert micro["speedup"] > 0 and micro["speedup_vec"] > 0
    assert micro["speedup_block"] > 0
    assert micro["qpa_runs"] >= 0
    assert micro["qpa_iterations_mean"] >= 0
    assert KERNEL_COUNTER_KEYS <= set(micro["settled"])
    assert BLOCK_PLANNER_KEYS <= set(micro["block"])
    for kernel in ("forward", "qpa", "vec", "block"):
        row = micro["descent_iterations"][kernel]
        assert ITERS_ROW_KEYS <= set(row)
        assert row["iterations"] >= 0
    # The kernel's whole case: fewer exact iterations on the same work.
    assert (
        micro["descent_iterations"]["block"]["iterations"]
        <= micro["descent_iterations"]["qpa"]["iterations"]
    )

    figures = data["figures"]
    assert "fig4" in figures and "fig5" in figures
    for fig, row in figures.items():
        missing = REQUIRED_FIGURE_KEYS - set(row)
        assert not missing, f"{fig} missing {sorted(missing)}"
        assert row["tasksets"] > 0
        assert row["forward_scalar_s"] > 0
        assert row["qpa_scalar_s"] > 0 and row["qpa_batched_s"] > 0
        assert row["vec_scalar_s"] > 0 and row["vec_batched_s"] > 0
        assert row["block_batched_s"] > 0
        assert row["speedup_end_to_end"] > 0
        assert row["speedup_vec_end_to_end"] > 0
        assert row["speedup_block_end_to_end"] > 0
        iters = row["descent_iterations"]
        assert ITERS_ROW_KEYS <= set(iters["qpa_batched"])
        assert ITERS_ROW_KEYS <= set(iters["block_batched"])
        assert (
            iters["block_batched"]["iterations"]
            <= iters["qpa_batched"]["iterations"]
        )
        assert iters["reduction"] >= 0
        for name, counters in row["kernel_counters"].items():
            assert counters, f"{fig}/{name} has no kernel counters"
            for key, value in counters.items():
                assert value >= 0, f"{fig}/{name} {key} negative"
    # The vec batched slice must report live speculation diagnostics.
    assert "vec" in figures["fig4"]["kernel_counters"]

    sweep = data["speculation_depth_sweep"]
    assert sweep["figure"] == "fig4" and sweep["pipeline"] == "batched"
    assert len(sweep["depths"]) >= 2
    for depth, row in sweep["depths"].items():
        assert int(depth) > 0
        missing = SWEEP_ROW_KEYS - set(row)
        assert not missing, f"spec sweep k={depth} missing {sorted(missing)}"
        assert row["seconds"] > 0 and row["tasksets_per_sec"] > 0

    cache = data["verdict_cache"]
    assert cache["figure"] == "fig4" and cache["pipeline"] == "batched"
    assert cache["cold_s"] > 0 and cache["warm_s"] > 0
    assert cache["speedup_warm"] > 0
    assert {"hit", "miss", "store"} <= set(cache["cold"])
    assert {"hit", "miss", "store"} <= set(cache["warm"])
    # Same process, same submission order: the warm pass must be served
    # almost entirely from the canonical cache.
    assert cache["warm_hit_rate"] > 0.5

    # The contexts the fig4 aspirations are measured against.
    assert data["committed_batch_baseline"]["fig4_m4_scalar_tasksets_per_sec"] > 0
    assert data["committed_qpa_baseline"]["fig4_m4_tasksets_per_sec"] > 0
