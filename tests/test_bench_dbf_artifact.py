"""The committed BENCH_dbf.json must stay parseable and well-formed.

The dbf-kernel benchmark writes its trajectory to the repo root so the
perf history travels with the code (next to ``BENCH_batch.json``); this
check keeps a malformed or hand-mangled artifact from landing silently.
"""

from __future__ import annotations

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_dbf.json"

REQUIRED_FIGURE_KEYS = {
    "m",
    "tasksets",
    "algorithms",
    "forward_scalar_s",
    "qpa_scalar_s",
    "qpa_batched_s",
    "vec_scalar_s",
    "vec_batched_s",
    "speedup_end_to_end",
    "speedup_vec_end_to_end",
    "tasksets_per_sec_forward",
    "tasksets_per_sec_qpa",
    "tasksets_per_sec_vec",
    "kernel_counters",
}

KERNEL_COUNTER_KEYS = {"qpa-accept", "approx-accept", "approx-reject"}

SWEEP_ROW_KEYS = {
    "seconds",
    "tasksets_per_sec",
    "spec_hit",
    "spec_waste",
    "spec_width_mean",
}


def test_bench_dbf_json_parses():
    data = json.loads(ARTIFACT.read_text(encoding="utf-8"))
    assert data["samples_per_bucket"] > 0
    assert set(data["kernels"]) == {"forward", "qpa", "vec"}

    micro = data["microbench"]
    assert micro["tasksets"] > 0
    assert micro["forward_s"] > 0 and micro["qpa_s"] > 0 and micro["vec_s"] > 0
    assert micro["speedup"] > 0 and micro["speedup_vec"] > 0
    assert micro["qpa_runs"] >= 0
    assert micro["qpa_iterations_mean"] >= 0
    assert KERNEL_COUNTER_KEYS <= set(micro["settled"])

    figures = data["figures"]
    assert "fig4" in figures and "fig5" in figures
    for fig, row in figures.items():
        missing = REQUIRED_FIGURE_KEYS - set(row)
        assert not missing, f"{fig} missing {sorted(missing)}"
        assert row["tasksets"] > 0
        assert row["forward_scalar_s"] > 0
        assert row["qpa_scalar_s"] > 0 and row["qpa_batched_s"] > 0
        assert row["vec_scalar_s"] > 0 and row["vec_batched_s"] > 0
        assert row["speedup_end_to_end"] > 0
        assert row["speedup_vec_end_to_end"] > 0
        for name, counters in row["kernel_counters"].items():
            assert counters, f"{fig}/{name} has no kernel counters"
            for key, value in counters.items():
                assert value >= 0, f"{fig}/{name} {key} negative"
    # The vec batched slice must report live speculation diagnostics.
    assert "vec" in figures["fig4"]["kernel_counters"]

    sweep = data["speculation_depth_sweep"]
    assert sweep["figure"] == "fig4" and sweep["pipeline"] == "batched"
    assert len(sweep["depths"]) >= 2
    for depth, row in sweep["depths"].items():
        assert int(depth) > 0
        missing = SWEEP_ROW_KEYS - set(row)
        assert not missing, f"spec sweep k={depth} missing {sorted(missing)}"
        assert row["seconds"] > 0 and row["tasksets_per_sec"] > 0

    # The contexts the fig4 aspirations are measured against.
    assert data["committed_batch_baseline"]["fig4_m4_scalar_tasksets_per_sec"] > 0
    assert data["committed_qpa_baseline"]["fig4_m4_tasksets_per_sec"] > 0
