"""Hypothesis property tests for the generator's exactness invariants.

The fair generator's defining property is that the *drawn* utilization
vectors hit their targets exactly (up to float summation error): the HC
LO-mode couple sums to ``m * U_LH``, every drawn vector sums to its total,
and realized task sets respect the structural bounds the paper's
methodology relies on (``C^H <= D <= T`` for constrained deadlines, task
counts in ``[m+1, 5m]``, utilization bounds per task).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.generator import GeneratorConfig, MCTaskSetGenerator
from repro.generator.uunifast import randfixedsum, uunifast_discard
from repro.util.rng import derive_rng

#: Summation tolerance: the vectors are produced by float arithmetic, so
#: "exact" means exact up to accumulated rounding of ~n terms.
ATOL = 1e-9


@st.composite
def grid_targets(draw):
    """(m, PH, U_HH, U_LH, U_LL) from the paper's parameter grid."""
    m = draw(st.sampled_from([2, 4, 8]))
    p_high = draw(st.sampled_from([0.1, 0.3, 0.5, 0.7, 0.9]))
    u_hh = draw(st.sampled_from([0.2, 0.4, 0.6, 0.8, 0.99]))
    u_lh = draw(
        st.floats(min_value=0.05, max_value=u_hh, allow_nan=False)
    )
    u_ll = draw(st.floats(min_value=0.05, max_value=0.99 - 0.05, allow_nan=False))
    return m, p_high, round(u_hh, 4), round(u_lh, 4), round(u_ll, 4)


class TestVectorExactness:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=2, max_value=24),
        st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_uunifast_discard_sums_exactly(self, seed, n, total):
        rng = np.random.default_rng(seed)
        total = min(total, n * 0.99 * 0.95)
        if total < n * 0.001 * 1.05:
            return
        values = uunifast_discard(rng, n, total, 0.001, 0.99, max_attempts=50)
        if values is None:
            return  # rejection sampling may legitimately give up
        assert len(values) == n
        assert np.all(values >= 0.001 - ATOL)
        assert np.all(values <= 0.99 + ATOL)
        assert abs(values.sum() - total) <= ATOL * max(1.0, total)

    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=2, max_value=24),
        st.floats(min_value=0.1, max_value=8.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_randfixedsum_sums_exactly(self, seed, n, total):
        rng = np.random.default_rng(seed)
        lo, hi = 0.001, 0.99
        if not n * lo + 1e-6 <= total <= n * hi - 1e-6:
            return
        values = randfixedsum(rng, n, total, lo, hi)
        assert len(values) == n
        assert np.all(values >= lo - 1e-7)
        assert np.all(values <= hi + 1e-7)
        assert abs(values.sum() - total) <= 1e-7 * max(1.0, total)


class TestGeneratedSetInvariants:
    @given(grid_targets(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_hc_lo_couple_sums_to_target(self, targets, seed):
        """``sum u_i^L == m * U_LH`` over HC tasks, before integerization.

        Exercised through ``_couple_lo_hi`` directly: the realized task set
        rounds budgets up to integers, so exactness holds at the vector
        level (which is what "fair" generation means in the paper).
        """
        m, p_high, u_hh, u_lh, u_ll = targets
        if u_lh > u_hh:
            return
        generator = MCTaskSetGenerator(GeneratorConfig(m=m, p_high=p_high))
        rng = np.random.default_rng(seed)
        n_high = max(2, int(round(p_high * (3 * m))))
        raw_hh, raw_lh = u_hh * m, u_lh * m
        if not n_high * 0.001 * 1.05 <= raw_hh <= n_high * 0.99 * 0.95:
            return
        u_high = generator._draw_vector(rng, n_high, raw_hh, 0.99)
        if u_high is None:
            return
        if raw_lh > u_high.sum():
            return  # infeasible coupling target for this draw
        u_low = generator._couple_lo_hi(rng, u_high, raw_lh)
        if u_low is None:
            return
        assert np.all(u_low <= u_high + 1e-9)
        assert abs(u_low.sum() - raw_lh) <= ATOL * max(1.0, raw_lh)

    @given(grid_targets(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_constrained_deadline_bounds(self, targets, seed):
        """Every generated task satisfies ``C^H <= D <= T`` (constrained)
        and ``D == T`` (implicit), with positive integer parameters."""
        m, p_high, u_hh, u_lh, u_ll = targets
        if u_lh > u_hh:
            return
        for deadline_type in ("constrained", "implicit"):
            generator = MCTaskSetGenerator(
                GeneratorConfig(
                    m=m, p_high=p_high, deadline_type=deadline_type,
                    max_attempts=8,
                )
            )
            rng = derive_rng("exactness-props", deadline_type, seed)
            taskset = generator.generate(rng, u_hh, u_lh, u_ll)
            if taskset is None:
                continue
            n_lo, n_hi = generator.config.task_count_range
            assert n_lo <= len(taskset) <= n_hi
            assert len(taskset.high_tasks) >= 1
            assert len(taskset.low_tasks) >= 1
            for task in taskset:
                assert 1 <= task.wcet_lo <= task.wcet_hi
                assert task.wcet_hi <= task.deadline <= task.period
                if deadline_type == "implicit":
                    assert task.deadline == task.period
                if not task.is_high:
                    assert task.wcet_lo == task.wcet_hi

    @given(
        st.sampled_from([0.0, 0.25, 0.5, 1.0]),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_degradation_factor_fills_lc_fields(self, factor, seed):
        generator = MCTaskSetGenerator(
            GeneratorConfig(m=2, degradation_factor=factor, max_attempts=8)
        )
        rng = derive_rng("exactness-deg", seed)
        taskset = generator.generate(rng, 0.5, 0.25, 0.3)
        if taskset is None:
            return
        for task in taskset:
            if task.is_high:
                assert task.wcet_degraded is None
            else:
                assert task.wcet_degraded == int(
                    np.floor(factor * task.wcet_lo)
                )
