"""Unit tests for log-uniform period synthesis."""

import numpy as np
import pytest

from repro.generator.periods import log_uniform_periods


def rng(seed=0):
    return np.random.default_rng(seed)


class TestLogUniformPeriods:
    def test_in_range_and_integer(self):
        periods = log_uniform_periods(rng(), 500, 10, 500)
        assert periods.dtype == np.int64
        assert periods.min() >= 10
        assert periods.max() <= 500

    def test_log_uniform_shape(self):
        """Median should sit near the geometric mean, far below the
        arithmetic midpoint — the signature of log-uniform sampling."""
        periods = log_uniform_periods(rng(3), 4000, 10, 500)
        median = np.median(periods)
        geometric_mean = np.sqrt(10 * 500)  # ~70.7
        assert median < 120  # arithmetic midpoint would be 255
        assert abs(median - geometric_mean) < 30

    def test_zero_count(self):
        assert len(log_uniform_periods(rng(), 0)) == 0

    def test_endpoints_attainable(self):
        periods = log_uniform_periods(rng(5), 20000, 10, 12)
        assert set(np.unique(periods)) <= {10, 11, 12}
        assert 10 in periods and 12 in periods

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            log_uniform_periods(rng(), -1)
        with pytest.raises(ValueError):
            log_uniform_periods(rng(), 5, 100, 10)
        with pytest.raises(ValueError):
            log_uniform_periods(rng(), 5, 0, 10)
