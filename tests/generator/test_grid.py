"""Unit tests for the paper's utilization grid."""

import pytest

from repro.generator.grid import GridPoint, UtilizationGrid, bucket_by_bound


class TestGridPoint:
    def test_bound_is_max_of_lo_and_hi(self):
        assert GridPoint(0.5, 0.2, 0.2).bound == pytest.approx(0.5)
        assert GridPoint(0.5, 0.4, 0.4).bound == pytest.approx(0.8)


class TestUtilizationGrid:
    def test_paper_u_hh_values(self):
        grid = UtilizationGrid()
        u_hh_seen = {p.u_hh for p in grid.points()}
        assert u_hh_seen == {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99}

    def test_inner_ranges_respect_paper_constraints(self):
        for point in UtilizationGrid().points():
            assert 0.05 <= point.u_lh <= point.u_hh + 1e-9
            assert 0.05 <= point.u_ll <= 0.99 - point.u_lh + 1e-9

    def test_inner_step_is_tenth(self):
        lh_values = sorted({p.u_lh for p in UtilizationGrid().points()})
        diffs = {round(b - a, 10) for a, b in zip(lh_values, lh_values[1:])}
        assert diffs == {0.1}

    def test_point_count_stable(self):
        # Regression pin: the paper grid enumerates a fixed combination count.
        assert len(UtilizationGrid().points()) == 330

    def test_custom_grid(self):
        grid = UtilizationGrid(u_hh_values=(0.5,), inner_step=0.2)
        points = grid.points()
        assert all(p.u_hh == 0.5 for p in points)
        assert len(points) > 0


class TestBucketing:
    def test_buckets_sorted_and_cover_all_points(self):
        grid = UtilizationGrid()
        buckets = grid.buckets(width=0.05)
        keys = list(buckets)
        assert keys == sorted(keys)
        assert sum(len(v) for v in buckets.values()) == len(grid.points())

    def test_bucket_members_close_to_key(self):
        for key, points in UtilizationGrid().buckets(width=0.05).items():
            for point in points:
                assert abs(point.bound - key) <= 0.025 + 1e-9

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            bucket_by_bound([], width=0.0)
