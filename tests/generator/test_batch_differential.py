"""Differential suite: batched generation == scalar generation, bit for bit.

The batch contract (see ``MCTaskSetGenerator.generate_batch``) is that each
set of a batch consumes its derived RNG stream exactly as one scalar
``generate()`` call would — same draws, same rejection loops, same columns.
These tests compare the two paths on the paper's parameter grid (hypothesis
chooses targets and seeds) and additionally pin the vectorized UUniFast
draw against a literal transcription of the historical scalar-draw loop.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generator import GeneratorConfig, MCTaskSetGenerator
from repro.generator.uunifast import uunifast
from repro.model import TaskSetBatch
from repro.util.rng import derive_rng


def task_fields(taskset):
    """Identity-free comparison key (ids/names are fresh per construction)."""
    return [
        (
            t.period,
            t.criticality.name,
            t.wcet_lo,
            t.wcet_hi,
            t.deadline,
            t.wcet_degraded,
            t.period_degraded,
        )
        for t in taskset
    ]


def reference_uunifast(rng: np.random.Generator, n: int, total: float):
    """The historical per-call-draw UUniFast loop, kept as the oracle."""
    if n == 1:
        return np.asarray([total])
    values = np.empty(n)
    remaining = total
    for i in range(n - 1):
        nxt = remaining * rng.random() ** (1.0 / (n - 1 - i))
        values[i] = remaining - nxt
        remaining = nxt
    values[n - 1] = remaining
    return values


class TestUUniFastVectorizedDraw:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_batched_draw_bit_identical_to_scalar_loop(self, seed, n, total):
        a = np.random.default_rng(seed)
        b = np.random.default_rng(seed)
        got = uunifast(a, n, total)
        want = reference_uunifast(b, n, total)
        assert np.array_equal(got, want)
        assert a.bit_generator.state == b.bit_generator.state


@st.composite
def generation_cases(draw):
    m = draw(st.sampled_from([2, 4]))
    deadline_type = draw(st.sampled_from(["implicit", "constrained"]))
    factor = draw(st.sampled_from([None, 0.5]))
    u_hh = draw(st.sampled_from([0.2, 0.4, 0.6, 0.8, 0.99]))
    u_lh = round(draw(st.floats(min_value=0.05, max_value=u_hh)), 4)
    u_ll = round(draw(st.floats(min_value=0.05, max_value=0.9)), 4)
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return m, deadline_type, factor, u_hh, u_lh, u_ll, seed


class TestGenerateColumnsDifferential:
    @given(generation_cases())
    @settings(max_examples=60, deadline=None)
    def test_columns_materialize_equals_scalar_generate(self, case):
        m, deadline_type, factor, u_hh, u_lh, u_ll, seed = case
        config = GeneratorConfig(
            m=m, deadline_type=deadline_type, degradation_factor=factor
        )
        r1 = derive_rng("batchdiff", seed)
        r2 = derive_rng("batchdiff", seed)
        scalar = MCTaskSetGenerator(config).generate(r1, u_hh, u_lh, u_ll)
        columns = MCTaskSetGenerator(config).generate_columns(
            r2, u_hh, u_lh, u_ll
        )
        # Identical draws => identical stream positions afterwards.
        assert r1.bit_generator.state == r2.bit_generator.state
        if scalar is None:
            assert columns is None
            return
        assert columns is not None
        assert task_fields(columns.materialize()) == task_fields(scalar)


class TestGenerateBatch:
    @pytest.mark.parametrize("deadline_type", ["implicit", "constrained"])
    def test_batch_equals_scalar_sequence(self, deadline_type):
        config = GeneratorConfig(m=2, deadline_type=deadline_type)
        targets = (0.6, 0.3, 0.3)
        count = 30
        scalar_gen = MCTaskSetGenerator(config)
        scalar = [
            scalar_gen.generate(derive_rng("gb", deadline_type, k), *targets)
            for k in range(count)
        ]
        scalar = [ts for ts in scalar if ts is not None]

        batch_gen = MCTaskSetGenerator(config)
        batch = batch_gen.generate_batch(
            (derive_rng("gb", deadline_type, k) for k in range(count)), *targets
        )
        assert isinstance(batch, TaskSetBatch)
        assert len(batch) == len(scalar)
        for i, ts in enumerate(scalar):
            assert task_fields(batch.taskset(i)) == task_fields(ts)
        assert batch_gen.stats == scalar_gen.stats

    def test_batch_carries_service_model(self):
        config = GeneratorConfig(m=2)
        batch = MCTaskSetGenerator(config).generate_batch(
            (derive_rng("gbs", k) for k in range(3)),
            0.4,
            0.2,
            0.2,
            service_model="imprecise:0.5",
        )
        assert batch.service_model is not None
        assert batch.taskset(0).service_model is batch.service_model
