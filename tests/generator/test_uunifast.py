"""Unit and property tests for the utilization-vector generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generator.uunifast import randfixedsum, uunifast, uunifast_discard


def rng(seed=0):
    return np.random.default_rng(seed)


class TestUUniFast:
    def test_sum_exact(self):
        values = uunifast(rng(), 8, 3.2)
        assert values.sum() == pytest.approx(3.2)
        assert len(values) == 8

    def test_nonnegative(self):
        values = uunifast(rng(1), 10, 0.5)
        assert (values >= 0).all()

    def test_single_task(self):
        assert uunifast(rng(), 1, 0.7)[0] == pytest.approx(0.7)

    def test_zero_total(self):
        values = uunifast(rng(), 4, 0.0)
        assert values.sum() == pytest.approx(0.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            uunifast(rng(), 0, 1.0)
        with pytest.raises(ValueError):
            uunifast(rng(), 3, -0.1)

    @given(st.integers(min_value=1, max_value=20), st.floats(min_value=0.0, max_value=8.0))
    @settings(max_examples=50)
    def test_property_sum_and_sign(self, n, total):
        values = uunifast(np.random.default_rng(42), n, total)
        assert values.sum() == pytest.approx(total, abs=1e-9)
        assert (values >= -1e-12).all()


class TestUUniFastDiscard:
    def test_respects_bounds(self):
        values = uunifast_discard(rng(), 6, 2.0, u_min=0.05, u_max=0.8)
        assert values is not None
        assert (values >= 0.05 - 1e-12).all()
        assert (values <= 0.8 + 1e-12).all()
        assert values.sum() == pytest.approx(2.0)

    def test_infeasible_box_returns_none_immediately(self):
        assert uunifast_discard(rng(), 3, 4.0, u_max=1.0) is None
        assert uunifast_discard(rng(), 3, 0.1, u_min=0.5) is None

    def test_hard_region_gives_up(self):
        # total == n * u_max: the acceptance region has measure ~0.
        values = uunifast_discard(rng(), 5, 4.9999, u_max=1.0, max_attempts=5)
        # None is acceptable; a vector (unlikely) must still satisfy bounds.
        if values is not None:
            assert (values <= 1.0 + 1e-9).all()


class TestRandFixedSum:
    def test_sum_and_bounds(self):
        values = randfixedsum(rng(), 7, 3.5, u_min=0.1, u_max=0.9)
        assert values is not None
        assert values.sum() == pytest.approx(3.5, abs=1e-6)
        assert (values >= 0.1 - 1e-9).all()
        assert (values <= 0.9 + 1e-9).all()

    def test_handles_extreme_totals(self):
        # Near the top of the feasible range where discard would explode.
        values = randfixedsum(rng(), 4, 3.9, u_min=0.0, u_max=1.0)
        assert values is not None
        assert values.sum() == pytest.approx(3.9, abs=1e-6)

    def test_infeasible_returns_none(self):
        assert randfixedsum(rng(), 3, 3.5, u_max=1.0) is None
        # feasible box, infeasible total (minimum possible sum is 0.3)
        assert randfixedsum(rng(), 3, 0.2, u_min=0.1, u_max=0.15) is None

    def test_inverted_box_rejected(self):
        with pytest.raises(ValueError):
            randfixedsum(rng(), 3, 0.2, u_min=0.1, u_max=0.05)

    def test_degenerate_box(self):
        values = randfixedsum(rng(), 4, 2.0, u_min=0.5, u_max=0.5)
        assert values is not None
        assert (values == 0.5).all()
        assert randfixedsum(rng(), 4, 1.9, u_min=0.5, u_max=0.5) is None

    def test_single_value(self):
        values = randfixedsum(rng(), 1, 0.42, u_min=0.0, u_max=1.0)
        assert values is not None
        assert values[0] == pytest.approx(0.42)

    @given(
        st.integers(min_value=2, max_value=12),
        st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=50)
    def test_property_feasible_requests_satisfied(self, n, frac):
        total = frac * n  # always strictly inside the [0,1]^n simplex slice
        values = randfixedsum(np.random.default_rng(7), n, total, 0.0, 1.0)
        assert values is not None
        assert values.sum() == pytest.approx(total, abs=1e-6)
        assert (values >= -1e-9).all() and (values <= 1 + 1e-9).all()

    def test_distribution_not_degenerate(self):
        """Different draws differ (sanity against constant outputs)."""
        a = randfixedsum(rng(1), 5, 2.0, 0.0, 1.0)
        b = randfixedsum(rng(2), 5, 2.0, 0.0, 1.0)
        assert a is not None and b is not None
        assert not np.allclose(a, b)
