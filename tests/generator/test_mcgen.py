"""Unit tests for the fair MC task-set generator."""

import numpy as np
import pytest

from repro.generator import GeneratorConfig, MCTaskSetGenerator
from repro.model import validate_taskset


def rng(seed=0):
    return np.random.default_rng(seed)


class TestGeneratorConfig:
    def test_paper_defaults(self):
        cfg = GeneratorConfig(m=4)
        assert cfg.u_min == 0.001
        assert cfg.u_max == 0.99
        assert cfg.p_high == 0.5
        assert cfg.task_count_range == (5, 20)
        assert cfg.t_min == 10 and cfg.t_max == 500

    def test_custom_count_range(self):
        cfg = GeneratorConfig(m=2, n_min=3, n_max=6)
        assert cfg.task_count_range == (3, 6)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"m": 0},
            {"m": 2, "u_min": 0.0},
            {"m": 2, "u_min": 0.5, "u_max": 0.4},
            {"m": 2, "p_high": 0.0},
            {"m": 2, "p_high": 1.0},
            {"m": 2, "deadline_type": "arbitrary"},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GeneratorConfig(**kwargs)

    def test_bad_count_range_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(m=2, n_min=10, n_max=5).task_count_range


class TestGeneration:
    def test_valid_model_output(self):
        gen = MCTaskSetGenerator(m=4)
        ts = gen.generate(rng(), 0.6, 0.3, 0.3)
        assert ts is not None
        validate_taskset(ts, require_dual_criticality=True)

    def test_task_count_in_paper_range(self):
        gen = MCTaskSetGenerator(m=4)
        for seed in range(10):
            ts = gen.generate(rng(seed), 0.5, 0.25, 0.3)
            assert ts is not None
            assert 5 <= len(ts) <= 20

    def test_ph_half_splits_tasks(self):
        gen = MCTaskSetGenerator(m=4, p_high=0.5)
        ts = gen.generate(rng(1), 0.5, 0.25, 0.3)
        assert ts is not None
        assert abs(len(ts.high_tasks) - len(ts.low_tasks)) <= 1

    def test_extreme_ph_still_dual_criticality(self):
        gen = MCTaskSetGenerator(m=2, p_high=0.9)
        ts = gen.generate(rng(2), 0.5, 0.25, 0.2)
        assert ts is not None
        assert len(ts.low_tasks) >= 1
        assert len(ts.high_tasks) >= 1

    def test_targets_hit_up_to_ceil_slack(self):
        """Realized utilizations overshoot targets only by the ceil() bias.

        Each task overshoots by < 1/T_min utilization, so the sum is within
        n/t_min of the target from above (and never below).
        """
        gen = MCTaskSetGenerator(m=4)
        for seed in range(8):
            ts = gen.generate(rng(seed + 100), 0.6, 0.3, 0.35)
            assert ts is not None
            util = ts.utilization.normalized(4)
            slack = len(ts) / 10 / 4  # n/t_min normalized by m
            for realized, target in (
                (util.u_hh, 0.6),
                (util.u_lh, 0.3),
                (util.u_ll, 0.35),
            ):
                assert realized >= target - 1e-9
                assert realized <= target + slack + 1e-9

    def test_hc_lo_below_hi_per_task(self):
        gen = MCTaskSetGenerator(m=4)
        ts = gen.generate(rng(3), 0.7, 0.65, 0.2)
        assert ts is not None
        for task in ts.high_tasks:
            assert task.wcet_lo <= task.wcet_hi

    def test_deadline_types(self):
        implicit = MCTaskSetGenerator(m=2).generate(rng(4), 0.5, 0.2, 0.3)
        assert implicit is not None and implicit.is_implicit_deadline
        constrained_gen = MCTaskSetGenerator(m=2, deadline_type="constrained")
        constrained = constrained_gen.generate(rng(4), 0.5, 0.2, 0.3)
        assert constrained is not None
        assert constrained.is_constrained_deadline
        assert any(t.deadline < t.period for t in constrained)

    def test_deterministic_given_seed(self):
        gen = MCTaskSetGenerator(m=2)
        a = gen.generate(rng(42), 0.5, 0.25, 0.3)
        b = MCTaskSetGenerator(m=2).generate(rng(42), 0.5, 0.25, 0.3)
        assert a is not None and b is not None
        assert a.to_dicts() == [
            {**d, "name": a[i].name} for i, d in enumerate(b.to_dicts())
        ] or [t.period for t in a] == [t.period for t in b]

    def test_infeasible_targets_return_none(self):
        # U_HH * m = 9.9 over at most 10 tasks with u_max 0.99 needs every
        # task at the cap -- the generator gives up.
        gen = MCTaskSetGenerator(m=10, n_min=4, n_max=10, max_attempts=8)
        assert gen.generate(rng(5), 0.99, 0.5, 0.3) is None

    def test_invalid_target_order_rejected(self):
        gen = MCTaskSetGenerator(m=2)
        with pytest.raises(ValueError, match="U_LH"):
            gen.generate(rng(), 0.3, 0.5, 0.2)

    def test_generate_many_skips_failures(self):
        gen = MCTaskSetGenerator(m=2)
        batch = gen.generate_many(rng(6), 0.6, 0.3, 0.3, count=5)
        assert 1 <= len(batch) <= 5
        for ts in batch:
            validate_taskset(ts)

    def test_stats_tracked(self):
        gen = MCTaskSetGenerator(m=2)
        gen.generate(rng(7), 0.5, 0.25, 0.3)
        assert gen.stats["generated"] == 1

    def test_config_kwargs_constructor(self):
        gen = MCTaskSetGenerator(m=3, p_high=0.7)
        assert gen.config.m == 3
        assert gen.config.p_high == 0.7
        with pytest.raises(TypeError):
            MCTaskSetGenerator(GeneratorConfig(m=2), m=3)
