"""Smoke tests: every shipped example must run to completion.

Examples are part of the public deliverable; they execute in-process here
(stdout captured by pytest) so API drift breaks the suite, not the user.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, argv: list[str] | None = None) -> None:
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "paper_examples.py",
        "avionics_case_study.py",
        "explore_partitioning.py",
    } <= present


def test_quickstart_runs(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "cu-udp" in out
    assert "MC-correct: True" in out


def test_paper_examples_show_both_phenomena(capsys):
    _run("paper_examples.py")
    out = capsys.readouterr().out
    # Figure 1: CA-Wu-F fails, CA-UDP succeeds.
    assert "ca-wu-f + edf-vd on m=2: FAILED" in out
    assert "ca-udp + edf-vd on m=2: SUCCESS" in out
    # Figure 2: CA-UDP fails, CU-UDP succeeds.
    assert "ca-udp + edf-vd on m=2: FAILED" in out
    assert "cu-udp + edf-vd on m=2: SUCCESS" in out


def test_avionics_case_study_isolation(capsys):
    _run("avionics_case_study.py")
    out = capsys.readouterr().out
    assert "isolation holds" in out


@pytest.mark.parametrize(
    "argv",
    [
        ["--samples", "4", "--ub-min", "0.6"],
        ["--samples", "3", "--deadline", "constrained", "--m", "2"],
    ],
)
def test_explorer_runs(capsys, argv):
    _run("explore_partitioning.py", argv)
    out = capsys.readouterr().out
    assert "weighted acceptance ratios" in out
