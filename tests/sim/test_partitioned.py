"""Unit tests for partitioned (multi-core) simulation."""

from repro.model import TaskSet
from repro.sim import (
    EDFVDPolicy,
    FixedOverrunScenario,
    NominalScenario,
    PartitionedSim,
)

from tests.conftest import hc_task, lc_task


def _two_cores():
    core0 = TaskSet([hc_task(20, 4, 10, name="h0"), lc_task(10, 2, name="l0")])
    core1 = TaskSet([hc_task(25, 5, 12, name="h1"), lc_task(10, 3, name="l1")])
    return [core0, core1]


class TestPartitionedSim:
    def test_nominal_all_cores_quiet(self):
        sim = PartitionedSim(_two_cores(), lambda core: EDFVDPolicy(1.0))
        outcome = sim.run(lambda idx: NominalScenario(), 200)
        assert outcome.mc_correct
        assert outcome.cores_switched == []

    def test_isolation_of_mode_switch(self):
        cores = _two_cores()
        overruner = cores[0][0]
        sim = PartitionedSim(cores, lambda core: EDFVDPolicy(1.0))
        outcome = sim.run(
            lambda idx: FixedOverrunScenario({overruner.task_id}), 400
        )
        assert outcome.cores_switched == [0]
        assert outcome.per_core[1].mode_switches == []
        assert outcome.per_core[1].lc_jobs_dropped == 0
        assert outcome.mc_correct

    def test_violations_tagged_with_core(self):
        # Overloaded core 1 (two fat LC tasks).
        bad = TaskSet([lc_task(10, 7, name="x"), lc_task(10, 7, name="y")])
        sim = PartitionedSim(
            [_two_cores()[0], bad], lambda core: EDFVDPolicy(1.0)
        )
        outcome = sim.run(lambda idx: NominalScenario(), 100)
        assert not outcome.mc_correct
        assert {core for core, _ in outcome.mc_violations} == {1}

    def test_empty_core_handled(self):
        sim = PartitionedSim(
            [TaskSet(), _two_cores()[0]], lambda core: EDFVDPolicy(1.0)
        )
        outcome = sim.run(lambda idx: NominalScenario(), 100)
        assert outcome.mc_correct
        assert outcome.per_core[0].jobs_released == 0

    def test_per_core_scenarios(self):
        cores = _two_cores()
        sim = PartitionedSim(cores, lambda core: EDFVDPolicy(1.0))
        outcome = sim.run(
            lambda idx: FixedOverrunScenario(None)
            if idx == 1
            else NominalScenario(),
            300,
        )
        assert outcome.cores_switched == [1]
