"""Unit tests for analysis-vs-simulation validation glue."""

import pytest

from repro.analysis import (
    AMCmaxTest,
    ECDFTest,
    EDFTest,
    EDFVDTest,
    EYTest,
)
from repro.sim import policy_for, validate_against_simulation
from repro.sim.policies import AMCPolicy, EDFPolicy, EDFVDPolicy
from repro.sim.validate import standard_scenarios
from repro.util import derive_rng


class TestPolicyFor:
    def test_edfvd_maps_to_scaling_policy(self, simple_mixed_taskset):
        test = EDFVDTest()
        policy = policy_for(test, test.analyze(simple_mixed_taskset))
        assert isinstance(policy, EDFVDPolicy)
        assert not policy.virtual_deadlines

    def test_ey_and_ecdf_map_to_vd_map_policy(self, simple_mixed_taskset):
        for test in (EYTest(), ECDFTest()):
            policy = policy_for(test, test.analyze(simple_mixed_taskset))
            assert isinstance(policy, EDFVDPolicy)
            assert policy.virtual_deadlines

    def test_amc_maps_to_fixed_priority(self, simple_mixed_taskset):
        test = AMCmaxTest()
        policy = policy_for(test, test.analyze(simple_mixed_taskset))
        assert isinstance(policy, AMCPolicy)

    def test_edf_reservation_maps_to_plain_edf(self, simple_mixed_taskset):
        test = EDFTest()
        policy = policy_for(test, test.analyze(simple_mixed_taskset))
        assert isinstance(policy, EDFPolicy)

    def test_unknown_test_rejected(self, simple_mixed_taskset):
        class Fake(EDFVDTest):
            name = "mystery"

        test = Fake()
        with pytest.raises(ValueError, match="no runtime policy"):
            policy_for(test, test.analyze(simple_mixed_taskset))


class TestScenarioBattery:
    def test_contains_all_families(self, simple_mixed_taskset):
        scenarios = standard_scenarios(
            simple_mixed_taskset, derive_rng("battery"), random_runs=2
        )
        labels = [s.describe() for s in scenarios]
        assert any("Nominal" in label for label in labels)
        assert any("FixedOverrun" in label for label in labels)
        assert sum("Random" in label for label in labels) == 2
        # one single-overrun + one mid-stream overrun per HC task, plus
        # all-HC; the per-task labels embed the overrunning task's id
        n_hc = len(simple_mixed_taskset.high_tasks)
        assert sum("tasks=" in label for label in labels) == 2 * n_hc
        for task in simple_mixed_taskset.high_tasks:
            assert (
                sum(f"tasks={task.task_id}," in label or
                    label.endswith(f"tasks={task.task_id}, every job)") or
                    f"tasks={task.task_id}, job" in label
                    for label in labels)
                >= 2
            )
        # the randomized scenarios are distinguishable by their seeds
        random_labels = [label for label in labels if "Random" in label]
        assert len(set(random_labels)) == len(random_labels)
        assert all("seed=" in label for label in random_labels)


class TestValidateAgainstSimulation:
    def test_accepted_set_validates(self, simple_mixed_taskset):
        violations = validate_against_simulation(
            simple_mixed_taskset,
            EDFVDTest(),
            derive_rng("ok"),
            horizon=4000,
            random_runs=1,
        )
        assert violations == []

    def test_rejected_set_raises(self, heavy_taskset):
        with pytest.raises(ValueError, match="accepted"):
            validate_against_simulation(
                heavy_taskset, EDFVDTest(), derive_rng("no")
            )
