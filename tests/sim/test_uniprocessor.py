"""Unit tests for the uniprocessor simulation engine."""

import pytest

from repro.model import TaskSet
from repro.sim import (
    EDFPolicy,
    EDFVDPolicy,
    AMCPolicy,
    FixedOverrunScenario,
    NominalScenario,
    UniprocessorSim,
)

from tests.conftest import hc_task, lc_task


class TestBasicExecution:
    def test_single_task_completes_every_period(self):
        task = lc_task(10, 3)
        sim = UniprocessorSim(TaskSet([task]), EDFPolicy())
        result = sim.run(NominalScenario(), horizon=100)
        assert result.jobs_released == 10
        assert result.jobs_completed == 10
        assert result.misses == []

    def test_two_tasks_edf_order_no_misses(self):
        ts = TaskSet([lc_task(10, 3, name="a"), lc_task(15, 5, name="b")])
        result = UniprocessorSim(ts, EDFPolicy()).run(NominalScenario(), 300)
        assert result.mc_correct
        # Jobs still running at the horizon may be incomplete; no more than
        # the two boundary jobs can be outstanding on a schedulable core.
        assert result.jobs_released - result.jobs_completed <= 2

    def test_overload_produces_miss(self):
        ts = TaskSet([lc_task(10, 6, name="a"), lc_task(10, 6, name="b")])
        result = UniprocessorSim(ts, EDFPolicy()).run(NominalScenario(), 100)
        assert result.misses
        first = result.misses[0]
        assert first.deadline == 10
        assert first.is_violation  # LC miss in LO mode

    def test_preemption_counted(self):
        # Long low-priority job preempted by short high-frequency task.
        ts = TaskSet([lc_task(50, 30, name="long"), lc_task(10, 2, name="short")])
        result = UniprocessorSim(ts, EDFPolicy()).run(NominalScenario(), 200)
        assert result.preemptions > 0
        assert result.mc_correct

    def test_horizon_validation(self):
        with pytest.raises(ValueError):
            UniprocessorSim(TaskSet([lc_task(10, 1)]), EDFPolicy()).run(
                NominalScenario(), 0
            )

    def test_arbitrary_deadline_rejected(self):
        ts = TaskSet([lc_task(10, 1, deadline=12)])
        # build bypasses validate; the simulator enforces constrained deadlines
        with pytest.raises(ValueError, match="constrained"):
            UniprocessorSim(ts, EDFPolicy())


class TestModeSwitch:
    def test_switch_at_lo_budget_exhaustion(self):
        task = hc_task(20, 4, 8)
        sim = UniprocessorSim(TaskSet([task]), EDFVDPolicy(1.0))
        result = sim.run(FixedOverrunScenario({task.task_id}, 0), 100)
        assert result.mode_switches == [4]
        assert result.mc_correct

    def test_no_switch_under_nominal(self):
        ts = TaskSet([hc_task(20, 4, 8), lc_task(10, 2)])
        result = UniprocessorSim(ts, EDFVDPolicy(1.0)).run(NominalScenario(), 200)
        assert result.mode_switches == []
        assert result.lc_jobs_dropped == 0

    def test_lc_dropped_and_suppressed_in_hi(self):
        h = hc_task(20, 4, 20)  # sustained overruns keep the core busy
        l = lc_task(10, 2)
        sim = UniprocessorSim(TaskSet([h, l]), EDFVDPolicy(1.0))
        result = sim.run(FixedOverrunScenario({h.task_id}), 200)
        assert result.mode_switches
        assert result.lc_jobs_dropped + result.lc_releases_suppressed > 0

    def test_idle_reset_returns_to_lo(self):
        # One overrun job, then nominal: the core must return to LO at idle
        # and resume LC service.
        h = hc_task(50, 5, 25)
        l = lc_task(25, 3)
        sim = UniprocessorSim(TaskSet([h, l]), EDFVDPolicy(1.0))
        result = sim.run(FixedOverrunScenario({h.task_id}, 0), 500)
        assert len(result.mode_switches) == 1
        assert result.idle_resets >= 1
        # LC service resumed: more LC completions than the pre-switch count.
        assert result.jobs_completed > 10

    def test_lc_miss_after_switch_not_violation(self):
        # Overrunning HC job starves an already-released LC job past its
        # deadline; that miss is recorded but is not an MC violation.
        h = hc_task(30, 5, 25)
        l = lc_task(30, 10)
        policy = AMCPolicy({h.task_id: 0, l.task_id: 1})
        result = UniprocessorSim(TaskSet([h, l]), policy).run(
            FixedOverrunScenario({h.task_id}, 0), 30
        )
        assert result.mc_correct

    def test_edf_reservation_never_switches(self):
        h = hc_task(20, 4, 8)
        result = UniprocessorSim(TaskSet([h]), EDFPolicy()).run(
            FixedOverrunScenario({h.task_id}), 200
        )
        assert result.mode_switches == []
        assert result.mc_correct  # U_HI = 0.4, trivially fine

    def test_no_switch_recorded_past_horizon(self):
        # Regression: a job whose C_L boundary falls one tick past the
        # horizon used to record a mode switch at horizon + 1 (and be
        # credited execution outside the window).  Job 1 releases at t=10
        # and would cross wcet_lo at t=12; with horizon 11 the run must
        # stop at 11 with only the in-window switch (t=2) recorded.
        h = hc_task(10, 2, 3)
        sim = UniprocessorSim(TaskSet([h]), EDFVDPolicy(0.8))
        result = sim.run(FixedOverrunScenario({h.task_id}), horizon=11)
        assert result.mode_switches == [2]
        assert all(0 < s <= 11 for s in result.mode_switches)
        assert result.jobs_completed == 1  # job 1's work past t=11 not counted


class TestMissDetection:
    def test_miss_recorded_at_deadline_instant(self):
        ts = TaskSet([lc_task(10, 7, name="a"), lc_task(10, 7, name="b")])
        result = UniprocessorSim(ts, EDFPolicy()).run(NominalScenario(), 50)
        assert result.misses
        assert all(m.deadline % 10 == 0 for m in result.misses)

    def test_each_job_missed_once(self):
        ts = TaskSet([lc_task(10, 8, name="a"), lc_task(10, 8, name="b")])
        result = UniprocessorSim(ts, EDFPolicy()).run(NominalScenario(), 40)
        seen = {(m.task_name, m.job_index) for m in result.misses}
        assert len(seen) == len(result.misses)

    def test_hc_miss_is_always_violation(self):
        # Two HC tasks whose HI budgets overload the core.
        a = hc_task(10, 2, 9, name="a")
        b = hc_task(10, 2, 9, name="b")
        policy = AMCPolicy({a.task_id: 0, b.task_id: 1})
        result = UniprocessorSim(TaskSet([a, b]), policy).run(
            FixedOverrunScenario(None), 50
        )
        assert any(m.criticality_high for m in result.misses)
        assert not result.mc_correct
