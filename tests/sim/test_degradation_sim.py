"""Simulator semantics under degraded LC service, with trace validation.

Asserts the engine honors degraded budgets/periods instead of dropping LC
work at the mode switch: truncation of pending jobs, degraded-budget
releases, stretched elastic release spacing, violation classification, and
per-segment trace accounting of LC execution in HI mode.
"""

from __future__ import annotations

from repro.model import TaskSet
from repro.sim import UniprocessorSim
from repro.sim.policies import EDFVDPolicy
from repro.sim.scenario import FixedOverrunScenario, NominalScenario

from tests.conftest import hc_task, lc_task


def make_sim(service, tasks=None, scaling_factor=1.0):
    taskset = TaskSet(
        tasks
        or [
            hc_task(100, 10, 30, name="h1"),
            lc_task(20, 4, name="l1"),
        ]
    )
    policy = EDFVDPolicy(scaling_factor=scaling_factor, service=service)
    return taskset, UniprocessorSim(taskset, policy)


def lc_hi_segments(result, name: str):
    return [
        s
        for s in result.trace.segments
        if s.task_name == name and s.high_mode
    ]


class TestImpreciseBudget:
    def test_lc_keeps_running_in_hi_mode(self):
        taskset, sim = make_sim("imprecise:0.5")
        result = sim.run(FixedOverrunScenario(), horizon=400, record_trace=True)
        assert result.mode_switches  # the HC overrun switched modes
        assert result.mc_correct
        # Trace validation: degraded service actually ran LC work in HI
        # mode — the classical drop runtime never would.
        assert sum(s.length for s in lc_hi_segments(result, "l1")) > 0
        drop = UniprocessorSim(taskset, EDFVDPolicy()).run(
            FixedOverrunScenario(), horizon=400, record_trace=True
        )
        assert sum(s.length for s in lc_hi_segments(drop, "l1")) == 0

    def test_zero_budget_matches_drop_runtime(self):
        taskset, sim = make_sim("imprecise:0.0")
        result = sim.run(FixedOverrunScenario(), horizon=200)
        drop = UniprocessorSim(taskset, EDFVDPolicy()).run(
            FixedOverrunScenario(), horizon=200
        )
        assert result.mc_correct and drop.mc_correct
        assert result.mode_switches == drop.mode_switches
        assert (
            result.lc_releases_suppressed + result.lc_jobs_dropped
            == drop.lc_releases_suppressed + drop.lc_jobs_dropped
        )
        assert result.jobs_completed == drop.jobs_completed

    def test_pending_job_truncated_at_switch(self):
        tasks = [
            hc_task(50, 6, 20, name="h1"),
            lc_task(200, 40, name="big-lc"),
        ]
        taskset, sim = make_sim("imprecise:0.25", tasks=tasks)
        result = sim.run(FixedOverrunScenario(), horizon=200, record_trace=True)
        assert result.mode_switches
        assert result.lc_jobs_degraded >= 1
        # Trace validation: after the switch the pending LC job may run at
        # most its degraded budget (floor(0.25 * 40) = 10) in total.
        switch = result.mode_switches[0]
        lc_after = sum(
            s.length
            for s in result.trace.segments
            if s.task_name == "big-lc" and s.start >= switch and s.high_mode
        )
        assert lc_after <= 10

    def test_full_budget_never_drops(self):
        taskset, sim = make_sim("imprecise:1.0")
        result = sim.run(FixedOverrunScenario(), horizon=400)
        assert result.mode_switches
        assert result.lc_releases_suppressed == 0
        assert result.lc_jobs_dropped == 0


class TestElasticPeriod:
    #: a long sustained overrun keeps the core in HI mode for ~140 time
    #: units per hyperperiod, spanning several LC periods — short HI
    #: blips would end before any stretched release becomes observable
    TASKS = staticmethod(
        lambda: [hc_task(200, 10, 150, name="h1"), lc_task(20, 2, name="l1")]
    )

    def test_release_count_reduced_by_stretch(self):
        stretched, sim = make_sim("elastic:2.0", tasks=self.TASKS())
        res_stretched = sim.run(FixedOverrunScenario(), horizon=800)
        full, sim_full = make_sim("imprecise:1.0", tasks=self.TASKS())
        res_full = sim_full.run(FixedOverrunScenario(), horizon=800)
        # Same workload, same overruns; the elastic runtime releases
        # strictly fewer LC jobs because HI-mode spacing doubles.
        assert res_stretched.jobs_released < res_full.jobs_released
        assert res_stretched.mc_correct and res_full.mc_correct

    def test_hi_mode_release_spacing_stretched(self):
        taskset, sim = make_sim("elastic:2.0", tasks=self.TASKS())
        result = sim.run(FixedOverrunScenario(), horizon=800, record_trace=True)
        assert result.mode_switches
        # Trace validation: l1 executes in HI mode (kept alive) and the
        # gap between consecutive HI-mode l1 job starts is >= the
        # stretched period whenever both jobs started in HI mode strictly
        # after the same switch.  Each l1 job is a single 2-unit run, so
        # segment starts are job starts.
        segments = lc_hi_segments(result, "l1")
        assert segments
        switch = result.mode_switches[0]
        starts = [s.start for s in segments if s.start > switch]
        for a, b in zip(starts, starts[1:]):
            assert b - a >= 20  # never tighter than the nominal period

    def test_no_truncation_under_elastic(self):
        taskset, sim = make_sim("elastic:2.0")
        result = sim.run(FixedOverrunScenario(), horizon=400)
        assert result.lc_jobs_degraded == 0
        assert result.lc_jobs_dropped == 0


class TestViolationClassification:
    OVERLOAD = staticmethod(
        lambda: [hc_task(10, 5, 9, name="h1"), lc_task(12, 6, name="l1")]
    )

    def test_hi_mode_lc_miss_is_violation_under_degraded_service(self):
        # Overload the core in HI mode so a serviced LC job must miss.
        taskset = TaskSet(self.OVERLOAD())
        policy = EDFVDPolicy(scaling_factor=1.0, service="imprecise:1.0")
        result = UniprocessorSim(taskset, policy).run(
            FixedOverrunScenario(), horizon=240
        )
        hi_lc_misses = [
            m
            for m in result.misses
            if not m.criticality_high and m.high_mode_at_miss
        ]
        assert hi_lc_misses, "expected an overloaded HI-mode LC miss"
        assert all(m.degraded_service for m in hi_lc_misses)
        assert all(m.is_violation for m in hi_lc_misses)
        assert not result.mc_correct

    def test_drop_semantics_unchanged(self):
        # Same overload under the classical drop runtime: HI-mode LC
        # misses (if any) are not violations.
        taskset = TaskSet(self.OVERLOAD())
        result = UniprocessorSim(
            taskset, EDFVDPolicy(scaling_factor=1.0)
        ).run(FixedOverrunScenario(), horizon=240)
        for miss in result.misses:
            if not miss.criticality_high and miss.high_mode_at_miss:
                assert not miss.is_violation

    def test_nominal_runs_never_degrade(self):
        taskset, sim = make_sim("imprecise:0.5")
        result = sim.run(NominalScenario(), horizon=400)
        assert result.mode_switches == []
        assert result.lc_jobs_degraded == 0
        assert result.lc_releases_suppressed == 0
        assert result.mc_correct


class TestStretchedDeadlinePriorities:
    def test_hi_mode_key_uses_engine_assigned_deadline(self):
        # Regression: the HI-mode EDF key must rank jobs by the deadline
        # the engine enforces.  An elastic LC job released in HI mode
        # carries a stretched deadline; recomputing release + task.deadline
        # would let it outrank an HC job due earlier — an inversion the
        # certified schedule (EDF on the enforced deadlines) never has.
        lc = lc_task(10, 2, name="l1")
        hc = hc_task(100, 5, 15, name="h1")
        policy = EDFVDPolicy(scaling_factor=1.0, service="elastic:4.0")
        lc_key = policy.priority_key(lc, 100, True, deadline=100 + 40)
        hc_key = policy.priority_key(hc, 90, True, deadline=90 + 25)
        assert hc_key < lc_key
        # without the engine deadline the policy falls back to the task
        # deadline (drop semantics, where the two always coincide)
        assert policy.priority_key(lc, 100, True) == (110.0, lc.task_id)

    def test_elastic_stretched_jobs_respect_hc_urgency(self):
        # End-to-end: sustained HI mode with stretched LC releases; the
        # run must stay MC-correct with the stretched jobs de-prioritized.
        taskset = TaskSet(
            [hc_task(200, 10, 150, name="h1"), lc_task(20, 2, name="l1")]
        )
        policy = EDFVDPolicy(scaling_factor=1.0, service="elastic:3.0")
        result = UniprocessorSim(taskset, policy).run(
            FixedOverrunScenario(), horizon=1000
        )
        assert result.mode_switches
        assert result.mc_correct


class TestPolicyService:
    def test_policy_parses_spec(self):
        policy = EDFVDPolicy(service="imprecise:0.5")
        assert policy.degrades_lc
        assert policy.service.key() == ("imprecise", 0.5)
        assert "imprecise:0.5" in policy.name

    def test_full_drop_service_is_not_degrading(self):
        policy = EDFVDPolicy(service="full-drop")
        assert not policy.degrades_lc
        assert policy.name == "edf-vd"

    def test_default_policy_unchanged(self):
        policy = EDFVDPolicy()
        assert policy.service is None
        assert not policy.degrades_lc
