"""Unit tests for execution traces."""

from repro.model import TaskSet
from repro.sim import (
    EDFPolicy,
    EDFVDPolicy,
    FixedOverrunScenario,
    NominalScenario,
    UniprocessorSim,
)
from repro.sim.trace import ExecutionTrace, TraceSegment

from tests.conftest import hc_task, lc_task


class TestExecutionTrace:
    def test_record_and_merge(self):
        trace = ExecutionTrace()
        trace.record(0, 5, "a", False)
        trace.record(5, 8, "a", False)  # contiguous, same task/mode: merged
        trace.record(8, 10, "b", False)
        assert trace.segments == [
            TraceSegment(0, 8, "a", False),
            TraceSegment(8, 10, "b", False),
        ]

    def test_mode_change_breaks_merge(self):
        trace = ExecutionTrace()
        trace.record(0, 5, "a", False)
        trace.record(5, 8, "a", True)
        assert len(trace.segments) == 2

    def test_empty_interval_ignored(self):
        trace = ExecutionTrace()
        trace.record(5, 5, "a", False)
        assert trace.segments == []

    def test_queries(self):
        trace = ExecutionTrace()
        trace.record(0, 4, "a", False)
        trace.record(4, 6, "b", True)
        trace.record(8, 10, "a", False)
        assert trace.busy_time() == 8
        assert trace.execution_time_of("a") == 6
        assert trace.hi_mode_time() == 2
        assert trace.task_at(1) == "a"
        assert trace.task_at(7) is None  # idle gap

    def test_ascii_rendering(self):
        trace = ExecutionTrace()
        trace.record(0, 4, "t1", False)
        trace.record(4, 6, "t2", True)
        art = trace.as_ascii(width=10)
        assert "t1" in art and "t2" in art
        assert "#" in art and "!" in art

    def test_empty_ascii(self):
        assert "empty" in ExecutionTrace().as_ascii()


class TestEngineIntegration:
    def test_trace_disabled_by_default(self):
        ts = TaskSet([lc_task(10, 3)])
        result = UniprocessorSim(ts, EDFPolicy()).run(NominalScenario(), 50)
        assert result.trace is None

    def test_trace_accounts_all_execution(self):
        task = lc_task(10, 3)
        ts = TaskSet([task])
        result = UniprocessorSim(ts, EDFPolicy()).run(
            NominalScenario(), 50, record_trace=True
        )
        assert result.trace is not None
        # 5 jobs of 3 units each within [0, 50)
        assert result.trace.execution_time_of(task.name) == 15
        assert result.trace.busy_time() == 15

    def test_trace_shows_hi_mode_execution(self):
        task = hc_task(20, 4, 9)
        ts = TaskSet([task])
        result = UniprocessorSim(ts, EDFVDPolicy(1.0)).run(
            FixedOverrunScenario({task.task_id}, 0), 40, record_trace=True
        )
        assert result.trace is not None
        assert result.trace.hi_mode_time() > 0
        # The overrun job executes 9 units total: 4 in LO + 5 in HI.
        first_job_time = result.trace.execution_time_of(task.name)
        assert first_job_time >= 9

    def test_preemption_visible_in_trace(self):
        long = lc_task(50, 20, name="long")
        short = lc_task(10, 2, name="short")
        result = UniprocessorSim(TaskSet([long, short]), EDFPolicy()).run(
            NominalScenario(), 50, record_trace=True
        )
        assert result.trace is not None
        assert len(result.trace.segments_of("long")) > 1
