"""Property-based tests of simulator invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.model import Criticality, MCTask, TaskSet
from repro.sim import (
    AMCPolicy,
    EDFPolicy,
    EDFVDPolicy,
    RandomScenario,
    UniprocessorSim,
)
from repro.analysis.fixed_priority import deadline_monotonic_order, priority_map

HORIZON = 2_000


@st.composite
def small_tasksets(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    tasks = []
    for _ in range(n):
        period = draw(st.integers(min_value=5, max_value=100))
        high = draw(st.booleans())
        wcet_lo = draw(st.integers(min_value=1, max_value=max(1, period // 3)))
        wcet_hi = (
            draw(st.integers(min_value=wcet_lo, max_value=max(wcet_lo, period // 2)))
            if high
            else wcet_lo
        )
        deadline = draw(st.integers(min_value=wcet_hi, max_value=period))
        tasks.append(
            MCTask(
                period=period,
                criticality=Criticality.HC if high else Criticality.LC,
                wcet_lo=wcet_lo,
                wcet_hi=wcet_hi,
                deadline=deadline,
            )
        )
    return TaskSet(tasks)


def _policies_for(taskset):
    policies = [EDFPolicy(), EDFVDPolicy(scaling_factor=0.8)]
    order = deadline_monotonic_order(taskset)
    policies.append(AMCPolicy(priority_map(order)))
    return policies


@given(small_tasksets(), st.integers(min_value=0, max_value=2**31))
@settings(max_examples=40, deadline=None)
def test_accounting_invariants(taskset, seed):
    """Bookkeeping holds for every policy under randomized execution."""
    scenario_rng = np.random.default_rng(seed)
    for policy in _policies_for(taskset):
        scenario = RandomScenario(
            np.random.default_rng(scenario_rng.integers(2**63)),
            overrun_prob=0.3,
            random_phases=True,
        )
        sim = UniprocessorSim(taskset, policy)
        result = sim.run(scenario, HORIZON, record_trace=True)

        # Completions never exceed releases; dropped LC jobs were released.
        assert result.jobs_completed <= result.jobs_released
        assert result.lc_jobs_dropped <= result.jobs_released

        # The processor cannot do more work than time available.
        assert result.trace.busy_time() <= HORIZON

        # Each (task, job) pair misses at most once.
        miss_keys = [(m.task_name, m.job_index) for m in result.misses]
        assert len(miss_keys) == len(set(miss_keys))

        # Mode switches are strictly inside the horizon and ordered.
        switches = result.mode_switches
        assert switches == sorted(switches)
        assert all(0 < s <= HORIZON for s in switches)

        # Mode-aware runtimes pair switches with resets or stay in HI.
        if policy.mode_aware:
            assert result.idle_resets <= len(switches) + 1
        else:
            assert switches == []


@given(small_tasksets(), st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_lc_misses_after_switch_never_violations(taskset, seed):
    """MissRecord classification matches the MC-correctness definition."""
    policy = EDFVDPolicy(scaling_factor=0.7)
    scenario = RandomScenario(
        np.random.default_rng(seed), overrun_prob=0.5, random_phases=False
    )
    result = UniprocessorSim(taskset, policy).run(scenario, HORIZON)
    for miss in result.misses:
        if miss.criticality_high:
            assert miss.is_violation
        elif miss.high_mode_at_miss:
            assert not miss.is_violation


@given(small_tasksets())
@settings(max_examples=25, deadline=None)
def test_nominal_vs_reservation_consistency(taskset):
    """Under nominal execution, mode-aware runtimes never switch and thus
    behave identically w.r.t. MC violations to plain EDF at LO budgets."""
    from repro.sim import NominalScenario

    edfvd = UniprocessorSim(taskset, EDFVDPolicy(1.0)).run(
        NominalScenario(), HORIZON
    )
    assert edfvd.mode_switches == []
    assert edfvd.lc_jobs_dropped == 0
