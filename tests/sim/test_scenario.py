"""Unit tests for simulator scenarios."""

import numpy as np
import pytest

from repro.sim import FixedOverrunScenario, NominalScenario, RandomScenario

from tests.conftest import hc_task, lc_task


class TestNominal:
    def test_everything_runs_lo_budget(self):
        scenario = NominalScenario()
        h, l = hc_task(100, 10, 30), lc_task(50, 5)
        for idx in range(5):
            assert scenario.execution_time(h, idx) == 10
            assert scenario.execution_time(l, idx) == 5

    def test_synchronous_phases(self):
        assert NominalScenario().phase(hc_task(100, 1, 2)) == 0


class TestFixedOverrun:
    def test_all_hc_overrun(self):
        scenario = FixedOverrunScenario(None)
        h = hc_task(100, 10, 30)
        assert scenario.execution_time(h, 0) == 30
        assert scenario.execution_time(lc_task(50, 5), 0) == 5

    def test_selected_tasks_only(self):
        a, b = hc_task(100, 10, 30, name="a"), hc_task(100, 10, 30, name="b")
        scenario = FixedOverrunScenario({a.task_id})
        assert scenario.execution_time(a, 0) == 30
        assert scenario.execution_time(b, 0) == 10

    def test_single_job_overrun(self):
        h = hc_task(100, 10, 30)
        scenario = FixedOverrunScenario({h.task_id}, overrun_job_index=2)
        assert scenario.execution_time(h, 0) == 10
        assert scenario.execution_time(h, 2) == 30
        assert scenario.execution_time(h, 3) == 10

    def test_describe_varies(self):
        assert "all-HC" in FixedOverrunScenario(None).describe()
        assert "job 2" in FixedOverrunScenario(None, 2).describe()


class TestRandomScenario:
    def test_bounds_respected(self):
        scenario = RandomScenario(np.random.default_rng(0), overrun_prob=0.5)
        h, l = hc_task(100, 10, 30), lc_task(50, 5)
        for idx in range(50):
            assert 1 <= scenario.execution_time(h, idx) <= 30
            assert 1 <= scenario.execution_time(l, idx) <= 5

    def test_memoized_per_job(self):
        scenario = RandomScenario(np.random.default_rng(1))
        h = hc_task(100, 10, 30)
        assert scenario.execution_time(h, 3) == scenario.execution_time(h, 3)

    def test_overruns_happen_at_high_probability(self):
        scenario = RandomScenario(np.random.default_rng(2), overrun_prob=1.0)
        h = hc_task(100, 10, 30)
        draws = [scenario.execution_time(h, i) for i in range(20)]
        assert all(d > 10 for d in draws)

    def test_zero_probability_never_overruns(self):
        scenario = RandomScenario(np.random.default_rng(3), overrun_prob=0.0)
        h = hc_task(100, 10, 30)
        assert all(scenario.execution_time(h, i) <= 10 for i in range(20))

    def test_random_phases_within_period(self):
        scenario = RandomScenario(np.random.default_rng(4), random_phases=True)
        h = hc_task(100, 10, 30)
        phase = scenario.phase(h)
        assert 0 <= phase < 100
        assert scenario.phase(h) == phase  # stable per task

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            RandomScenario(np.random.default_rng(), overrun_prob=1.5)
