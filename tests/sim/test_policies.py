"""Unit tests for simulator scheduling policies."""

import pytest

from repro.sim import AMCPolicy, EDFPolicy, EDFVDPolicy

from tests.conftest import hc_task, lc_task


class TestEDFPolicy:
    def test_orders_by_absolute_deadline(self):
        policy = EDFPolicy()
        early = lc_task(100, 1, deadline=50)
        late = lc_task(100, 1, deadline=80)
        assert policy.priority_key(early, 0, False) < policy.priority_key(
            late, 0, False
        )

    def test_not_mode_aware(self):
        assert not EDFPolicy.mode_aware
        assert not EDFPolicy.drops_lc_on_switch


class TestEDFVDPolicy:
    def test_scaling_shrinks_hc_deadline_in_lo(self):
        policy = EDFVDPolicy(scaling_factor=0.5)
        h = hc_task(100, 10, 30)
        l = lc_task(100, 10)
        key_h = policy.priority_key(h, 0, False)
        key_l = policy.priority_key(l, 0, False)
        assert key_h < key_l  # 50 < 100

    def test_hi_mode_uses_real_deadlines(self):
        policy = EDFVDPolicy(scaling_factor=0.5)
        h = hc_task(100, 10, 30)
        assert policy.priority_key(h, 0, True)[0] == pytest.approx(100.0)

    def test_explicit_virtual_deadline_map(self):
        h = hc_task(100, 10, 30)
        policy = EDFVDPolicy(virtual_deadlines={h.task_id: 40})
        assert policy.priority_key(h, 10, False)[0] == pytest.approx(50.0)

    def test_lc_unaffected_by_scaling(self):
        policy = EDFVDPolicy(scaling_factor=0.3)
        l = lc_task(100, 10)
        assert policy.priority_key(l, 0, False)[0] == pytest.approx(100.0)

    def test_invalid_scaling_factor(self):
        with pytest.raises(ValueError):
            EDFVDPolicy(scaling_factor=0.0)
        with pytest.raises(ValueError):
            EDFVDPolicy(scaling_factor=1.5)

    def test_drops_lc(self):
        assert EDFVDPolicy(1.0).drops_lc_on_switch


class TestAMCPolicy:
    def test_fixed_priority_ordering(self):
        a, b = hc_task(10, 1, 2), lc_task(20, 1)
        policy = AMCPolicy({a.task_id: 1, b.task_id: 0})
        assert policy.priority_key(b, 0, False) < policy.priority_key(a, 0, False)

    def test_priority_constant_across_modes(self):
        a = hc_task(10, 1, 2)
        policy = AMCPolicy({a.task_id: 0})
        assert policy.priority_key(a, 0, False)[0] == policy.priority_key(
            a, 0, True
        )[0]

    def test_missing_task_raises(self):
        a, b = hc_task(10, 1, 2), lc_task(20, 1)
        policy = AMCPolicy({a.task_id: 0})
        with pytest.raises(KeyError, match="missing from priority map"):
            policy.priority_key(b, 0, False)

    def test_empty_map_rejected(self):
        with pytest.raises(ValueError):
            AMCPolicy({})
