"""Prefilter bank exactness: every settle equals the full partition outcome.

The bank's contract is *reject-only and exact*: a filter may settle a set
only when :func:`repro.core.allocator.partition` provably fails for it.
These tests verify the contract both on crafted boundary cases (sum just
above/below ``m``, a lone infeasible task) and empirically on random
generated buckets across strategies × tests × service models — every
settled set is re-partitioned the slow way and must fail.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import get_test
from repro.analysis.prefilter import (
    SUM_MARGIN,
    DemandPreScreen,
    default_prefilter_bank,
)
from repro.analysis.context import DemandContext
from repro.core import get_strategy, partition
from repro.generator import GeneratorConfig, MCTaskSetGenerator
from repro.model import MCTask, TaskSet, TaskSetBatch
from repro.util.rng import derive_rng


def generated_batch(
    m=2, deadline_type="implicit", service=None, count=30, label="pf"
):
    gen = MCTaskSetGenerator(GeneratorConfig(m=m, deadline_type=deadline_type))
    columns = []
    for k in range(count):
        u_hh = 0.2 + (k % 8) * 0.1
        u_lh = min(u_hh, 0.1 + (k % 4) * 0.1)
        u_ll = 0.1 + (k % 6) * 0.12
        cols = gen.generate_columns(
            derive_rng(label, deadline_type, k), u_hh, u_lh, u_ll
        )
        if cols is not None:
            columns.append(cols)
    return TaskSetBatch(columns, service_model=service)


class TestSumFilters:
    def test_sum_lo_fires_only_above_margin(self):
        # m=1: two tasks at u=0.6 sum to 1.2 > 1 + margin -> certain reject.
        heavy = TaskSet(
            [
                MCTask(period=10, criticality="LC", wcet_lo=6, wcet_hi=6),
                MCTask(period=10, criticality="LC", wcet_lo=6, wcet_hi=6),
            ]
        )
        light = TaskSet(
            [MCTask(period=10, criticality="LC", wcet_lo=6, wcet_hi=6)]
        )
        batch = TaskSetBatch.from_tasksets([heavy, light])
        report = default_prefilter_bank().apply(batch, 1, get_test("ey"))
        assert report.settled[0] == "sum-lo"
        assert report.settled[1] is None
        assert report.counts["sum-lo"] == 1

    def test_sum_hi_fires_for_hc_overload(self):
        overload = TaskSet(
            [
                MCTask(period=10, criticality="HC", wcet_lo=2, wcet_hi=7),
                MCTask(period=10, criticality="HC", wcet_lo=2, wcet_hi=7),
            ]
        )
        batch = TaskSetBatch.from_tasksets([overload])
        report = default_prefilter_bank().apply(batch, 1, get_test("ey"))
        assert report.settled[0] == "sum-hi"

    @pytest.mark.parametrize("test_name", ["edf-vd", "ey", "ecdf", "amc-max"])
    @pytest.mark.parametrize("strategy_name", ["ca-udp", "cu-udp", "ca-f-f"])
    def test_every_settle_is_a_true_partition_failure(
        self, test_name, strategy_name
    ):
        deadline_type = "implicit" if test_name == "edf-vd" else "constrained"
        batch = generated_batch(m=2, deadline_type=deadline_type)
        test = get_test(test_name)
        report = default_prefilter_bank().apply(batch, 2, test)
        fired = [i for i, s in enumerate(report.settled) if s is not None]
        for i in fired:
            result = partition(
                batch.taskset(i), 2, test, get_strategy(strategy_name)
            )
            assert not result.success

    def test_margin_constant_is_conservative(self):
        # The soundness argument needs the margin to dominate the tests'
        # acceptance epsilon for any realistic core count.
        assert SUM_MARGIN >= 50 * 1e-9


class TestLoneTaskFilter:
    def test_lone_infeasible_task_settles_set(self):
        # C_H > D: unschedulable alone under every constrained-deadline
        # test, hence under any partition of any superset.
        doomed = MCTask(
            period=100, criticality="HC", wcet_lo=10, wcet_hi=60, deadline=40
        )
        filler = MCTask(period=100, criticality="LC", wcet_lo=5, wcet_hi=5)
        batch = TaskSetBatch.from_tasksets([TaskSet([doomed, filler])])
        for test_name in ("ey", "ecdf", "amc-max"):
            test = get_test(test_name)
            report = default_prefilter_bank().apply(batch, 4, test)
            assert report.settled[0] == "lone-task"
            result = partition(batch.taskset(0), 4, test, get_strategy("cu-udp"))
            assert not result.success

    def test_monotonicity_opt_out_disables_filter(self):
        doomed = MCTask(
            period=100, criticality="HC", wcet_lo=10, wcet_hi=60, deadline=40
        )
        batch = TaskSetBatch.from_tasksets([TaskSet([doomed])])
        test = get_test("ey")
        test.is_subset_monotone = False
        report = default_prefilter_bank().apply(batch, 4, test)
        assert report.settled[0] is None


class TestDemandPreScreenMirrorsContext:
    """Screen verdicts must equal context probe verdicts wherever decided."""

    @pytest.mark.parametrize("test_name", ["ey", "ecdf"])
    def test_screen_agrees_with_context_probes(self, test_name):
        test = get_test(test_name)
        screen = test.batch_screen()
        assert isinstance(screen, DemandPreScreen)
        batch = generated_batch(m=2, deadline_type="implicit", label="screen")
        rng = np.random.default_rng(7)
        for i in range(len(batch)):
            taskset = batch.taskset(i)
            context = test.make_context(None)
            a = b = c = 0.0
            implicit = True
            for task in taskset:
                ca, cb, cc = a, b, c
                if task.is_high:
                    cb += task.utilization_lo
                    cc += task.utilization_hi
                else:
                    ca += task.utilization_lo
                verdict = screen.decide(
                    ca, cb, cc, 0.0, implicit and task.implicit_deadline
                )
                probed = context.probe(task)
                if verdict is not None:
                    assert verdict == probed
                if probed and rng.random() < 0.9:
                    context.commit(task)
                    a, b, c = ca, cb, cc
                    implicit = implicit and task.implicit_deadline
