"""Property-based tests for the dbf machinery (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.analysis.dbf import DemandScenario, HorizonExceeded, hi_mode_dbf, sporadic_dbf
from repro.model import Criticality, MCTask, TaskSet


@st.composite
def hc_with_vd(draw):
    """An HC task together with a legal virtual deadline."""
    period = draw(st.integers(min_value=5, max_value=60))
    wcet_lo = draw(st.integers(min_value=1, max_value=max(1, period // 2)))
    wcet_hi = draw(st.integers(min_value=wcet_lo, max_value=period))
    deadline = draw(st.integers(min_value=wcet_hi, max_value=period))
    vd = draw(st.integers(min_value=wcet_lo, max_value=deadline))
    task = MCTask(
        period=period,
        criticality=Criticality.HC,
        wcet_lo=wcet_lo,
        wcet_hi=wcet_hi,
        deadline=deadline,
    )
    return task, vd


@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=0, max_value=300),
)
def test_sporadic_dbf_monotone_and_bounded(wcet, deadline, period, length):
    value = sporadic_dbf(wcet, deadline, period, length)
    assert value >= 0
    assert value <= sporadic_dbf(wcet, deadline, period, length + 1)
    # linear upper bound used for the horizon argument
    u = wcet / period
    assert value <= u * length + u * max(0, period - deadline) + 1e-9


@given(hc_with_vd(), st.integers(min_value=0, max_value=400))
def test_hi_mode_dbf_monotone(pair, length):
    task, vd = pair
    assert hi_mode_dbf(task, vd, length) <= hi_mode_dbf(task, vd, length + 1)


@given(hc_with_vd(), st.integers(min_value=0, max_value=400))
def test_hi_mode_dbf_nonnegative_and_bounded(pair, length):
    task, vd = pair
    value = hi_mode_dbf(task, vd, length)
    assert value >= 0
    # never exceeds the unreduced step function
    residual = task.deadline - vd
    raw = sporadic_dbf(task.wcet_hi, residual, task.period, length) if residual else (
        (length // task.period + 1) * task.wcet_hi
    )
    assert value <= raw + task.wcet_hi  # crude envelope


@given(hc_with_vd())
@settings(max_examples=60)
def test_shrinking_vd_never_helps_lo_never_hurts_hi(pair):
    task, vd = pair
    if vd <= task.wcet_lo:
        return
    ts = TaskSet([task])
    for length in range(0, 3 * task.period, 7):
        loose = DemandScenario(ts, {task.task_id: vd})
        tight = DemandScenario(ts, {task.task_id: vd - 1})
        assert tight.lo_demand_at(length) >= loose.lo_demand_at(length)
        assert tight.hi_demand_at(length) <= loose.hi_demand_at(length)


@given(st.lists(hc_with_vd(), min_size=1, max_size=4))
@settings(max_examples=40)
def test_scalar_and_vector_paths_agree(pairs):
    tasks = TaskSet([p[0] for p in pairs])
    vd = {p[0].task_id: p[1] for p in pairs}
    scenario = DemandScenario(tasks, vd)
    for length in range(0, 150, 11):
        manual = sum(hi_mode_dbf(t, vd[t.task_id], length) for t in tasks)
        assert scenario.hi_demand_at(length, refine=False) == manual


@given(st.lists(hc_with_vd(), min_size=1, max_size=4))
@settings(max_examples=40)
def test_refinement_sound_and_no_larger(pairs):
    tasks = TaskSet([p[0] for p in pairs])
    vd = {p[0].task_id: p[1] for p in pairs}
    scenario = DemandScenario(tasks, vd)
    for length in range(0, 150, 13):
        refined = scenario.hi_demand_at(length, refine=True)
        plain = scenario.hi_demand_at(length, refine=False)
        assert 0 <= refined <= plain


@given(st.lists(hc_with_vd(), min_size=1, max_size=4))
@settings(max_examples=30)
def test_violation_reporting_consistent(pairs):
    """If a violation is reported, demand indeed exceeds supply there.

    The exact-point guarantee only applies below the utilization
    short-circuit (above 1 the reported length is just a marker).
    """
    tasks = TaskSet([p[0] for p in pairs])
    if sum(t.utilization_hi for t in tasks) > 1.0:
        return
    vd = {p[0].task_id: p[1] for p in pairs}
    scenario = DemandScenario(tasks, vd)
    try:
        violation = scenario.hi_violation(refine=False)
    except HorizonExceeded:
        return
    if violation is not None:
        assert scenario.hi_demand_at(violation) > violation
