"""Unit tests for repro.analysis.dbf."""

import pytest

from repro.analysis.dbf import (
    DemandScenario,
    HorizonExceeded,
    hi_mode_dbf,
    sporadic_dbf,
)
from repro.model import TaskSet

from tests.conftest import hc_task, lc_task


class TestSporadicDbf:
    def test_before_first_deadline(self):
        assert sporadic_dbf(3, 10, 20, 9) == 0

    def test_at_first_deadline(self):
        assert sporadic_dbf(3, 10, 20, 10) == 3

    def test_counts_full_jobs_only(self):
        # deadlines at 10, 30, 50 for (C=3, D=10, T=20)
        assert sporadic_dbf(3, 10, 20, 29) == 3
        assert sporadic_dbf(3, 10, 20, 30) == 6
        assert sporadic_dbf(3, 10, 20, 50) == 9

    def test_implicit_deadline(self):
        assert sporadic_dbf(5, 20, 20, 40) == 10


class TestHiModeDbf:
    def test_lc_contributes_nothing(self):
        assert hi_mode_dbf(lc_task(20, 5), 20, 100) == 0

    def test_before_residual_deadline(self):
        task = hc_task(20, 4, 8)
        # Dv = 12 -> residual D - Dv = 8
        assert hi_mode_dbf(task, 12, 7) == 0

    def test_carry_over_reduction_at_residual(self):
        task = hc_task(20, 4, 8)
        # at l = residual: one job, full reduction C_L
        assert hi_mode_dbf(task, 12, 8) == 8 - 4

    def test_ramp_then_plateau(self):
        task = hc_task(20, 4, 8)
        # residual 8; at l=9 residue 1 -> reduction 3; at l=12 residue 4 -> 0
        assert hi_mode_dbf(task, 12, 9) == 8 - 3
        assert hi_mode_dbf(task, 12, 12) == 8
        assert hi_mode_dbf(task, 12, 20) == 8

    def test_second_job(self):
        task = hc_task(20, 4, 8)
        # residual 8: jumps at 8, 28, ...
        assert hi_mode_dbf(task, 12, 28) == 16 - 4
        assert hi_mode_dbf(task, 12, 32) == 16

    def test_full_virtual_deadline_gives_immediate_demand(self):
        task = hc_task(20, 4, 8)
        # Dv = D: residual 0, carry-over due immediately with C_H - C_L
        assert hi_mode_dbf(task, 20, 0) == 4


class TestDemandScenarioLO:
    def test_trivial_set_passes(self, simple_mixed_taskset):
        assert DemandScenario(simple_mixed_taskset).lo_violation() is None

    def test_overloaded_set_fails(self, heavy_taskset):
        # LO utilization == 1.0 exactly here; build a worse one
        ts = TaskSet(
            [lc_task(10, 6, name="a"), lc_task(10, 6, name="b")]
        )
        violation = DemandScenario(ts).lo_violation()
        assert violation is not None

    def test_virtual_deadline_increases_lo_demand(self):
        task = hc_task(100, 40, 60)
        background = lc_task(10, 5)
        loose = DemandScenario(TaskSet([task, background]))
        tight = DemandScenario(
            TaskSet([task, background]), {task.task_id: 41}
        )
        assert loose.lo_violation() is None
        # With Dv=41 the HC demand of 40 plus four background jobs exceed
        # the l=41 window.
        assert tight.lo_violation() == 41

    def test_invalid_virtual_deadline_rejected(self):
        task = hc_task(100, 40, 60)
        with pytest.raises(ValueError, match="virtual deadline"):
            DemandScenario(TaskSet([task]), {task.task_id: 20})
        with pytest.raises(ValueError, match="virtual deadline"):
            DemandScenario(TaskSet([task]), {task.task_id: 101})

    def test_demand_at_matches_manual_sum(self):
        a = hc_task(20, 4, 8, name="a")
        b = lc_task(30, 6, name="b")
        scenario = DemandScenario(TaskSet([a, b]), {a.task_id: 10})
        # At l=40: a contributes floor((40-10)/20)+1 = 2 jobs of 4;
        # b contributes floor((40-30)/30)+1 = 1 job of 6.
        assert scenario.lo_demand_at(40) == 2 * 4 + 6


class TestDemandScenarioHI:
    def test_no_hc_tasks_vacuously_passes(self):
        ts = TaskSet([lc_task(10, 9, name="busy")])
        assert DemandScenario(ts).hi_violation() is None

    def test_full_deadlines_fail_when_gap_large(self):
        # Dv = D leaves the carry-over C_H - C_L due at l = 0.
        task = hc_task(100, 10, 60)
        scenario = DemandScenario(TaskSet([task]))
        assert scenario.hi_violation() == 0

    def test_shrinking_vd_fixes_hi(self):
        task = hc_task(100, 10, 60)
        scenario = DemandScenario(TaskSet([task]), {task.task_id: 40})
        assert scenario.hi_violation() is None

    def test_hi_utilization_above_one_fails(self):
        a = hc_task(10, 3, 6, name="a")
        b = hc_task(10, 3, 6, name="b")
        scenario = DemandScenario(TaskSet([a, b]), {a.task_id: 5, b.task_id: 5})
        assert scenario.hi_violation() is not None

    def test_refinement_never_increases_demand(self):
        a = hc_task(20, 4, 8, name="a")
        b = hc_task(30, 5, 12, name="b")
        scenario = DemandScenario(
            TaskSet([a, b]), {a.task_id: 10, b.task_id: 15}
        )
        for length in range(0, 120, 3):
            assert scenario.hi_demand_at(length, refine=True) <= (
                scenario.hi_demand_at(length, refine=False)
            )

    def test_refined_verdict_at_least_as_permissive(self):
        a = hc_task(20, 4, 8, name="a")
        b = hc_task(30, 5, 12, name="b")
        scenario = DemandScenario(
            TaskSet([a, b]), {a.task_id: 10, b.task_id: 15}
        )
        if scenario.hi_violation(refine=False) is None:
            assert scenario.hi_violation(refine=True) is None


class TestHorizon:
    @staticmethod
    def _near_saturated() -> DemandScenario:
        # U_LO = 0.98 with shortened virtual deadlines: the classical bound
        # sum(u*(T-d))/(1-U) is ~12400, far above the tiny cap.
        ts = TaskSet(
            [
                hc_task(500, 245, 250, name="a"),
                hc_task(500, 245, 250, name="b"),
            ]
        )
        return DemandScenario(
            ts, {t.task_id: 246 for t in ts}, horizon_cap=10
        )

    def test_small_cap_raises(self):
        with pytest.raises(HorizonExceeded):
            self._near_saturated().lo_violation()

    def test_schedulable_wrapper_conservative_on_cap(self):
        assert self._near_saturated().schedulable() is False
