"""Differential suite for the block demand kernel (PR 10).

The block kernel relaxes the trajectory contract one notch: instead of
one exact HI probe per single-task shrink, :func:`plan_block` walks the
ranked candidates against a virtual copy of the assignment and commits
the whole block of boundary jumps under a single probe.  What must hold
— and what this suite pins — is the *verdict* contract: accept/reject
flags, acceptance ratios and figure outputs are identical to the
forward/qpa/vec kernels, every committed jump lands at or above the
scalar kernel's V* boundary, and every committed joint assignment is
LO-feasible outright.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import dbf
from repro.analysis.dbf import (
    DemandScenario,
    HorizonExceeded,
    demand_kernel,
    set_demand_kernel,
)
from repro.analysis.dbf_block import (
    block_counters,
    plan_block,
    reset_block_counters,
)
from repro.analysis.vdtuning import (
    DemandEngine,
    _rank_candidates,
    run_tuning_stages,
)
from repro.degradation.service import parse_service_model
from repro.model import Criticality, MCTask, TaskSet

KERNELS = ("forward", "qpa", "vec", "block")

SERVICES = ("full-drop", "imprecise:0.5", "elastic:1.5")

CHAINS = (
    (("steepest", False),),
    (("ratio", True), ("steepest", True), ("steepest", False)),
)


def run_with_kernel(kernel, fn):
    previous = set_demand_kernel(kernel)
    try:
        return fn()
    finally:
        set_demand_kernel(previous)


# -- task-set generation -----------------------------------------------------

@st.composite
def mc_taskset(draw):
    """A small random dual-criticality task set (the vec suite's shape)."""
    n = draw(st.integers(min_value=1, max_value=5))
    tasks = []
    for _ in range(n):
        period = draw(st.integers(min_value=4, max_value=60))
        high = draw(st.booleans())
        wcet_lo = draw(st.integers(min_value=1, max_value=max(1, period // 2)))
        if high:
            wcet_hi = draw(st.integers(min_value=wcet_lo, max_value=period))
            floor = max(wcet_hi, wcet_lo)
        else:
            wcet_hi = wcet_lo
            floor = wcet_lo
        deadline = (
            period
            if draw(st.booleans())
            else draw(st.integers(min_value=floor, max_value=period))
        )
        tasks.append(
            MCTask(
                period=period,
                criticality=Criticality.HC if high else Criticality.LC,
                wcet_lo=wcet_lo,
                wcet_hi=wcet_hi,
                deadline=deadline,
            )
        )
    return TaskSet(tasks)


def attach(ts, service):
    if service == "full-drop":
        return ts
    return TaskSet(list(ts), service_model=parse_service_model(service))


# -- registration ------------------------------------------------------------

class TestKernelRegistration:
    def test_round_trip(self):
        previous = set_demand_kernel("block")
        try:
            assert demand_kernel() == "block"
        finally:
            set_demand_kernel(previous)
        assert demand_kernel() == previous

    def test_block_in_registry(self):
        assert "block" in dbf._KERNELS

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown demand kernel"):
            set_demand_kernel("blocc")


# -- four-kernel verdict equivalence ----------------------------------------

class TestVerdictEquivalence:
    @given(mc_taskset(), st.sampled_from(SERVICES))
    @settings(max_examples=60, deadline=None)
    def test_tuning_verdicts_identical(self, ts, service):
        """run_tuning_stages agrees on the *verdict* under all four
        kernels, fresh and memo-backed engines, both stage chains.

        Unlike the vec suite this deliberately does NOT compare iteration
        counts or the tuned deadlines — diverging there is the block
        kernel's contract.  A block-accepted assignment is instead
        checked for LO feasibility outright.
        """
        tagged = attach(ts, service)
        for stages in CHAINS:
            verdicts = []
            block_outcomes = []
            for kernel in KERNELS:
                for memo in (None, {}):
                    def run():
                        engine = DemandEngine(tagged, 100_000, memo=memo)
                        return run_tuning_stages(
                            tagged, stages, 100_000, engine=engine
                        )
                    outcome = run_with_kernel(kernel, run)
                    verdicts.append(outcome.schedulable)
                    if kernel == "block":
                        block_outcomes.append(outcome)
            assert len(set(verdicts)) == 1
            for outcome in block_outcomes:
                if not outcome.schedulable:
                    continue
                try:
                    violation = DemandScenario(
                        tagged, outcome.virtual_deadlines
                    ).lo_violation()
                except HorizonExceeded:
                    continue
                assert violation is None


# -- the joint-jump soundness property ---------------------------------------

class TestPlanBlockSoundness:
    @given(
        mc_taskset(),
        st.sampled_from(SERVICES),
        st.sampled_from(["steepest", "ratio"]),
        st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_commits_never_overshoot_scalar_vstar(
        self, ts, service, policy, refine
    ):
        """Every planned jump lands at or above the scalar kernel's V*
        boundary at the pre-jump assignment, and the joint post-jump
        assignment is LO-feasible outright.

        The oracle is deliberately independent machinery: a fresh engine
        under the qpa kernel, whose ``lo_min_deadline`` takes the
        own-half *bisection* path instead of the closed-form vstar the
        block planner uses.
        """
        tagged = attach(ts, service)
        high = [t for t in tagged if t.is_high]
        if not high:
            return
        vd = {t.task_id: t.deadline for t in high}
        by_id = {t.task_id: t for t in high}

        def plan():
            engine = DemandEngine(tagged, 100_000, memo={})
            try:
                violation, demand = engine.hi_check(vd, refine)
            except HorizonExceeded:
                return None
            if violation is None:
                return None
            ranked = _rank_candidates(
                high, vd, violation, demand - violation, policy, engine
            )
            return plan_block(engine, vd, ranked, set(), violation)

        commits = run_with_kernel("block", plan)
        if not commits:
            return

        def oracle_floors():
            oracle = DemandEngine(tagged, 100_000, memo={})
            return {
                tid: oracle.lo_min_deadline(vd, by_id[tid]) for tid in commits
            }

        floors = run_with_kernel("qpa", oracle_floors)
        for tid, v_new in commits.items():
            v_star = floors[tid]
            assert v_star is not None, (
                f"block jumped task {tid} the scalar oracle calls infeasible"
            )
            assert v_new >= v_star, (
                f"block jump for task {tid} overshot the scalar V* "
                f"boundary: {v_new} < {v_star}"
            )
            assert v_new < vd[tid]

        joint = dict(vd)
        joint.update(commits)

        def joint_feasible():
            try:
                return DemandScenario(tagged, joint).lo_violation()
            except HorizonExceeded:
                return None

        assert run_with_kernel("forward", joint_feasible) is None


# -- diagnostics -------------------------------------------------------------

class TestBlockCounters:
    def test_counters_tick_and_reset(self):
        """A demand-heavy ensemble drives the planner: jumps commit,
        settled tasks accumulate, and reset zeroes the scope."""
        from repro.analysis.ey import EYTest
        from repro.generator import GeneratorConfig, MCTaskSetGenerator
        from repro.util.rng import derive_rng

        generator = MCTaskSetGenerator(
            GeneratorConfig(m=1, p_high=0.5, deadline_type="constrained")
        )
        sets = []
        index = 0
        while len(sets) < 40 and index < 1000:
            ts = generator.generate(
                derive_rng("block-counters", index), 0.35, 0.3, 0.45
            )
            index += 1
            if ts is not None:
                sets.append(ts)

        reset_block_counters()
        assert all(value == 0 for value in block_counters().values())

        def analyse():
            test = EYTest()
            return [test.is_schedulable(ts) for ts in sets]

        verdicts_block = run_with_kernel("block", analyse)
        counters = block_counters()
        assert counters["block-jumps"] > 0
        assert counters["block-settled"] >= counters["block-jumps"]

        # Verdict parity on the same ensemble, qpa as the oracle.
        verdicts_qpa = run_with_kernel("qpa", analyse)
        assert verdicts_block == verdicts_qpa

        reset_block_counters()
        assert all(value == 0 for value in block_counters().values())


# -- figure-level differential (slow tier) -----------------------------------

@pytest.mark.slow
class TestFigureVerdictParity:
    """fig3–fig7 at miniature scale: the full figure outputs — acceptance
    ratios, sample counts and WAR tables — must be identical under all
    four kernels.  This is the verdict level the shard store and the
    verdict cache key on."""

    @pytest.mark.parametrize(
        "name,kwargs",
        [
            ("fig3", {}),
            ("fig4", {}),
            ("fig5", {}),
            ("fig6a", {"ph_values": (0.3, 0.7)}),
            ("fig6b", {"ph_values": (0.3, 0.7)}),
            ("fig7a", {"deg_values": (0.25, 0.75)}),
            ("fig7b", {"deg_values": (1.5,)}),
        ],
    )
    def test_figures_verdict_identical(self, name, kwargs):
        from repro.experiments import run_figure
        from repro.experiments.export import figure_result_to_dict

        results = {}
        for kernel in KERNELS:
            results[kernel] = run_with_kernel(
                kernel,
                lambda: figure_result_to_dict(
                    run_figure(name, samples=2, m_values=(2,), **kwargs)
                ),
            )
        reference = results["forward"]
        for kernel in KERNELS[1:]:
            assert results[kernel] == reference, (
                f"{name}: {kernel} kernel diverged from the forward oracle"
            )
