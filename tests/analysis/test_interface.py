"""Unit tests for the test registry and AnalysisResult."""

import pytest

from repro.analysis import get_test, registered_tests
from repro.analysis.interface import AnalysisResult


class TestRegistry:
    def test_all_expected_tests_registered(self):
        names = registered_tests()
        for expected in (
            "edf-vd",
            "ey",
            "ecdf",
            "amc-rtb",
            "amc-max",
            "amc-rtb-opa",
            "amc-max-opa",
            "edf-reservation",
            "edf-lo",
        ):
            assert expected in names

    def test_get_test_instantiates_fresh(self):
        a, b = get_test("ecdf"), get_test("ecdf")
        assert a is not b
        assert a.name == "ecdf"

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="known tests"):
            get_test("magic")


class TestAnalysisResult:
    def test_truthiness(self):
        assert AnalysisResult(True)
        assert not AnalysisResult(False)

    def test_defaults(self):
        result = AnalysisResult(True)
        assert result.virtual_deadlines == {}
        assert result.priorities == {}
        assert result.scaling_factor == 1.0
        assert result.detail == ""
