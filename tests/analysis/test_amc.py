"""Unit tests for the AMC-rtb / AMC-max analyses."""

import pytest

from repro.analysis import AMCmaxTest, AMCrtbTest
from repro.analysis.amc import amc_max_response, amc_rtb_response
from repro.model import TaskSet
from repro.util import derive_rng

from tests.conftest import hc_task, lc_task


class TestRtbRecurrence:
    def test_isolated_hc_task(self):
        task = hc_task(100, 10, 30)
        assert amc_rtb_response(task, []) == 30

    def test_hc_interference_at_hi_budget(self):
        hp = hc_task(10, 2, 4, name="hp")
        task = hc_task(50, 5, 10, name="lo")
        # R = 10 + ceil(R/10)*4 -> R = 10+4k with k=ceil(R/10): R=18? try:
        # R0=10 -> 10+4*1=14 -> ceil(14/10)=2 -> 10+8=18 -> ceil(18/10)=2 -> 18.
        assert amc_rtb_response(task, [hp]) == 18

    def test_lc_interference_frozen_at_r_lo(self):
        hp = lc_task(10, 3, name="hp")
        task = hc_task(60, 6, 12, name="t")
        # R_LO: 6 + ceil(R/10)*3 -> 6+3=9 -> 6+3=9 (ceil(9/10)=1) => 9.
        # HI: 12 + ceil(9/10)*3 = 15 (no further LC releases counted).
        assert amc_rtb_response(task, [hp]) == 15

    def test_returns_none_past_deadline(self):
        hp = hc_task(10, 4, 8, name="hp")
        task = hc_task(20, 5, 10, name="t")
        assert amc_rtb_response(task, [hp]) is None

    def test_lc_task_rejected(self):
        with pytest.raises(ValueError, match="HC tasks"):
            amc_rtb_response(lc_task(10, 1), [])


class TestMaxRecurrence:
    def test_no_lc_hp_matches_rtb_shape(self):
        hp = hc_task(10, 2, 4, name="hp")
        task = hc_task(50, 5, 10, name="t")
        rtb = amc_rtb_response(task, [hp])
        mx = amc_max_response(task, [hp])
        assert mx is not None and rtb is not None
        assert mx <= rtb

    def test_dominates_rtb_on_random_sets(self):
        """AMC-max never rejects a task AMC-rtb accepts."""
        from repro.generator import MCTaskSetGenerator

        rng = derive_rng("amc-dominance")
        gen = MCTaskSetGenerator(m=1, n_min=3, n_max=6)
        rtb, mx = AMCrtbTest(), AMCmaxTest()
        informative = 0
        for _ in range(80):
            u_hh = 0.3 + 0.6 * rng.random()
            u_lh = u_hh * rng.random()
            ts = gen.generate(rng, u_hh, u_lh, min(0.9 - u_lh, rng.random()))
            if ts is None:
                continue
            if rtb.is_schedulable(ts):
                informative += 1
                assert mx.is_schedulable(ts), ts.describe()
        assert informative >= 15

    def test_lc_task_rejected(self):
        with pytest.raises(ValueError, match="HC tasks"):
            amc_max_response(lc_task(10, 1), [])


class TestAMCTestClasses:
    def test_accepts_simple_set(self, simple_mixed_taskset):
        for test in (AMCrtbTest(), AMCmaxTest()):
            result = test.analyze(simple_mixed_taskset)
            assert result.schedulable
            assert set(result.priorities) == {
                t.task_id for t in simple_mixed_taskset
            }

    def test_rejects_overload(self, heavy_taskset):
        assert not AMCrtbTest().is_schedulable(heavy_taskset)
        assert not AMCmaxTest().is_schedulable(heavy_taskset)

    def test_lc_only_core_is_plain_rta(self):
        ts = TaskSet([lc_task(10, 4, name="a"), lc_task(20, 8, name="b")])
        # U = 0.8, DM-schedulable: R_b = 8 + 2*4 = 16 <= 20.
        assert AMCmaxTest().is_schedulable(ts)
        over = TaskSet([lc_task(10, 4, name="a"), lc_task(20, 13, name="b")])
        assert not AMCmaxTest().is_schedulable(over)

    def test_dm_verdict_reported_with_failing_task(self):
        ts = TaskSet(
            [hc_task(10, 4, 8, name="hp"), hc_task(20, 5, 10, name="victim")]
        )
        result = AMCmaxTest().analyze(ts)
        assert not result.schedulable
        assert "victim" in result.detail

    def test_opa_at_least_as_good_as_dm(self):
        from repro.generator import MCTaskSetGenerator

        rng = derive_rng("amc-opa")
        gen = MCTaskSetGenerator(
            m=1, n_min=3, n_max=6, deadline_type="constrained"
        )
        dm, opa = AMCmaxTest("dm"), AMCmaxTest("opa")
        compared = 0
        for _ in range(50):
            u_hh = 0.3 + 0.5 * rng.random()
            u_lh = u_hh * rng.random()
            ts = gen.generate(rng, u_hh, u_lh, min(0.8 - u_lh, rng.random()))
            if ts is None:
                continue
            compared += 1
            if dm.is_schedulable(ts):
                assert opa.is_schedulable(ts), ts.describe()
        assert compared >= 20

    def test_invalid_priority_policy(self):
        with pytest.raises(ValueError, match="priority_policy"):
            AMCrtbTest("random")

    def test_arbitrary_deadline_rejected(self):
        ts = TaskSet([hc_task(10, 1, 2, deadline=15)])
        with pytest.raises(ValueError, match="constrained"):
            AMCmaxTest().analyze(ts)
