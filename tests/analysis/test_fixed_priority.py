"""Unit tests for repro.analysis.fixed_priority."""

from repro.analysis.fixed_priority import (
    audsley_assignment,
    deadline_monotonic_order,
    priority_map,
    response_time_lo,
)
from repro.model import TaskSet

from tests.conftest import hc_task, lc_task


class TestResponseTimeLO:
    def test_no_interference(self):
        task = lc_task(100, 7)
        assert response_time_lo(task, []) == 7

    def test_classic_recurrence(self):
        # hp: (C=2, T=5); task C=4: R = 4 + ceil(R/5)*2 -> R = 8.
        hp = lc_task(5, 2, name="hp")
        task = lc_task(20, 4, name="lo")
        assert response_time_lo(task, [hp]) == 8

    def test_two_interferers(self):
        # Textbook example: C=(1,2,4), T=(4,6,12): R3 = 4+2*2+3*1 = 11.
        t1 = lc_task(4, 1, name="t1")
        t2 = lc_task(6, 2, name="t2")
        t3 = lc_task(12, 4, name="t3")
        assert response_time_lo(t3, [t1, t2]) == 11

    def test_unschedulable_returns_none(self):
        hp = lc_task(4, 3, name="hp")
        task = lc_task(10, 5, name="lo")  # R would exceed D=10
        assert response_time_lo(task, [hp]) is None

    def test_limit_override(self):
        hp = lc_task(5, 2, name="hp")
        task = lc_task(20, 4, name="lo")
        assert response_time_lo(task, [hp], limit=7) is None

    def test_hc_task_uses_lo_budget(self):
        task = hc_task(100, 5, 50)
        assert response_time_lo(task, []) == 5


class TestDeadlineMonotonic:
    def test_orders_by_deadline(self):
        a = lc_task(100, 1, deadline=50, name="a")
        b = lc_task(100, 1, deadline=20, name="b")
        c = lc_task(100, 1, deadline=80, name="c")
        order = deadline_monotonic_order(TaskSet([a, b, c]))
        assert [t.name for t in order] == ["b", "a", "c"]

    def test_tie_break_deterministic(self):
        a = lc_task(100, 1, deadline=50, name="a")
        b = lc_task(80, 1, deadline=50, name="b")
        order = deadline_monotonic_order(TaskSet([a, b]))
        assert [t.name for t in order] == ["b", "a"]  # smaller period first

    def test_priority_map(self):
        a = lc_task(10, 1, name="a")
        b = lc_task(20, 2, name="b")
        mapping = priority_map([a, b])
        assert mapping[a.task_id] == 0
        assert mapping[b.task_id] == 1


class TestAudsley:
    @staticmethod
    def _feasible(task, others):
        return response_time_lo(task, others) is not None

    def test_finds_assignment_where_dm_works(self):
        ts = TaskSet(
            [
                lc_task(4, 1, name="t1"),
                lc_task(6, 2, name="t2"),
                lc_task(12, 4, name="t3"),
            ]
        )
        order = audsley_assignment(ts, self._feasible)
        assert order is not None
        # Lowest-priority task must be feasible below the other two.
        assert response_time_lo(order[-1], order[:-1]) is not None

    def test_returns_none_when_infeasible(self):
        ts = TaskSet(
            [lc_task(4, 3, name="a"), lc_task(10, 5, name="b")]
        )
        assert audsley_assignment(ts, self._feasible) is None

    def test_beats_dm_on_known_case(self):
        """OPA succeeds where DM fails (non-DM-optimal MC-style case)."""
        # A contrived feasibility function that only allows 'special' at the
        # lowest priority; DM would put it higher.
        special = lc_task(100, 1, deadline=10, name="special")
        other = lc_task(100, 1, deadline=90, name="other")
        ts = TaskSet([special, other])

        def feasible(task, others):
            if task.name == "special":
                return len(others) == 1
            return len(others) == 0

        order = audsley_assignment(ts, feasible)
        assert order is not None
        assert order[-1].name == "special"

    def test_single_task(self):
        ts = TaskSet([lc_task(10, 1, name="solo")])
        order = audsley_assignment(ts, self._feasible)
        assert order is not None and len(order) == 1
