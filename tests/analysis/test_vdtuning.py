"""Unit tests for the virtual-deadline tuning engine."""

import pytest

from repro.analysis.dbf import DEFAULT_HORIZON_CAP, DemandScenario
from repro.analysis.vdtuning import (
    TuningOutcome,
    _hi_gain,
    _min_shrink_for_gain,
    _shrink_to_clear,
    tune_virtual_deadlines,
)
from repro.model import TaskSet

from tests.conftest import hc_task, lc_task


class TestShrinkPrimitives:
    def test_hi_gain_positive_inside_ramp(self):
        task = hc_task(20, 4, 8)
        # vd=12 -> residual 8; at l=9 residue 1 (inside ramp): unit shrink
        # moves the carry-over one unit earlier -> one more reduction unit.
        assert _hi_gain(task, 12, 1, 9) == 1

    def test_hi_gain_zero_above_ramp(self):
        task = hc_task(20, 4, 8)
        # at l=16 residue 8 >= C_L: unit shrink gains nothing.
        assert _hi_gain(task, 12, 1, 16) == 0

    def test_min_shrink_reaches_ramp(self):
        task = hc_task(20, 4, 8)
        # residue 8, C_L 4: need 8-4+1 = 5 units to start gaining.
        assert _min_shrink_for_gain(task, 12, 16) == 5

    def test_min_shrink_none_when_structurally_blocked(self):
        task = hc_task(20, 4, 8)
        # vd == C_L: no room at all.
        assert _min_shrink_for_gain(task, 4, 16) is None

    def test_min_shrink_none_before_residual(self):
        task = hc_task(20, 4, 8)
        # l < residual: shrinking pushes the carry-over further out.
        assert _min_shrink_for_gain(task, 12, 5) is None

    def test_shrink_to_clear_monotone(self):
        task = hc_task(50, 10, 30)
        for deficit in (1, 3, 7):
            shrink = _shrink_to_clear(task, 40, 30, deficit)
            gained = _hi_gain(task, 40, shrink, 30)
            assert gained >= min(
                deficit, _hi_gain(task, 40, 40 - task.wcet_lo, 30)
            )
            if shrink > 1:
                assert _hi_gain(task, 40, shrink - 1, 30) < deficit or (
                    gained == _hi_gain(task, 40, shrink - 1, 30)
                )


class TestTuneVirtualDeadlines:
    def test_schedulable_set_accepted_with_valid_vds(self, simple_mixed_taskset):
        outcome = tune_virtual_deadlines(
            simple_mixed_taskset, "steepest", False, DEFAULT_HORIZON_CAP
        )
        assert outcome.schedulable
        for task in simple_mixed_taskset.high_tasks:
            vd = outcome.virtual_deadlines[task.task_id]
            assert task.wcet_lo <= vd <= task.deadline
        # This set sits in the plain-EDF reserve region (a + c <= 1), so the
        # certificate is the reservation argument, not the dbf pair.
        assert "plain-EDF" in outcome.detail

    def test_dbf_certificate_when_tuning_engages(self):
        """Outside the fast-accept regions the returned vds must pass both
        dbf checks."""
        ts = TaskSet(
            [hc_task(100, 10, 60, name="h"), lc_task(100, 50, name="l")]
        )
        outcome = tune_virtual_deadlines(ts, "steepest", False, DEFAULT_HORIZON_CAP)
        assert outcome.schedulable
        assert "plain-EDF" not in outcome.detail
        scenario = DemandScenario(ts, outcome.virtual_deadlines)
        assert scenario.lo_violation() is None
        assert scenario.hi_violation() is None

    def test_utilization_overload_rejected_fast(self, heavy_taskset):
        outcome = tune_virtual_deadlines(
            heavy_taskset, "steepest", False, DEFAULT_HORIZON_CAP
        )
        assert not outcome.schedulable
        assert outcome.iterations == 0
        assert "utilization" in outcome.detail

    def test_lo_infeasible_rejected(self):
        # Utilization is only 0.5 but the tight deadlines make the LO dbf
        # fail with full (untuned) deadlines -> reject immediately.
        ts = TaskSet(
            [
                hc_task(100, 30, 35, deadline=30, name="a"),
                lc_task(100, 20, deadline=40, name="b"),
            ]
        )
        outcome = tune_virtual_deadlines(ts, "steepest", False, DEFAULT_HORIZON_CAP)
        assert not outcome.schedulable
        assert "LO-mode" in outcome.detail

    def test_requires_tuning_to_accept(self):
        """A set that fails with Dv=D but passes after shrinking.

        a + c = 1.1 rules out the plain-EDF reserve; the carry-over
        ``C_H - C_L = 50`` due immediately fails the untouched HI check, so
        acceptance requires an actual deadline adjustment.
        """
        ts = TaskSet([hc_task(100, 10, 60, name="h"), lc_task(100, 50, name="l")])
        assert DemandScenario(ts).hi_violation() is not None
        outcome = tune_virtual_deadlines(ts, "steepest", False, DEFAULT_HORIZON_CAP)
        assert outcome.schedulable
        assert outcome.virtual_deadlines[ts[0].task_id] < 100

    def test_policies_agree_on_easy_sets(self, simple_mixed_taskset):
        steepest = tune_virtual_deadlines(
            simple_mixed_taskset, "steepest", False, DEFAULT_HORIZON_CAP
        )
        ratio = tune_virtual_deadlines(
            simple_mixed_taskset, "ratio", True, DEFAULT_HORIZON_CAP
        )
        assert steepest.schedulable and ratio.schedulable

    def test_unknown_policy_rejected(self, simple_mixed_taskset):
        with pytest.raises(ValueError, match="policy"):
            tune_virtual_deadlines(
                simple_mixed_taskset, "newton", False, DEFAULT_HORIZON_CAP
            )

    def test_outcome_is_dataclass_with_iterations(self, simple_mixed_taskset):
        outcome = tune_virtual_deadlines(
            simple_mixed_taskset, "steepest", False, DEFAULT_HORIZON_CAP
        )
        assert isinstance(outcome, TuningOutcome)
        # Fast-accept paths legitimately report zero descent iterations.
        assert outcome.iterations >= 0
        assert outcome.schedulable
