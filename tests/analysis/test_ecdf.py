"""Unit tests for the ECDF test (trigger refinement + greedy assignment)."""

from repro.analysis import ECDFTest, EYTest
from repro.analysis.dbf import DemandScenario
from repro.model import TaskSet
from repro.util import derive_rng

from tests.conftest import hc_task, lc_task


class TestECDFVerdicts:
    def test_accepts_simple_set(self, simple_mixed_taskset):
        assert ECDFTest().is_schedulable(simple_mixed_taskset)

    def test_rejects_overload(self, heavy_taskset):
        assert not ECDFTest().is_schedulable(heavy_taskset)

    def test_constrained_deadlines_supported(self):
        ts = TaskSet(
            [
                hc_task(100, 10, 30, deadline=70, name="h"),
                lc_task(80, 8, deadline=50, name="l"),
            ]
        )
        assert ECDFTest().is_schedulable(ts)

    def test_result_vds_certify_the_set_refined(self):
        # a + c > 1 avoids the plain-EDF fast accept (whose certificate is
        # the reservation argument rather than the dbf pair).
        ts = TaskSet(
            [hc_task(100, 10, 60, name="h"), lc_task(100, 50, name="l")]
        )
        result = ECDFTest().analyze(ts)
        assert result.schedulable
        scenario = DemandScenario(ts, result.virtual_deadlines)
        assert scenario.lo_violation() is None
        assert scenario.hi_violation(refine=True) is None


class TestECDFDominatesEY:
    def test_superset_of_ey_by_construction(self):
        """ECDF (with fallback) accepts every set EY accepts."""
        from repro.generator import MCTaskSetGenerator

        rng = derive_rng("ecdf-vs-ey")
        gen = MCTaskSetGenerator(m=1, n_min=3, n_max=7)
        ey, ecdf = EYTest(), ECDFTest()
        compared = strict = 0
        for _ in range(100):
            u_hh = 0.4 + 0.55 * rng.random()
            u_lh = u_hh * rng.random()
            ts = gen.generate(rng, u_hh, u_lh, min(0.95 - u_lh, rng.random()))
            if ts is None:
                continue
            accepted_ey = ey.is_schedulable(ts)
            accepted_ecdf = ecdf.is_schedulable(ts)
            if accepted_ey:
                compared += 1
                assert accepted_ecdf, ts.describe()
            elif accepted_ecdf:
                strict += 1
        assert compared >= 20

    def test_fallback_can_be_disabled(self, simple_mixed_taskset):
        assert ECDFTest(fallback_to_steepest=False).is_schedulable(
            simple_mixed_taskset
        )

    def test_trigger_refinement_accepts_single_hc_edge_case(self):
        """One HC task whose carry-over is tight: the trigger refinement is
        what admits it (the triggering job has spent its whole LO budget).
        """
        # Construct: single HC task + LC load where EY fails at some l but
        # the refined demand passes.  With one HC task the trigger cut is
        # min(C_L, residue) on every window.
        task = hc_task(20, 8, 16, name="h")
        background = lc_task(80, 15, name="l")
        ts = TaskSet([task, background])
        ey = EYTest().is_schedulable(ts)
        ecdf = ECDFTest().is_schedulable(ts)
        # Regression pin: whatever EY says, ECDF must not be worse.
        assert ecdf or not ey
