"""Differential suite for the QPA demand kernel (PR 5).

The QPA backward fixed-point search, the Fisher–Baruah-style upper-bound
screens and the descent warm starts are all *cost* layers: every verdict,
violation point and tuning outcome must equal the forward breakpoint
oracle's.  These tests assert that equivalence — across random task sets,
service models, refinement on/off, scenario- and engine-level entry points
— plus the closed-form shrink inversion against the historical bisection
and the window-tiling regression of ``_window_points``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import dbf
from repro.analysis.dbf import (
    DemandScenario,
    _ModeTask,
    _first_violation,
    _hi_point_demand,
    _lo_point_demand,
    _next_breakpoint,
    _prev_breakpoint,
    approx_accepts,
    demand_kernel,
    lo_feasible_exact,
    qpa_violation_search,
    set_demand_kernel,
)
from repro.analysis.vdtuning import (
    DemandEngine,
    _hi_gain,
    _invert_shrink,
    _shrink_to_clear,
    _shrink_to_clear_bisect,
    _window_points,
    run_tuning_stages,
)
from repro.degradation.service import parse_service_model
from repro.model import Criticality, MCTask, TaskSet


@pytest.fixture
def qpa_kernel():
    previous = set_demand_kernel("qpa")
    yield
    set_demand_kernel(previous)


def run_with_kernel(kernel, fn):
    previous = set_demand_kernel(kernel)
    try:
        return fn()
    finally:
        set_demand_kernel(previous)


# -- task-set generation -----------------------------------------------------

@st.composite
def mc_taskset(draw, implicit=None):
    """A small random dual-criticality task set (optionally implicit)."""
    n = draw(st.integers(min_value=1, max_value=5))
    tasks = []
    for _ in range(n):
        period = draw(st.integers(min_value=4, max_value=60))
        high = draw(st.booleans())
        wcet_lo = draw(st.integers(min_value=1, max_value=max(1, period // 2)))
        if implicit is None:
            make_implicit = draw(st.booleans())
        else:
            make_implicit = implicit
        if high:
            wcet_hi = draw(st.integers(min_value=wcet_lo, max_value=period))
            floor = max(wcet_hi, wcet_lo)
        else:
            wcet_hi = wcet_lo
            floor = wcet_lo
        deadline = (
            period
            if make_implicit
            else draw(st.integers(min_value=floor, max_value=period))
        )
        tasks.append(
            MCTask(
                period=period,
                criticality=Criticality.HC if high else Criticality.LC,
                wcet_lo=wcet_lo,
                wcet_hi=wcet_hi,
                deadline=deadline,
            )
        )
    return TaskSet(tasks)


@st.composite
def scenario_inputs(draw):
    """(taskset, virtual deadlines, service spec) for scenario checks."""
    ts = draw(mc_taskset())
    vd = {}
    for task in ts:
        if task.is_high:
            vd[task.task_id] = draw(
                st.integers(min_value=task.wcet_lo, max_value=task.deadline)
            )
    service = draw(
        st.sampled_from(["full-drop", "imprecise:0.5", "elastic:1.5"])
    )
    return ts, vd, service


def attach(ts, service):
    if service == "full-drop":
        return ts
    return TaskSet(list(ts), service_model=parse_service_model(service))


# -- kernel primitives -------------------------------------------------------

class TestQPASearch:
    @given(scenario_inputs())
    @settings(max_examples=120, deadline=None)
    def test_qpa_matches_breakpoint_oracle(self, inputs):
        """QPA decides exactly the forward oracle's predicate, and a
        violation witness is the largest violating breakpoint."""
        ts, vd, service = inputs
        scenario = DemandScenario(attach(ts, service), vd)
        for tasks, ramps, refine in (
            (scenario._lo, False, False),
            (scenario._hi + scenario._hi_lc, True, False),
            (scenario._hi + scenario._hi_lc, True, True),
        ):
            if not tasks:
                continue
            horizon = 200
            n_trigger = len(scenario._hi) if ramps else None
            if ramps:
                demand_at = lambda t: _hi_point_demand(
                    tasks, t, refine, n_trigger
                )
            else:
                demand_at = lambda t: _lo_point_demand(tasks, t)
            status, witness, iterations = qpa_violation_search(
                tasks, horizon, demand_at, ramps=ramps, max_iters=10_000
            )
            points = DemandScenario._breakpoints(tasks, horizon, ramps=ramps)
            violating = [int(p) for p in points if demand_at(int(p)) > int(p)]
            assert status in ("pass", "violation")
            if status == "pass":
                assert not violating
            else:
                assert violating
                assert witness == max(violating)
            assert iterations >= 1

    @given(scenario_inputs(), st.integers(min_value=0, max_value=150))
    @settings(max_examples=80, deadline=None)
    def test_breakpoint_walkers_are_inverse(self, inputs, point):
        ts, vd, service = inputs
        scenario = DemandScenario(attach(ts, service), vd)
        tasks = scenario._lo
        nxt = _next_breakpoint(tasks, point, ramps=False)
        if nxt is not None:
            assert nxt >= point
            # nothing between point and nxt
            assert _prev_breakpoint(tasks, nxt, ramps=False) is None or (
                _prev_breakpoint(tasks, nxt, ramps=False) < point
                or _prev_breakpoint(tasks, nxt, ramps=False) < nxt
            )
            prev = _prev_breakpoint(tasks, nxt + 1, ramps=False)
            assert prev == nxt

    @given(scenario_inputs())
    @settings(max_examples=100, deadline=None)
    def test_upper_bound_screen_is_sound(self, inputs):
        """approx_accepts == True implies the exact scan finds no
        violation (for every k, both modes, refined and not)."""
        ts, vd, service = inputs
        scenario = DemandScenario(attach(ts, service), vd)
        horizon = 150
        for tasks, hi in ((scenario._lo, False), (scenario._hi + scenario._hi_lc, True)):
            if not tasks:
                continue
            for k in (1, 2, 5):
                if not approx_accepts(tasks, horizon, hi=hi, k=k):
                    continue
                points = DemandScenario._breakpoints(tasks, horizon, ramps=hi)
                if hi:
                    demand = DemandScenario._hi_demand(
                        tasks, points, False, len(scenario._hi)
                    )
                    refined = DemandScenario._hi_demand(
                        tasks, points, True, len(scenario._hi)
                    )
                    assert not (refined > points).any()
                else:
                    demand = DemandScenario._lo_demand(tasks, points)
                assert not (demand > points).any()

    def test_refined_hi_demand_is_monotone(self):
        """The refined demand is non-decreasing (the property QPA's
        exactness rests on): dbf - cut_j is non-decreasing for every j."""
        tasks = [
            _ModeTask(16, 8, 42, 7),
            _ModeTask(9, 3, 20, 4),
            _ModeTask(5, 0, 11, 5),
        ]
        previous = None
        for t in range(0, 300):
            value = _hi_point_demand(tasks, t, True, len(tasks))
            if previous is not None:
                assert value >= previous, f"refined demand dropped at {t}"
            previous = value


# -- scenario- and engine-level differentials --------------------------------

class TestKernelEquivalence:
    @given(scenario_inputs())
    @settings(max_examples=100, deadline=None)
    def test_scenario_checks_identical(self, inputs):
        ts, vd, service = inputs
        tagged = attach(ts, service)

        def checks():
            scenario = DemandScenario(tagged, vd)
            try:
                lo = ("lo", scenario.lo_violation())
            except dbf.HorizonExceeded:
                lo = ("lo", "raise")
            out = [lo]
            for refine in (False, True):
                try:
                    out.append((refine, scenario.hi_violation(refine=refine)))
                except dbf.HorizonExceeded:
                    out.append((refine, "raise"))
            return out

        assert run_with_kernel("forward", checks) == run_with_kernel(
            "qpa", checks
        )

    @given(mc_taskset(), st.sampled_from(["full-drop", "imprecise:0.5", "elastic:1.5"]))
    @settings(max_examples=60, deadline=None)
    def test_tuning_outcomes_identical(self, ts, service):
        """run_tuning_stages returns the identical TuningOutcome fields
        under both kernels, for EY and ECDF chains, fresh and memo-backed
        engines alike."""
        tagged = attach(ts, service)
        chains = (
            (("steepest", False),),
            (("ratio", True), ("steepest", True), ("steepest", False)),
        )
        for stages in chains:
            outcomes = []
            for kernel in ("forward", "qpa"):
                for memo in (None, {}):
                    def run():
                        engine = DemandEngine(tagged, 100_000, memo=memo)
                        return run_tuning_stages(
                            tagged, stages, 100_000, engine=engine
                        )
                    outcomes.append(run_with_kernel(kernel, run))
            first = outcomes[0]
            for other in outcomes[1:]:
                assert other.schedulable == first.schedulable
                assert other.virtual_deadlines == first.virtual_deadlines
                assert other.detail == first.detail

    def test_anchor_dominance_regression(self, qpa_kernel):
        """Pinned regression: QPA's witness is the largest *breakpoint*
        violation, but a dominated assignment's breakpoints differ — the
        warm-start anchor must bound the largest violating *integer*
        (demand(witness) - 1), or this engine accepts an infeasible
        assignment.  Derived from a real fig5 divergence."""
        task = MCTask(
            period=42,
            criticality=Criticality.HC,
            wcet_lo=7,
            wcet_hi=16,
            deadline=18,
        )
        ts = TaskSet([task])
        engine = DemandEngine(ts, 100_000, memo={})
        full = {task.task_id: task.deadline}
        shrunk = {task.task_id: 10}
        # Prime the anchor via the full-deadline check, then query the
        # dominated assignment whose own breakpoint (t = 8) violates.
        engine.hi_feasible(full, False)
        fast = engine.hi_feasible(shrunk, False)
        scenario = DemandScenario(ts, shrunk)
        assert fast == (scenario.hi_violation(refine=False) is None)
        assert fast is False

    @given(mc_taskset(implicit=False))
    @settings(max_examples=40, deadline=None)
    def test_lo_feasible_exact_matches_scenario(self, ts):
        tasks = [
            _ModeTask(t.wcet_lo, t.deadline, t.period, t.wcet_lo) for t in ts
        ]
        scenario = DemandScenario(ts, {})
        try:
            expected = scenario.lo_violation() is None
        except dbf.HorizonExceeded:
            expected = False
        assert lo_feasible_exact(tasks, scenario.horizon_cap) == expected


# -- closed-form shrink inversion --------------------------------------------

@st.composite
def shrink_case(draw):
    period = draw(st.integers(min_value=3, max_value=50))
    wcet_lo = draw(st.integers(min_value=1, max_value=period))
    wcet_hi = draw(st.integers(min_value=wcet_lo, max_value=period))
    deadline = draw(st.integers(min_value=wcet_hi, max_value=period))
    task = MCTask(
        period=period,
        criticality=Criticality.HC,
        wcet_lo=wcet_lo,
        wcet_hi=wcet_hi,
        deadline=deadline,
    )
    vd_now = draw(st.integers(min_value=wcet_lo, max_value=deadline))
    length = draw(st.integers(min_value=0, max_value=400))
    deficit = draw(st.integers(min_value=1, max_value=80))
    return task, vd_now, length, deficit


class TestShrinkInversion:
    @given(shrink_case())
    @settings(max_examples=300, deadline=None)
    def test_closed_form_equals_bisection(self, case):
        task, vd_now, length, deficit = case
        assert _shrink_to_clear(task, vd_now, length, deficit) == (
            _shrink_to_clear_bisect(task, vd_now, length, deficit)
        )

    @given(shrink_case())
    @settings(max_examples=200, deadline=None)
    def test_inversion_is_minimal(self, case):
        task, vd_now, length, deficit = case
        max_shrink = vd_now - task.wcet_lo
        target = min(deficit, _hi_gain(task, vd_now, max_shrink, length))
        if target <= 0:
            return
        shrink = _invert_shrink(task, vd_now, length, target)
        assert 1 <= shrink <= max_shrink
        assert _hi_gain(task, vd_now, shrink, length) >= target
        if shrink > 1:
            assert _hi_gain(task, vd_now, shrink - 1, length) < target


# -- window tiling regression (satellite) ------------------------------------

class TestWindowTiling:
    @given(scenario_inputs(), st.integers(min_value=1, max_value=40))
    @settings(max_examples=80, deadline=None)
    def test_window_tiles_reproduce_breakpoint_multiset(self, inputs, width):
        """Tiling the axis with _window_points reproduces the exact
        _breakpoints multiset — the property the windowed scan's
        correctness (and the simplified clamps) rests on."""
        ts, vd, service = inputs
        scenario = DemandScenario(attach(ts, service), vd)
        for tasks, ramps in (
            (scenario._lo, False),
            (scenario._hi + scenario._hi_lc, True),
        ):
            if not tasks:
                continue
            horizon = 120
            tiles = []
            start = 0
            while start <= horizon:
                tiles.append(
                    _window_points(tasks, horizon, start, start + width, ramps)
                )
                start += width
            tiled = np.sort(np.concatenate(tiles))
            reference = DemandScenario._breakpoints(tasks, horizon, ramps)
            assert tiled.tolist() == reference.tolist()


# -- kernel switch / counters -------------------------------------------------

class TestKernelControls:
    def test_kernel_switch_round_trip(self):
        assert demand_kernel() in ("qpa", "forward", "vec", "block")
        previous = set_demand_kernel("forward")
        try:
            assert demand_kernel() == "forward"
        finally:
            set_demand_kernel(previous)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown demand kernel"):
            set_demand_kernel("sideways")

    def test_counters_accumulate_and_reset(self, qpa_kernel):
        dbf.reset_kernel_counters()
        ts = TaskSet(
            [
                MCTask(
                    period=20,
                    criticality=Criticality.HC,
                    wcet_lo=2,
                    wcet_hi=4,
                    deadline=12,
                )
            ]
        )
        DemandScenario(ts, {ts[0].task_id: 6}).schedulable()
        counters = dbf.kernel_counters()
        assert set(counters) == {
            "qpa-accept",
            "approx-accept",
            "approx-reject",
            "qpa-iterations",
            "qpa-runs",
        }
        assert sum(counters.values()) > 0
        dbf.reset_kernel_counters()
        assert sum(dbf.kernel_counters().values()) == 0


class TestForwardOracle:
    @given(scenario_inputs())
    @settings(max_examples=60, deadline=None)
    def test_first_violation_agrees_with_pointwise_scan(self, inputs):
        """The chunked forward scan (the oracle itself) equals a naive
        full-array evaluation — anchoring the whole differential chain."""
        ts, vd, service = inputs
        scenario = DemandScenario(attach(ts, service), vd)
        tasks = scenario._lo
        horizon = 100
        points = DemandScenario._breakpoints(tasks, horizon, ramps=False)
        found = _first_violation(
            points, lambda chunk: DemandScenario._lo_demand(tasks, chunk)
        )
        demand = DemandScenario._lo_demand(tasks, points)
        mask = demand > points
        expected = int(points[np.argmax(mask)]) if mask.any() else None
        assert found == expected
