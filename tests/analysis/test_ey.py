"""Unit tests for the Ekberg-Yi test."""

from repro.analysis import EDFVDTest, EYTest
from repro.analysis.dbf import DemandScenario
from repro.model import TaskSet
from repro.util import derive_rng

from tests.conftest import hc_task, lc_task


class TestEYVerdicts:
    def test_accepts_simple_set(self, simple_mixed_taskset):
        assert EYTest().is_schedulable(simple_mixed_taskset)

    def test_rejects_overload(self, heavy_taskset):
        assert not EYTest().is_schedulable(heavy_taskset)

    def test_constrained_deadlines_supported(self):
        ts = TaskSet(
            [
                hc_task(100, 10, 30, deadline=60, name="h"),
                lc_task(50, 5, deadline=40, name="l"),
            ]
        )
        assert EYTest().supports(ts)
        assert EYTest().is_schedulable(ts)

    def test_result_vds_certify_the_set(self):
        # a + c > 1 keeps the plain-EDF fast accept out of the way, so the
        # returned virtual deadlines must themselves pass both dbf checks.
        ts = TaskSet(
            [hc_task(100, 10, 60, name="h"), lc_task(100, 50, name="l")]
        )
        result = EYTest().analyze(ts)
        assert result.schedulable
        scenario = DemandScenario(ts, result.virtual_deadlines)
        assert scenario.lo_violation() is None
        assert scenario.hi_violation(refine=False) is None

    def test_fast_accept_region_validated_by_simulation(
        self, simple_mixed_taskset
    ):
        """In the a + c <= 1 region the certificate is the reservation
        argument; the simulator confirms the runtime it certifies."""
        from repro.sim import validate_against_simulation

        result = EYTest().analyze(simple_mixed_taskset)
        assert result.schedulable
        violations = validate_against_simulation(
            simple_mixed_taskset,
            EYTest(),
            derive_rng("ey-fast-accept"),
            horizon=5000,
            random_runs=1,
        )
        assert violations == []

    def test_lc_only_core_reduces_to_edf(self):
        busy = TaskSet([lc_task(10, 5, name="a"), lc_task(20, 9, name="b")])
        assert EYTest().is_schedulable(busy)
        over = TaskSet([lc_task(10, 6, name="a"), lc_task(20, 9, name="b")])
        assert not EYTest().is_schedulable(over)


class TestEYvsEDFVD:
    def test_ey_nearly_dominates_edfvd_on_random_implicit_sets(self):
        """EY accepts almost everything the utilization test accepts.

        The dbf view is finer-grained than the EDF-VD utilization test, but
        EY's *integer* virtual deadlines and heuristic descent can miss a
        sliver of boundary sets the fractional uniform scaling covers.  This
        statistical regression guard pins the miss rate below 5% (it was 10x
        that before the minimal-shrink fix in vdtuning).
        """
        from repro.generator import MCTaskSetGenerator

        rng = derive_rng("ey-vs-edfvd")
        gen = MCTaskSetGenerator(m=1, n_min=3, n_max=6)
        edfvd, ey = EDFVDTest(), EYTest()
        compared = misses = 0
        for _ in range(120):
            u_hh = 0.3 + 0.6 * rng.random()
            u_lh = u_hh * rng.random()
            ts = gen.generate(rng, u_hh, u_lh, min(0.95 - u_lh, rng.random()))
            if ts is None:
                continue
            if edfvd.is_schedulable(ts):
                compared += 1
                misses += not ey.is_schedulable(ts)
        assert compared >= 30  # the batch must be informative
        assert misses <= 0.05 * compared
