"""Differential suite for the vec demand kernel (PR 9).

The vec kernel layers pure-value machinery on the QPA decision procedure:
the closed-form own-half V*, the split LO upper-bound screen, vectorized
candidate ranking and the speculative shrink batch.  Every layer must be
value-identical to its scalar counterpart, and the kernel as a whole must
produce bit-identical verdicts, violation witnesses and tuning outcomes
to both the ``qpa`` and ``forward`` kernels — *including* iteration
counts, so speculation provably never changes the descent trajectory.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import dbf, dbf_vec
from repro.analysis.dbf import (
    DemandScenario,
    LoShrinkProbe,
    _ModeTask,
    approx_accepts,
    demand_kernel,
    set_demand_kernel,
)
from repro.analysis.dbf_vec import (
    DescentSession,
    lo_screen_accepts,
    lo_screen_prepare,
    set_speculation_depth,
    speculation_depth,
    vec_counters,
    vstar_own,
)
from repro.analysis.vdtuning import (
    DemandEngine,
    _rank_candidates,
    run_tuning_stages,
)
from repro.degradation.service import parse_service_model
from repro.model import Criticality, MCTask, TaskSet

KERNELS = ("forward", "qpa", "vec")

CHAINS = (
    (("steepest", False),),
    (("ratio", True), ("steepest", True), ("steepest", False)),
)


@pytest.fixture
def vec_kernel():
    previous = set_demand_kernel("vec")
    yield
    set_demand_kernel(previous)


def run_with_kernel(kernel, fn):
    previous = set_demand_kernel(kernel)
    try:
        return fn()
    finally:
        set_demand_kernel(previous)


# -- task-set generation -----------------------------------------------------

@st.composite
def mc_taskset(draw):
    """A small random dual-criticality task set."""
    n = draw(st.integers(min_value=1, max_value=5))
    tasks = []
    for _ in range(n):
        period = draw(st.integers(min_value=4, max_value=60))
        high = draw(st.booleans())
        wcet_lo = draw(st.integers(min_value=1, max_value=max(1, period // 2)))
        if high:
            wcet_hi = draw(st.integers(min_value=wcet_lo, max_value=period))
            floor = max(wcet_hi, wcet_lo)
        else:
            wcet_hi = wcet_lo
            floor = wcet_lo
        deadline = (
            period
            if draw(st.booleans())
            else draw(st.integers(min_value=floor, max_value=period))
        )
        tasks.append(
            MCTask(
                period=period,
                criticality=Criticality.HC if high else Criticality.LC,
                wcet_lo=wcet_lo,
                wcet_hi=wcet_hi,
                deadline=deadline,
            )
        )
    return TaskSet(tasks)


@st.composite
def scenario_inputs(draw):
    """(taskset, virtual deadlines, service spec) for scenario checks."""
    ts = draw(mc_taskset())
    vd = {}
    for task in ts:
        if task.is_high:
            vd[task.task_id] = draw(
                st.integers(min_value=task.wcet_lo, max_value=task.deadline)
            )
    service = draw(
        st.sampled_from(["full-drop", "imprecise:0.5", "elastic:1.5"])
    )
    return ts, vd, service


def attach(ts, service):
    if service == "full-drop":
        return ts
    return TaskSet(list(ts), service_model=parse_service_model(service))


# -- three-kernel equivalence ------------------------------------------------

class TestThreeKernelEquivalence:
    @given(scenario_inputs())
    @settings(max_examples=100, deadline=None)
    def test_scenario_checks_identical(self, inputs):
        """LO and HI verdicts and earliest-violation witnesses agree
        across all three kernels, with refinement on and off."""
        ts, vd, service = inputs
        tagged = attach(ts, service)

        def checks():
            scenario = DemandScenario(tagged, vd)
            try:
                lo = ("lo", scenario.lo_violation())
            except dbf.HorizonExceeded:
                lo = ("lo", "raise")
            out = [lo]
            for refine in (False, True):
                try:
                    out.append((refine, scenario.hi_violation(refine=refine)))
                except dbf.HorizonExceeded:
                    out.append((refine, "raise"))
            return out

        results = [run_with_kernel(k, checks) for k in KERNELS]
        assert results[0] == results[1] == results[2]

    @given(mc_taskset(), st.sampled_from(["full-drop", "imprecise:0.5", "elastic:1.5"]))
    @settings(max_examples=60, deadline=None)
    def test_tuning_outcomes_identical(self, ts, service):
        """run_tuning_stages returns the identical TuningOutcome —
        schedulable, deadlines, detail AND iteration count — under all
        three kernels, fresh and memo-backed engines, both stage chains.

        The iteration equality is the descent-trace guarantee: the vec
        kernel's speculation evaluates candidates ahead of the sequential
        trajectory but never changes which candidate is picked or how the
        accounting advances.
        """
        tagged = attach(ts, service)
        for stages in CHAINS:
            outcomes = []
            for kernel in KERNELS:
                for memo in (None, {}):
                    def run():
                        engine = DemandEngine(tagged, 100_000, memo=memo)
                        return run_tuning_stages(
                            tagged, stages, 100_000, engine=engine
                        )
                    outcomes.append(run_with_kernel(kernel, run))
            first = outcomes[0]
            for other in outcomes[1:]:
                assert other.schedulable == first.schedulable
                assert other.virtual_deadlines == first.virtual_deadlines
                assert other.detail == first.detail
                assert other.iterations == first.iterations

    @given(mc_taskset())
    @settings(max_examples=30, deadline=None)
    def test_trajectory_invariant_in_speculation_depth(self, ts):
        """Speculation depth is a pure cost knob: every k yields the
        byte-identical tuning outcome (including iterations)."""
        def run():
            engine = DemandEngine(ts, 100_000, memo={})
            return run_tuning_stages(
                ts, (("steepest", False),), 100_000, engine=engine
            )

        outcomes = []
        for k in (1, 2, 4, 8):
            previous = set_speculation_depth(k)
            try:
                outcomes.append(run_with_kernel("vec", run))
            finally:
                set_speculation_depth(previous)
        first = outcomes[0]
        for other in outcomes[1:]:
            assert other.schedulable == first.schedulable
            assert other.virtual_deadlines == first.virtual_deadlines
            assert other.detail == first.detail
            assert other.iterations == first.iterations


# -- closed-form V* ----------------------------------------------------------

@st.composite
def vstar_inputs(draw):
    """A probe setup whose caller guarantees hold (slack >= 0, floor at or
    above the others-half boundary)."""
    ts = draw(mc_taskset())
    high = [t for t in ts if t.is_high]
    if not high:
        ts = TaskSet(
            list(ts)
            + [
                MCTask(
                    period=20,
                    criticality=Criticality.HC,
                    wcet_lo=3,
                    wcet_hi=6,
                    deadline=16,
                )
            ]
        )
        high = [t for t in ts if t.is_high]
    task = high[draw(st.integers(min_value=0, max_value=len(high) - 1))]
    return ts, task


class TestVstarOwn:
    @given(vstar_inputs())
    @settings(max_examples=200, deadline=None)
    def test_matches_own_feasible_boundary(self, inputs):
        """vstar_own equals the minimal v in [floor_v, deadline] accepted
        by the sequential LoShrinkProbe._own_feasible (None when even the
        full deadline fails) — the value the bisection path settles on."""
        ts, task = inputs
        try:
            scenario = DemandScenario(ts)
            probe = LoShrinkProbe(scenario, task)
        except dbf.HorizonExceeded:
            return  # busy period past the cap; no probe to compare
        if probe._infeasible_always or probe._horizon == 0:
            return
        if len(probe._points_o) and (probe._slack_o < 0).any():
            return  # others alone infeasible: the V* path never runs here
        # The others-half floor: minimal v whose demand at the others'
        # breakpoints fits their slack (monotone in v by construction).
        floor_v = None
        for v in range(task.wcet_lo, task.deadline + 1):
            x = probe._points_o - v
            jobs = np.where(x >= 0, x // task.period + 1, 0)
            if not np.any(jobs * task.wcet_lo > probe._slack_o):
                floor_v = v
                break
        if floor_v is None:
            return  # no feasible deadline at all; compute() returns early
        expected = None
        for v in range(floor_v, task.deadline + 1):
            if probe._own_feasible(v):
                expected = v
                break
        got = vstar_own(
            probe._points_o,
            probe._slack_o,
            task.wcet_lo,
            task.period,
            task.deadline,
            floor_v,
            probe._horizon,
        )
        assert got == expected

    def test_empty_window_returns_floor(self):
        empty = np.empty(0, dtype=np.int64)
        assert vstar_own(empty, empty, 2, 10, 8, 3, 100) == 3


# -- split upper-bound screen ------------------------------------------------

@st.composite
def screen_inputs(draw):
    """(others as _ModeTask, probe params, horizon, k) for screen checks."""
    n = draw(st.integers(min_value=0, max_value=4))
    others = []
    for _ in range(n):
        period = draw(st.integers(min_value=3, max_value=40))
        wcet = draw(st.integers(min_value=1, max_value=period))
        deadline = draw(st.integers(min_value=1, max_value=period))
        others.append(_ModeTask(wcet, deadline, period, wcet))
    period = draw(st.integers(min_value=3, max_value=40))
    wcet_lo = draw(st.integers(min_value=1, max_value=period))
    v = draw(st.integers(min_value=1, max_value=80))
    horizon = draw(st.integers(min_value=1, max_value=200))
    k = draw(st.integers(min_value=1, max_value=4))
    return others, wcet_lo, period, v, horizon, k


class TestSplitScreen:
    @given(screen_inputs())
    @settings(max_examples=300, deadline=None)
    def test_verdict_matches_one_shot_screen(self, inputs):
        others, wcet_lo, period, v, horizon, k = inputs
        prepared = lo_screen_prepare(others, horizon, k)
        got = lo_screen_accepts(prepared, wcet_lo, period, v, horizon, k)
        probe = _ModeTask(wcet_lo, v, period, wcet_lo)
        expected = approx_accepts(others + [probe], horizon, hi=False, k=k)
        assert got == expected

    @given(screen_inputs())
    @settings(max_examples=100, deadline=None)
    def test_prepared_half_matches_others_only(self, inputs):
        others, _, _, _, horizon, k = inputs
        prepared = lo_screen_prepare(others, horizon, k)
        assert prepared[3] == approx_accepts(others, horizon, hi=False, k=k)


# -- vectorized ranking ------------------------------------------------------

@st.composite
def ranking_inputs(draw):
    """(taskset, vd, violation, deficit, policy) with >= 1 HC task."""
    ts = draw(mc_taskset())
    if not any(t.is_high for t in ts):
        ts = TaskSet(
            list(ts)
            + [
                MCTask(
                    period=24,
                    criticality=Criticality.HC,
                    wcet_lo=4,
                    wcet_hi=9,
                    deadline=20,
                )
            ]
        )
    vd = {}
    for task in ts:
        if task.is_high:
            vd[task.task_id] = draw(
                st.integers(min_value=task.wcet_lo, max_value=task.deadline)
            )
    violation = draw(st.integers(min_value=1, max_value=300))
    deficit = draw(st.integers(min_value=1, max_value=60))
    policy = draw(st.sampled_from(["steepest", "ratio"]))
    return ts, vd, violation, deficit, policy


class TestRankParity:
    @given(ranking_inputs())
    @settings(max_examples=200, deadline=None)
    def test_rank_equals_scalar_rank_candidates(self, inputs):
        ts, vd, violation, deficit, policy = inputs
        engine = DemandEngine(ts, 100_000, memo={})
        high = [t for t in ts if t.is_high]
        session = DescentSession(engine, high)
        got = session.rank(vd, violation, deficit, policy)
        expected = _rank_candidates(high, vd, violation, deficit, policy, engine)
        assert [(key, t.task_id, d) for key, t, d in got] == [
            (key, t.task_id, d) for key, t, d in expected
        ]


# -- speculation controls and diagnostics ------------------------------------

class TestSpeculationControls:
    def test_depth_round_trip(self):
        baseline = speculation_depth()
        previous = set_speculation_depth(7)
        try:
            assert previous == baseline
            assert speculation_depth() == 7
        finally:
            set_speculation_depth(previous)
        assert speculation_depth() == baseline

    @pytest.mark.parametrize("bad", [0, -3, 2.5, "four", None])
    def test_invalid_depth_rejected(self, bad):
        with pytest.raises(ValueError, match="speculation depth"):
            set_speculation_depth(bad)

    def test_kernel_registration_round_trip(self):
        previous = set_demand_kernel("vec")
        try:
            assert demand_kernel() == "vec"
        finally:
            set_demand_kernel(previous)

    def test_counters_tick_and_reset(self, vec_kernel):
        dbf_vec.reset_vec_counters()
        # A set dense enough that the descent runs 26 shrink iterations
        # *and* commits the same task on consecutive iterations — the only
        # shape that can consume a speculated settle, since speculation
        # banks scaffolding for the last-committed candidate alone.
        ts = TaskSet(
            [
                MCTask(
                    period=32,
                    criticality=Criticality.HC,
                    wcet_lo=7,
                    wcet_hi=14,
                    deadline=32,
                ),
                MCTask(
                    period=19,
                    criticality=Criticality.HC,
                    wcet_lo=6,
                    wcet_hi=6,
                    deadline=19,
                ),
                MCTask(
                    period=8,
                    criticality=Criticality.HC,
                    wcet_lo=1,
                    wcet_hi=1,
                    deadline=8,
                ),
                MCTask(
                    period=39,
                    criticality=Criticality.LC,
                    wcet_lo=11,
                    wcet_hi=11,
                    deadline=39,
                ),
            ]
        )
        engine = DemandEngine(ts, 100_000, memo={})
        run_tuning_stages(ts, (("steepest", False),), 100_000, engine=engine)
        counters = vec_counters()
        assert set(counters) == {
            "spec-hit",
            "spec-waste",
            "spec-batches",
            "spec-width",
        }
        assert counters["spec-batches"] > 0
        assert counters["spec-width"] >= counters["spec-batches"]
        assert counters["spec-hit"] > 0
        dbf_vec.reset_vec_counters()
        assert all(value == 0 for value in vec_counters().values())

    def test_counters_reach_obs_registry(self, vec_kernel):
        """The spec counters live on the shared obs registry under the
        kernel.vec scope, so worker snapshots and kernel_summary see
        them without extra plumbing."""
        from repro import obs

        dbf_vec.reset_vec_counters()
        dbf_vec._COUNTERS["spec-hit"] += 3
        try:
            assert obs.REGISTRY.counters("kernel.vec.")["kernel.vec.spec-hit"] == 3
        finally:
            dbf_vec.reset_vec_counters()

    def test_kernel_summary_collapses_width(self):
        """kernel_summary folds spec-batches/spec-width into the mean
        batch width while keeping hit/waste raw."""
        from repro.experiments.acceptance import kernel_summary

        baseline = {
            name: 0.0
            for name in (
                "kernel.vec.spec-hit",
                "kernel.vec.spec-waste",
                "kernel.vec.spec-batches",
                "kernel.vec.spec-width",
            )
        }
        dbf_vec.reset_vec_counters()
        dbf_vec._COUNTERS["spec-hit"] += 5
        dbf_vec._COUNTERS["spec-waste"] += 2
        dbf_vec._COUNTERS["spec-batches"] += 4
        dbf_vec._COUNTERS["spec-width"] += 10
        try:
            summary = kernel_summary()["vec"]
        finally:
            dbf_vec.reset_vec_counters()
        assert summary["spec-hit"] == 5
        assert summary["spec-waste"] == 2
        assert summary["spec-width-mean"] == 2.5
        assert "spec-batches" not in summary
        assert "spec-width" not in summary
