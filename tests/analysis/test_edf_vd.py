"""Unit tests for repro.analysis.edf_vd (the paper's Section III test)."""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analysis.edf_vd import EDFVDTest, edfvd_admits, edfvd_scaling_factor
from repro.model import TaskSet

from tests.conftest import hc_task, lc_task


class TestAdmissionFunction:
    def test_plain_edf_region(self):
        # a + c <= 1 always admits.
        assert edfvd_admits(0.4, 0.3, 0.6)

    def test_section3_inequality(self):
        # a=0.45, b=0.10, c=0.50: a <= (1-c)/(1-(c-b)) = 0.5/0.6 = 0.833.
        assert edfvd_admits(0.45, 0.10, 0.50)

    def test_section3_inequality_fails(self):
        # a=0.45, b=0.78, c=0.90: bound (0.1)/(0.88) ~ 0.114 < 0.45.
        assert not edfvd_admits(0.45, 0.78, 0.90)

    def test_lo_mode_bound(self):
        # a + b > 1 cannot be LO-schedulable even though c small.
        assert not edfvd_admits(0.6, 0.5, 0.55)

    def test_hi_utilization_above_one(self):
        assert not edfvd_admits(0.0, 0.5, 1.05)

    def test_hc_only_core_needs_b_and_c_below_one(self):
        assert edfvd_admits(0.0, 0.9, 1.0)
        assert not edfvd_admits(0.0, 0.99, 1.05)

    def test_model_invariant_b_above_c_rejected(self):
        with pytest.raises(ValueError, match="U_LH"):
            edfvd_admits(0.0, 1.1, 1.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            edfvd_admits(-0.1, 0.1, 0.2)

    def test_boundary_sum_exactly_one(self):
        assert edfvd_admits(0.5, 0.2, 0.5)  # a + c == 1

    def test_paper_figure1_cores(self):
        """The Figure 1 example from examples/paper_examples.py."""
        # CA-Wu-F's cores reject the 0.45 LC task:
        assert not edfvd_admits(0.45, 0.55, 0.60)
        assert not edfvd_admits(0.45, 0.35, 0.80)
        # CA-UDP's tau2 core accepts it:
        assert edfvd_admits(0.45, 0.10, 0.50)


class TestScalingFactor:
    def test_plain_edf_gives_one(self):
        ts = TaskSet([hc_task(100, 20, 40, name="h"), lc_task(100, 30, name="l")])
        assert edfvd_scaling_factor(ts) == 1.0

    def test_scaled_region_formula(self):
        # a=0.3, b=0.4, c=0.8: needs x = b/(1-a) = 0.5714...
        ts = TaskSet([hc_task(100, 40, 80, name="h"), lc_task(100, 30, name="l")])
        x = edfvd_scaling_factor(ts)
        assert x == pytest.approx(0.4 / 0.7)

    def test_rejected_set_raises(self):
        ts = TaskSet([hc_task(100, 78, 90, name="h"), lc_task(100, 45, name="l")])
        with pytest.raises(ValueError, match="no valid scaling factor"):
            edfvd_scaling_factor(ts)

    def test_lc_only_core(self):
        ts = TaskSet([lc_task(10, 5, name="l")])
        assert edfvd_scaling_factor(ts) == 1.0


class TestEDFVDTestClass:
    def test_accepts_simple_set(self, simple_mixed_taskset):
        result = EDFVDTest().analyze(simple_mixed_taskset)
        assert result.schedulable
        assert 0 < result.scaling_factor <= 1.0

    def test_rejects_overloaded_set(self, heavy_taskset):
        result = EDFVDTest().analyze(heavy_taskset)
        assert not result.schedulable
        assert "fails EDF-VD" in result.detail

    def test_constrained_deadline_rejected(self):
        ts = TaskSet([hc_task(100, 10, 20, deadline=50)])
        assert not EDFVDTest().supports(ts)
        with pytest.raises(ValueError, match="implicit"):
            EDFVDTest().analyze(ts)

    def test_monotone_in_added_load(self):
        """Adding a task never turns a rejected set into an accepted one."""
        base = TaskSet([hc_task(100, 70, 95, name="h"), lc_task(100, 40, name="l")])
        extended = base.with_task(lc_task(100, 20, name="extra"))
        if not EDFVDTest().is_schedulable(base):
            assert not EDFVDTest().is_schedulable(extended)


class TestEpsilonBoundaries:
    """Property tests at the admission boundaries (one named epsilon).

    The ``U_LH <= U_HH`` model guard and the admission inequalities now
    share ``_EPS`` — these pin the behavior exactly at ``a + c == 1`` and
    ``b == c``, where a mixed-tolerance implementation (the old hard-coded
    ``1e-6`` guard) would accept/reject inconsistently.
    """

    @given(
        a=st.floats(min_value=0.0, max_value=1.0),
        c=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_boundary_a_plus_c_equals_one_admits(self, a, c):
        from repro.analysis.edf_vd import edfvd_admits

        # Scale (a, c) so a + c lands exactly on the boundary; any b <= c
        # must then be admitted by the plain-EDF shortcut.
        total = a + c
        assume(total > 0.0)
        a, c = a / total, c / total
        assume(a + c <= 1.0)  # rescaling can overshoot by one ulp
        b = c / 2
        assert edfvd_admits(a, b, c)

    @given(
        b=st.floats(min_value=0.0, max_value=1.0),
        a=st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=200, deadline=None)
    def test_boundary_b_equals_c_never_raises(self, b, a):
        from repro.analysis.edf_vd import edfvd_admits

        # b == c sits exactly on the model-invariant guard: it must be
        # treated as valid input (C_L == C_H per task), never rejected.
        edfvd_admits(a, b, b)

    @given(
        b=st.floats(min_value=1e-3, max_value=1.0),
        delta=st.floats(min_value=1e-8, max_value=1e-3),
    )
    @settings(max_examples=200, deadline=None)
    def test_guard_uses_named_epsilon(self, b, delta):
        from repro.analysis.edf_vd import _EPS, edfvd_admits

        # Above the epsilon band the guard must reject b > c ...
        if delta > _EPS * 2:
            with pytest.raises(ValueError, match="exceeds"):
                edfvd_admits(0.0, b + delta, b)
        # ... and within it the input is treated as b == c (float noise).
        edfvd_admits(0.0, b + _EPS / 2, b)

    def test_guard_rejects_just_above_old_tolerance(self):
        """b - c in (1e-9, 1e-6]: silently accepted before unification,
        rejected now — the regression the unification fixes."""
        from repro.analysis.edf_vd import edfvd_admits

        with pytest.raises(ValueError, match="exceeds"):
            edfvd_admits(0.3, 0.5 + 1e-7, 0.5)

    def test_admission_boundary_exact(self):
        from repro.analysis.edf_vd import edfvd_admits

        assert edfvd_admits(0.5, 0.25, 0.5)  # a + c == 1 exactly
        assert edfvd_admits(0.4, 0.6, 0.6)  # b == c exactly, a + b == 1
