"""The canonical verdict cache: keys, tiers, reconstruction, safety.

The cache's whole value proposition is *canonical identity*: two
submissions of the same parameter multiset — different order, different
task ids, different names — must produce the same key, and a hit must
reconstruct a result indistinguishable from the uncached computation
around the caller's actual task objects.  Its whole safety story is the
shard store's: off by default, bounded in process, and on the persistent
tier any doubt is a miss plus a discard, never a trusted payload.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import get_test
from repro.analysis import verdict_cache as vc
from repro.analysis.vdtuning import run_tuning_stages
from repro.core import get_strategy, partition
from repro.degradation.service import parse_service_model
from repro.model import Criticality, MCTask, TaskSet

STAGES = (("steepest", False),)


def make_tasks():
    """A fixed mixed-criticality parameter multiset.

    No two tasks tie on any strategy ordering key, so every submission
    order places tasks identically and cached partition layouts are
    byte-comparable to fresh ones.
    """
    return [
        MCTask(period=20, criticality=Criticality.HC, wcet_lo=3, wcet_hi=6,
               deadline=20),
        MCTask(period=12, criticality=Criticality.LC, wcet_lo=2, wcet_hi=2,
               deadline=12),
        MCTask(period=30, criticality=Criticality.HC, wcet_lo=4, wcet_hi=10,
               deadline=25),
        MCTask(period=8, criticality=Criticality.LC, wcet_lo=1, wcet_hi=1,
               deadline=8),
    ]


def make_tied_tasks():
    """A multiset whose two HC tasks tie on own-level utilization (both
    0.3), so *strategy ordering* — which tie-breaks on task id — depends
    on submission order even though the parameter multiset does not."""
    tasks = make_tasks()
    tasks[2] = MCTask(period=30, criticality=Criticality.HC, wcet_lo=4,
                      wcet_hi=9, deadline=25)
    return tasks


def reordered_clone(tasks):
    """The same parameter multiset as fresh task objects in another order
    — new task ids, reversed submission order."""
    return [
        MCTask(
            period=t.period,
            criticality=t.criticality,
            wcet_lo=t.wcet_lo,
            wcet_hi=t.wcet_hi,
            deadline=t.deadline,
            wcet_degraded=t.wcet_degraded,
            period_degraded=t.period_degraded,
        )
        for t in reversed(tasks)
    ]


@pytest.fixture
def cache_on(monkeypatch):
    monkeypatch.setenv("REPRO_VERDICT_CACHE", "on")
    monkeypatch.delenv("REPRO_VERDICT_CACHE_SIZE", raising=False)
    monkeypatch.delenv("REPRO_VERDICT_CACHE_DIR", raising=False)
    vc.reconfigure()
    vc.reset_cache_counters()
    yield
    vc.reconfigure()


class TestDisabledByDefault:
    def test_off_unless_opted_in(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERDICT_CACHE", raising=False)
        vc.reconfigure()
        try:
            assert not vc.enabled()
            ts = TaskSet(make_tasks())
            outcome = run_tuning_stages(ts, STAGES, 100_000)
            # store/lookup are no-ops while disabled
            vc.store_tuning(ts, STAGES, 100_000, outcome)
            assert vc.lookup_tuning(ts, STAGES, 100_000) is None
        finally:
            vc.reconfigure()


class TestCanonicalKeys:
    def test_reorder_and_reid_invariant(self, cache_on):
        a = TaskSet(make_tasks())
        b = TaskSet(reordered_clone(make_tasks()))
        ka = vc._key("tuning", a, vc._canonical_order(a), {"probe": 1})
        kb = vc._key("tuning", b, vc._canonical_order(b), {"probe": 1})
        assert ka == kb

    def test_service_model_separates_keys(self, cache_on):
        plain = TaskSet(make_tasks())
        tagged = TaskSet(
            make_tasks(), service_model=parse_service_model("imprecise:0.5")
        )
        kp = vc._key("tuning", plain, vc._canonical_order(plain), {})
        kt = vc._key("tuning", tagged, vc._canonical_order(tagged), {})
        assert kp != kt

    def test_parameters_separate_keys(self, cache_on):
        a = TaskSet(make_tasks())
        heavier = make_tasks()
        heavier[0] = MCTask(
            period=20, criticality=Criticality.HC, wcet_lo=3, wcet_hi=7,
            deadline=20,
        )
        b = TaskSet(heavier)
        ka = vc._key("tuning", a, vc._canonical_order(a), {})
        kb = vc._key("tuning", b, vc._canonical_order(b), {})
        assert ka != kb


class TestTuningRoundTrip:
    def test_hit_reconstructs_outcome(self, cache_on):
        ts = TaskSet(make_tasks())
        cold = run_tuning_stages(ts, STAGES, 100_000)
        assert vc.cache_counters()["store"] == 1

        warm = run_tuning_stages(ts, STAGES, 100_000)
        assert vc.cache_counters()["hit"] == 1
        assert warm.schedulable == cold.schedulable
        assert warm.virtual_deadlines == cold.virtual_deadlines
        assert warm.iterations == cold.iterations
        assert warm.detail == cold.detail

    def test_hit_across_reorder_and_reid(self, cache_on):
        ts = TaskSet(make_tasks())
        cold = run_tuning_stages(ts, STAGES, 100_000)

        clone = TaskSet(reordered_clone(make_tasks()))
        before = vc.cache_counters()["hit"]
        served = run_tuning_stages(clone, STAGES, 100_000)
        assert vc.cache_counters()["hit"] == before + 1
        assert served.schedulable == cold.schedulable
        # deadlines remapped onto the *clone's* ids, parameter-for-
        # parameter equal to the cold run's assignment
        by_params_cold = {
            tuple(vc._task_params(t)): cold.virtual_deadlines.get(t.task_id)
            for t in ts if t.is_high
        }
        by_params_clone = {
            tuple(vc._task_params(t)): served.virtual_deadlines.get(t.task_id)
            for t in clone if t.is_high
        }
        assert by_params_clone == by_params_cold


class TestPartitionRoundTrip:
    def test_hit_matches_uncached_run(self, cache_on):
        test, strategy = get_test("ey"), get_strategy("cu-udp")
        ts = TaskSet(make_tasks())
        cold = partition(ts, 2, test, strategy)
        assert vc.cache_counters()["store"] >= 1

        clone_tasks = reordered_clone(make_tasks())
        clone = TaskSet(clone_tasks)
        before = vc.cache_counters()["hit"]
        served = partition(clone, 2, test, strategy)
        assert vc.cache_counters()["hit"] == before + 1

        # The served result must be indistinguishable from an uncached
        # partition of the clone itself.
        vc.reconfigure()  # cache off-path: fresh env read happens lazily
        fresh = partition(TaskSet(clone_tasks), 2, test, strategy)
        assert served.success == fresh.success == cold.success
        assert served.m == fresh.m
        assert served.assignment == fresh.assignment
        assert [
            [t.task_id for t in core] for core in served.cores
        ] == [[t.task_id for t in core] for core in fresh.cores]
        assert (served.failed_task is None) == (fresh.failed_task is None)

    def test_tied_orderings_served_result_is_valid(self, cache_on):
        """When strategy ordering ties on utilization, a re-id'd clone
        places tasks in a different order than the cold run — the cache
        then serves the *cold* layout mapped onto the clone's tasks.
        That layout must still be a valid successful partition of the
        clone (parameter-identical cores pass the same tests), which is
        the verdict-level contract the cache guarantees."""
        test, strategy = get_test("ey"), get_strategy("cu-udp")
        cold = partition(TaskSet(make_tied_tasks()), 2, test, strategy)
        assert cold.success

        clone = TaskSet(reordered_clone(make_tied_tasks()))
        served = partition(clone, 2, test, strategy)
        assert served.success
        clone_ids = {t.task_id for t in clone}
        assert set(served.assignment) == clone_ids
        for core in served.cores:
            if len(core):
                assert test.is_schedulable(core)

    def test_strategy_and_m_separate_keys(self, cache_on):
        test = get_test("ey")
        ts = TaskSet(make_tasks())
        partition(ts, 2, test, get_strategy("cu-udp"))
        assert vc.lookup_partition(ts, 2, test, get_strategy("cu-udp")) is not None
        assert vc.lookup_partition(ts, 3, test, get_strategy("cu-udp")) is None
        assert vc.lookup_partition(ts, 2, test, get_strategy("ca-udp")) is None


class TestLruBound:
    def test_eviction_past_capacity(self, cache_on, monkeypatch):
        monkeypatch.setenv("REPRO_VERDICT_CACHE_SIZE", "2")
        vc.reconfigure()
        ts = TaskSet(make_tasks())
        outcome = run_tuning_stages(ts, STAGES, 100_000)
        for cap in (100_000, 110_000, 120_000):
            vc.store_tuning(ts, STAGES, cap, outcome)
        assert vc.lookup_tuning(ts, STAGES, 100_000) is None  # evicted
        assert vc.lookup_tuning(ts, STAGES, 110_000) is not None
        assert vc.lookup_tuning(ts, STAGES, 120_000) is not None


class TestPersistentTier:
    def test_survives_process_restart(self, cache_on, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_VERDICT_CACHE_DIR", str(tmp_path))
        vc.reconfigure()
        ts = TaskSet(make_tasks())
        cold = run_tuning_stages(ts, STAGES, 100_000)
        blobs = list((tmp_path / "objects").iterdir())
        assert len(blobs) == 1

        vc.reconfigure()  # simulated restart: LRU gone, disk survives
        vc.reset_cache_counters()
        warm = run_tuning_stages(ts, STAGES, 100_000)
        counters = vc.cache_counters()
        assert counters["disk-hit"] == 1
        assert warm.virtual_deadlines == cold.virtual_deadlines

        # promoted into the LRU: the next lookup never touches disk
        vc.reset_cache_counters()
        run_tuning_stages(ts, STAGES, 100_000)
        assert vc.cache_counters()["hit"] == 1
        assert vc.cache_counters()["disk-hit"] == 0

    @pytest.mark.parametrize(
        "damage",
        [
            "not json at all",
            json.dumps({"schema": "repro-verdict-cache/999"}),
            json.dumps(["wrong", "shape"]),
        ],
    )
    def test_corruption_is_a_miss_and_discarded(
        self, cache_on, monkeypatch, tmp_path, damage
    ):
        monkeypatch.setenv("REPRO_VERDICT_CACHE_DIR", str(tmp_path))
        vc.reconfigure()
        ts = TaskSet(make_tasks())
        run_tuning_stages(ts, STAGES, 100_000)
        blob = next((tmp_path / "objects").iterdir())
        blob.write_text(damage)

        vc.reconfigure()  # drop the LRU so the read must go to disk
        vc.reset_cache_counters()
        assert vc.lookup_tuning(ts, STAGES, 100_000) is None
        counters = vc.cache_counters()
        assert counters["disk-reject"] == 1
        assert counters["miss"] == 1
        assert not blob.exists(), "damaged payload must be quarantined"
