"""LoShrinkProbe must agree with the full LO-mode scenario check."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.dbf import DemandScenario, HorizonExceeded
from repro.model import Criticality, MCTask, TaskSet

from tests.conftest import hc_task, lc_task


class TestBasics:
    def test_lc_task_rejected(self, simple_mixed_taskset):
        scenario = DemandScenario(simple_mixed_taskset)
        lc = simple_mixed_taskset.low_tasks[0]
        with pytest.raises(ValueError, match="tunable"):
            scenario.lo_shrink_probe(lc)

    def test_foreign_task_rejected(self, simple_mixed_taskset):
        scenario = DemandScenario(simple_mixed_taskset)
        with pytest.raises(ValueError, match="not part"):
            scenario.lo_shrink_probe(hc_task(10, 1, 2))

    def test_out_of_range_deadline_rejected(self, simple_mixed_taskset):
        scenario = DemandScenario(simple_mixed_taskset)
        task = simple_mixed_taskset.high_tasks[0]
        probe = scenario.lo_shrink_probe(task)
        with pytest.raises(ValueError, match="outside"):
            probe.feasible(task.deadline + 1)

    def test_matches_full_check_on_known_case(self):
        # From test_dbf: background load makes Dv=41 infeasible, Dv=100 fine.
        task = hc_task(100, 40, 60)
        background = lc_task(10, 5)
        ts = TaskSet([task, background])
        probe = DemandScenario(ts).lo_shrink_probe(task)
        assert probe.feasible(100)
        assert not probe.feasible(41)


@st.composite
def probe_cases(draw):
    """A small task set, one tunable HC task, and a candidate deadline."""
    tasks = []
    n = draw(st.integers(min_value=1, max_value=4))
    for _ in range(n):
        period = draw(st.integers(min_value=5, max_value=80))
        wcet = draw(st.integers(min_value=1, max_value=max(1, period // 3)))
        deadline = draw(st.integers(min_value=wcet, max_value=period))
        tasks.append(
            MCTask(
                period=period,
                criticality=Criticality.LC,
                wcet_lo=wcet,
                wcet_hi=wcet,
                deadline=deadline,
            )
        )
    period = draw(st.integers(min_value=10, max_value=100))
    wcet_lo = draw(st.integers(min_value=1, max_value=period // 2))
    wcet_hi = draw(st.integers(min_value=wcet_lo, max_value=period))
    deadline = draw(st.integers(min_value=wcet_hi, max_value=period))
    tunable = MCTask(
        period=period,
        criticality=Criticality.HC,
        wcet_lo=wcet_lo,
        wcet_hi=wcet_hi,
        deadline=deadline,
    )
    candidate = draw(st.integers(min_value=wcet_lo, max_value=deadline))
    return TaskSet(tasks + [tunable]), tunable, candidate


@given(probe_cases())
@settings(max_examples=120, deadline=None)
def test_probe_agrees_with_full_scenario(case):
    taskset, tunable, candidate = case
    scenario = DemandScenario(taskset)
    try:
        probe = scenario.lo_shrink_probe(tunable)
        probe_verdict = probe.feasible(candidate)
    except HorizonExceeded:
        return
    try:
        full = DemandScenario(taskset, {tunable.task_id: candidate})
        full_verdict = full.lo_violation() is None
    except HorizonExceeded:
        # The probe's shared horizon can only be more conservative.
        assert not probe_verdict or True
        return
    assert probe_verdict == full_verdict, (
        f"probe={probe_verdict} full={full_verdict} "
        f"candidate={candidate}\n{taskset.describe()}"
    )
