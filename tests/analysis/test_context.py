"""Differential and rollback tests for the incremental analysis contexts.

The incremental path's whole contract is *bit-identical verdicts*: for any
probe sequence, ``context.analyze(task)`` must equal
``test.analyze(TaskSet(committed + [task]))`` — verdicts, virtual
deadlines, scaling factors and priorities.  These tests sweep generated
task sets over both deadline types and several (PH, m) combinations and
replay allocation-like probe/commit sequences against every registered
test, asserting the equality the partitioning hot loop relies on.
"""

from __future__ import annotations

import pytest

from repro.analysis import get_test, registered_tests
from repro.analysis.context import AnalysisContext
from repro.generator import GeneratorConfig, MCTaskSetGenerator
from repro.model import TaskSet
from repro.util.rng import derive_rng

from tests.conftest import hc_task, lc_task

#: Tests expected to provide an incremental context.
CONTEXT_TESTS = ("edf-vd", "ey", "ecdf", "amc-rtb", "amc-max")

#: Sweep coverage: (deadline_type, p_high, m) as in the paper's figures.
SWEEP_CASES = [
    ("implicit", 0.5, 2),
    ("implicit", 0.3, 4),
    ("implicit", 0.7, 2),
    ("constrained", 0.5, 2),
    ("constrained", 0.5, 4),
    ("constrained", 0.3, 2),
]


def generated_tasksets(deadline_type: str, p_high: float, m: int, count: int = 6):
    """Deterministic sample of generated task sets for one sweep case."""
    generator = MCTaskSetGenerator(
        GeneratorConfig(m=m, p_high=p_high, deadline_type=deadline_type)
    )
    rng = derive_rng("context-differential", deadline_type, p_high, m)
    out = []
    targets = [(0.3, 0.2, 0.3), (0.5, 0.25, 0.3), (0.6, 0.3, 0.35), (0.7, 0.3, 0.4)]
    while len(out) < count:
        u_hh, u_lh, u_ll = targets[len(out) % len(targets)]
        taskset = generator.generate(rng, u_hh, u_lh, u_ll)
        if taskset is not None:
            out.append(taskset)
    return out


def assert_results_match(incremental, scratch, label: str) -> None:
    """Context vs from-scratch result equality (the differential contract)."""
    assert incremental.schedulable == scratch.schedulable, label
    assert incremental.virtual_deadlines == scratch.virtual_deadlines, label
    assert incremental.scaling_factor == scratch.scaling_factor, label
    assert incremental.priorities == scratch.priorities, label


def replay(test, taskset: TaskSet) -> int:
    """Replay a greedy one-core allocation, differentially checking every
    probe; returns the number of probes checked."""
    context = test.make_context()
    committed: list = []
    probes = 0
    for task in taskset:
        candidate = TaskSet(committed + [task])
        if not test.supports(candidate):
            continue
        scratch = test.analyze(candidate)
        incremental = context.analyze(task)
        assert_results_match(incremental, scratch, f"{test.name}: probe {task.name}")
        assert context.probe(task) == scratch.schedulable
        probes += 1
        if scratch.schedulable:
            context.commit(task)
            committed.append(task)
    assert context.taskset() == TaskSet(committed)
    return probes


class TestDifferentialSweep:
    @pytest.mark.parametrize("deadline_type,p_high,m", SWEEP_CASES)
    @pytest.mark.parametrize("test_name", CONTEXT_TESTS)
    def test_context_matches_from_scratch(self, test_name, deadline_type, p_high, m):
        test = get_test(test_name)
        if not test.supports_deadline_type(deadline_type):
            pytest.skip(f"{test_name} does not support {deadline_type} deadlines")
        total = 0
        for taskset in generated_tasksets(deadline_type, p_high, m):
            total += replay(test, taskset)
        assert total > 0  # the sweep actually exercised probes

    @pytest.mark.parametrize("test_name", sorted(registered_tests()))
    def test_every_registered_test_is_covered(self, test_name):
        """Every registered test either provides a context (exercised by the
        differential sweep above) or explicitly falls back (None)."""
        context = get_test(test_name).make_context()
        if test_name in CONTEXT_TESTS:
            assert isinstance(context, AnalysisContext)
        else:
            assert context is None


class TestProbeRollback:
    """A failed (or any) probe must leave the context state untouched."""

    @pytest.mark.parametrize("test_name", CONTEXT_TESTS)
    def test_failed_probe_leaves_state_untouched(self, test_name):
        test = get_test(test_name)
        context = test.make_context()
        base = [
            hc_task(100, 20, 40, name="h1"),
            lc_task(80, 16, name="l1"),
        ]
        for task in base:
            assert context.probe(task)
            context.commit(task)
        reference = hc_task(120, 10, 25, name="ref")
        before = context.analyze(reference)
        # An impossible task: utilization above 1 on its own.
        monster = hc_task(10, 8, 10, name="monster")
        assert not context.probe(monster)
        after = context.analyze(reference)
        assert_results_match(after, before, test_name)
        assert context.tasks == tuple(base)

    @pytest.mark.parametrize("test_name", CONTEXT_TESTS)
    def test_snapshot_rollback_restores_exact_state(self, test_name):
        test = get_test(test_name)
        context = test.make_context()
        first = hc_task(100, 20, 40, name="h1")
        context.commit(first)
        token = context.snapshot()
        reference = hc_task(150, 15, 30, name="ref")
        before = context.analyze(reference)

        extra = lc_task(60, 12, name="l-extra")
        context.commit(extra)
        assert context.tasks == (first, extra)
        context.rollback(token)
        assert context.tasks == (first,)

        after = context.analyze(reference)
        assert_results_match(after, before, test_name)
        # The restored accumulators must match a freshly built context
        # bit-for-bit, not approximately.
        fresh = test.make_context()
        fresh.commit(first)
        assert_results_match(
            context.analyze(reference), fresh.analyze(reference), test_name
        )

    def test_rollback_rejects_future_snapshot(self):
        context = get_test("ecdf").make_context()
        context.commit(lc_task(50, 5, name="l1"))
        token = context.snapshot()
        context.rollback(token)  # fine: same state
        fresh = get_test("ecdf").make_context()
        with pytest.raises(ValueError):
            fresh.rollback(token)


class TestContextModelGuards:
    def test_edfvd_context_rejects_constrained(self):
        context = get_test("edf-vd").make_context()
        with pytest.raises(ValueError, match="implicit-deadline"):
            context.analyze(hc_task(100, 10, 20, deadline=80))

    def test_amc_context_rejects_unconstrained(self):
        context = get_test("amc-max").make_context()
        with pytest.raises(ValueError, match="constrained"):
            context.analyze(hc_task(100, 10, 20, deadline=150))


class TestRollbackDivergence:
    """Stale tokens from a diverged history must be rejected, not silently
    restore accumulators that no longer match the committed tasks."""

    def test_stale_token_after_divergent_recommit_raises(self):
        context = get_test("ecdf").make_context()
        a = hc_task(100, 10, 20, name="a")
        b = lc_task(80, 8, name="b")
        c = lc_task(60, 30, name="c")
        context.commit(a)
        token_one = context.snapshot()
        context.commit(b)
        token_two = context.snapshot()
        context.rollback(token_one)
        context.commit(c)
        with pytest.raises(ValueError, match="history"):
            context.rollback(token_two)
        assert context.tasks == (a, c)

    def test_retry_pattern_reuses_token(self):
        context = get_test("ecdf").make_context()
        a = hc_task(100, 10, 20, name="a")
        context.commit(a)
        token = context.snapshot()
        reference = hc_task(150, 15, 30, name="ref")
        before = context.analyze(reference)
        for attempt in range(3):
            context.commit(lc_task(50 + attempt, 5, name=f"try{attempt}"))
            context.rollback(token)
        assert context.tasks == (a,)
        assert_results_match(context.analyze(reference), before, "retry")
