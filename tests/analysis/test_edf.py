"""Unit tests for repro.analysis.edf."""

import pytest

from repro.analysis.edf import (
    EDFTest,
    edf_demand_schedulable,
    edf_utilization_schedulable,
)
from repro.model import TaskSet

from tests.conftest import hc_task, lc_task


class TestUtilizationTest:
    def test_below_one(self):
        assert edf_utilization_schedulable(0.99)

    def test_exactly_one(self):
        assert edf_utilization_schedulable(1.0)

    def test_above_one(self):
        assert not edf_utilization_schedulable(1.01)


class TestDemandCriterion:
    def test_schedulable_constrained_set(self):
        ts = TaskSet(
            [lc_task(10, 2, deadline=5, name="a"), lc_task(20, 4, deadline=15, name="b")]
        )
        assert edf_demand_schedulable(ts, use_hi_wcet=False)

    def test_unschedulable_tight_deadlines(self):
        ts = TaskSet(
            [lc_task(10, 4, deadline=4, name="a"), lc_task(10, 4, deadline=5, name="b")]
        )
        assert not edf_demand_schedulable(ts, use_hi_wcet=False)

    def test_hi_budget_toggle_matters(self):
        ts = TaskSet(
            [hc_task(10, 2, 6, deadline=8, name="h"), lc_task(10, 4, deadline=9, name="l")]
        )
        assert edf_demand_schedulable(ts, use_hi_wcet=False)
        assert not edf_demand_schedulable(ts, use_hi_wcet=True)


class TestEDFTestClass:
    def test_reservation_mode_uses_hi_budgets(self):
        # U_LO = 0.6 but U with C_H = 1.2: reservation rejects, lo accepts.
        ts = TaskSet([hc_task(10, 3, 9, name="h"), lc_task(10, 3, name="l")])
        assert not EDFTest("reservation").is_schedulable(ts)
        assert EDFTest("lo").is_schedulable(ts)

    def test_constrained_routes_to_demand_criterion(self):
        ts = TaskSet([lc_task(10, 3, deadline=6, name="a")])
        assert EDFTest("lo").is_schedulable(ts)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            EDFTest("bogus")

    def test_names(self):
        assert EDFTest("lo").name == "edf-lo"
        assert EDFTest().name == "edf-reservation"

    def test_analyze_detail_mentions_utilization(self):
        ts = TaskSet([lc_task(10, 5, name="a")])
        result = EDFTest("lo").analyze(ts)
        assert result.schedulable
        assert "U=" in result.detail
