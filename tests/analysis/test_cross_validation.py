"""Integration: every accepted task set must simulate without MC violations.

This is the suite's strongest soundness check — it ties the analytical side
(:mod:`repro.analysis`) to the operational side (:mod:`repro.sim`) for all
five MC tests, over randomly generated workloads at several load levels.
"""

import pytest

from repro.analysis import (
    AMCmaxTest,
    AMCrtbTest,
    ECDFTest,
    EDFVDTest,
    EYTest,
)
from repro.generator import MCTaskSetGenerator
from repro.sim import validate_against_simulation
from repro.util import derive_rng

TESTS = [
    EDFVDTest(),
    EYTest(),
    ECDFTest(),
    AMCrtbTest(),
    AMCmaxTest(),
    AMCmaxTest("opa"),
]
LOADS = [(0.4, 0.2, 0.3), (0.7, 0.35, 0.25), (0.9, 0.5, 0.3)]


@pytest.mark.parametrize("test", TESTS, ids=lambda t: t.name)
@pytest.mark.parametrize("load", LOADS, ids=lambda lo: f"uhh={lo[0]}")
def test_accepted_sets_simulate_cleanly(test, load):
    u_hh, u_lh, u_ll = load
    rng = derive_rng("cross-validation", test.name, load)
    deadline_type = "implicit" if test.name == "edf-vd" else "constrained"
    gen = MCTaskSetGenerator(
        m=1, n_min=3, n_max=6, deadline_type=deadline_type
    )
    validated = 0
    for _ in range(12):
        ts = gen.generate(rng, u_hh, u_lh, u_ll)
        if ts is None or not test.is_schedulable(ts):
            continue
        violations = validate_against_simulation(
            ts, test, rng, horizon=6000, random_runs=2
        )
        assert violations == [], (
            f"{test.name} accepted a set that missed deadlines: "
            f"{violations[:3]}\n{ts.describe()}"
        )
        validated += 1
    # At light load almost everything is accepted; at heavy load some runs
    # may validate fewer sets, but zero would make the test vacuous.
    if load == LOADS[0]:
        assert validated >= 5


def test_rejected_sets_may_still_simulate_fine():
    """Documents sufficiency-only: rejection does not imply a miss."""
    rng = derive_rng("sufficiency-demo")
    gen = MCTaskSetGenerator(m=1, n_min=3, n_max=5)
    test = EDFVDTest()
    for _ in range(200):
        ts = gen.generate(rng, 0.85, 0.4, 0.35)
        if ts is not None and not test.is_schedulable(ts):
            # No assertion on the simulation outcome — just exercising the
            # ValueError contract of validate_against_simulation.
            with pytest.raises(ValueError, match="accepted"):
                validate_against_simulation(ts, test, rng)
            return
    pytest.skip("no rejected set found at this load (unlikely)")
