"""Unit tests for the empirical speed-up analysis."""

import pytest

from repro.analysis import EDFVDTest
from repro.analysis.speedup import (
    EDFVD_PARTITIONED_SPEEDUP_BOUND,
    mc_feasible_load,
    minimum_speedup,
    scale_taskset,
    speedup_for_test,
)
from repro.core import cu_udp, partition
from repro.generator import MCTaskSetGenerator
from repro.model import TaskSet
from repro.util import derive_rng

from tests.conftest import hc_task, lc_task


class TestScaleTaskset:
    def test_halves_budgets(self, simple_mixed_taskset):
        fast = scale_taskset(simple_mixed_taskset, 2.0)
        for before, after in zip(simple_mixed_taskset, fast):
            assert after.wcet_lo <= before.wcet_lo
            assert after.period == before.period


class TestFeasibleLoad:
    def test_formula(self):
        ts = TaskSet([hc_task(100, 30, 60, name="h"), lc_task(100, 50, name="l")])
        # U_LO = 0.8, U_HH = 0.6 -> load = 0.8
        assert mc_feasible_load(ts) == pytest.approx(0.8)

    def test_normalized_by_m(self):
        ts = TaskSet([hc_task(100, 30, 60, name="h"), lc_task(100, 50, name="l")])
        assert mc_feasible_load(ts, m=2) == pytest.approx(0.4)

    def test_invalid_m(self, simple_mixed_taskset):
        with pytest.raises(ValueError):
            mc_feasible_load(simple_mixed_taskset, 0)


class TestMinimumSpeedup:
    def test_already_schedulable_returns_lo(self, simple_mixed_taskset):
        assert (
            speedup_for_test(simple_mixed_taskset, EDFVDTest()) == 1.0
        )

    def test_unschedulable_needs_more_than_one(self, heavy_taskset):
        factor = speedup_for_test(heavy_taskset, EDFVDTest())
        assert factor is not None
        assert factor > 1.0
        # The returned speed must actually suffice.
        assert EDFVDTest().is_schedulable(scale_taskset(heavy_taskset, factor))

    def test_none_when_cap_too_small(self, heavy_taskset):
        assert (
            minimum_speedup(
                heavy_taskset, EDFVDTest().is_schedulable, hi=1.01
            )
            is None
        )

    def test_bisection_tight(self, heavy_taskset):
        test = EDFVDTest()
        factor = minimum_speedup(
            heavy_taskset, test.is_schedulable, tolerance=0.005
        )
        assert factor is not None
        # Slightly below the reported factor must fail (within rounding
        # effects of the integer budget model).
        below = max(1.0, factor - 0.05)
        if below < factor:
            scaled = scale_taskset(heavy_taskset, below)
            # Can pass occasionally due to ceil() plateaus, but the factor
            # itself always passes:
            assert test.is_schedulable(scale_taskset(heavy_taskset, factor))

    def test_invalid_args(self, heavy_taskset):
        with pytest.raises(ValueError):
            minimum_speedup(heavy_taskset, lambda ts: True, lo=0.0)
        with pytest.raises(ValueError):
            minimum_speedup(heavy_taskset, lambda ts: True, tolerance=0.0)


class TestPartitionedSpeedupBound:
    def test_random_feasible_sets_within_8_3(self):
        """Empirical check of the inherited 8/3 bound for CU-UDP + EDF-VD.

        For task sets whose necessary load condition holds (feasible on m
        unit-speed cores), the partitioned algorithm must succeed at speed
        8/3; we verify a stronger statement empirically — the measured
        minimum speed-up stays below the bound.
        """
        m = 2
        algo_accepts = lambda ts: partition(
            ts, m, EDFVDTest(), cu_udp()
        ).success
        gen = MCTaskSetGenerator(m=m)
        rng = derive_rng("speedup-bound")
        checked = 0
        for _ in range(25):
            ts = gen.generate(rng, 0.8, 0.4, 0.45)
            if ts is None:
                continue
            if mc_feasible_load(ts, m) > 1.0:
                continue  # not feasible even on unit-speed cores
            factor = minimum_speedup(ts, algo_accepts, hi=4.0, tolerance=0.02)
            assert factor is not None
            assert factor <= EDFVD_PARTITIONED_SPEEDUP_BOUND + 0.02, (
                f"speed-up {factor} exceeds 8/3 for:\n{ts.describe()}"
            )
            checked += 1
        assert checked >= 5
