"""Unit tests for the generic partitioned-allocation engine."""

import pytest

from repro.analysis import EDFVDTest
from repro.core import PartitionResult, ProcessorState, partition
from repro.core.strategies import first_fit
from repro.core.allocator import PartitioningStrategy
from repro.model import TaskSet

from tests.conftest import hc_task, lc_task


def trivial_strategy() -> PartitioningStrategy:
    return PartitioningStrategy(
        name="trivial",
        order=lambda ts: list(ts),
        hc_fit=first_fit,
        lc_fit=first_fit,
    )


class TestProcessorState:
    def test_accumulates_utilizations(self):
        state = ProcessorState(0)
        state.add(hc_task(100, 20, 50))
        state.add(lc_task(100, 30))
        assert state.u_lh == pytest.approx(0.2)
        assert state.u_hh == pytest.approx(0.5)
        assert state.u_ll == pytest.approx(0.3)
        assert state.utilization_difference == pytest.approx(0.3)
        assert state.utilization_lo == pytest.approx(0.5)

    def test_taskset_caches_and_refreshes(self):
        state = ProcessorState(1)
        empty = state.taskset()
        assert len(empty) == 0
        task = lc_task(10, 1)
        state.add(task)
        assert list(state.taskset()) == [task]


class TestPartition:
    def test_success_covers_every_task(self, simple_mixed_taskset):
        result = partition(simple_mixed_taskset, 2, EDFVDTest(), trivial_strategy())
        assert result.success
        placed = [t for core in result.cores for t in core]
        assert {t.task_id for t in placed} == {
            t.task_id for t in simple_mixed_taskset
        }
        assert set(result.assignment) == {t.task_id for t in simple_mixed_taskset}

    def test_every_core_passes_the_test(self, simple_mixed_taskset):
        test = EDFVDTest()
        result = partition(simple_mixed_taskset, 2, test, trivial_strategy())
        for core in result.cores:
            assert len(core) == 0 or test.is_schedulable(core)

    def test_failure_reports_task_and_partial_state(self):
        # Two heavy HC tasks + one more heavy HC task than 2 cores can take.
        ts = TaskSet(
            [
                hc_task(100, 10, 90, name="a"),
                hc_task(100, 10, 90, name="b"),
                hc_task(100, 10, 90, name="c"),
            ]
        )
        result = partition(ts, 2, EDFVDTest(), trivial_strategy())
        assert not result.success
        assert result.failed_task is not None and result.failed_task.name == "c"
        assert len(result.assignment) == 2

    def test_core_of(self, simple_mixed_taskset):
        result = partition(simple_mixed_taskset, 2, EDFVDTest(), trivial_strategy())
        for task in simple_mixed_taskset:
            core_idx = result.core_of(task)
            assert task in result.cores[core_idx]

    def test_invalid_m(self, simple_mixed_taskset):
        with pytest.raises(ValueError):
            partition(simple_mixed_taskset, 0, EDFVDTest(), trivial_strategy())

    def test_result_truthiness_and_describe(self, simple_mixed_taskset):
        result = partition(simple_mixed_taskset, 2, EDFVDTest(), trivial_strategy())
        assert bool(result) is result.success
        text = result.describe()
        assert "trivial" in text and "edf-vd" in text

    def test_empty_taskset(self):
        result = partition(TaskSet(), 3, EDFVDTest(), trivial_strategy())
        assert result.success
        assert all(len(core) == 0 for core in result.cores)

    def test_single_core_equals_uniprocessor_test(self, simple_mixed_taskset):
        test = EDFVDTest()
        result = partition(simple_mixed_taskset, 1, test, trivial_strategy())
        assert result.success == test.is_schedulable(simple_mixed_taskset)


class TestPartitionResultDataclass:
    def test_core_of_unassigned_raises(self):
        result = PartitionResult(
            success=False,
            strategy_name="s",
            test_name="t",
            m=1,
            cores=(TaskSet(),),
        )
        with pytest.raises(KeyError):
            result.core_of(lc_task(10, 1))
