"""Unit tests for the generic partitioned-allocation engine."""

import pytest

from repro.analysis import EDFVDTest
from repro.core import PartitionResult, ProcessorState, partition
from repro.core.strategies import first_fit
from repro.core.allocator import PartitioningStrategy
from repro.model import TaskSet

from tests.conftest import hc_task, lc_task


def trivial_strategy() -> PartitioningStrategy:
    return PartitioningStrategy(
        name="trivial",
        order=lambda ts: list(ts),
        hc_fit=first_fit,
        lc_fit=first_fit,
    )


class TestProcessorState:
    def test_accumulates_utilizations(self):
        state = ProcessorState(0)
        state.add(hc_task(100, 20, 50))
        state.add(lc_task(100, 30))
        assert state.u_lh == pytest.approx(0.2)
        assert state.u_hh == pytest.approx(0.5)
        assert state.u_ll == pytest.approx(0.3)
        assert state.utilization_difference == pytest.approx(0.3)
        assert state.utilization_lo == pytest.approx(0.5)

    def test_taskset_caches_and_refreshes(self):
        state = ProcessorState(1)
        empty = state.taskset()
        assert len(empty) == 0
        task = lc_task(10, 1)
        state.add(task)
        assert list(state.taskset()) == [task]


class TestPartition:
    def test_success_covers_every_task(self, simple_mixed_taskset):
        result = partition(simple_mixed_taskset, 2, EDFVDTest(), trivial_strategy())
        assert result.success
        placed = [t for core in result.cores for t in core]
        assert {t.task_id for t in placed} == {
            t.task_id for t in simple_mixed_taskset
        }
        assert set(result.assignment) == {t.task_id for t in simple_mixed_taskset}

    def test_every_core_passes_the_test(self, simple_mixed_taskset):
        test = EDFVDTest()
        result = partition(simple_mixed_taskset, 2, test, trivial_strategy())
        for core in result.cores:
            assert len(core) == 0 or test.is_schedulable(core)

    def test_failure_reports_task_and_partial_state(self):
        # Two heavy HC tasks + one more heavy HC task than 2 cores can take.
        ts = TaskSet(
            [
                hc_task(100, 10, 90, name="a"),
                hc_task(100, 10, 90, name="b"),
                hc_task(100, 10, 90, name="c"),
            ]
        )
        result = partition(ts, 2, EDFVDTest(), trivial_strategy())
        assert not result.success
        assert result.failed_task is not None and result.failed_task.name == "c"
        assert len(result.assignment) == 2

    def test_core_of(self, simple_mixed_taskset):
        result = partition(simple_mixed_taskset, 2, EDFVDTest(), trivial_strategy())
        for task in simple_mixed_taskset:
            core_idx = result.core_of(task)
            assert task in result.cores[core_idx]

    def test_invalid_m(self, simple_mixed_taskset):
        with pytest.raises(ValueError):
            partition(simple_mixed_taskset, 0, EDFVDTest(), trivial_strategy())

    def test_result_truthiness_and_describe(self, simple_mixed_taskset):
        result = partition(simple_mixed_taskset, 2, EDFVDTest(), trivial_strategy())
        assert bool(result) is result.success
        text = result.describe()
        assert "trivial" in text and "edf-vd" in text

    def test_empty_taskset(self):
        result = partition(TaskSet(), 3, EDFVDTest(), trivial_strategy())
        assert result.success
        assert all(len(core) == 0 for core in result.cores)

    def test_single_core_equals_uniprocessor_test(self, simple_mixed_taskset):
        test = EDFVDTest()
        result = partition(simple_mixed_taskset, 1, test, trivial_strategy())
        assert result.success == test.is_schedulable(simple_mixed_taskset)


class TestPartitionResultDataclass:
    def test_core_of_unassigned_raises(self):
        result = PartitionResult(
            success=False,
            strategy_name="s",
            test_name="t",
            m=1,
            cores=(TaskSet(),),
        )
        with pytest.raises(KeyError):
            result.core_of(lc_task(10, 1))


class TestSupportsGuard:
    def test_unsupported_taskset_raises_typed_error(self):
        from repro.core import UnsupportedTasksetError

        constrained = TaskSet([hc_task(100, 10, 20, deadline=80)])
        with pytest.raises(UnsupportedTasksetError) as excinfo:
            partition(constrained, 2, EDFVDTest(), trivial_strategy())
        assert excinfo.value.strategy_name == "trivial"
        assert excinfo.value.test_name == "edf-vd"
        assert "trivial" in str(excinfo.value)
        assert "edf-vd" in str(excinfo.value)

    def test_typed_error_is_a_value_error(self):
        from repro.core import UnsupportedTasksetError

        assert issubclass(UnsupportedTasksetError, ValueError)

    def test_raised_before_any_probe(self):
        """The guard fires up front, not mid-allocation from the analysis."""
        from repro.core import UnsupportedTasksetError

        class ExplodingTest(EDFVDTest):
            def analyze(self, taskset):  # pragma: no cover - must not run
                raise AssertionError("analyze must not be reached")

        constrained = TaskSet(
            [hc_task(100, 10, 20, deadline=80), lc_task(50, 5)]
        )
        with pytest.raises(UnsupportedTasksetError):
            partition(constrained, 2, ExplodingTest(), trivial_strategy())

    def test_supported_taskset_unaffected(self, simple_mixed_taskset):
        result = partition(
            simple_mixed_taskset, 2, EDFVDTest(), trivial_strategy()
        )
        assert result.success


class TestIncrementalParity:
    """partition(incremental=True) must equal the from-scratch walk."""

    def _tasksets(self, deadline_type, m, count=8):
        from repro.generator import GeneratorConfig, MCTaskSetGenerator
        from repro.util.rng import derive_rng

        generator = MCTaskSetGenerator(
            GeneratorConfig(m=m, deadline_type=deadline_type)
        )
        rng = derive_rng("alloc-parity", deadline_type, m)
        out = []
        targets = [(0.4, 0.2, 0.3), (0.6, 0.3, 0.35), (0.75, 0.35, 0.4)]
        while len(out) < count:
            taskset = generator.generate(rng, *targets[len(out) % len(targets)])
            if taskset is not None:
                out.append(taskset)
        return out

    @pytest.mark.parametrize(
        "algorithm_name,deadline_type",
        [
            ("cu-udp-ecdf", "constrained"),
            ("cu-udp-ey", "constrained"),
            ("cu-udp-amc", "constrained"),
            ("cu-udp-edf-vd", "implicit"),
            ("ca-udp-ecdf", "implicit"),
        ],
    )
    def test_bit_identical_partition_results(self, algorithm_name, deadline_type):
        from repro.experiments import get_algorithm

        algorithm = get_algorithm(algorithm_name)
        for m in (2, 3):
            for taskset in self._tasksets(deadline_type, m):
                fast = algorithm.partition(taskset, m, incremental=True)
                slow = algorithm.partition(taskset, m, incremental=False)
                assert fast.success == slow.success
                assert fast.assignment == slow.assignment
                assert fast.cores == slow.cores
                assert fast.failed_task == slow.failed_task

    def test_opa_test_falls_back_to_from_scratch(self):
        """Tests without a context (make_context() is None) keep working."""
        from repro.analysis import AMCmaxTest

        test = AMCmaxTest("opa")
        assert test.make_context() is None
        taskset = TaskSet(
            [hc_task(100, 10, 20), hc_task(150, 15, 30), lc_task(50, 5)]
        )
        result = partition(taskset, 2, test, trivial_strategy())
        assert result.success == partition(
            taskset, 2, test, trivial_strategy(), incremental=False
        ).success
