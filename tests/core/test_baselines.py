"""Unit tests for the baseline partitioning strategies."""

from repro.analysis import EDFVDTest
from repro.core import (
    bfd,
    ca_f_f,
    ca_nosort_f_f,
    eca_wu_f,
    ffd,
    partition,
    wfd,
)
from repro.model import TaskSet

from tests.conftest import hc_task, lc_task


class TestCANosortFF:
    def test_preserves_input_order_within_classes(self):
        ts = TaskSet(
            [
                lc_task(100, 10, name="l1"),
                hc_task(100, 5, 10, name="h1"),
                hc_task(100, 30, 60, name="h2"),
                lc_task(100, 40, name="l2"),
            ]
        )
        names = [t.name for t in ca_nosort_f_f().order(ts)]
        assert names == ["h1", "h2", "l1", "l2"]

    def test_first_fit_stacks_core_zero(self):
        ts = TaskSet(
            [hc_task(100, 5, 10, name=f"h{i}") for i in range(4)]
        )
        result = partition(ts, 2, EDFVDTest(), ca_nosort_f_f())
        assert result.success
        assert len(result.cores[0]) == 4
        assert len(result.cores[1]) == 0


class TestCAFF:
    def test_sorted_within_classes(self):
        ts = TaskSet(
            [
                hc_task(100, 5, 10, name="small"),
                hc_task(100, 30, 60, name="big"),
                lc_task(100, 10, name="lsmall"),
                lc_task(100, 40, name="lbig"),
            ]
        )
        names = [t.name for t in ca_f_f().order(ts)]
        assert names == ["big", "small", "lbig", "lsmall"]


class TestECAWuF:
    def test_heavy_lc_placed_before_hc(self):
        ts = TaskSet(
            [
                hc_task(100, 30, 70, name="h"),
                lc_task(100, 60, name="heavy-lc"),
                lc_task(100, 10, name="light-lc"),
            ]
        )
        names = [t.name for t in eca_wu_f().order(ts)]
        assert names == ["heavy-lc", "h", "light-lc"]

    def test_threshold_configurable(self):
        ts = TaskSet(
            [hc_task(100, 30, 70, name="h"), lc_task(100, 60, name="lc")]
        )
        names = [t.name for t in eca_wu_f(threshold=0.7).order(ts)]
        assert names == ["h", "lc"]

    def test_can_beat_plain_worst_fit_on_heavy_lc(self):
        """The motivating case for the enhancement (Gu et al.): without the
        heavy-LC preference, worst-fit spreads the HC tasks over both cores
        and the heavy LC task no longer fits anywhere; with it, the LC task
        grabs a clean core first."""
        from repro.core import ca_wu_f

        ts = TaskSet(
            [
                hc_task(100, 20, 50, name="h1"),
                hc_task(100, 20, 50, name="h2"),
                lc_task(100, 90, name="monster"),
            ]
        )
        assert not partition(ts, 2, EDFVDTest(), ca_wu_f()).success
        assert partition(ts, 2, EDFVDTest(), eca_wu_f()).success


class TestClassicalStrategies:
    def test_ffd_wfd_bfd_all_place_easy_sets(self, simple_mixed_taskset):
        for strategy in (ffd(), wfd(), bfd()):
            result = partition(simple_mixed_taskset, 2, EDFVDTest(), strategy)
            assert result.success, strategy.name

    def test_wfd_spreads_bfd_packs(self):
        ts = TaskSet([lc_task(100, 30, name=f"l{i}") for i in range(4)])
        test = EDFVDTest()
        spread = partition(ts, 2, test, wfd())
        packed = partition(ts, 2, test, bfd())
        assert [len(c) for c in spread.cores] == [2, 2]
        # Best-fit packs until the EDF bound (three tasks at U=0.9), then
        # spills the fourth.
        assert [len(c) for c in packed.cores] == [3, 1]
