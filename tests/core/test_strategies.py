"""Unit tests for ordering rules, fit rules and the strategy registry."""

import pytest

from repro.core import ProcessorState, get_strategy, registered_strategies
from repro.core.strategies import (
    best_fit_by,
    first_fit,
    order_criticality_aware,
    order_criticality_aware_nosort,
    order_criticality_unaware,
    order_heavy_lc_first,
    udp_fit,
    worst_fit_by,
)
from repro.model import TaskSet

from tests.conftest import hc_task, lc_task


@pytest.fixture
def mixed() -> TaskSet:
    return TaskSet(
        [
            lc_task(100, 60, name="lc-heavy"),
            hc_task(100, 10, 30, name="hc-light"),
            lc_task(100, 20, name="lc-light"),
            hc_task(100, 40, 80, name="hc-heavy"),
        ]
    )


class TestOrders:
    def test_criticality_aware(self, mixed):
        names = [t.name for t in order_criticality_aware(mixed)]
        assert names == ["hc-heavy", "hc-light", "lc-heavy", "lc-light"]

    def test_criticality_aware_nosort(self, mixed):
        names = [t.name for t in order_criticality_aware_nosort(mixed)]
        assert names == ["hc-light", "hc-heavy", "lc-heavy", "lc-light"]

    def test_criticality_unaware(self, mixed):
        # Own-level utilizations: hc-heavy 0.8, lc-heavy 0.6, hc-light 0.3,
        # lc-light 0.2.
        names = [t.name for t in order_criticality_unaware(mixed)]
        assert names == ["hc-heavy", "lc-heavy", "hc-light", "lc-light"]

    def test_heavy_lc_first(self, mixed):
        names = [t.name for t in order_heavy_lc_first(0.5)(mixed)]
        assert names == ["lc-heavy", "hc-heavy", "hc-light", "lc-light"]

    def test_heavy_lc_threshold_excludes(self, mixed):
        names = [t.name for t in order_heavy_lc_first(0.7)(mixed)]
        # No LC task reaches 0.7: plain criticality-aware order.
        assert names == ["hc-heavy", "hc-light", "lc-heavy", "lc-light"]

    def test_orders_are_permutations(self, mixed):
        for order in (
            order_criticality_aware,
            order_criticality_aware_nosort,
            order_criticality_unaware,
            order_heavy_lc_first(0.5),
        ):
            assert sorted(t.task_id for t in order(mixed)) == sorted(
                t.task_id for t in mixed
            )


class TestFits:
    @staticmethod
    def _states(*diff_pairs):
        """Processor states with given (U_LH, U_HH) pairs."""
        states = []
        for idx, (u_lh, u_hh) in enumerate(diff_pairs):
            state = ProcessorState(idx)
            if u_hh:
                scale = 1000
                state.add(
                    hc_task(scale, int(u_lh * scale), int(u_hh * scale))
                )
            states.append(state)
        return states

    def test_first_fit_ignores_state(self):
        states = self._states((0.1, 0.5), (0.0, 0.0), (0.2, 0.3))
        assert first_fit(states) == [0, 1, 2]

    def test_udp_fit_orders_by_difference(self):
        states = self._states((0.1, 0.5), (0.0, 0.0), (0.1, 0.2))
        # differences: 0.4, 0.0, 0.1 -> order 1, 2, 0
        assert udp_fit(states) == [1, 2, 0]

    def test_worst_fit_by_hh(self):
        states = self._states((0.1, 0.5), (0.0, 0.0), (0.1, 0.2))
        fit = worst_fit_by(lambda p: p.u_hh)
        assert fit(states) == [1, 2, 0]

    def test_best_fit_reverses_worst_fit(self):
        states = self._states((0.1, 0.5), (0.0, 0.0), (0.1, 0.2))
        fit = best_fit_by(lambda p: p.u_hh)
        assert fit(states) == [0, 2, 1]

    def test_ties_broken_by_index(self):
        states = self._states((0.0, 0.0), (0.0, 0.0))
        assert udp_fit(states) == [0, 1]


class TestRegistry:
    def test_all_paper_strategies_registered(self):
        names = registered_strategies()
        for expected in (
            "ca-udp",
            "cu-udp",
            "ca-wu-f",
            "ca-nosort-f-f",
            "ca-f-f",
            "eca-wu-f",
            "ffd",
            "wfd",
            "bfd",
        ):
            assert expected in names

    def test_get_strategy(self):
        strategy = get_strategy("ca-udp")
        assert strategy.name == "ca-udp"

    def test_unknown_strategy(self):
        with pytest.raises(KeyError, match="known"):
            get_strategy("quantum-fit")
