"""Property-based tests for partitioning invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.analysis import EDFVDTest
from repro.core import get_strategy, partition, registered_strategies
from repro.model import Criticality, MCTask, TaskSet


@st.composite
def implicit_tasks(draw):
    period = draw(st.integers(min_value=10, max_value=200))
    high = draw(st.booleans())
    wcet_lo = draw(st.integers(min_value=1, max_value=period // 2))
    wcet_hi = (
        draw(st.integers(min_value=wcet_lo, max_value=period)) if high else wcet_lo
    )
    return MCTask(
        period=period,
        criticality=Criticality.HC if high else Criticality.LC,
        wcet_lo=wcet_lo,
        wcet_hi=wcet_hi,
    )


@st.composite
def strategy_names(draw):
    return draw(st.sampled_from(registered_strategies()))


@given(
    st.lists(implicit_tasks(), min_size=1, max_size=10),
    strategy_names(),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=80, deadline=None)
def test_partition_invariants(tasks, strategy_name, m):
    """No task lost or duplicated; accepted cores pass the test; failure
    names a task from the input."""
    taskset = TaskSet(tasks)
    test = EDFVDTest()
    result = partition(taskset, m, test, get_strategy(strategy_name))

    placed_ids = [t.task_id for core in result.cores for t in core]
    assert len(placed_ids) == len(set(placed_ids))  # no duplication
    input_ids = {t.task_id for t in taskset}
    assert set(placed_ids) <= input_ids

    for core in result.cores:
        if len(core):
            assert test.is_schedulable(core)

    if result.success:
        assert set(placed_ids) == input_ids
        assert set(result.assignment) == input_ids
    else:
        assert result.failed_task is not None
        assert result.failed_task.task_id in input_ids
        assert result.failed_task.task_id not in placed_ids


@given(st.lists(implicit_tasks(), min_size=1, max_size=8))
@settings(max_examples=40, deadline=None)
def test_more_cores_never_hurt_udp(tasks):
    """CU-UDP success is monotone in m on these workloads.

    Not a theorem for arbitrary strategies, but worst-fit spreading cannot
    lose admissible placements when cores are added while first-fit LC
    placement ignores the extra cores unless needed — a useful regression
    property for the engine.
    """
    taskset = TaskSet(tasks)
    test = EDFVDTest()
    small = partition(taskset, 2, test, get_strategy("cu-udp"))
    big = partition(taskset, 4, test, get_strategy("cu-udp"))
    if small.success:
        assert big.success
