"""Unit tests for the UDP strategies (Algorithm 1 of the paper)."""

from repro.analysis import EDFVDTest
from repro.core import ca_udp, cu_udp, partition
from repro.model import TaskSet

from tests.conftest import hc_task, lc_task


class TestCAUDP:
    def test_order_is_criticality_aware(self):
        strategy = ca_udp()
        ts = TaskSet(
            [
                lc_task(100, 90, name="lc-big"),
                hc_task(100, 5, 10, name="hc-small"),
            ]
        )
        names = [t.name for t in strategy.order(ts)]
        assert names == ["hc-small", "lc-big"]

    def test_hc_spread_balances_difference(self):
        """Four identical HC tasks land two per core with equal differences."""
        ts = TaskSet(
            [hc_task(100, 10, 40, name=f"h{i}") for i in range(4)]
        )
        result = partition(ts, 2, EDFVDTest(), ca_udp())
        assert result.success
        diffs = [core.utilization.difference for core in result.cores]
        assert abs(diffs[0] - diffs[1]) < 1e-9
        assert all(len(core) == 2 for core in result.cores)

    def test_lc_first_fit_packs_first_core(self):
        ts = TaskSet(
            [
                hc_task(100, 10, 20, name="h"),
                lc_task(100, 30, name="l1"),
                lc_task(100, 30, name="l2"),
            ]
        )
        result = partition(ts, 2, EDFVDTest(), ca_udp())
        assert result.success
        # Both LC tasks fit on core 0 (first-fit), regardless of balance.
        assert result.core_of(ts[1]) == 0
        assert result.core_of(ts[2]) == 0


class TestCUUDP:
    def test_order_is_criticality_unaware(self):
        strategy = cu_udp()
        ts = TaskSet(
            [
                lc_task(100, 90, name="lc-big"),
                hc_task(100, 5, 10, name="hc-small"),
            ]
        )
        names = [t.name for t in strategy.order(ts)]
        assert names == ["lc-big", "hc-small"]

    def test_same_fit_rules_as_ca_udp(self):
        assert cu_udp().hc_fit is ca_udp().hc_fit
        assert type(cu_udp().lc_fit) is type(ca_udp().lc_fit)

    def test_accepts_superset_on_heavy_lc_batch(self):
        """CU-UDP should succeed at least as often as CA-UDP when heavy LC
        tasks are present (the paper's Section IV observation)."""
        from repro.generator import MCTaskSetGenerator
        from repro.util import derive_rng

        rng = derive_rng("cu-vs-ca")
        gen = MCTaskSetGenerator(m=2, p_high=0.3)
        test = EDFVDTest()
        ca_wins = cu_wins = 0
        for _ in range(60):
            ts = gen.generate(rng, 0.55, 0.3, 0.55)
            if ts is None:
                continue
            ca_ok = partition(ts, 2, test, ca_udp()).success
            cu_ok = partition(ts, 2, test, cu_udp()).success
            ca_wins += ca_ok and not cu_ok
            cu_wins += cu_ok and not ca_ok
        assert cu_wins >= ca_wins
