"""Differential suite: partition_batch == scalar partition, set for set.

The batched path may settle a set via prefilters or the utilization-ledger
replay, or fall through to the incremental per-taskset path — whatever the
mechanism, ``accepted[i]`` must equal ``partition(...).success``.  The fast
tier covers one configuration per test family; the ``slow`` tier sweeps the
full strategies × tests × service-models cross product the issue calls for.
"""

from __future__ import annotations

import pytest

from repro.analysis import get_test
from repro.core import (
    UnsupportedTasksetError,
    get_strategy,
    partition,
    partition_batch,
)
from repro.generator import GeneratorConfig, MCTaskSetGenerator
from repro.model import MCTask, TaskSet, TaskSetBatch
from repro.util.rng import derive_rng

STRATEGIES = ("ca-udp", "cu-udp", "ca-f-f", "ca-nosort-f-f")
EXTRA_STRATEGIES = ("eca-wu-f", "ca-wu-f", "wfd", "bfd")


def generated_batch(m, deadline_type, service, count, label):
    gen = MCTaskSetGenerator(GeneratorConfig(m=m, deadline_type=deadline_type))
    columns = []
    for k in range(count):
        u_hh = 0.2 + (k % 8) * 0.1
        u_lh = min(u_hh, 0.1 + (k % 4) * 0.1)
        u_ll = 0.1 + (k % 6) * 0.12
        cols = gen.generate_columns(
            derive_rng(label, deadline_type, k), u_hh, u_lh, u_ll
        )
        if cols is not None:
            columns.append(cols)
    return TaskSetBatch(columns, service_model=service)


def assert_batch_matches_scalar(batch_args, m, test_name, strategy_name):
    deadline_type, service, count, label = batch_args
    batch = generated_batch(m, deadline_type, service, count, label)
    test = get_test(test_name)
    strategy = get_strategy(strategy_name)
    outcome = partition_batch(batch, m, test, strategy)
    assert len(outcome.accepted) == len(batch)

    fresh = generated_batch(m, deadline_type, service, count, label)
    scalar_test = get_test(test_name)
    for i in range(len(fresh)):
        expected = partition(fresh.taskset(i), m, scalar_test, strategy).success
        assert outcome.accepted[i] == expected, (
            f"set {i} diverged ({outcome.settled[i]}) for "
            f"{strategy_name}+{test_name} on {deadline_type}/{service}"
        )
    return outcome


class TestFastDifferential:
    @pytest.mark.parametrize("strategy_name", STRATEGIES)
    def test_edf_vd_ledger_complete(self, strategy_name):
        outcome = assert_batch_matches_scalar(
            ("implicit", None, 25, "pb-edfvd"), 2, "edf-vd", strategy_name
        )
        # The EDF-VD screen is complete: nothing may fall through.
        assert "full" not in outcome.settled_counts()

    @pytest.mark.parametrize("test_name", ["ey", "ecdf"])
    def test_demand_tests_partial_ledger(self, test_name):
        outcome = assert_batch_matches_scalar(
            ("implicit", None, 20, "pb-demand"), 2, test_name, "cu-udp"
        )
        counts = outcome.settled_counts()
        assert counts.get("ledger", 0) > 0  # the decided region settles sets

    def test_amc_falls_through(self):
        outcome = assert_batch_matches_scalar(
            ("constrained", None, 15, "pb-amc"), 2, "amc-max", "cu-udp"
        )
        assert "ledger" not in outcome.settled_counts()

    def test_degraded_service_differential(self):
        assert_batch_matches_scalar(
            ("implicit", "imprecise:0.5", 15, "pb-deg"), 2, "edf-vd", "cu-udp-res"
        )
        assert_batch_matches_scalar(
            ("implicit", "elastic:2.0", 12, "pb-deg2"), 2, "ey", "cu-udp"
        )


class TestEdgesAndGates:
    def test_empty_batch(self):
        outcome = partition_batch(
            TaskSetBatch([]), 2, get_test("edf-vd"), get_strategy("cu-udp")
        )
        assert outcome.accepted == []

    def test_invalid_m(self):
        with pytest.raises(ValueError, match="m must be positive"):
            partition_batch(
                TaskSetBatch([]), 0, get_test("edf-vd"), get_strategy("cu-udp")
            )

    def test_unsupported_deadline_shape_raises(self):
        constrained = TaskSet(
            [MCTask(period=10, criticality="HC", wcet_lo=2, wcet_hi=4, deadline=8)]
        )
        batch = TaskSetBatch.from_tasksets([constrained])
        with pytest.raises(UnsupportedTasksetError):
            partition_batch(batch, 2, get_test("edf-vd"), get_strategy("cu-udp"))

    def test_unsupported_service_model_raises(self):
        ts = TaskSet(
            [MCTask(period=10, criticality="LC", wcet_lo=2, wcet_hi=2)],
            service_model="imprecise:0.5",
        )
        batch = TaskSetBatch.from_tasksets([ts])
        with pytest.raises(UnsupportedTasksetError):
            partition_batch(batch, 2, get_test("amc-max"), get_strategy("cu-udp"))

    def test_replay_metadata_matches_callables(self):
        """Spec-driven orders must equal the callable order rules."""
        from repro.core.batch import _order_indices

        batch = generated_batch(2, "implicit", None, 10, "pb-order")
        for strategy_name in STRATEGIES + EXTRA_STRATEGIES:
            strategy = get_strategy(strategy_name)
            assert strategy.replayable
            for i in range(len(batch)):
                ts = batch.taskset(i)
                want = [t.task_id for t in strategy.order(ts)]
                u_lo = [t.utilization_lo for t in ts]
                u_hi = [t.utilization_hi for t in ts]
                is_high = [t.is_high for t in ts]
                u_own = [t.utilization_at_own_level for t in ts]
                ties = [t.task_id for t in ts]
                got = _order_indices(
                    strategy.order_spec, len(ts), is_high, u_own, u_lo, ties
                )
                assert [ts[j].task_id for j in got] == want


@pytest.mark.slow
class TestFullCrossProduct:
    """The issue's full differential: strategies × tests × service models."""

    @pytest.mark.parametrize("strategy_name", STRATEGIES + EXTRA_STRATEGIES)
    @pytest.mark.parametrize(
        "deadline_type,test_name,service",
        [
            ("implicit", "edf-vd", None),
            ("implicit", "ey", None),
            ("implicit", "ecdf", None),
            ("implicit", "amc-max", None),
            ("constrained", "ey", None),
            ("constrained", "ecdf", None),
            ("constrained", "amc-max", None),
            ("implicit", "edf-vd", "imprecise:0.5"),
            ("implicit", "edf-vd", "elastic:2.0"),
            ("implicit", "ey", "imprecise:0.5"),
            ("implicit", "ecdf", "elastic:2.0"),
        ],
    )
    def test_differential(self, strategy_name, deadline_type, test_name, service):
        assert_batch_matches_scalar(
            (deadline_type, service, 30, f"pbx-{test_name}"),
            2,
            test_name,
            strategy_name,
        )
