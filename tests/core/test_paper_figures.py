"""The worked examples of Figures 1 and 2, as regression tests.

These pin the exact phenomena the paper's Section III illustrates, using
the task sets from ``examples/paper_examples.py`` (re-derived equivalents
of the figure examples; see DESIGN.md section 5).
"""

import pytest

from repro.analysis import EDFVDTest
from repro.core import ca_udp, ca_wu_f, cu_udp, partition
from repro.model import TaskSet

from tests.conftest import hc_task, lc_task


@pytest.fixture
def figure1_taskset() -> TaskSet:
    return TaskSet(
        [
            hc_task(100, 55, 60, name="tau1"),
            hc_task(100, 10, 50, name="tau2"),
            hc_task(100, 25, 30, name="tau3"),
            lc_task(100, 45, name="tau4"),
        ]
    )


@pytest.fixture
def figure2_taskset() -> TaskSet:
    return TaskSet(
        [
            hc_task(100, 51, 61, name="tau1"),
            hc_task(100, 41, 46, name="tau2"),
            hc_task(100, 15, 20, name="tau3"),
            hc_task(100, 10, 15, name="tau4"),
            lc_task(100, 42, name="tau5"),
        ]
    )


class TestFigure1:
    def test_ca_wu_f_fails(self, figure1_taskset):
        result = partition(figure1_taskset, 2, EDFVDTest(), ca_wu_f())
        assert not result.success
        assert result.failed_task.name == "tau4"

    def test_ca_wu_f_splits_by_hc_utilization(self, figure1_taskset):
        result = partition(figure1_taskset, 2, EDFVDTest(), ca_wu_f())
        by_name = {
            t.name: idx for idx, core in enumerate(result.cores) for t in core
        }
        # Worst-fit on U_HH alone: tau1 alone, tau2+tau3 together.
        assert by_name["tau2"] == by_name["tau3"]
        assert by_name["tau1"] != by_name["tau2"]

    def test_ca_udp_succeeds_with_papers_allocation(self, figure1_taskset):
        result = partition(figure1_taskset, 2, EDFVDTest(), ca_udp())
        assert result.success
        by_name = {
            t.name: idx for idx, core in enumerate(result.cores) for t in core
        }
        # UDP pairs the two small-difference tasks and gives tau4 tau2's core.
        assert by_name["tau1"] == by_name["tau3"]
        assert by_name["tau4"] == by_name["tau2"]

    def test_udp_balances_difference_better(self, figure1_taskset):
        udp = partition(figure1_taskset, 2, EDFVDTest(), ca_udp())
        wu = partition(figure1_taskset, 2, EDFVDTest(), ca_wu_f())

        def max_diff(result):
            return max(c.utilization.difference for c in result.cores)

        assert max_diff(udp) <= max_diff(wu)


class TestFigure2:
    def test_ca_udp_fails_on_heavy_lc(self, figure2_taskset):
        result = partition(figure2_taskset, 2, EDFVDTest(), ca_udp())
        assert not result.success
        assert result.failed_task.name == "tau5"

    def test_cu_udp_succeeds(self, figure2_taskset):
        result = partition(figure2_taskset, 2, EDFVDTest(), cu_udp())
        assert result.success

    def test_cu_udp_places_heavy_lc_with_tau1(self, figure2_taskset):
        result = partition(figure2_taskset, 2, EDFVDTest(), cu_udp())
        by_name = {
            t.name: idx for idx, core in enumerate(result.cores) for t in core
        }
        assert by_name["tau5"] == by_name["tau1"]
        assert by_name["tau2"] == by_name["tau3"] == by_name["tau4"]

    def test_heavy_lc_is_third_in_cu_order(self, figure2_taskset):
        from repro.core.strategies import order_criticality_unaware

        order = [t.name for t in order_criticality_unaware(figure2_taskset)]
        assert order.index("tau5") == 2
