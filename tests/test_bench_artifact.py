"""The committed BENCH_batch.json must stay parseable and well-formed.

The batch-pipeline benchmark writes its trajectory to the repo root so the
perf history travels with the code; this check keeps a malformed or
hand-mangled artifact from landing silently.
"""

from __future__ import annotations

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_batch.json"

REQUIRED_ROW_KEYS = {
    "tasksets",
    "algorithms",
    "scalar_s",
    "batched_s",
    "speedup",
    "tasksets_per_sec_scalar",
    "tasksets_per_sec_batched",
    "settled_fractions",
}


def test_bench_batch_json_parses():
    data = json.loads(ARTIFACT.read_text(encoding="utf-8"))
    assert data["samples_per_bucket"] > 0
    assert set(data["pipelines"]) == {"scalar", "batched"}
    figures = data["figures"]
    assert "fig3" in figures and "fig4" in figures
    for fig, rows in figures.items():
        assert rows, f"{fig} has no measured rows"
        for m, row in rows.items():
            assert int(m) > 0
            missing = REQUIRED_ROW_KEYS - set(row)
            assert not missing, f"{fig} m={m} missing {sorted(missing)}"
            assert row["tasksets"] > 0
            assert row["scalar_s"] > 0 and row["batched_s"] > 0
            assert row["speedup"] > 0
            fractions = row["settled_fractions"]
            assert all(0 <= v <= 1 for v in fractions.values())
            assert sum(fractions.values()) <= 1.0 + 1e-6
