"""Campaign specs, execution, resumability and the manifest."""

import io
import json

import pytest

from repro.experiments.export import load_figure_result
from repro.runner import (
    CampaignSpec,
    FigureJob,
    ProgressReporter,
    run_campaign,
)


def small_spec():
    return CampaignSpec(
        name="tiny",
        figures=(
            FigureJob("fig3", samples=2, m_values=(2,)),
            FigureJob("fig6a", samples=2, m_values=(2,), ph_values=(0.5,)),
        ),
    )


class TestSpec:
    def test_dict_roundtrip(self):
        spec = small_spec()
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_json_file_roundtrip(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert CampaignSpec.from_json_file(path) == spec

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="unknown figure"):
            FigureJob("fig99")

    def test_ph_values_only_for_fig6(self):
        with pytest.raises(ValueError, match="does not sweep PH"):
            FigureJob("fig3", ph_values=(0.5,))

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate output keys"):
            CampaignSpec(
                name="dup",
                figures=(FigureJob("fig3"), FigureJob("fig3", samples=5)),
            )

    def test_distinct_keys_allow_same_figure_twice(self):
        spec = CampaignSpec(
            name="ok",
            figures=(
                FigureJob("fig3", key="fig3-small", samples=1),
                FigureJob("fig3", key="fig3-large", samples=2),
            ),
        )
        assert [job.key for job in spec.figures] == ["fig3-small", "fig3-large"]

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError, match="at least one figure"):
            CampaignSpec(name="empty", figures=())

    def test_paper_evaluation_covers_every_figure(self):
        spec = CampaignSpec.paper_evaluation(samples=1)
        assert {job.figure for job in spec.figures} == {
            "fig3", "fig4", "fig5", "fig6a", "fig6b",
        }


class TestRunCampaign:
    def test_writes_results_and_manifest(self, tmp_path):
        spec = small_spec()
        report = run_campaign(spec, tmp_path / "out")
        assert set(report.outputs) == {"fig3", "fig6a"}
        for key, path in report.outputs.items():
            result = load_figure_result(path)
            assert result.figure == key
        manifest = json.loads((tmp_path / "out" / "campaign.json").read_text())
        assert manifest["spec"]["name"] == "tiny"
        assert manifest["shards_computed"] == report.shards_computed > 0

    def test_second_invocation_recomputes_nothing(self, tmp_path):
        """ISSUE acceptance criterion: rerun completes with zero recompute."""
        spec = small_spec()
        out = tmp_path / "out"
        first = run_campaign(spec, out, jobs=2)
        assert first.shards_computed > 0 and first.shards_cached == 0
        second = run_campaign(spec, out)
        assert second.shards_computed == 0
        assert second.shards_cached == first.shards_computed
        # and the figure JSON on disk is byte-for-byte unchanged
        for key in first.outputs:
            assert first.outputs[key].read_bytes() == second.outputs[key].read_bytes()

    def test_explicit_cache_dir_shared_across_out_dirs(self, tmp_path):
        spec = small_spec()
        cache_dir = tmp_path / "shared-cache"
        first = run_campaign(spec, tmp_path / "a", cache_dir=cache_dir)
        second = run_campaign(spec, tmp_path / "b", cache_dir=cache_dir)
        assert second.shards_computed == 0
        assert second.shards_cached == first.shards_computed

    def test_progress_is_driven_and_finished(self, tmp_path):
        stream = io.StringIO()
        progress = ProgressReporter(stream=stream, clock=lambda: 0.0)
        run_campaign(small_spec(), tmp_path / "out", progress=progress)
        assert progress.completed == progress.total > 0
        assert stream.getvalue().endswith("\n")
