"""Differential contract of the campaign fabric.

The ISSUE acceptance bar: every executor backend (``serial`` / ``pool``
/ ``cluster``) crossed with every shard store (``fs`` / ``object``)
must produce **bit-identical** ``SweepResult``s, WAR tables and shard
payload bytes on fig3-style (implicit) and fig5-style (constrained)
slices — including cluster runs where workers are SIGKILLed mid-shard.
Backends decide *where* units run and stores decide *how* shards
persist; neither may leave a fingerprint on the science.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.acceptance import SweepConfig
from repro.experiments.weighted import weighted_acceptance_ratio
from repro.runner import (
    ClusterBackend,
    ExecutorBackend,
    ProcessPoolBackend,
    SerialBackend,
    create_store,
    registered_backends,
    resolve_backend,
    run_sweep,
)
from repro.runner.store import STORES

#: One implicit-deadline (fig3-style) and one constrained-deadline
#: (fig5-style) slice, small enough that the full matrix stays fast.
SLICES = {
    "fig3": (
        SweepConfig(label="fabric-fig3", m=2, samples_per_bucket=3),
        ("cu-udp-edf-vd", "ca-nosort-f-f-edf-vd"),
    ),
    "fig5": (
        SweepConfig(
            label="fabric-fig5",
            m=2,
            deadline_type="constrained",
            samples_per_bucket=3,
        ),
        ("cu-udp-ecdf", "ca-f-f-ey"),
    ),
}

BACKENDS = registered_backends()


def war_table(result) -> dict[str, float]:
    """The paper's headline metric, per algorithm, for one sweep."""
    return {
        name: weighted_acceptance_ratio(result.buckets, series)
        for name, series in result.ratios.items()
    }


def blob_map(store) -> dict[str, str]:
    """Every shard blob in a store, keyed by content hash."""
    root = Path(store.root)
    if store.kind == "fs":
        return {p.stem: p.read_text() for p in root.rglob("*.json")}
    objects = root / "objects"
    if not objects.is_dir():
        return {}
    return {p.name: p.read_text() for p in objects.iterdir()}


@pytest.fixture(scope="module")
def reference():
    """Serial, uncached ground truth per slice: result + WAR table."""
    out = {}
    for slice_name, (config, algos) in SLICES.items():
        result = run_sweep(config, algos)
        out[slice_name] = (result, war_table(result))
    return out


@pytest.fixture(scope="module")
def reference_blobs(reference, tmp_path_factory):
    """Canonical shard bytes per slice (serial run through an FsStore)."""
    out = {}
    for slice_name, (config, algos) in SLICES.items():
        store = create_store("fs", tmp_path_factory.mktemp(f"ref-{slice_name}"))
        run_sweep(config, algos, cache=store)
        out[slice_name] = blob_map(store)
        assert out[slice_name], "reference run must persist shards"
    return out


class TestBackendStoreMatrix:
    """3 backends x 2 stores, each slice: results, WARs and bytes agree."""

    @pytest.mark.parametrize("slice_name", sorted(SLICES))
    @pytest.mark.parametrize("store_kind", sorted(STORES))
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bit_identical(
        self, backend, store_kind, slice_name, reference, reference_blobs, tmp_path
    ):
        config, algos = SLICES[slice_name]
        store = create_store(store_kind, tmp_path)
        result = run_sweep(config, algos, jobs=2, cache=store, backend=backend)
        expected, expected_war = reference[slice_name]
        assert result == expected
        assert war_table(result) == expected_war
        # identical keys, identical payload bytes — regardless of layout
        assert blob_map(store) == reference_blobs[slice_name]

    def test_sweep_result_json_is_backend_invariant(self, reference):
        config, algos = SLICES["fig3"]
        expected, _ = reference["fig3"]
        expected_json = json.dumps(
            {"buckets": expected.buckets, "ratios": expected.ratios},
            sort_keys=True,
        )
        for backend in BACKENDS:
            result = run_sweep(config, algos, jobs=2, backend=backend)
            got = json.dumps(
                {"buckets": result.buckets, "ratios": result.ratios},
                sort_keys=True,
            )
            assert got == expected_json, f"{backend} drifted from serial"


class TestKilledWorkers:
    """The matrix holds even when cluster workers die mid-campaign."""

    @pytest.mark.parametrize("store_kind", sorted(STORES))
    def test_crashed_workers_still_bit_identical(
        self, store_kind, reference, reference_blobs, tmp_path, monkeypatch
    ):
        config, algos = SLICES["fig3"]
        monkeypatch.setenv("REPRO_RUNNER_FAULT", "crash:rate=0.3")
        monkeypatch.setenv("REPRO_RUNNER_FAULT_DIR", str(tmp_path / "markers"))
        store = create_store(store_kind, tmp_path / "store")
        backend = ClusterBackend(2, heartbeat_interval=0.2, lease_timeout=30.0)
        result = run_sweep(config, algos, jobs=2, cache=store, backend=backend)
        expected, expected_war = reference["fig3"]
        assert result == expected
        assert war_table(result) == expected_war
        assert blob_map(store) == reference_blobs["fig3"]
        # the fault actually fired and was recovered from
        assert backend.stats["retries"] > 0
        assert backend.stats["lost_workers"] > 0


class TestResolution:
    """Backend selection: instance > name > env knob > pre-fabric auto."""

    def test_explicit_instance_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_BACKEND", "serial")
        instance = ProcessPoolBackend(2)
        assert resolve_backend(instance, jobs=1, pending=1) is instance

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_BACKEND", "cluster")
        backend = resolve_backend("serial", jobs=4, pending=10)
        assert isinstance(backend, SerialBackend)

    def test_env_knob_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_BACKEND", "cluster")
        backend = resolve_backend(None, jobs=4, pending=10)
        assert isinstance(backend, ClusterBackend)
        assert backend.workers == 4

    def test_auto_matches_prefabric_rule(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNNER_BACKEND", raising=False)
        assert isinstance(
            resolve_backend(None, jobs=4, pending=10), ProcessPoolBackend
        )
        # single job, or a single pending unit, stays in-process
        assert isinstance(
            resolve_backend(None, jobs=1, pending=10), SerialBackend
        )
        assert isinstance(
            resolve_backend(None, jobs=4, pending=1), SerialBackend
        )

    def test_workers_never_exceed_pending(self):
        backend = resolve_backend("cluster", jobs=8, pending=3)
        assert backend.workers == 3

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            resolve_backend("threads", jobs=2, pending=2)

    def test_every_registered_backend_instantiates(self):
        for name in registered_backends():
            backend = resolve_backend(name, jobs=2, pending=4)
            assert isinstance(backend, ExecutorBackend)
            assert backend.name == name
