"""Shard-cache correctness: round-trips, corruption handling, stats."""

import json

from repro.experiments.acceptance import SweepConfig
from repro.runner import ShardCache, decompose_sweep, execute_units, run_unit

CONFIG = SweepConfig(label="cache-test", m=2, samples_per_bucket=2)
ALGOS = ("cu-udp-edf-vd",)


def make_unit(index: int = 4):
    return decompose_sweep(CONFIG, ALGOS)[index]


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        cache = ShardCache(tmp_path)
        unit = make_unit()
        outcome = run_unit(unit)
        cache.store(unit, outcome)
        assert cache.load(unit) == outcome
        assert (cache.hits, cache.misses, cache.stored) == (1, 0, 1)

    def test_cold_cache_misses(self, tmp_path):
        cache = ShardCache(tmp_path)
        assert cache.load(make_unit()) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_key_is_stable_and_config_sensitive(self, tmp_path):
        cache = ShardCache(tmp_path)
        unit = make_unit()
        assert cache.key(unit) == cache.key(make_unit())
        other_cfg = SweepConfig(label="cache-test", m=4, samples_per_bucket=2)
        other = decompose_sweep(other_cfg, ALGOS)[4]
        assert cache.key(unit) != cache.key(other)
        more_algos = decompose_sweep(CONFIG, ("cu-udp-edf-vd", "ca-f-f-ey"))[4]
        assert cache.key(unit) != cache.key(more_algos)


class TestCorruption:
    """A damaged shard must be detected and silently recomputed."""

    def _primed(self, tmp_path):
        cache = ShardCache(tmp_path)
        unit = make_unit()
        cache.store(unit, run_unit(unit))
        return cache, unit

    def test_garbage_bytes_rejected(self, tmp_path):
        cache, unit = self._primed(tmp_path)
        cache.shard_path(unit).write_text("not json at all {{{")
        assert cache.load(unit) is None
        assert cache.rejected == 1

    def test_truncated_write_rejected(self, tmp_path):
        cache, unit = self._primed(tmp_path)
        path = cache.shard_path(unit)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.load(unit) is None
        assert cache.rejected == 1

    def test_tampered_payload_rejected(self, tmp_path):
        cache, unit = self._primed(tmp_path)
        path = cache.shard_path(unit)
        data = json.loads(path.read_text())
        data["samples"] = -3
        path.write_text(json.dumps(data))
        assert cache.load(unit) is None

    def test_wrong_algorithm_set_rejected(self, tmp_path):
        cache, unit = self._primed(tmp_path)
        path = cache.shard_path(unit)
        data = json.loads(path.read_text())
        data["ratios"] = {"someone-else": 0.5}
        path.write_text(json.dumps(data))
        assert cache.load(unit) is None

    def test_corrupted_shard_is_recomputed_not_loaded(self, tmp_path):
        cache, unit = self._primed(tmp_path)
        good = run_unit(unit)
        cache.shard_path(unit).write_text('{"key": "wrong"}')
        outcomes = execute_units([unit], cache=cache)
        assert outcomes == [good]
        # the recompute repaired the cache in place
        assert cache.load(unit) == good


class TestResume:
    def test_partial_campaign_only_computes_missing_shards(self, tmp_path):
        cache = ShardCache(tmp_path)
        units = decompose_sweep(CONFIG, ALGOS)
        # interrupted run: only the first three shards landed
        for unit in units[:3]:
            cache.store(unit, run_unit(unit))
        stored_before = cache.stored
        execute_units(units, cache=cache)
        assert cache.hits == 3
        assert cache.stored - stored_before == len(units) - 3
