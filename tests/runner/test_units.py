"""Work-unit decomposition and single-shard execution."""

import pickle

import pytest

from repro.experiments.acceptance import AcceptanceSweep, SweepConfig
from repro.experiments.algorithms import get_algorithm
from repro.runner import WorkUnit, decompose_sweep, run_unit

CONFIG = SweepConfig(label="unit-test", m=2, samples_per_bucket=3)
ALGOS = ("cu-udp-edf-vd", "ca-f-f-ey")


class TestDecompose:
    def test_one_unit_per_swept_bucket(self):
        units = decompose_sweep(CONFIG, ALGOS)
        expected = list(AcceptanceSweep(CONFIG).bucket_points())
        assert [u.bucket for u in units] == expected
        assert all(u.config == CONFIG and u.algorithms == ALGOS for u in units)

    def test_respects_ub_range(self):
        narrow = SweepConfig(
            label="unit-test", m=2, samples_per_bucket=3, ub_min=0.4, ub_max=0.6
        )
        buckets = [u.bucket for u in decompose_sweep(narrow, ALGOS)]
        assert buckets
        assert all(0.4 <= b <= 0.6 for b in buckets)

    def test_unknown_algorithm_fails_fast(self):
        with pytest.raises(KeyError):
            decompose_sweep(CONFIG, ("no-such-algorithm",))

    def test_units_are_picklable(self):
        unit = decompose_sweep(CONFIG, ALGOS)[0]
        assert pickle.loads(pickle.dumps(unit)) == unit


class TestRunUnit:
    def test_matches_in_process_bucket_run(self):
        unit = decompose_sweep(CONFIG, ALGOS)[5]
        sweep = AcceptanceSweep(CONFIG)
        points = sweep.bucket_points()[unit.bucket]
        direct = sweep.run_bucket(
            unit.bucket, points, [get_algorithm(n) for n in ALGOS]
        )
        assert run_unit(unit) == direct

    def test_deterministic_across_calls(self):
        unit = decompose_sweep(CONFIG, ALGOS)[3]
        assert run_unit(unit) == run_unit(unit)

    def test_bucket_outside_grid_rejected(self):
        unit = WorkUnit(config=CONFIG, bucket=123.0, algorithms=ALGOS)
        with pytest.raises(ValueError, match="not part of the sweep grid"):
            run_unit(unit)
