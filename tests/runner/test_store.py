"""ShardStore interface: both layouts validate, quarantine and recompute.

``tests/runner/test_cache.py`` pins the historical ``ShardCache``
(filesystem) behavior; this suite runs the same corruption battery
through the :class:`~repro.runner.store.ShardStore` interface against
*every* registered layout, plus the ObjectStore-specific semantics
(flat put/get/exists blobs, first-writer-wins puts) and the cross-layout
contract: identical keys, identical payload bytes.
"""

import json

import pytest

from repro.experiments.acceptance import SweepConfig
from repro.runner import (
    FsStore,
    ObjectStore,
    create_store,
    decompose_sweep,
    execute_units,
    run_unit,
    unit_key,
)
from repro.runner.store import STORES, encode_outcome

CONFIG = SweepConfig(label="store-test", m=2, samples_per_bucket=2)
ALGOS = ("cu-udp-edf-vd",)


def make_unit(index: int = 4):
    return decompose_sweep(CONFIG, ALGOS)[index]


def blob_path(store, unit):
    """Where a unit's blob lives, regardless of layout."""
    return store._blob_path(store.key(unit))


@pytest.fixture(params=sorted(STORES))
def store(request, tmp_path):
    return create_store(request.param, tmp_path)


class TestInterface:
    def test_registry_covers_both_layouts(self):
        assert STORES == {"fs": FsStore, "object": ObjectStore}
        for kind, cls in STORES.items():
            assert cls.kind == kind

    def test_create_store_rejects_unknown_kind(self, tmp_path):
        with pytest.raises(ValueError, match="unknown shard store"):
            create_store("s3", tmp_path)

    def test_round_trip(self, store):
        unit = make_unit()
        outcome = run_unit(unit)
        store.store(unit, outcome)
        assert store.load(unit) == outcome
        assert (store.hits, store.misses, store.stored) == (1, 0, 1)

    def test_cold_store_misses(self, store):
        assert store.load(make_unit()) is None
        assert (store.hits, store.misses) == (0, 1)

    def test_blob_primitives(self, store):
        key = unit_key(make_unit())
        assert not store.exists(key)
        assert store.get(key) is None
        store.put(key, "payload\n")
        assert store.exists(key)
        assert store.get(key) == "payload\n"
        store.discard(key)
        assert not store.exists(key)
        store.discard(key)  # idempotent on absent blobs


class TestCorruptionEveryLayout:
    """Damage quarantines as a miss and is recomputed — in any layout."""

    def _primed(self, store):
        unit = make_unit()
        store.store(unit, run_unit(unit))
        return unit

    def test_garbage_bytes_rejected(self, store):
        unit = self._primed(store)
        blob_path(store, unit).write_text("not json at all {{{")
        assert store.load(unit) is None
        assert store.rejected == 1

    def test_truncated_write_rejected(self, store):
        unit = self._primed(store)
        path = blob_path(store, unit)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.load(unit) is None
        assert store.rejected == 1

    def test_tampered_payload_rejected(self, store):
        unit = self._primed(store)
        path = blob_path(store, unit)
        data = json.loads(path.read_text())
        data["samples"] = -3
        path.write_text(json.dumps(data))
        assert store.load(unit) is None

    def test_key_mismatch_rejected(self, store):
        unit = self._primed(store)
        path = blob_path(store, unit)
        data = json.loads(path.read_text())
        data["key"] = "0" * 64
        path.write_text(json.dumps(data))
        assert store.load(unit) is None

    def test_corrupted_shard_is_recomputed_not_loaded(self, store):
        unit = self._primed(store)
        good = run_unit(unit)
        blob_path(store, unit).write_text('{"key": "wrong"}')
        outcomes = execute_units([unit], cache=store)
        assert outcomes == [good]
        assert store.load(unit) == good


class TestObjectStoreSemantics:
    def test_flat_layout_under_objects(self, tmp_path):
        store = ObjectStore(tmp_path)
        unit = make_unit()
        path = store.store(unit, run_unit(unit))
        assert path == tmp_path / "objects" / store.key(unit)

    def test_put_is_first_writer_wins(self, tmp_path):
        store = ObjectStore(tmp_path)
        store.put("deadbeef", "first\n")
        store.put("deadbeef", "second\n")
        assert store.get("deadbeef") == "first\n"


class TestCrossLayoutContract:
    def test_same_keys_same_bytes(self, tmp_path):
        fs = FsStore(tmp_path / "fs")
        obj = ObjectStore(tmp_path / "obj")
        for unit in decompose_sweep(CONFIG, ALGOS):
            outcome = run_unit(unit)
            fs_path = fs.store(unit, outcome)
            obj_path = obj.store(unit, outcome)
            assert fs.key(unit) == obj.key(unit) == unit_key(unit)
            assert fs_path.read_bytes() == obj_path.read_bytes()
            assert fs_path.read_text() == encode_outcome(unit, outcome)

    def test_either_layout_resumes_the_other_logically(self, tmp_path):
        """A shard computed under one layout hits when its bytes are
        copied into the other — content addressing carries across."""
        fs = FsStore(tmp_path / "fs")
        obj = ObjectStore(tmp_path / "obj")
        unit = make_unit()
        outcome = run_unit(unit)
        fs.store(unit, outcome)
        obj.put(obj.key(unit), fs.get(fs.key(unit)))
        assert obj.load(unit) == outcome
