"""Fault injection: killed and hung workers mid-shard.

The env-triggered hook in the cluster worker entry point
(:mod:`repro.runner.faults`) SIGKILLs or hangs workers *after* they
claim a unit and *before* they report its outcome — the exact window
the lease/heartbeat machinery exists for.  These tests assert the
ISSUE's fault-tolerance criteria end to end:

* a crashed worker's units are re-dispatched and the run converges to
  results bit-identical to a serial sweep, merged exactly once;
* a SIGKILLed worker is detected and replaced well within one heartbeat
  interval (process liveness, not heartbeat staleness, drives it);
* a hung worker is reclaimed through lease expiry;
* a unit that keeps failing surfaces as a typed
  :class:`~repro.runner.executor.WorkerCrashError` naming the unit's
  content key, attempt count and last heartbeat age — on the pool
  backend too, where a unit exception is a one-attempt crash.
"""

import io
import time

import pytest

from repro.experiments.acceptance import SweepConfig
from repro.runner import (
    ClusterBackend,
    FsStore,
    ProgressReporter,
    WorkerCrashError,
    WorkUnit,
    decompose_sweep,
    execute_units,
    run_sweep,
    unit_key,
)
from repro.runner.faults import FaultSpec, parse_fault_spec

CONFIG = SweepConfig(label="fault-test", m=2, samples_per_bucket=3)
ALGOS = ("cu-udp-edf-vd", "ca-nosort-f-f-edf-vd")


@pytest.fixture(scope="module")
def serial():
    return run_sweep(CONFIG, ALGOS)


@pytest.fixture(scope="module")
def doomed_bucket():
    """A mid-sweep bucket to aim faults at."""
    return decompose_sweep(CONFIG, ALGOS)[4].bucket


def bad_unit() -> WorkUnit:
    """A unit whose execution raises (bucket off the sweep grid)."""
    good = decompose_sweep(CONFIG, ALGOS)[0]
    return WorkUnit(
        config=good.config, bucket=0.123456789, algorithms=good.algorithms
    )


class TestCrashRecovery:
    def test_sigkill_recovers_within_one_heartbeat_interval(
        self, serial, doomed_bucket, tmp_path, monkeypatch
    ):
        """Acceptance criterion: recovery inside one heartbeat interval.

        With a 10s heartbeat the staleness path would need >= 20s; the
        whole campaign (including detecting, replacing the killed worker
        and re-running its unit) must finish far inside a single
        interval, proving detection rides process liveness.
        """
        monkeypatch.setenv("REPRO_RUNNER_FAULT", f"crash:bucket={doomed_bucket}")
        monkeypatch.setenv("REPRO_RUNNER_FAULT_DIR", str(tmp_path / "markers"))
        backend = ClusterBackend(2, heartbeat_interval=10.0, lease_timeout=60.0)
        started = time.monotonic()
        result = run_sweep(CONFIG, ALGOS, jobs=2, backend=backend)
        elapsed = time.monotonic() - started
        assert result == serial
        assert backend.stats["lost_workers"] >= 1
        assert backend.stats["retries"] >= 1
        assert elapsed < backend.heartbeat_interval

    def test_exactly_once_merge_and_store(
        self, serial, doomed_bucket, tmp_path, monkeypatch
    ):
        """Re-dispatch must not double-merge or double-store any shard."""
        monkeypatch.setenv("REPRO_RUNNER_FAULT", f"crash:bucket={doomed_bucket}")
        monkeypatch.setenv("REPRO_RUNNER_FAULT_DIR", str(tmp_path / "markers"))
        store = FsStore(tmp_path / "store")
        progress = ProgressReporter(stream=io.StringIO(), clock=lambda: 0.0)
        backend = ClusterBackend(2, heartbeat_interval=0.5, lease_timeout=30.0)
        result = run_sweep(
            CONFIG, ALGOS, jobs=2, cache=store, backend=backend, progress=progress
        )
        units = decompose_sweep(CONFIG, ALGOS)
        assert result == serial
        # every shard merged exactly once, stored exactly once
        assert progress.completed == progress.total == len(units)
        assert store.stored == len(units)
        assert backend.stats["duplicates"] == 0
        # the recovery is visible on the progress line
        assert progress.retried >= 1
        assert "retried" in progress.summary_line()

    def test_random_worker_loss_converges(self, serial, tmp_path, monkeypatch):
        """A 30% deterministic-random unit kill rate still converges."""
        monkeypatch.setenv("REPRO_RUNNER_FAULT", "crash:rate=0.3")
        monkeypatch.setenv("REPRO_RUNNER_FAULT_DIR", str(tmp_path / "markers"))
        backend = ClusterBackend(3, heartbeat_interval=0.2, lease_timeout=30.0)
        result = run_sweep(CONFIG, ALGOS, jobs=3, backend=backend)
        assert result == serial
        assert backend.stats["retries"] >= 1


class TestStaleClaims:
    def test_stale_generation_claim_is_reclaimed_not_leased(self):
        """The orphaned-claim race, pinned at the conductor's claim
        handler: a claim drained after its sender was reaped arrives
        stamped with the dead worker's generation while a replacement
        (same slot, newer generation) is already running.  Leasing it
        would stall the unit until the lease timeout — it must instead
        re-dispatch immediately.
        """
        backend = ClusterBackend(2)
        backend._units = decompose_sweep(CONFIG, ALGOS)[:2]
        backend._generations = {0: 2, 1: 1}  # slot 0 was respawned once
        backend._attempts = {0: 1, 1: 1}
        backend._inflight = {5: 0, 6: 1}
        backend._dispatched_at = {5: 0.0, 6: 0.0}

        backend._record_claim(0, 5, 1)  # generation 1 < current 2: stale
        assert 5 not in backend._leases
        assert 5 not in backend._inflight, "stale claim must release the seq"
        assert backend.stats["retries"] == 1
        assert backend._redispatch, "the orphaned unit must re-dispatch"

        backend._record_claim(1, 6, 1)  # current generation: normal lease
        assert backend._leases[6][0] == 1
        assert 6 in backend._claims[1]

    def test_workers_carry_their_generation_in_claims(self, tmp_path, monkeypatch):
        """End-to-end: a journaled faulted run finishes without waiting
        out any lease — every lost claim is recovered promptly."""
        monkeypatch.setenv("REPRO_RUNNER_FAULT", "crash:rate=0.5")
        monkeypatch.setenv("REPRO_RUNNER_FAULT_DIR", str(tmp_path / "markers"))
        backend = ClusterBackend(2, heartbeat_interval=0.2, lease_timeout=30.0)
        start = time.monotonic()
        run_sweep(CONFIG, ALGOS, jobs=2, backend=backend)
        assert backend.stats["lost_workers"] >= 1
        # well under the 30s lease: no unit sat out a timeout
        assert time.monotonic() - start < 15.0


class TestHangRecovery:
    def test_hung_worker_reclaimed_via_lease_timeout(
        self, serial, doomed_bucket, tmp_path, monkeypatch
    ):
        """A hung worker keeps heartbeating — only the lease catches it."""
        monkeypatch.setenv("REPRO_RUNNER_FAULT", f"hang:bucket={doomed_bucket}")
        monkeypatch.setenv("REPRO_RUNNER_FAULT_DIR", str(tmp_path / "markers"))
        backend = ClusterBackend(2, heartbeat_interval=0.2, lease_timeout=0.5)
        result = run_sweep(CONFIG, ALGOS, jobs=2, backend=backend)
        assert result == serial
        assert backend.stats["lost_workers"] >= 1
        assert backend.stats["retries"] >= 1


class TestGiveUp:
    def test_persistent_crash_raises_typed_error(
        self, doomed_bucket, monkeypatch
    ):
        """No marker dir: the fault repeats until max_attempts, then a
        WorkerCrashError names the missing shard."""
        monkeypatch.setenv("REPRO_RUNNER_FAULT", f"crash:bucket={doomed_bucket}")
        monkeypatch.delenv("REPRO_RUNNER_FAULT_DIR", raising=False)
        backend = ClusterBackend(
            2, heartbeat_interval=0.2, lease_timeout=30.0, max_attempts=2
        )
        doomed = [u for u in decompose_sweep(CONFIG, ALGOS)
                  if u.bucket == doomed_bucket]
        with pytest.raises(WorkerCrashError) as excinfo:
            execute_units(doomed, jobs=2, backend=backend)
        err = excinfo.value
        assert err.unit == doomed[0]
        assert err.unit_key == unit_key(doomed[0])
        assert err.attempts == 2
        assert err.heartbeat_age is not None
        assert err.unit_key[:12] in str(err)

    def test_unit_exception_on_cluster_carries_traceback(self):
        backend = ClusterBackend(
            1, heartbeat_interval=0.5, lease_timeout=30.0, max_attempts=2
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            execute_units([bad_unit()], jobs=1, backend=backend)
        assert excinfo.value.attempts == 2
        assert "ValueError" in excinfo.value.detail
        assert backend.stats["worker_errors"] == 2

    def test_unit_exception_on_pool_is_typed_not_raw(self):
        """The pool backend wraps worker exceptions the same way."""
        unit = bad_unit()
        with pytest.raises(WorkerCrashError) as excinfo:
            execute_units([unit, unit], jobs=2, backend="pool")
        err = excinfo.value
        assert err.attempts == 1
        assert err.unit_key == unit_key(unit)
        assert "ValueError" in err.detail


class TestForensics:
    """With a journal active, crashes leave a durable postmortem trail."""

    def test_give_up_carries_a_postmortem_pinning_the_cause(
        self, doomed_bucket, tmp_path, monkeypatch
    ):
        """Acceptance criterion: the bundle names the killed unit, the
        attempt count and the heartbeat age — and the injected fault."""
        journal_path = tmp_path / "journal.jsonl"
        fault = f"crash:bucket={doomed_bucket}"
        monkeypatch.setenv("REPRO_RUNNER_FAULT", fault)
        monkeypatch.delenv("REPRO_RUNNER_FAULT_DIR", raising=False)
        monkeypatch.setenv("REPRO_OBS_JOURNAL", str(journal_path))
        backend = ClusterBackend(
            2, heartbeat_interval=0.2, lease_timeout=30.0, max_attempts=2
        )
        doomed = [u for u in decompose_sweep(CONFIG, ALGOS)
                  if u.bucket == doomed_bucket]
        with pytest.raises(WorkerCrashError) as excinfo:
            execute_units(doomed, jobs=2, backend=backend)
        err = excinfo.value
        bundle = err.postmortem
        assert bundle is not None
        assert bundle["unit"] == err.unit_key == unit_key(doomed[0])
        assert bundle["attempts"] == err.attempts == 2
        assert bundle["last_heartbeat_age"] is not None
        assert bundle["fault"]["spec"] == fault
        assert bundle["last_claim"]["key"] == err.unit_key
        # a worker really claimed it before dying
        assert bundle["worker"]["pid"] is not None
        # the bundle was dumped next to the journal, and the error's
        # detail points a human at it
        dump = journal_path.parent / f"postmortem-{err.unit_key[:12]}.json"
        assert dump.is_file()
        assert "postmortem for unit" in err.detail
        assert str(dump) in err.detail
        # the give-up itself is durable
        from repro.obs.journal import read_events

        crashes = [e for e in read_events(journal_path) if e["ev"] == "crash"]
        assert crashes and crashes[-1]["key"] == err.unit_key
        assert crashes[-1]["attempts"] == 2

    def test_every_reclaim_journals_forensics(
        self, serial, doomed_bucket, tmp_path, monkeypatch
    ):
        """Even when the retry succeeds, the reclaim's evidence survives
        in the journal: bundle + marker naming the injected fault."""
        journal_path = tmp_path / "journal.jsonl"
        monkeypatch.setenv("REPRO_RUNNER_FAULT", f"crash:bucket={doomed_bucket}")
        monkeypatch.setenv("REPRO_RUNNER_FAULT_DIR", str(tmp_path / "markers"))
        monkeypatch.setenv("REPRO_OBS_JOURNAL", str(journal_path))
        backend = ClusterBackend(2, heartbeat_interval=0.2, lease_timeout=30.0)
        result = run_sweep(CONFIG, ALGOS, jobs=2, backend=backend)
        assert result == serial  # journaling + forensics stay observe-only

        from repro.obs.journal import read_events

        events = read_events(journal_path)
        doomed_keys = {
            unit_key(u) for u in decompose_sweep(CONFIG, ALGOS)
            if u.bucket == doomed_bucket
        }
        reclaims = [e for e in events if e["ev"] == "reclaim"]
        assert {e["key"] for e in reclaims} <= doomed_keys
        assert reclaims, "the injected crash must force a reclaim"
        bundles = [e["bundle"] for e in events if e["ev"] == "postmortem"]
        assert bundles
        for bundle in bundles:
            assert bundle["unit"] in doomed_keys
            assert bundle["last_claim"] is not None
            assert f"{bundle['unit']}.crash" in bundle["fault"]["markers"]
        # no postmortem files for recovered units — only give-ups dump
        assert not list(journal_path.parent.glob("postmortem-*.json"))


class TestFaultSpecParsing:
    def test_parses_all_forms(self):
        assert parse_fault_spec("crash:all") == FaultSpec("crash", "all")
        assert parse_fault_spec("hang:bucket=0.55") == FaultSpec(
            "hang", "bucket", 0.55
        )
        assert parse_fault_spec("crash:rate=0.1") == FaultSpec(
            "crash", "rate", 0.1
        )

    @pytest.mark.parametrize(
        "bad",
        ["crash", "explode:all", "crash:some", "crash:rate=2.0",
         "hang:bucket=mid", ":all"],
    )
    def test_rejects_typos_loudly(self, bad):
        with pytest.raises(ValueError):
            parse_fault_spec(bad)

    def test_rate_selector_is_deterministic(self):
        units = decompose_sweep(CONFIG, ALGOS)
        spec = parse_fault_spec("crash:rate=0.5")
        picks = [spec.matches(u, unit_key(u)) for u in units]
        assert picks == [spec.matches(u, unit_key(u)) for u in units]
        assert any(picks) and not all(picks)
