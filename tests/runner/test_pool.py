"""Serial/parallel/cached equivalence of the shard runner.

The acceptance bar for the whole subsystem: ``fig3(samples=20)`` through
the runner with ``jobs=2`` must be **byte-identical** to the serial path,
and cached reruns must change nothing.
"""

import json

import pytest

from repro.experiments.acceptance import AcceptanceSweep, SweepConfig
from repro.experiments.algorithms import get_algorithm
from repro.experiments.export import figure_result_to_dict
from repro.experiments.figures import fig3
from repro.runner import ProgressReporter, ShardCache, run_sweep

CONFIG = SweepConfig(label="pool-test", m=2, samples_per_bucket=3)
ALGOS = ("cu-udp-edf-vd", "ca-nosort-f-f-edf-vd")


def _dump(result) -> str:
    return json.dumps(figure_result_to_dict(result), sort_keys=True)


class TestRunSweep:
    def test_serial_matches_acceptance_sweep(self):
        legacy = AcceptanceSweep(CONFIG).run([get_algorithm(n) for n in ALGOS])
        assert run_sweep(CONFIG, ALGOS) == legacy

    def test_parallel_matches_serial(self):
        serial = run_sweep(CONFIG, ALGOS, jobs=1)
        parallel = run_sweep(CONFIG, ALGOS, jobs=2)
        assert parallel == serial

    def test_cache_roundtrip_matches_fresh_run(self, tmp_path):
        cache = ShardCache(tmp_path)
        fresh = run_sweep(CONFIG, ALGOS, cache=cache)
        assert cache.hits == 0 and cache.stored > 0
        cached = run_sweep(CONFIG, ALGOS, cache=cache)
        assert cache.hits == cache.stored
        assert cached == fresh

    def test_progress_sees_every_shard(self, tmp_path):
        import io

        cache = ShardCache(tmp_path)
        progress = ProgressReporter(stream=io.StringIO(), clock=lambda: 0.0)
        run_sweep(CONFIG, ALGOS, cache=cache, progress=progress)
        assert progress.completed == progress.total > 0
        assert progress.cached == 0
        rerun = ProgressReporter(stream=io.StringIO(), clock=lambda: 0.0)
        run_sweep(CONFIG, ALGOS, cache=cache, progress=rerun)
        assert rerun.cached == rerun.total == progress.total


class TestFig3Equivalence:
    """ISSUE acceptance criterion: fig3(samples=20), jobs=2, byte-identical."""

    @pytest.fixture(scope="class")
    def serial_bytes(self):
        return json.dumps(figure_result_to_dict(fig3(samples=20)))

    def test_parallel_fig3_byte_identical(self, serial_bytes):
        parallel = json.dumps(figure_result_to_dict(fig3(samples=20, jobs=2)))
        assert parallel == serial_bytes

    def test_cached_fig3_byte_identical(self, serial_bytes, tmp_path):
        cache = ShardCache(tmp_path)
        first = json.dumps(
            figure_result_to_dict(fig3(samples=20, jobs=2, cache=cache))
        )
        assert first == serial_bytes
        assert cache.stored > 0
        # a rerun is answered entirely from cache, still byte-identical
        stored_before = cache.stored
        second = json.dumps(figure_result_to_dict(fig3(samples=20, cache=cache)))
        assert second == serial_bytes
        assert cache.stored == stored_before
