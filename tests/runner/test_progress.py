"""Progress reporter: counters, ETA math, rendering."""

import io

from repro.runner import ProgressReporter, format_eta


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make(label="test"):
    clock = FakeClock()
    stream = io.StringIO()
    reporter = ProgressReporter(
        stream=stream, label=label, min_interval=0.0, clock=clock
    )
    return reporter, stream, clock


class TestFormatEta:
    def test_scales(self):
        assert format_eta(42) == "42s"
        assert format_eta(190) == "3m10s"
        assert format_eta(7500) == "2h05m"
        assert format_eta(-5) == "0s"


class TestReporter:
    def test_counts_and_cached(self):
        reporter, _, _ = make()
        reporter.add_total(3)
        reporter.unit_done()
        reporter.unit_done(cached=True)
        assert (reporter.completed, reporter.total, reporter.cached) == (2, 3, 1)

    def test_eta_scales_elapsed_by_remaining(self):
        reporter, _, clock = make()
        reporter.add_total(4)
        clock.now = 10.0
        reporter.unit_done()
        # 1 of 4 shards took 10s -> 3 remain -> 30s
        assert reporter.eta_seconds() == 30.0

    def test_eta_none_before_any_completion(self):
        reporter, _, _ = make()
        reporter.add_total(2)
        assert reporter.eta_seconds() is None

    def test_incremental_totals(self):
        reporter, _, _ = make()
        reporter.add_total(2)
        reporter.add_total(3)
        assert reporter.total == 5

    def test_status_line_mentions_progress_and_cache(self):
        reporter, _, clock = make(label="fig3")
        reporter.add_total(2)
        clock.now = 5.0
        reporter.unit_done(cached=True)
        line = reporter.status_line()
        assert "fig3: 1/2 shards" in line
        assert "1 cached" in line
        assert "eta" in line

    def test_finish_terminates_the_line(self):
        reporter, stream, _ = make()
        reporter.add_total(1)
        reporter.unit_done()
        reporter.finish()
        text = stream.getvalue()
        assert text.endswith("\n")
        assert "1/1 shards" in text
        assert "done in" in text

    def test_elapsed_seconds_tracks_clock(self):
        reporter, _, clock = make()
        assert reporter.elapsed_seconds() == 0.0  # before any work
        reporter.add_total(1)
        clock.now = 7.5
        assert reporter.elapsed_seconds() == 7.5

    def test_summary_line_wall_time_and_cache(self):
        reporter, _, clock = make(label="campaign")
        reporter.add_total(3)
        clock.now = 190.0
        for cached in (False, True, True):
            reporter.unit_done(cached=cached)
        assert reporter.summary_line() == (
            "campaign: 3 shards in 3m10s (2 from cache)"
        )

    def test_summary_line_singular_shard_no_cache_suffix(self):
        reporter, _, clock = make(label="fig4")
        reporter.add_total(1)
        clock.now = 42.0
        reporter.unit_done()
        assert reporter.summary_line() == "fig4: 1 shard in 42s"

    def test_lost_workers_in_status_and_summary(self):
        """Satellite: cluster fault history summarizes without the journal."""
        reporter, _, clock = make(label="fig3")
        reporter.add_total(4)
        reporter.unit_retried()
        reporter.worker_lost()
        clock.now = 10.0
        for _ in range(4):
            reporter.unit_done()
        assert reporter.lost == 1
        assert "1 retried" in reporter.status_line()
        assert "1 lost" in reporter.status_line()
        summary = reporter.summary_line()
        assert "1 retried" in summary
        assert "1 worker lost/reclaimed" in summary

    def test_lost_workers_pluralize(self):
        reporter, _, clock = make(label="fig3")
        reporter.add_total(1)
        reporter.worker_lost()
        reporter.worker_lost()
        clock.now = 1.0
        reporter.unit_done()
        assert "2 workers lost/reclaimed" in reporter.summary_line()

    def test_no_lost_suffix_on_clean_runs(self):
        reporter, _, clock = make(label="fig3")
        reporter.add_total(1)
        clock.now = 1.0
        reporter.unit_done()
        assert "lost" not in reporter.summary_line()

    def test_write_summary_appends_line(self):
        reporter, stream, clock = make()
        reporter.add_total(1)
        clock.now = 1.0
        reporter.unit_done()
        reporter.finish()
        reporter.write_summary()
        assert stream.getvalue().endswith(reporter.summary_line() + "\n")

    def test_render_throttled_by_min_interval(self):
        clock = FakeClock()
        stream = io.StringIO()
        reporter = ProgressReporter(
            stream=stream, min_interval=10.0, clock=clock
        )
        reporter.add_total(5)
        first_len = len(stream.getvalue())
        reporter.unit_done()  # within the interval -> no re-render
        assert len(stream.getvalue()) == first_len
        clock.now = 11.0
        reporter.unit_done()
        assert len(stream.getvalue()) > first_len
