"""Unit tests for repro.util.tables."""

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_basic_rendering(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 0.125]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.500" in out and "0.125" in out

    def test_title_line(self):
        out = format_table(["x"], [[1]], title="hello")
        assert out.splitlines()[0] == "hello"

    def test_float_format_override(self):
        out = format_table(["x"], [[0.123456]], floatfmt=".1f")
        assert "0.1" in out and "0.12" not in out

    def test_column_alignment(self):
        out = format_table(["col"], [[1], [100]])
        rows = out.splitlines()[2:]
        assert all(len(r) == len(rows[0]) for r in rows)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_strings_pass_through(self):
        out = format_table(["name"], [["alpha"]])
        assert "alpha" in out

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out
