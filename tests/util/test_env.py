"""Validated env-knob parsing (REPRO_SAMPLES / REPRO_M / dbf kernel knobs)."""

import pytest

from repro.util.env import (
    DBF_KERNELS,
    OBS_MODES,
    RUNNER_BACKENDS,
    RUNNER_STORES,
    approx_k_from_env,
    demand_kernel_from_env,
    spec_depth_from_env,
    heartbeat_interval_from_env,
    journal_flush_interval_from_env,
    journal_path_from_env,
    lease_timeout_from_env,
    m_values_from_env,
    straggler_factor_from_env,
    obs_mode_from_env,
    positive_float_env,
    positive_int_env,
    runner_backend_from_env,
    runner_store_from_env,
    rank_vec_min_from_env,
    samples_from_env,
    scan_chunk_from_env,
    screen_valve_from_env,
    verdict_cache_dir_from_env,
    verdict_cache_from_env,
    verdict_cache_size_from_env,
)


class TestPositiveIntEnv:
    def test_fallback_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAMPLES", raising=False)
        assert positive_int_env("REPRO_SAMPLES", 42) == 42

    def test_parses_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "1000")
        assert samples_from_env() == 1000

    @pytest.mark.parametrize("bad", ["0", "-3", "ten", "3.5"])
    def test_rejects_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_SAMPLES", bad)
        with pytest.raises(ValueError, match="REPRO_SAMPLES"):
            samples_from_env()


class TestDbfKernelKnobs:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_DBF_SCAN_CHUNK", raising=False)
        monkeypatch.delenv("REPRO_DBF_APPROX_K", raising=False)
        assert scan_chunk_from_env() == 4096
        assert approx_k_from_env() == 3

    def test_parses_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_DBF_SCAN_CHUNK", "512")
        monkeypatch.setenv("REPRO_DBF_APPROX_K", "7")
        assert scan_chunk_from_env() == 512
        assert approx_k_from_env() == 7

    @pytest.mark.parametrize("knob,reader", [
        ("REPRO_DBF_SCAN_CHUNK", scan_chunk_from_env),
        ("REPRO_DBF_APPROX_K", approx_k_from_env),
    ])
    @pytest.mark.parametrize("bad", ["0", "-2", "many"])
    def test_rejects_invalid(self, monkeypatch, knob, reader, bad):
        monkeypatch.setenv(knob, bad)
        with pytest.raises(ValueError, match=knob):
            reader()

    def test_kernel_module_reads_knobs(self):
        """The dbf module's constants agree with the validated parsers.

        The knobs are consumed once at import (the kernel's inner loops
        must not re-read the environment), so the invariant testable here
        is consistency with whatever the ambient environment says.
        """
        from repro.analysis import dbf

        assert dbf._SCAN_CHUNK == scan_chunk_from_env()
        assert dbf._APPROX_K == approx_k_from_env()


class TestDemandKernelKnob:
    def test_default_is_qpa(self, monkeypatch):
        monkeypatch.delenv("REPRO_DBF_KERNEL", raising=False)
        assert demand_kernel_from_env() == "qpa"
        assert demand_kernel_from_env(fallback="forward") == "forward"

    @pytest.mark.parametrize("name", DBF_KERNELS)
    def test_parses_every_kernel(self, monkeypatch, name):
        monkeypatch.setenv("REPRO_DBF_KERNEL", name)
        assert demand_kernel_from_env() == name

    @pytest.mark.parametrize("bad", ["qpa2", "VEC", "fast", " qpa"])
    def test_rejects_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_DBF_KERNEL", bad)
        with pytest.raises(ValueError, match="REPRO_DBF_KERNEL"):
            demand_kernel_from_env()

    def test_kernel_module_reads_knob(self):
        from repro.analysis import dbf

        assert dbf._KERNEL in DBF_KERNELS


class TestSpecDepthKnob:
    def test_default_is_four(self, monkeypatch):
        monkeypatch.delenv("REPRO_DBF_SPEC_K", raising=False)
        assert spec_depth_from_env() == 4

    def test_parses_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_DBF_SPEC_K", "8")
        assert spec_depth_from_env() == 8

    @pytest.mark.parametrize("bad", ["0", "-1", "deep"])
    def test_rejects_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_DBF_SPEC_K", bad)
        with pytest.raises(ValueError, match="REPRO_DBF_SPEC_K"):
            spec_depth_from_env()


class TestObsMode:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert obs_mode_from_env() == "off"

    @pytest.mark.parametrize("mode", OBS_MODES)
    def test_parses_every_mode(self, monkeypatch, mode):
        monkeypatch.setenv("REPRO_OBS", mode)
        assert obs_mode_from_env() == mode

    @pytest.mark.parametrize("bad", ["on", "TRACE", "metrics,trace", "1"])
    def test_rejects_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_OBS", bad)
        with pytest.raises(ValueError, match="REPRO_OBS"):
            obs_mode_from_env()


class TestRunnerBackendKnob:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNNER_BACKEND", raising=False)
        assert runner_backend_from_env() == ""

    @pytest.mark.parametrize("name", RUNNER_BACKENDS)
    def test_parses_every_backend(self, monkeypatch, name):
        monkeypatch.setenv("REPRO_RUNNER_BACKEND", name)
        assert runner_backend_from_env() == name

    @pytest.mark.parametrize("bad", ["threads", "POOL", "serial,pool", "1"])
    def test_rejects_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_RUNNER_BACKEND", bad)
        with pytest.raises(ValueError, match="REPRO_RUNNER_BACKEND"):
            runner_backend_from_env()


class TestRunnerStoreKnob:
    def test_default_is_fs(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNNER_STORE", raising=False)
        assert runner_store_from_env() == "fs"

    @pytest.mark.parametrize("name", RUNNER_STORES)
    def test_parses_every_store(self, monkeypatch, name):
        monkeypatch.setenv("REPRO_RUNNER_STORE", name)
        assert runner_store_from_env() == name

    @pytest.mark.parametrize("bad", ["s3", "FS", "fs,object"])
    def test_rejects_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_RUNNER_STORE", bad)
        with pytest.raises(ValueError, match="REPRO_RUNNER_STORE"):
            runner_store_from_env()


class TestClusterTimingKnobs:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNNER_HEARTBEAT", raising=False)
        monkeypatch.delenv("REPRO_RUNNER_LEASE", raising=False)
        assert heartbeat_interval_from_env() == 2.0
        assert lease_timeout_from_env() == 300.0

    def test_parses_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_HEARTBEAT", "0.5")
        monkeypatch.setenv("REPRO_RUNNER_LEASE", "30")
        assert heartbeat_interval_from_env() == 0.5
        assert lease_timeout_from_env() == 30.0

    @pytest.mark.parametrize("knob,reader", [
        ("REPRO_RUNNER_HEARTBEAT", heartbeat_interval_from_env),
        ("REPRO_RUNNER_LEASE", lease_timeout_from_env),
    ])
    @pytest.mark.parametrize("bad", ["0", "-1.5", "soon"])
    def test_rejects_invalid(self, monkeypatch, knob, reader, bad):
        monkeypatch.setenv(knob, bad)
        with pytest.raises(ValueError, match=knob):
            reader()


class TestJournalKnobs:
    def test_journal_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_JOURNAL", raising=False)
        assert journal_path_from_env() == ""
        assert journal_path_from_env("fallback.jsonl") == "fallback.jsonl"

    def test_journal_path_parses(self, monkeypatch, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        monkeypatch.setenv("REPRO_OBS_JOURNAL", path)
        assert journal_path_from_env() == path

    @pytest.mark.parametrize("bad", [" padded.jsonl", "trailing.jsonl ", "  "])
    def test_journal_rejects_malformed_paths(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_OBS_JOURNAL", bad)
        with pytest.raises(ValueError, match="REPRO_OBS_JOURNAL"):
            journal_path_from_env()

    def test_journal_rejects_directories(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_OBS_JOURNAL", str(tmp_path))
        with pytest.raises(ValueError, match="REPRO_OBS_JOURNAL"):
            journal_path_from_env()

    def test_flush_interval_default_and_parse(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_JOURNAL_FLUSH", raising=False)
        assert journal_flush_interval_from_env() == 2.0
        monkeypatch.setenv("REPRO_OBS_JOURNAL_FLUSH", "0.25")
        assert journal_flush_interval_from_env() == 0.25

    @pytest.mark.parametrize("bad", ["0", "-2", "often"])
    def test_flush_interval_rejects_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_OBS_JOURNAL_FLUSH", bad)
        with pytest.raises(ValueError, match="REPRO_OBS_JOURNAL_FLUSH"):
            journal_flush_interval_from_env()

    def test_straggler_factor_default_and_parse(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS_STRAGGLER", raising=False)
        assert straggler_factor_from_env() == 4.0
        monkeypatch.setenv("REPRO_OBS_STRAGGLER", "2.5")
        assert straggler_factor_from_env() == 2.5
        monkeypatch.setenv("REPRO_OBS_STRAGGLER", "1")
        assert straggler_factor_from_env() == 1.0

    @pytest.mark.parametrize("bad", ["0", "-4", "0.5", "0.999", "lots"])
    def test_straggler_factor_rejects_invalid(self, monkeypatch, bad):
        """Below 1 would flag faster-than-typical units — always a typo."""
        monkeypatch.setenv("REPRO_OBS_STRAGGLER", bad)
        with pytest.raises(ValueError, match="REPRO_OBS_STRAGGLER"):
            straggler_factor_from_env()


class TestPositiveFloatEnv:
    def test_fallback_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNNER_LEASE", raising=False)
        assert positive_float_env("REPRO_RUNNER_LEASE", 1.25) == 1.25

    def test_accepts_scientific_notation(self, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_LEASE", "1e2")
        assert positive_float_env("REPRO_RUNNER_LEASE", 1.0) == 100.0


class TestMValues:
    def test_fallback_is_paper_sweep(self, monkeypatch):
        monkeypatch.delenv("REPRO_M", raising=False)
        assert m_values_from_env() == (2, 4, 8)

    def test_parses_csv_with_spaces(self, monkeypatch):
        monkeypatch.setenv("REPRO_M", "2, 4")
        assert m_values_from_env() == (2, 4)

    @pytest.mark.parametrize("bad", ["0", "2,-4", "two", ","])
    def test_rejects_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_M", bad)
        with pytest.raises(ValueError, match="REPRO_M"):
            m_values_from_env()


class TestRankVecMinKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DBF_RANK_VEC_MIN", raising=False)
        assert rank_vec_min_from_env() == 24

    def test_parses_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_DBF_RANK_VEC_MIN", "8")
        assert rank_vec_min_from_env() == 8

    @pytest.mark.parametrize("bad", ["0", "-1", "lots", "2.5"])
    def test_rejects_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_DBF_RANK_VEC_MIN", bad)
        with pytest.raises(ValueError, match="REPRO_DBF_RANK_VEC_MIN"):
            rank_vec_min_from_env()

    def test_vec_module_reads_knob(self):
        """Consumed once at import, like the other kernel knobs."""
        from repro.analysis import dbf_vec

        assert dbf_vec.RANK_VEC_MIN == rank_vec_min_from_env()


class TestScreenValveKnob:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DBF_SCREEN_VALVE", raising=False)
        assert screen_valve_from_env() == 2

    def test_parses_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_DBF_SCREEN_VALVE", "5")
        assert screen_valve_from_env() == 5

    @pytest.mark.parametrize("bad", ["0", "-2", "forever"])
    def test_rejects_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_DBF_SCREEN_VALVE", bad)
        with pytest.raises(ValueError, match="REPRO_DBF_SCREEN_VALVE"):
            screen_valve_from_env()

    def test_tuning_module_reads_knob(self):
        from repro.analysis import vdtuning

        assert vdtuning._SCREEN_VALVE == screen_valve_from_env()


class TestVerdictCacheKnobs:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERDICT_CACHE", raising=False)
        monkeypatch.delenv("REPRO_VERDICT_CACHE_SIZE", raising=False)
        monkeypatch.delenv("REPRO_VERDICT_CACHE_DIR", raising=False)
        assert verdict_cache_from_env() == "off"
        assert verdict_cache_size_from_env() == 4096
        assert verdict_cache_dir_from_env() == ""

    def test_parses_values(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_VERDICT_CACHE", "on")
        monkeypatch.setenv("REPRO_VERDICT_CACHE_SIZE", "16")
        monkeypatch.setenv("REPRO_VERDICT_CACHE_DIR", str(tmp_path))
        assert verdict_cache_from_env() == "on"
        assert verdict_cache_size_from_env() == 16
        assert verdict_cache_dir_from_env() == str(tmp_path)

    @pytest.mark.parametrize("bad", ["ON", "yes", "1", "true"])
    def test_rejects_invalid_switch(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_VERDICT_CACHE", bad)
        with pytest.raises(ValueError, match="REPRO_VERDICT_CACHE"):
            verdict_cache_from_env()

    @pytest.mark.parametrize("bad", ["0", "-5", "big"])
    def test_rejects_invalid_size(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_VERDICT_CACHE_SIZE", bad)
        with pytest.raises(ValueError, match="REPRO_VERDICT_CACHE_SIZE"):
            verdict_cache_size_from_env()

    def test_rejects_padded_dir(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERDICT_CACHE_DIR", " /tmp/cache ")
        with pytest.raises(ValueError, match="REPRO_VERDICT_CACHE_DIR"):
            verdict_cache_dir_from_env()

    def test_rejects_existing_file(self, monkeypatch, tmp_path):
        blob = tmp_path / "not-a-dir"
        blob.write_text("x")
        monkeypatch.setenv("REPRO_VERDICT_CACHE_DIR", str(blob))
        with pytest.raises(ValueError, match="REPRO_VERDICT_CACHE_DIR"):
            verdict_cache_dir_from_env()
