"""Validated env-knob parsing (REPRO_SAMPLES / REPRO_M / dbf kernel knobs)."""

import pytest

from repro.util.env import (
    OBS_MODES,
    approx_k_from_env,
    m_values_from_env,
    obs_mode_from_env,
    positive_int_env,
    samples_from_env,
    scan_chunk_from_env,
)


class TestPositiveIntEnv:
    def test_fallback_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAMPLES", raising=False)
        assert positive_int_env("REPRO_SAMPLES", 42) == 42

    def test_parses_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "1000")
        assert samples_from_env() == 1000

    @pytest.mark.parametrize("bad", ["0", "-3", "ten", "3.5"])
    def test_rejects_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_SAMPLES", bad)
        with pytest.raises(ValueError, match="REPRO_SAMPLES"):
            samples_from_env()


class TestDbfKernelKnobs:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_DBF_SCAN_CHUNK", raising=False)
        monkeypatch.delenv("REPRO_DBF_APPROX_K", raising=False)
        assert scan_chunk_from_env() == 4096
        assert approx_k_from_env() == 3

    def test_parses_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_DBF_SCAN_CHUNK", "512")
        monkeypatch.setenv("REPRO_DBF_APPROX_K", "7")
        assert scan_chunk_from_env() == 512
        assert approx_k_from_env() == 7

    @pytest.mark.parametrize("knob,reader", [
        ("REPRO_DBF_SCAN_CHUNK", scan_chunk_from_env),
        ("REPRO_DBF_APPROX_K", approx_k_from_env),
    ])
    @pytest.mark.parametrize("bad", ["0", "-2", "many"])
    def test_rejects_invalid(self, monkeypatch, knob, reader, bad):
        monkeypatch.setenv(knob, bad)
        with pytest.raises(ValueError, match=knob):
            reader()

    def test_kernel_module_reads_knobs(self):
        """The dbf module's constants agree with the validated parsers.

        The knobs are consumed once at import (the kernel's inner loops
        must not re-read the environment), so the invariant testable here
        is consistency with whatever the ambient environment says.
        """
        from repro.analysis import dbf

        assert dbf._SCAN_CHUNK == scan_chunk_from_env()
        assert dbf._APPROX_K == approx_k_from_env()


class TestObsMode:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert obs_mode_from_env() == "off"

    @pytest.mark.parametrize("mode", OBS_MODES)
    def test_parses_every_mode(self, monkeypatch, mode):
        monkeypatch.setenv("REPRO_OBS", mode)
        assert obs_mode_from_env() == mode

    @pytest.mark.parametrize("bad", ["on", "TRACE", "metrics,trace", "1"])
    def test_rejects_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_OBS", bad)
        with pytest.raises(ValueError, match="REPRO_OBS"):
            obs_mode_from_env()


class TestMValues:
    def test_fallback_is_paper_sweep(self, monkeypatch):
        monkeypatch.delenv("REPRO_M", raising=False)
        assert m_values_from_env() == (2, 4, 8)

    def test_parses_csv_with_spaces(self, monkeypatch):
        monkeypatch.setenv("REPRO_M", "2, 4")
        assert m_values_from_env() == (2, 4)

    @pytest.mark.parametrize("bad", ["0", "2,-4", "two", ","])
    def test_rejects_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_M", bad)
        with pytest.raises(ValueError, match="REPRO_M"):
            m_values_from_env()
