"""Validated env-knob parsing (REPRO_SAMPLES / REPRO_M)."""

import pytest

from repro.util.env import m_values_from_env, positive_int_env, samples_from_env


class TestPositiveIntEnv:
    def test_fallback_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAMPLES", raising=False)
        assert positive_int_env("REPRO_SAMPLES", 42) == 42

    def test_parses_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "1000")
        assert samples_from_env() == 1000

    @pytest.mark.parametrize("bad", ["0", "-3", "ten", "3.5"])
    def test_rejects_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_SAMPLES", bad)
        with pytest.raises(ValueError, match="REPRO_SAMPLES"):
            samples_from_env()


class TestMValues:
    def test_fallback_is_paper_sweep(self, monkeypatch):
        monkeypatch.delenv("REPRO_M", raising=False)
        assert m_values_from_env() == (2, 4, 8)

    def test_parses_csv_with_spaces(self, monkeypatch):
        monkeypatch.setenv("REPRO_M", "2, 4")
        assert m_values_from_env() == (2, 4)

    @pytest.mark.parametrize("bad", ["0", "2,-4", "two", ","])
    def test_rejects_invalid(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_M", bad)
        with pytest.raises(ValueError, match="REPRO_M"):
            m_values_from_env()
