"""Unit tests for repro.util.intmath."""

import pytest

from repro.util.intmath import ceil_div, floor_div, hyperperiod, is_integral, lcm_all


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(10, 5) == 2

    def test_rounds_up(self):
        assert ceil_div(11, 5) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 7) == 0

    def test_negative_numerator_rounds_toward_zero_ceiling(self):
        assert ceil_div(-1, 2) == 0
        assert ceil_div(-4, 2) == -2
        assert ceil_div(-5, 2) == -2

    def test_one_divisor(self):
        assert ceil_div(13, 1) == 13

    @pytest.mark.parametrize("bad", [0, -3])
    def test_nonpositive_divisor_rejected(self, bad):
        with pytest.raises(ValueError):
            ceil_div(5, bad)

    def test_matches_float_ceil_on_range(self):
        import math

        for a in range(-50, 51):
            for b in range(1, 13):
                assert ceil_div(a, b) == math.ceil(a / b)


class TestFloorDiv:
    def test_basic(self):
        assert floor_div(7, 2) == 3

    def test_negative(self):
        assert floor_div(-7, 2) == -4

    def test_nonpositive_divisor_rejected(self):
        with pytest.raises(ValueError):
            floor_div(1, 0)


class TestLcm:
    def test_pair(self):
        assert lcm_all([4, 6]) == 12

    def test_single(self):
        assert lcm_all([7]) == 7

    def test_many(self):
        assert lcm_all([2, 3, 5, 7]) == 210

    def test_duplicates(self):
        assert lcm_all([10, 10, 5]) == 10

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            lcm_all([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            lcm_all([3, 0])

    def test_hyperperiod_alias(self):
        assert hyperperiod([10, 25]) == 50


class TestIsIntegral:
    def test_exact(self):
        assert is_integral(4.0)

    def test_close(self):
        assert is_integral(3.9999999999)

    def test_not_integral(self):
        assert not is_integral(3.5)

    def test_custom_tolerance(self):
        assert is_integral(3.4, tol=0.5)
