"""Unit tests for repro.util.rng (deterministic seeding)."""

from repro.util.rng import derive_rng, spawn_seed


class TestSpawnSeed:
    def test_deterministic(self):
        assert spawn_seed("a", 1, 0.5) == spawn_seed("a", 1, 0.5)

    def test_component_sensitivity(self):
        assert spawn_seed("a", 1) != spawn_seed("a", 2)
        assert spawn_seed("a") != spawn_seed("b")

    def test_order_sensitivity(self):
        assert spawn_seed("a", "b") != spawn_seed("b", "a")

    def test_positive_63_bit(self):
        for args in [("x",), (1, 2, 3), (0.1, "y")]:
            seed = spawn_seed(*args)
            assert 0 <= seed < 2**63


class TestDeriveRng:
    def test_same_components_same_stream(self):
        a = derive_rng("exp", 4).random(5)
        b = derive_rng("exp", 4).random(5)
        assert (a == b).all()

    def test_different_components_different_stream(self):
        a = derive_rng("exp", 4).random(5)
        b = derive_rng("exp", 5).random(5)
        assert not (a == b).all()
