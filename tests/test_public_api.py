"""Public API surface checks.

Guards the curated ``repro`` namespace: everything advertised in
``__all__`` must exist, and the registries must stay consistent with the
concrete classes they expose (renaming a test must not silently detach it
from the experiment harness).
"""

import repro
from repro.analysis import get_test, registered_tests
from repro.core import get_strategy, registered_strategies
from repro.experiments import get_algorithm, registered_algorithms


class TestNamespace:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_key_types_importable_at_top_level(self):
        assert repro.MCTask is not None
        assert repro.TaskSet is not None
        assert callable(repro.partition)
        assert callable(repro.cu_udp)


class TestRegistryConsistency:
    def test_every_test_instantiates_with_matching_name(self):
        for name in registered_tests():
            test = get_test(name)
            # OPA variants share their class's base name; everything else
            # must round-trip exactly.
            assert test.name == name or name.endswith("-opa")

    def test_every_strategy_instantiates_with_matching_name(self):
        for name in registered_strategies():
            assert get_strategy(name).name == name

    def test_every_algorithm_wires_registered_parts(self):
        strategies = set(registered_strategies())
        for name in registered_algorithms():
            algo = get_algorithm(name)
            assert algo.name == name
            assert algo.strategy.name in strategies

    def test_algorithm_names_compose_strategy_and_test(self):
        for name in registered_algorithms():
            algo = get_algorithm(name)
            assert name.startswith(algo.strategy.name)
