"""The committed BENCH_telemetry.json must stay parseable and honest.

The telemetry benchmark records the journal's wall-clock overhead for
the serial and cluster backends on the fig3 slice; the ISSUE caps it at
5%.  This check keeps a malformed artifact — or one that quietly blew
the overhead budget — from landing silently.
"""

from __future__ import annotations

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_telemetry.json"

REQUIRED_MODE_KEYS = {"jobs", "off_s", "on_s", "overhead_factor", "shards_per_sec"}
REQUIRED_JOURNAL_KEYS = {
    "schema",
    "events_per_shard",
    "bytes_per_shard",
    "summarized_shards_per_sec",
}

#: The committed artifact may keep a small grace over the 1.05x gate the
#: benchmark itself enforces (sub-second noise on 1-CPU runners), but a
#: recorded factor past this means the journal genuinely got expensive.
COMMITTED_CEILING = 1.10


def test_bench_telemetry_json_parses():
    data = json.loads(ARTIFACT.read_text(encoding="utf-8"))
    assert data["figure"] == "fig3"
    assert data["samples_per_bucket"] > 0
    assert data["shards"] > 0
    assert data["m_values"] and all(m > 0 for m in data["m_values"])
    assert data["host"]["cpus"] >= 1
    assert data["max_overhead"] == 1.05

    modes = data["modes"]
    assert set(modes) == {"serial", "cluster"}
    for name, row in modes.items():
        missing = REQUIRED_MODE_KEYS - set(row)
        assert not missing, f"{name} missing {sorted(missing)}"
        assert row["jobs"] >= 1
        assert row["off_s"] > 0 and row["on_s"] > 0
        assert row["shards_per_sec"] > 0
        assert 0 < row["overhead_factor"] < COMMITTED_CEILING, (
            f"{name}: recorded journal overhead {row['overhead_factor']}x"
        )
    assert modes["serial"]["jobs"] == 1
    assert modes["cluster"]["jobs"] > 1

    journal = data["journal"]
    missing = REQUIRED_JOURNAL_KEYS - set(journal)
    assert not missing, f"journal missing {sorted(missing)}"
    assert journal["schema"] == "repro-journal/1"
    # every executed shard leaves at least exec-start/exec-done/done
    assert journal["events_per_shard"] >= 3
    assert journal["bytes_per_shard"] > 0
    assert journal["summarized_shards_per_sec"] > 0
