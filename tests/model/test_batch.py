"""TaskSetBatch: columnar layout, lazy materialization, derived columns."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import MCTask, TaskColumns, TaskSet, TaskSetBatch


def make_taskset(seed: int = 0) -> TaskSet:
    return TaskSet(
        [
            MCTask(period=10 + seed, criticality="HC", wcet_lo=2, wcet_hi=4),
            MCTask(period=20, criticality="LC", wcet_lo=5, wcet_hi=5),
            MCTask(
                period=50,
                criticality="LC",
                wcet_lo=10,
                wcet_hi=10,
                wcet_degraded=4,
            ),
        ]
    )


class TestLayout:
    def test_offsets_and_sizes(self):
        batch = TaskSetBatch.from_tasksets([make_taskset(0), make_taskset(1)])
        assert len(batch) == 2
        assert batch.n_tasks == 6
        assert batch.offsets.tolist() == [0, 3, 6]
        assert batch.set_slice(1) == slice(3, 6)

    def test_empty_batch(self):
        batch = TaskSetBatch([])
        assert len(batch) == 0
        assert batch.n_tasks == 0
        assert batch.to_tasksets() == []
        assert batch.sum_per_set(batch.u_lo).tolist() == []

    def test_columns_match_task_fields(self):
        ts = make_taskset()
        batch = TaskSetBatch.from_tasksets([ts])
        for i, task in enumerate(ts):
            assert batch.period[i] == task.period
            assert batch.wcet_lo[i] == task.wcet_lo
            assert batch.wcet_hi[i] == task.wcet_hi
            assert batch.deadline[i] == task.deadline
            assert bool(batch.is_high[i]) == task.is_high
        assert batch.wcet_degraded.tolist() == [-1, -1, 4]

    def test_empty_set_rows(self):
        batch = TaskSetBatch.from_tasksets([TaskSet(), make_taskset()])
        assert len(batch) == 2
        assert batch.set_slice(0) == slice(0, 0)
        sums = batch.sum_per_set(batch.u_lo)
        assert sums[0] == 0.0
        assert sums[1] > 0


class TestDerivedColumns:
    def test_utilization_columns_bit_identical(self):
        ts = make_taskset()
        batch = TaskSetBatch.from_tasksets([ts])
        for i, task in enumerate(ts):
            assert float(batch.u_lo[i]) == task.utilization_lo
            assert float(batch.u_hi[i]) == task.utilization_hi

    def test_u_res_zero_under_drop(self):
        batch = TaskSetBatch.from_tasksets([make_taskset()])
        assert not batch.u_res.any()

    def test_u_res_matches_service_model(self):
        ts = make_taskset().with_service_model("imprecise:0.5")
        batch = TaskSetBatch.from_tasksets([ts])
        service = ts.effective_service
        expected = [
            0.0 if t.is_high else service.residual_utilization(t) for t in ts
        ]
        assert batch.u_res.tolist() == expected



class TestMaterialization:
    def test_from_tasksets_round_trip_preserves_identity(self):
        sets = [make_taskset(0), make_taskset(1)]
        batch = TaskSetBatch.from_tasksets(sets)
        assert batch.to_tasksets() == sets
        assert batch.taskset(0) is sets[0]

    def test_columns_materialize_equivalent_fields(self):
        ts = make_taskset()
        rebuilt = TaskColumns.from_taskset(ts).materialize()
        assert [t.to_dict() | {"name": ""} for t in rebuilt] == [
            t.to_dict() | {"name": ""} for t in ts
        ]

    def test_materialization_is_lazy_and_cached(self):
        cols = TaskColumns.from_taskset(make_taskset())
        batch = TaskSetBatch([cols, cols])
        assert batch._sets == {}
        first = batch.taskset(1)
        assert batch.taskset(1) is first
        assert 0 not in batch._sets

    def test_service_model_propagates(self):
        cols = TaskColumns.from_taskset(make_taskset())
        batch = TaskSetBatch([cols], service_model="imprecise:0.5")
        ts = batch.taskset(0)
        assert ts.service_model is batch.service_model
        assert ts.residual_utilization > 0

    def test_mixed_service_batches_rejected(self):
        plain = make_taskset()
        degraded = make_taskset().with_service_model("elastic:2.0")
        with pytest.raises(ValueError, match="mixed service"):
            TaskSetBatch.from_tasksets([plain, degraded])

    def test_full_drop_normalizes_like_taskset(self):
        dropped = make_taskset().with_service_model("full-drop")
        batch = TaskSetBatch.from_tasksets([make_taskset(), dropped])
        assert len(batch) == 2


class TestSums:
    def test_sum_per_set_close_to_python_sum(self):
        sets = [make_taskset(s) for s in range(5)]
        batch = TaskSetBatch.from_tasksets(sets)
        sums = batch.sum_per_set(batch.u_lo)
        for i, ts in enumerate(sets):
            assert sums[i] == pytest.approx(ts.utilization.u_lo, abs=1e-12)

    def test_sum_per_set_hc_mask(self):
        sets = [make_taskset()]
        batch = TaskSetBatch.from_tasksets(sets)
        hi = batch.sum_per_set(np.where(batch.is_high, batch.u_hi, 0.0))
        assert hi[0] == pytest.approx(sets[0].utilization.u_hh, abs=1e-12)
