"""Unit tests for repro.model.task."""

import pytest

from repro.model import Criticality, MCTask

from tests.conftest import hc_task, lc_task


class TestConstruction:
    def test_defaults_implicit_deadline(self):
        task = hc_task(100, 10, 20)
        assert task.deadline == 100
        assert task.implicit_deadline

    def test_explicit_deadline(self):
        task = hc_task(100, 10, 20, deadline=60)
        assert task.deadline == 60
        assert not task.implicit_deadline
        assert task.constrained_deadline

    def test_auto_names_unique_and_prefixed(self):
        a, b = hc_task(10, 1, 2), lc_task(10, 1)
        assert a.name.startswith("hc")
        assert b.name.startswith("lc")
        assert a.name != b.name

    def test_task_ids_unique(self):
        a, b = hc_task(10, 1, 2), hc_task(10, 1, 2)
        assert a.task_id != b.task_id

    def test_criticality_string_coerced(self):
        task = MCTask(period=10, criticality="hc", wcet_lo=1, wcet_hi=2)
        assert task.criticality is Criticality.HC

    def test_frozen(self):
        task = hc_task(10, 1, 2)
        with pytest.raises(AttributeError):
            task.period = 20  # type: ignore[misc]


class TestValidationInConstructor:
    def test_nonpositive_period_rejected(self):
        with pytest.raises(ValueError, match="period"):
            hc_task(0, 1, 1)

    def test_nonpositive_wcet_rejected(self):
        with pytest.raises(ValueError, match="wcet_lo"):
            hc_task(10, 0, 1)

    def test_wcet_hi_below_lo_rejected(self):
        with pytest.raises(ValueError, match="wcet_hi"):
            hc_task(10, 5, 3)

    def test_lc_with_distinct_budgets_rejected(self):
        with pytest.raises(ValueError, match="LC task"):
            MCTask(period=10, criticality=Criticality.LC, wcet_lo=2, wcet_hi=3)

    def test_float_fields_rejected(self):
        with pytest.raises(TypeError, match="int"):
            MCTask(period=10.0, criticality=Criticality.HC, wcet_lo=1, wcet_hi=2)  # type: ignore[arg-type]

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            hc_task(10, 1, 2, deadline=0)


class TestUtilization:
    def test_lo_hi(self):
        task = hc_task(100, 10, 25)
        assert task.utilization_lo == pytest.approx(0.10)
        assert task.utilization_hi == pytest.approx(0.25)

    def test_own_level_high(self):
        assert hc_task(100, 10, 25).utilization_at_own_level == pytest.approx(0.25)

    def test_own_level_low(self):
        assert lc_task(100, 30).utilization_at_own_level == pytest.approx(0.30)

    def test_difference(self):
        assert hc_task(100, 10, 25).utilization_difference == pytest.approx(0.15)
        assert lc_task(100, 30).utilization_difference == 0.0

    def test_density_uses_min_deadline_period(self):
        task = hc_task(100, 10, 40, deadline=50)
        assert task.density_lo == pytest.approx(0.2)
        assert task.density_hi == pytest.approx(0.8)


class TestTransforms:
    def test_with_deadline(self):
        task = hc_task(100, 10, 20)
        shorter = task.with_deadline(60)
        assert shorter.deadline == 60
        assert shorter.period == 100
        assert task.deadline == 100  # original untouched

    def test_scaled_halves_budgets(self):
        task = hc_task(100, 10, 20)
        fast = task.scaled(2.0)
        assert fast.wcet_lo == 5
        assert fast.wcet_hi == 10

    def test_scaled_rounds_up(self):
        task = hc_task(100, 3, 5)
        fast = task.scaled(2.0)
        assert fast.wcet_lo == 2  # ceil(1.5)
        assert fast.wcet_hi == 3  # ceil(2.5)

    def test_scaled_keeps_minimum_one(self):
        task = lc_task(100, 1)
        assert task.scaled(10.0).wcet_lo == 1

    def test_scaled_invalid_speed(self):
        with pytest.raises(ValueError):
            hc_task(10, 1, 2).scaled(0.0)


class TestSerialization:
    def test_roundtrip(self):
        task = hc_task(120, 15, 33, deadline=90, name="roundtrip")
        again = MCTask.from_dict(task.to_dict())
        assert again.period == 120
        assert again.criticality is Criticality.HC
        assert again.wcet_lo == 15
        assert again.wcet_hi == 33
        assert again.deadline == 90
        assert again.name == "roundtrip"

    def test_from_dict_default_deadline(self):
        again = MCTask.from_dict(
            {"period": 50, "criticality": "LC", "wcet_lo": 5, "wcet_hi": 5}
        )
        assert again.deadline == 50
