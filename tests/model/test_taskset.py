"""Unit tests for repro.model.taskset."""

import pytest

from repro.model import MCTask, TaskSet

from tests.conftest import hc_task, lc_task


@pytest.fixture
def mixed() -> TaskSet:
    return TaskSet(
        [
            hc_task(100, 10, 30, name="h1"),
            lc_task(50, 10, name="l1"),
            hc_task(200, 40, 60, name="h2"),
            lc_task(100, 20, name="l2"),
        ]
    )


class TestSequenceProtocol:
    def test_len_iter_index(self, mixed):
        assert len(mixed) == 4
        assert [t.name for t in mixed] == ["h1", "l1", "h2", "l2"]
        assert mixed[0].name == "h1"

    def test_slice_returns_taskset(self, mixed):
        head = mixed[:2]
        assert isinstance(head, TaskSet)
        assert [t.name for t in head] == ["h1", "l1"]

    def test_contains(self, mixed):
        assert mixed[0] in mixed

    def test_hash_and_eq(self, mixed):
        clone = TaskSet(list(mixed))
        assert clone == mixed
        assert hash(clone) == hash(mixed)
        assert clone != mixed[:2]

    def test_duplicate_ids_rejected(self):
        task = hc_task(10, 1, 2)
        with pytest.raises(ValueError, match="duplicate"):
            TaskSet([task, task])

    def test_non_task_rejected(self):
        with pytest.raises(TypeError):
            TaskSet([42])  # type: ignore[list-item]


class TestFunctionalUpdates:
    def test_with_task(self, mixed):
        extra = lc_task(10, 1, name="extra")
        bigger = mixed.with_task(extra)
        assert len(bigger) == 5
        assert len(mixed) == 4

    def test_without_task(self, mixed):
        smaller = mixed.without_task(mixed[0])
        assert len(smaller) == 3
        assert all(t.name != "h1" for t in smaller)

    def test_without_missing_raises(self, mixed):
        with pytest.raises(KeyError):
            mixed.without_task(lc_task(10, 1))

    def test_sorted_by(self, mixed):
        by_period = mixed.sorted_by(lambda t: t.period)
        assert [t.period for t in by_period] == [50, 100, 100, 200]


class TestCriticalityViews:
    def test_split(self, mixed):
        assert [t.name for t in mixed.high_tasks] == ["h1", "h2"]
        assert [t.name for t in mixed.low_tasks] == ["l1", "l2"]

    def test_of_criticality(self, mixed):
        assert mixed.of_criticality("HC") == mixed.high_tasks
        assert mixed.of_criticality("LC") == mixed.low_tasks


class TestAggregates:
    def test_utilization_sums(self, mixed):
        util = mixed.utilization
        assert util.u_ll == pytest.approx(10 / 50 + 20 / 100)
        assert util.u_lh == pytest.approx(10 / 100 + 40 / 200)
        assert util.u_hh == pytest.approx(30 / 100 + 60 / 200)

    def test_derived_quantities(self, mixed):
        util = mixed.utilization
        assert util.u_lo == pytest.approx(util.u_ll + util.u_lh)
        assert util.difference == pytest.approx(util.u_hh - util.u_lh)
        assert util.bound == pytest.approx(max(util.u_lo, util.u_hh))

    def test_normalized(self, mixed):
        util = mixed.utilization
        norm = util.normalized(2)
        assert norm.u_hh == pytest.approx(util.u_hh / 2)

    def test_normalized_invalid_m(self, mixed):
        with pytest.raises(ValueError):
            mixed.utilization.normalized(0)

    def test_hyperperiod(self, mixed):
        assert mixed.hyperperiod == 200

    def test_empty_set_aggregates(self):
        empty = TaskSet()
        assert empty.utilization.bound == 0.0
        assert empty.hyperperiod == 1
        assert empty.max_deadline == 0

    def test_deadline_classes(self, mixed):
        assert mixed.is_implicit_deadline
        constrained = mixed.with_task(hc_task(100, 5, 10, deadline=50))
        assert not constrained.is_implicit_deadline
        assert constrained.is_constrained_deadline


class TestSerialization:
    def test_roundtrip(self, mixed):
        again = TaskSet.from_dicts(mixed.to_dicts())
        assert [t.name for t in again] == [t.name for t in mixed]
        assert again.utilization.u_hh == pytest.approx(mixed.utilization.u_hh)

    def test_describe_mentions_everything(self, mixed):
        text = mixed.describe()
        assert "4 tasks" in text
        for task in mixed:
            assert task.name in text
