"""Property-based tests for the task model (hypothesis)."""

from hypothesis import given, strategies as st

from repro.model import Criticality, MCTask, TaskSet


@st.composite
def mc_tasks(draw) -> MCTask:
    period = draw(st.integers(min_value=2, max_value=500))
    high = draw(st.booleans())
    wcet_lo = draw(st.integers(min_value=1, max_value=period))
    if high:
        wcet_hi = draw(st.integers(min_value=wcet_lo, max_value=period))
    else:
        wcet_hi = wcet_lo
    deadline = draw(st.integers(min_value=max(wcet_hi, 1), max_value=period))
    return MCTask(
        period=period,
        criticality=Criticality.HC if high else Criticality.LC,
        wcet_lo=wcet_lo,
        wcet_hi=wcet_hi,
        deadline=deadline,
    )


@given(mc_tasks())
def test_utilization_bounds(task):
    assert 0 < task.utilization_lo <= 1
    assert task.utilization_lo <= task.utilization_hi <= 1
    assert task.utilization_difference >= 0


@given(mc_tasks())
def test_own_level_matches_criticality(task):
    if task.is_high:
        assert task.utilization_at_own_level == task.utilization_hi
    else:
        assert task.utilization_at_own_level == task.utilization_lo


@given(mc_tasks())
def test_density_at_least_utilization(task):
    assert task.density_lo >= task.utilization_lo - 1e-12
    assert task.density_hi >= task.utilization_hi - 1e-12


@given(mc_tasks())
def test_serialization_roundtrip(task):
    again = MCTask.from_dict(task.to_dict())
    assert (again.period, again.wcet_lo, again.wcet_hi, again.deadline) == (
        task.period,
        task.wcet_lo,
        task.wcet_hi,
        task.deadline,
    )
    assert again.criticality == task.criticality


@given(mc_tasks(), st.floats(min_value=1.01, max_value=8.0))
def test_scaling_reduces_and_preserves_model(task, speed):
    scaled = task.scaled(speed)
    assert scaled.wcet_lo <= task.wcet_lo
    assert scaled.wcet_hi <= task.wcet_hi
    assert scaled.wcet_lo <= scaled.wcet_hi
    assert scaled.wcet_lo >= 1


@given(st.lists(mc_tasks(), max_size=12))
def test_taskset_aggregates_match_manual_sums(tasks):
    ts = TaskSet(tasks)
    util = ts.utilization
    assert util.u_ll == sum(t.utilization_lo for t in tasks if not t.is_high)
    assert util.u_lh == sum(t.utilization_lo for t in tasks if t.is_high)
    assert util.u_hh == sum(t.utilization_hi for t in tasks if t.is_high)
    assert len(ts.high_tasks) + len(ts.low_tasks) == len(ts)
