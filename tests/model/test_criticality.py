"""Unit tests for repro.model.criticality."""

import pytest

from repro.model import Criticality


class TestCriticality:
    def test_ordering(self):
        assert Criticality.LC < Criticality.HC

    def test_is_high(self):
        assert Criticality.HC.is_high
        assert not Criticality.LC.is_high

    @pytest.mark.parametrize(
        "value,expected",
        [
            ("HC", Criticality.HC),
            ("hc", Criticality.HC),
            ("LC", Criticality.LC),
            ("lc", Criticality.LC),
            (0, Criticality.LC),
            (1, Criticality.HC),
            (Criticality.HC, Criticality.HC),
        ],
    )
    def test_parse(self, value, expected):
        assert Criticality.parse(value) is expected

    def test_parse_unknown_name(self):
        with pytest.raises(ValueError, match="unknown criticality"):
            Criticality.parse("medium")

    def test_parse_unknown_int(self):
        with pytest.raises(ValueError):
            Criticality.parse(7)

    @pytest.mark.parametrize("value", [True, False])
    def test_parse_rejects_bool(self, value):
        # Regression: bool is an int subclass, so True used to parse
        # silently as HC via the int path — hiding argument-order bugs.
        with pytest.raises(ValueError, match="bool"):
            Criticality.parse(value)
