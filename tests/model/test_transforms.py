"""Unit tests for task-set transformations."""

import numpy as np
import pytest

from repro.model import TaskSet
from repro.model.transforms import (
    inflate_hi_budgets,
    squeeze_difference,
    with_constrained_deadlines,
    with_implicit_deadlines,
)

from tests.conftest import hc_task, lc_task


@pytest.fixture
def mixed() -> TaskSet:
    return TaskSet(
        [
            hc_task(100, 20, 50, deadline=80, name="h1"),
            hc_task(200, 40, 40, name="h2"),
            lc_task(50, 10, deadline=30, name="l1"),
        ]
    )


class TestDeadlineTransforms:
    def test_implicit_resets_all(self, mixed):
        implicit = with_implicit_deadlines(mixed)
        assert implicit.is_implicit_deadline
        assert [t.period for t in implicit] == [t.period for t in mixed]

    def test_constrained_draws_within_model(self, mixed):
        constrained = with_constrained_deadlines(
            mixed, np.random.default_rng(0)
        )
        for task in constrained:
            assert task.wcet_hi <= task.deadline <= task.period

    def test_constrained_deterministic_per_seed(self, mixed):
        a = with_constrained_deadlines(mixed, np.random.default_rng(7))
        b = with_constrained_deadlines(mixed, np.random.default_rng(7))
        assert [t.deadline for t in a] == [t.deadline for t in b]


class TestInflateHiBudgets:
    def test_scales_hc_only(self, mixed):
        inflated = inflate_hi_budgets(mixed, 1.5)
        by_name = {t.name: t for t in inflated}
        assert by_name["h1"].wcet_hi == 75
        assert by_name["l1"].wcet_hi == 10  # LC untouched

    def test_caps_at_deadline(self, mixed):
        inflated = inflate_hi_budgets(mixed, 10.0)
        by_name = {t.name: t for t in inflated}
        assert by_name["h1"].wcet_hi == 80  # min(D=80, T=100)

    def test_factor_one_is_identity(self, mixed):
        same = inflate_hi_budgets(mixed, 1.0)
        assert [t.wcet_hi for t in same] == [t.wcet_hi for t in mixed]

    def test_invalid_factor(self, mixed):
        with pytest.raises(ValueError):
            inflate_hi_budgets(mixed, 0.5)


class TestSqueezeDifference:
    def test_zero_is_identity(self, mixed):
        same = squeeze_difference(mixed, 0.0)
        assert [t.wcet_lo for t in same] == [t.wcet_lo for t in mixed]

    def test_one_erases_difference(self, mixed):
        flat = squeeze_difference(mixed, 1.0)
        for task in flat.high_tasks:
            assert task.wcet_lo == task.wcet_hi
            assert task.utilization_difference == 0.0

    def test_half_interpolates(self, mixed):
        half = squeeze_difference(mixed, 0.5)
        h1 = next(t for t in half if t.name == "h1")
        assert h1.wcet_lo == 35  # 20 + 0.5*30

    def test_monotone_in_ratio(self, mixed):
        previous = -1.0
        for ratio in (0.0, 0.3, 0.6, 1.0):
            squeezed = squeeze_difference(mixed, ratio)
            diff = squeezed.utilization.difference
            if previous >= 0:
                assert diff <= previous + 1e-12
            previous = diff

    def test_lc_untouched(self, mixed):
        flat = squeeze_difference(mixed, 1.0)
        l1 = next(t for t in flat if t.name == "l1")
        assert l1.wcet_lo == 10

    def test_invalid_ratio(self, mixed):
        with pytest.raises(ValueError):
            squeeze_difference(mixed, 1.5)
