"""Unit tests for repro.model.validation."""

import pytest

from repro.model import (
    MCTask,
    TaskModelError,
    TaskSet,
    validate_task,
    validate_taskset,
)
from repro.model.criticality import Criticality

from tests.conftest import hc_task, lc_task


class TestValidateTask:
    def test_valid_task_passes(self):
        validate_task(hc_task(100, 10, 20, deadline=60))

    def test_hc_wcet_hi_above_period_rejected(self):
        task = MCTask(period=10, criticality=Criticality.HC, wcet_lo=5, wcet_hi=12, deadline=10)
        with pytest.raises(TaskModelError, match="exceeds period"):
            validate_task(task)

    def test_wcet_above_deadline_rejected(self):
        task = hc_task(100, 30, 40, deadline=20)
        with pytest.raises(TaskModelError, match="deadline"):
            validate_task(task)

    def test_hi_wcet_above_deadline_rejected(self):
        task = hc_task(100, 10, 60, deadline=30)
        with pytest.raises(TaskModelError, match="HI-mode deadline"):
            validate_task(task)

    def test_arbitrary_deadline_rejected_by_default(self):
        task = hc_task(100, 10, 20, deadline=150)
        with pytest.raises(TaskModelError, match="constrained"):
            validate_task(task)

    def test_arbitrary_deadline_allowed_when_relaxed(self):
        task = hc_task(100, 10, 20, deadline=150)
        validate_task(task, require_constrained=False)


class TestValidateTaskset:
    def test_valid_set_passes(self, simple_mixed_taskset):
        validate_taskset(simple_mixed_taskset)

    def test_duplicate_names_rejected(self):
        ts = TaskSet([hc_task(10, 1, 2, name="dup"), lc_task(10, 1, name="dup")])
        with pytest.raises(TaskModelError, match="unique"):
            validate_taskset(ts)

    def test_dual_criticality_requirement(self):
        only_high = TaskSet([hc_task(10, 1, 2)])
        with pytest.raises(TaskModelError, match="no LC"):
            validate_taskset(only_high, require_dual_criticality=True)
        only_low = TaskSet([lc_task(10, 1)])
        with pytest.raises(TaskModelError, match="no HC"):
            validate_taskset(only_low, require_dual_criticality=True)

    def test_single_criticality_ok_by_default(self):
        validate_taskset(TaskSet([hc_task(10, 1, 2)]))
