"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import pytest

from repro.model import Criticality, MCTask, TaskSet


def hc_task(
    period: int,
    wcet_lo: int,
    wcet_hi: int,
    deadline: int | None = None,
    name: str = "",
) -> MCTask:
    """Shorthand HC task builder used across the suite."""
    return MCTask(
        period=period,
        criticality=Criticality.HC,
        wcet_lo=wcet_lo,
        wcet_hi=wcet_hi,
        deadline=period if deadline is None else deadline,
        name=name,
    )


def lc_task(
    period: int, wcet: int, deadline: int | None = None, name: str = ""
) -> MCTask:
    """Shorthand LC task builder used across the suite."""
    return MCTask(
        period=period,
        criticality=Criticality.LC,
        wcet_lo=wcet,
        wcet_hi=wcet,
        deadline=period if deadline is None else deadline,
        name=name,
    )


@pytest.fixture
def simple_mixed_taskset() -> TaskSet:
    """A small clearly-schedulable dual-criticality set (one core)."""
    return TaskSet(
        [
            hc_task(100, 10, 20, name="h1"),
            hc_task(200, 20, 50, name="h2"),
            lc_task(50, 5, name="l1"),
            lc_task(250, 25, name="l2"),
        ]
    )


@pytest.fixture
def heavy_taskset() -> TaskSet:
    """A set no uniprocessor MC test can accept (U_HH > 1)."""
    return TaskSet(
        [
            hc_task(100, 40, 80, name="h1"),
            hc_task(100, 30, 60, name="h2"),
            lc_task(100, 30, name="l1"),
        ]
    )
