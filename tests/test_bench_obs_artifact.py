"""The committed BENCH_obs.json must stay parseable and well-formed.

The obs benchmark writes the traced fig4 slice's snapshot (plus a
``bench`` overhead block) to the repo root so the documented
``repro-obs-snapshot/1`` example travels with the code, next to
``BENCH_dbf.json``; this check keeps a malformed or hand-mangled
artifact from landing silently.
"""

from __future__ import annotations

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_obs.json"

REQUIRED_TOP_KEYS = {
    "schema",
    "mode",
    "kernel",
    "counters",
    "gauges",
    "histograms",
    "spans",
    "bench",
}

HISTOGRAM_SUMMARY_KEYS = {"count", "total", "min", "max", "p50", "p95", "p99"}


def test_bench_obs_json_parses():
    data = json.loads(ARTIFACT.read_text(encoding="utf-8"))
    missing = REQUIRED_TOP_KEYS - set(data)
    assert not missing, f"snapshot missing {sorted(missing)}"
    assert data["schema"] == "repro-obs-snapshot/1"
    assert data["mode"] == "trace"
    assert data["kernel"] in {"forward", "qpa", "vec", "block"}

    counters = data["counters"]
    assert list(counters) == sorted(counters)
    for prefix in ("alloc.", "dbf.", "prefilter."):
        assert any(name.startswith(prefix) for name in counters), prefix
    assert all(value >= 0 for value in counters.values())

    histograms = data["histograms"]
    assert "runner.shard-seconds" in histograms
    for name, summary in histograms.items():
        gap = HISTOGRAM_SUMMARY_KEYS - set(summary)
        assert not gap, f"{name} summary missing {sorted(gap)}"
        assert summary["count"] > 0, f"{name} committed empty"
        assert summary["min"] <= summary["p50"] <= summary["p99"]
        assert summary["p99"] <= summary["max"] * (1 + 1e-9)

    spans = data["spans"]
    assert spans["count"] == sum(spans["by_name"].values()) > 0
    assert {"sweep", "shard"} <= set(spans["by_name"])

    bench = data["bench"]
    assert bench["tasksets"] > 0
    assert set(bench["seconds"]) == {"off", "metrics", "trace"}
    assert all(value > 0 for value in bench["seconds"].values())
    assert set(bench["overhead_vs_off"]) == {"metrics", "trace"}
    assert bench["tasksets_per_sec_off"] > 0
