"""The committed BENCH_fabric.json must stay parseable and well-formed.

The campaign-fabric benchmark writes backend throughput and the injected
worker-loss overhead to the repo root so the perf history travels with
the code; this check keeps a malformed or hand-mangled artifact from
landing silently.
"""

from __future__ import annotations

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
ARTIFACT = REPO_ROOT / "BENCH_fabric.json"

REQUIRED_BACKEND_KEYS = {"jobs", "seconds", "shards_per_sec", "speedup_vs_serial"}
REQUIRED_FAULT_KEYS = {
    "loss_rate",
    "doomed_units",
    "clean_cluster_s",
    "faulty_cluster_s",
    "overhead_factor",
    "retries",
    "lost_workers",
    "duplicates",
}


def test_bench_fabric_json_parses():
    data = json.loads(ARTIFACT.read_text(encoding="utf-8"))
    assert data["figure"] == "fig3"
    assert data["samples_per_bucket"] > 0
    assert data["shards"] > 0
    assert data["m_values"] and all(m > 0 for m in data["m_values"])
    assert data["host"]["cpus"] >= 1

    backends = data["backends"]
    assert set(backends) == {"serial", "pool", "cluster"}
    for name, row in backends.items():
        missing = REQUIRED_BACKEND_KEYS - set(row)
        assert not missing, f"{name} missing {sorted(missing)}"
        assert row["jobs"] >= 1
        assert row["seconds"] > 0
        assert row["shards_per_sec"] > 0
        assert row["speedup_vs_serial"] > 0
    assert backends["serial"]["jobs"] == 1
    assert backends["serial"]["speedup_vs_serial"] == 1.0

    fault = data["fault_tolerance"]
    missing = REQUIRED_FAULT_KEYS - set(fault)
    assert not missing, f"fault_tolerance missing {sorted(missing)}"
    assert 0 < fault["loss_rate"] < 1
    assert fault["doomed_units"] >= 1
    # the recorded run must actually have exercised recovery
    assert fault["retries"] >= 1
    assert fault["lost_workers"] >= 1
    assert fault["overhead_factor"] > 0
