"""End-to-end system tests: generate -> partition -> simulate.

The full pipeline a user of the library runs, asserted at system level:
for every (strategy, test) pairing the paper evaluates, a successful
partition must survive adversarial multi-core simulation with zero MC
violations and with mode switches confined to overrunning cores.
"""

import pytest

from repro.analysis import AMCmaxTest, ECDFTest, EDFVDTest
from repro.core import get_strategy, partition
from repro.generator import MCTaskSetGenerator
from repro.sim import (
    FixedOverrunScenario,
    PartitionedSim,
    RandomScenario,
    policy_for,
)
from repro.util import derive_rng

import numpy as np

PAIRINGS = [
    ("cu-udp", EDFVDTest(), "implicit"),
    ("ca-udp", EDFVDTest(), "implicit"),
    ("ca-nosort-f-f", EDFVDTest(), "implicit"),
    ("cu-udp", ECDFTest(), "constrained"),
    ("eca-wu-f", ECDFTest(), "constrained"),
    ("cu-udp", AMCmaxTest(), "constrained"),
    ("ca-f-f", AMCmaxTest(), "constrained"),
]


@pytest.mark.parametrize(
    "strategy_name,test,deadline_type",
    PAIRINGS,
    ids=[f"{s}+{t.name}" for s, t, _ in PAIRINGS],
)
def test_partition_then_simulate(strategy_name, test, deadline_type):
    m = 4
    rng = derive_rng("e2e", strategy_name, test.name)
    gen = MCTaskSetGenerator(m=m, deadline_type=deadline_type)

    simulated = 0
    for attempt in range(10):
        taskset = gen.generate(rng, 0.5, 0.25, 0.3)
        if taskset is None:
            continue
        result = partition(taskset, m, test, get_strategy(strategy_name))
        if not result.success:
            continue

        def policy_factory(core):
            return policy_for(test, test.analyze(core))

        sim = PartitionedSim(result.cores, policy_factory)

        # Adversarial: every HC task overruns every job, all cores at once.
        outcome = sim.run(lambda idx: FixedOverrunScenario(None), 15_000)
        assert outcome.mc_correct, (
            f"{strategy_name}+{test.name}: violations "
            f"{outcome.mc_violations[:3]}"
        )

        # Randomized fuzz pass.
        seeds = [int(rng.integers(2**63)) for _ in result.cores]
        outcome = sim.run(
            lambda idx: RandomScenario(
                np.random.default_rng(seeds[idx]),
                overrun_prob=0.4,
                random_phases=True,
            ),
            15_000,
        )
        assert outcome.mc_correct
        simulated += 1
        if simulated >= 3:
            break
    assert simulated >= 1, "no successful partition to simulate"


def test_mode_switch_isolation_across_strategies():
    """Overrun on one core never disturbs another, whatever the strategy."""
    m = 4
    rng = derive_rng("e2e-isolation")
    gen = MCTaskSetGenerator(m=m)
    test = EDFVDTest()
    taskset = None
    while taskset is None:
        taskset = gen.generate(rng, 0.5, 0.25, 0.3)
    for strategy_name in ("cu-udp", "ca-udp", "ca-f-f", "wfd"):
        result = partition(taskset, m, test, get_strategy(strategy_name))
        if not result.success:
            continue
        target_core = next(
            idx for idx, core in enumerate(result.cores) if core.high_tasks
        )
        trigger = result.cores[target_core].high_tasks[0]

        def policy_factory(core):
            return policy_for(test, test.analyze(core))

        outcome = PartitionedSim(result.cores, policy_factory).run(
            lambda idx: FixedOverrunScenario({trigger.task_id}), 10_000
        )
        assert outcome.mc_correct
        assert set(outcome.cores_switched) <= {target_core}
