"""The event journal: crash-safe appends, env gating, and observe-only.

Two contracts matter.  Mechanically, the journal must be a durable
JSONL stream — one atomic line per event, readable while half-written,
tolerant of a damaged tail, followable from a second process.
Scientifically, it must be *observe-only*: the ISSUE's differential bar
is that serial, pool and cluster runs with the journal on produce
``SweepResult``s, WAR tables and shard-cache bytes bit-identical to the
same runs with it off.
"""

import json
import os
from pathlib import Path

import pytest

from repro.experiments.acceptance import SweepConfig
from repro.experiments.weighted import weighted_acceptance_ratio
from repro.obs.journal import (
    JOURNAL_SCHEMA,
    Journal,
    JournalFollower,
    active_journal,
    journal_env,
    open_journal,
    read_events,
)
from repro.runner import create_store, registered_backends, run_sweep

CONFIG = SweepConfig(label="journal-test", m=2, samples_per_bucket=3)
ALGOS = ("cu-udp-edf-vd", "ca-nosort-f-f-edf-vd")


@pytest.fixture(autouse=True)
def _no_ambient_journal(monkeypatch):
    monkeypatch.delenv("REPRO_OBS_JOURNAL", raising=False)


class TestJournalWriter:
    def test_one_line_per_event_with_clock_fields(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl")
        journal.emit("alpha", key="k1")
        journal.emit("beta", value=2)
        journal.close()
        lines = (tmp_path / "j.jsonl").read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["ev"] == "alpha" and first["key"] == "k1"
        assert second["ev"] == "beta" and second["value"] == 2
        for event in (first, second):
            assert event["pid"] == os.getpid()
            assert isinstance(event["ts"], float)
            assert isinstance(event["mono"], float)
        assert first["mono"] <= second["mono"]

    def test_open_journal_stamps_schema_header(self, tmp_path):
        journal = open_journal(tmp_path / "j.jsonl", campaign="c1")
        journal.close()
        events = read_events(tmp_path / "j.jsonl")
        assert events[0]["ev"] == "open"
        assert events[0]["schema"] == JOURNAL_SCHEMA
        assert events[0]["campaign"] == "c1"

    def test_appends_never_truncate(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = Journal(path)
        first.emit("one")
        first.close()
        second = Journal(path)
        second.emit("two")
        second.close()
        assert [e["ev"] for e in read_events(path)] == ["one", "two"]

    def test_creates_parent_directories(self, tmp_path):
        journal = Journal(tmp_path / "deep" / "nested" / "j.jsonl")
        journal.emit("here")
        journal.close()
        assert read_events(tmp_path / "deep" / "nested" / "j.jsonl")


class TestEnvGating:
    def test_off_by_default(self):
        assert active_journal() is None

    def test_env_knob_activates(self, tmp_path, monkeypatch):
        path = tmp_path / "j.jsonl"
        monkeypatch.setenv("REPRO_OBS_JOURNAL", str(path))
        journal = active_journal()
        assert journal is not None and journal.path == path
        # same env -> same cached instance; changed env -> re-resolved
        assert active_journal() is journal
        monkeypatch.setenv("REPRO_OBS_JOURNAL", str(tmp_path / "other.jsonl"))
        assert active_journal().path == tmp_path / "other.jsonl"
        monkeypatch.delenv("REPRO_OBS_JOURNAL")
        assert active_journal() is None

    def test_journal_env_sets_and_restores(self, tmp_path):
        path = tmp_path / "j.jsonl"
        assert "REPRO_OBS_JOURNAL" not in os.environ
        with journal_env(path) as journal:
            assert os.environ["REPRO_OBS_JOURNAL"] == str(path)
            assert journal is not None and journal.path == path
            # workers resolve the same file from the inherited env
            assert active_journal().path == path
        assert "REPRO_OBS_JOURNAL" not in os.environ

    def test_journal_env_none_leaves_ambient(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_JOURNAL", str(tmp_path / "ambient.jsonl"))
        with journal_env(None) as journal:
            assert journal.path == tmp_path / "ambient.jsonl"
        with journal_env(tmp_path / "explicit.jsonl") as journal:
            assert journal.path == tmp_path / "explicit.jsonl"
        assert os.environ["REPRO_OBS_JOURNAL"] == str(tmp_path / "ambient.jsonl")


class TestReader:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_events(tmp_path / "absent.jsonl")

    def test_damaged_lines_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"ev":"good","mono":1.0}\n'
            "{torn json\n"
            "[1, 2, 3]\n"
            "\n"
            '{"ev":"also-good","mono":2.0}\n'
            '{"ev":"truncated-tail"'
        )
        assert [e["ev"] for e in read_events(path)] == ["good", "also-good"]

    def test_follower_yields_each_event_exactly_once(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        follower = JournalFollower(path)
        assert follower.poll() == []  # no file yet
        journal.emit("one")
        journal.emit("two")
        assert [e["ev"] for e in follower.poll()] == ["one", "two"]
        assert follower.poll() == []
        journal.emit("three")
        assert [e["ev"] for e in follower.poll()] == ["three"]
        journal.close()

    def test_follower_holds_back_partial_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with open(path, "w") as handle:
            handle.write('{"ev":"whole"}\n{"ev":"par')
        follower = JournalFollower(path)
        assert [e["ev"] for e in follower.poll()] == ["whole"]
        with open(path, "a") as handle:
            handle.write('tial"}\n')
        assert [e["ev"] for e in follower.poll()] == ["partial"]


# -- the differential bar ---------------------------------------------------------
def war_table(result) -> dict[str, float]:
    return {
        name: weighted_acceptance_ratio(result.buckets, series)
        for name, series in result.ratios.items()
    }


def blob_map(store) -> dict[str, bytes]:
    root = Path(store.root)
    return {p.stem: p.read_bytes() for p in sorted(root.rglob("*.json"))}


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """Journal-off serial ground truth: result, WAR table, shard bytes."""
    store = create_store("fs", tmp_path_factory.mktemp("journal-ref"))
    result = run_sweep(CONFIG, ALGOS, cache=store)
    return result, war_table(result), blob_map(store)


class TestObserveOnly:
    @pytest.mark.parametrize("backend", registered_backends())
    def test_journal_on_is_bit_identical(
        self, backend, reference, tmp_path, monkeypatch
    ):
        path = tmp_path / "journal.jsonl"
        monkeypatch.setenv("REPRO_OBS_JOURNAL", str(path))
        store = create_store("fs", tmp_path / "store")
        result = run_sweep(CONFIG, ALGOS, jobs=2, cache=store, backend=backend)
        expected, expected_war, expected_blobs = reference
        assert result == expected
        assert war_table(result) == expected_war
        assert blob_map(store) == expected_blobs
        # ... and the journal really was written while we ran
        events = read_events(path)
        kinds = {e["ev"] for e in events}
        assert {"sweep-start", "exec-start", "exec-done", "done",
                "sweep-done"} <= kinds
        done = [e for e in events if e["ev"] == "done"]
        assert len(done) == len({e["key"] for e in done}) > 0

    def test_worker_processes_write_the_same_file(self, tmp_path, monkeypatch):
        """Cluster workers journal their claims/executions themselves."""
        path = tmp_path / "journal.jsonl"
        monkeypatch.setenv("REPRO_OBS_JOURNAL", str(path))
        run_sweep(CONFIG, ALGOS, jobs=2, backend="cluster")
        events = read_events(path)
        conductor = os.getpid()
        claim_pids = {e["pid"] for e in events if e["ev"] == "claim"}
        assert claim_pids and conductor not in claim_pids
        assert {e["ev"] for e in events} >= {"claim", "exec-done", "heartbeat"}
