"""Chrome-trace export under the cluster backend (satellite).

A traced cluster campaign — including one whose workers are SIGKILLed
mid-shard — must produce a coherent Trace Event dump: worker processes
appear as their own pid rows, the conductor's span tree nests in time,
every worker shard lands inside the conductor's sweep window (the
monotonic clock is system-wide), and each worker's own row is free of
overlaps (a worker executes one shard at a time).
"""

import os

import pytest

from repro import obs
from repro.experiments.acceptance import SweepConfig
from repro.runner import ClusterBackend, run_sweep

CONFIG = SweepConfig(label="cluster-trace", m=2, samples_per_bucket=3)
ALGOS = ("cu-udp-edf-vd", "ca-nosort-f-f-edf-vd")


@pytest.fixture
def traced_killed_run(tmp_path, monkeypatch):
    """Spans from a traced cluster sweep with a real worker kill."""
    monkeypatch.setenv("REPRO_RUNNER_FAULT", "crash:rate=0.3")
    monkeypatch.setenv("REPRO_RUNNER_FAULT_DIR", str(tmp_path / "markers"))
    obs.clear()
    previous = obs.set_recorder(obs.TraceRecorder(obs.REGISTRY))
    try:
        backend = ClusterBackend(2, heartbeat_interval=0.2, lease_timeout=30.0)
        with obs.span("campaign", campaign="trace-test"):
            run_sweep(CONFIG, ALGOS, jobs=2, backend=backend)
        assert backend.stats["lost_workers"] >= 1, "fault must really fire"
        yield obs.spans(), obs.chrome_trace(obs.spans())
    finally:
        obs.set_recorder(previous)
        obs.clear()


class TestClusterChromeTrace:
    def test_worker_pid_rows(self, traced_killed_run):
        spans, doc = traced_killed_run
        events = doc["traceEvents"]
        conductor = os.getpid()
        shard_pids = {e["pid"] for e in events if e["name"] == "shard"}
        assert conductor not in shard_pids
        assert len(shard_pids) >= 2, "replacement workers get their own rows"
        assert {e["pid"] for e in events if e["name"] in ("campaign", "sweep")} \
            == {conductor}

    def test_conductor_span_tree_nests(self, traced_killed_run):
        spans, doc = traced_killed_run
        by_name = {}
        for event in doc["traceEvents"]:
            by_name.setdefault(event["name"], []).append(event)
        campaign = by_name["campaign"][0]
        assert campaign["args"].get("parent_span") is None
        for sweep in by_name["sweep"]:
            assert sweep["args"]["parent_span"] == "campaign"
            assert sweep["ts"] >= campaign["ts"]
            assert sweep["ts"] + sweep["dur"] <= (
                campaign["ts"] + campaign["dur"] + 1.0  # rounding slack, us
            )

    def test_worker_shards_land_inside_a_sweep_window(self, traced_killed_run):
        """Cross-process us timestamps share one monotonic axis."""
        spans, doc = traced_killed_run
        events = doc["traceEvents"]
        windows = [
            (e["ts"], e["ts"] + e["dur"])
            for e in events
            if e["name"] == "sweep"
        ]
        shards = [e for e in events if e["name"] == "shard"]
        assert len(shards) > 0
        for shard in shards:
            assert shard["ts"] >= 0 and shard["dur"] >= 0
            assert any(
                start - 1.0 <= shard["ts"] and
                shard["ts"] + shard["dur"] <= end + 1.0
                for start, end in windows
            ), "shard executed outside every sweep window"

    def test_each_worker_row_is_monotone(self, traced_killed_run):
        """One worker runs one shard at a time — its row never overlaps."""
        spans, doc = traced_killed_run
        rows: dict[int, list] = {}
        for event in doc["traceEvents"]:
            if event["name"] == "shard":
                rows.setdefault(event["pid"], []).append(event)
        for pid, events in rows.items():
            events.sort(key=lambda e: e["ts"])
            for earlier, later in zip(events, events[1:]):
                assert later["ts"] >= earlier["ts"] + earlier["dur"] - 1.0, (
                    f"worker {pid} shards overlap"
                )

    def test_shard_spans_survive_worker_attribution(self, traced_killed_run):
        spans, _doc = traced_killed_run
        shard_records = [r for r in spans if r.name == "shard"]
        assert all(r.attrs.get("backend") == "cluster" for r in shard_records)
        # every journaled shard ran in some worker, none in the conductor
        assert all(r.pid != os.getpid() for r in shard_records)
