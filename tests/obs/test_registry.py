"""MetricsRegistry and Histogram: quantile bounds, scopes, merge algebra."""

import math
import random

import pytest

from repro.obs import Histogram, MetricsRegistry
from repro.obs.registry import QUANTILES


def exact_quantile(samples, q):
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestHistogramQuantiles:
    def test_empty_is_none(self):
        h = Histogram()
        assert h.quantile(0.5) is None
        assert h.summary()["p50"] is None

    def test_single_sample_every_quantile(self):
        h = Histogram()
        h.observe(7.25)
        for q in QUANTILES:
            assert h.quantile(q) == pytest.approx(7.25)

    def test_quantile_within_one_bucket_ratio(self):
        # The documented invariant: exact <= reported <= exact * BASE,
        # across scales spanning many octaves.
        rng = random.Random(1234)
        samples = [rng.lognormvariate(0, 3) for _ in range(1000)]
        h = Histogram()
        for v in samples:
            h.observe(v)
        for q in QUANTILES:
            exact = exact_quantile(samples, q)
            reported = h.quantile(q)
            assert exact <= reported <= exact * Histogram.BASE + 1e-12

    def test_nonpositive_bucket(self):
        h = Histogram()
        for v in (-1.0, 0.0, 5.0):
            h.observe(v)
        assert h.quantile(0.5) == 0.0  # rank 2 of 3 falls in the underflow
        assert h.count == 3 and h.nonpos == 2
        assert h.vmin == -1.0 and h.vmax == 5.0

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram()
        h.observe(10.0)
        h.observe(1000.0)
        assert h.quantile(0.0) >= 1.0
        assert h.quantile(1.0) <= 1000.0

    def test_rejects_out_of_range_q(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)

    def test_merge_equals_streaming(self):
        rng = random.Random(7)
        samples = [rng.uniform(0.001, 50.0) for _ in range(400)]
        whole = Histogram()
        for v in samples:
            whole.observe(v)
        a, b = Histogram(), Histogram()
        for v in samples[:150]:
            a.observe(v)
        for v in samples[150:]:
            b.observe(v)
        a.merge_state(b.state())
        assert a.state() == whole.state()


class TestRegistry:
    def test_counters_and_prefix_filter(self):
        r = MetricsRegistry()
        r.add("a.x")
        r.add("a.y", 4)
        r.add("b.z")
        assert r.counters("a.") == {"a.x": 1, "a.y": 4}

    def test_counter_scope_is_live_and_survives_reset(self):
        r = MetricsRegistry()
        scope = r.counter_scope("dbf", ("hits",))
        scope["hits"] += 3
        assert r.counters()["dbf.hits"] == 3
        r.reset()
        # same dict object, zeroed in place — hot-path references stay valid
        assert scope["hits"] == 0
        scope["hits"] += 1
        assert r.counters()["dbf.hits"] == 1

    def test_scope_and_plain_counter_sum_on_collision(self):
        r = MetricsRegistry()
        r.counter_scope("k", ("n",))["n"] = 2
        r.add("k.n", 5)  # e.g. a merged worker snapshot
        assert r.counters()["k.n"] == 7

    def test_gauges_merge_by_max(self):
        r = MetricsRegistry()
        r.set_gauge("g", 1.0)
        r.merge({"gauges": {"g": 2.5}})
        assert r.gauges() == {"g": 2.5}
        # a lower incoming reading never clobbers the peak...
        r.merge({"gauges": {"g": 0.25}})
        assert r.gauges() == {"g": 2.5}
        # ...and unseen gauges are adopted
        r.merge({"gauges": {"other": 0.5}})
        assert r.gauges()["other"] == 0.5

    def test_gauge_merge_is_order_independent(self):
        """The satellite bug: last-writer-wins gauges made the merged
        registry depend on worker arrival order.  Shuffled fold orders
        of the same worker snapshots must now agree exactly."""
        snaps = [
            {"gauges": {"runner.heartbeat-age": age, f"w{i}.only": float(i)}}
            for i, age in enumerate([0.75, 0.1, 2.5, 0.4])
        ]

        def folded(order):
            r = MetricsRegistry()
            for i in order:
                r.merge(snaps[i])
            return r.gauges()

        import itertools

        results = [folded(order) for order in itertools.permutations(range(4))]
        assert all(res == results[0] for res in results)
        assert results[0]["runner.heartbeat-age"] == 2.5

    def test_merge_is_associative_and_commutative(self):
        def make(seed):
            r = MetricsRegistry()
            rng = random.Random(seed)
            for _ in range(50):
                r.add(f"c{rng.randrange(3)}", rng.randrange(5))
                r.observe("h", rng.uniform(0.01, 10.0))
            return r

        snaps = [make(seed).snapshot() for seed in (1, 2, 3)]

        def folded(order):
            r = MetricsRegistry()
            for i in order:
                r.merge(snaps[i])
            return r.snapshot()

        import itertools

        results = [folded(order) for order in itertools.permutations(range(3))]
        assert all(res == results[0] for res in results)

    def test_snapshot_roundtrip_through_merge(self):
        r = MetricsRegistry()
        r.add("c", 2)
        r.set_gauge("g", 0.5)
        r.observe("h", 3.0)
        other = MetricsRegistry()
        other.merge(r.snapshot())
        assert other.snapshot() == r.snapshot()
