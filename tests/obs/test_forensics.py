"""Postmortem assembly from synthetic journals.

The end-to-end fault-injection path (a really-SIGKILLed worker under
``REPRO_OBS_JOURNAL``) lives in ``tests/runner/test_fault_injection.py``;
here the pure assembly is pinned against hand-built event streams where
every field of the bundle has a known right answer.
"""

import json

from repro.obs.forensics import (
    POSTMORTEM_SCHEMA,
    assemble_postmortem,
    describe_postmortem,
    write_postmortem,
)

KEY = "deadbeefdeadbeef"


def ev(kind: str, mono: float, pid: int = 1, **fields) -> dict:
    return {"ev": kind, "mono": mono, "ts": 1000.0 + mono, "pid": pid,
            **fields}


def crash_story() -> list[dict]:
    """A worker (pid 77, slot 1) claims KEY twice and dies both times."""
    return [
        ev("open", 0.0, schema="repro-journal/1"),
        ev("heartbeat", 0.5, pid=77, slot=1),
        ev("claim", 1.0, pid=77, key=KEY, label="fig3", m=2, slot=1, seq=4),
        ev("heartbeat", 1.5, pid=77, slot=1),
        ev("exec-start", 1.6, pid=77, key=KEY, label="fig3", m=2),
        ev("worker-lost", 3.0, slot=1, heartbeat_age=1.5),
        ev("reclaim", 3.0, key=KEY, label="fig3", m=2, slot=1,
           heartbeat_age=1.5),
        ev("retry", 3.0, key=KEY, label="fig3", m=2, attempt=2),
        ev("claim", 3.5, pid=77, key=KEY, label="fig3", m=2, slot=1, seq=9),
        ev("worker-lost", 6.0, slot=1, heartbeat_age=2.5),
        ev("crash", 6.0, key=KEY, attempts=2, detail="worker lost"),
    ]


class TestAssembly:
    def test_bundle_pins_the_cause(self):
        bundle = assemble_postmortem(crash_story(), KEY)
        assert bundle["schema"] == POSTMORTEM_SCHEMA
        assert bundle["unit"] == KEY
        assert bundle["attempts"] == 2
        assert bundle["last_claim"]["seq"] == 9
        assert bundle["worker"] == {"slot": 1, "pid": 77}
        # last sign of life: the second claim at mono 3.5; the conductor
        # acted at the crash event, mono 6.0
        assert bundle["last_heartbeat_age"] == 2.5
        assert len(bundle["worker_lost"]) == 2
        assert [e["ev"] for e in bundle["timeline"]] == [
            "claim", "exec-start", "reclaim", "retry", "claim", "crash",
        ]

    def test_heartbeats_filtered_by_worker_and_capped(self):
        events = crash_story()
        events += [ev("heartbeat", 2.0 + i, pid=99, slot=0)
                   for i in range(40)]
        bundle = assemble_postmortem(events, KEY)
        assert all(h["pid"] == 77 for h in bundle["heartbeats"])
        assert len(bundle["heartbeats"]) == 2

    def test_last_spans_from_workers_final_shard(self):
        events = crash_story()
        events.insert(
            5,
            ev("exec-done", 2.0, pid=77, key="otherunit", label="fig3", m=2,
               seconds=0.4, spans={"shard": 1, "partition": 12}),
        )
        bundle = assemble_postmortem(events, KEY)
        assert bundle["last_spans"]["key"] == "otherunit"
        assert bundle["last_spans"]["spans"] == {"shard": 1, "partition": 12}

    def test_degrades_on_an_empty_journal(self):
        bundle = assemble_postmortem([], KEY)
        assert bundle["unit"] == KEY
        assert bundle["attempts"] == 1
        assert bundle["last_claim"] is None
        assert bundle["last_heartbeat_age"] is None
        assert bundle["heartbeats"] == []

    def test_reads_from_a_file_too(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            "".join(json.dumps(e) + "\n" for e in crash_story())
        )
        assert assemble_postmortem(str(path), KEY)["attempts"] == 2

    def test_fault_context_names_markers(self, tmp_path, monkeypatch):
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        (marker_dir / f"{KEY}.crash").touch()
        (marker_dir / "otherunit.crash").touch()
        monkeypatch.setenv("REPRO_RUNNER_FAULT", "crash:rate=0.3")
        monkeypatch.setenv("REPRO_RUNNER_FAULT_DIR", str(marker_dir))
        bundle = assemble_postmortem(crash_story(), KEY)
        assert bundle["fault"]["spec"] == "crash:rate=0.3"
        assert bundle["fault"]["markers"] == [f"{KEY}.crash"]


class TestArtifacts:
    def test_write_postmortem_names_the_unit(self, tmp_path):
        bundle = assemble_postmortem(crash_story(), KEY)
        path = write_postmortem(bundle, tmp_path / "out")
        assert path.name == f"postmortem-{KEY[:12]}.json"
        assert json.loads(path.read_text())["unit"] == KEY

    def test_describe_is_one_forensic_paragraph(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_FAULT", "crash:all")
        monkeypatch.delenv("REPRO_RUNNER_FAULT_DIR", raising=False)
        bundle = assemble_postmortem(crash_story(), KEY)
        text = describe_postmortem(bundle, tmp_path / "pm.json")
        assert KEY[:12] in text
        assert "slot 1" in text and "pid 77" in text
        assert "2 attempt(s)" in text
        assert "2.50s" in text
        assert "crash:all" in text
        assert str(tmp_path / "pm.json") in text
