"""Recorders, span nesting, exporters and the module-level obs facade."""

import json

import pytest

from repro import obs
from repro.obs import (
    MetricsRecorder,
    MetricsRegistry,
    NullRecorder,
    TraceRecorder,
    chrome_trace,
    render_table,
    to_json,
    write_chrome_trace,
)


@pytest.fixture
def trace_recorder():
    """Install a fresh TraceRecorder on the global registry, then restore."""
    obs.clear()
    previous = obs.set_recorder(TraceRecorder(obs.REGISTRY))
    yield obs.get_recorder()
    obs.set_recorder(previous)
    obs.clear()


class TestModes:
    def test_default_recorder_modes(self):
        registry = MetricsRegistry()
        assert NullRecorder(registry).enabled is False
        assert MetricsRecorder(registry).enabled is True
        assert MetricsRecorder(registry).records_spans is False
        assert TraceRecorder(registry).records_spans is True

    def test_facade_mode_string(self):
        previous = obs.set_recorder(NullRecorder(obs.REGISTRY))
        try:
            assert obs.mode() == "off"
            obs.set_recorder(MetricsRecorder(obs.REGISTRY))
            assert obs.mode() == "metrics"
            obs.set_recorder(TraceRecorder(obs.REGISTRY))
            assert obs.mode() == "trace"
        finally:
            obs.set_recorder(previous)

    def test_set_recorder_returns_previous(self):
        first = obs.get_recorder()
        second = NullRecorder(obs.REGISTRY)
        assert obs.set_recorder(second) is first
        assert obs.set_recorder(first) is second


class TestSpans:
    def test_no_spans_without_tracing(self):
        previous = obs.set_recorder(NullRecorder(obs.REGISTRY))
        try:
            with obs.span("outer"):
                pass
            assert obs.spans() == []
        finally:
            obs.set_recorder(previous)

    def test_nesting_depth_and_parent(self, trace_recorder):
        with obs.span("outer", kind="a"):
            with obs.span("inner"):
                pass
            with obs.span("inner"):
                pass
        records = {(r.name, r.depth, r.parent) for r in obs.spans()}
        assert ("outer", 0, None) in records
        assert ("inner", 1, "outer") in records
        assert len(obs.spans()) == 3

    def test_inner_closes_before_outer_and_nests_in_time(self, trace_recorder):
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        inner, outer = obs.spans()
        assert inner.name == "inner" and outer.name == "outer"
        assert outer.start <= inner.start
        assert inner.start + inner.duration <= outer.start + outer.duration + 1e-9

    def test_span_recorded_on_exception(self, trace_recorder):
        with pytest.raises(RuntimeError):
            with obs.span("failing"):
                raise RuntimeError("boom")
        assert [r.name for r in obs.spans()] == ["failing"]
        # the stack unwound: a new span is top-level again
        with obs.span("after"):
            pass
        assert obs.spans()[-1].depth == 0

    def test_name_is_positional_only(self):
        # attrs may freely use 'name' as a key
        with obs.span("s", name="attr-value"):
            pass


class TestPayloadTransport:
    def test_capture_and_absorb_roundtrip(self, trace_recorder):
        obs.REGISTRY.add("c", 2)
        obs.REGISTRY.observe("h", 1.5)
        with obs.span("unit"):
            pass
        payload = obs.capture_payload()
        obs.clear()
        assert obs.spans() == []
        # only zeroed counter-scope keys remain after a clear
        assert all(v == 0 for v in obs.REGISTRY.counters().values())
        obs.absorb_payload(payload)
        assert obs.REGISTRY.counters()["c"] == 2
        assert obs.REGISTRY.histogram("h").count == 1
        assert [r.name for r in obs.spans()] == ["unit"]

    def test_absorb_none_is_noop(self):
        obs.absorb_payload(None)
        obs.absorb_payload({})


class TestExporters:
    def test_to_json_shape(self, trace_recorder):
        obs.REGISTRY.add("b", 1)
        obs.REGISTRY.add("a", 2)
        obs.REGISTRY.set_gauge("g", 0.25)
        obs.REGISTRY.observe("h", 2.0)
        with obs.span("s"):
            pass
        doc = to_json(obs.REGISTRY, obs.spans(), mode=obs.mode())
        assert doc["schema"].startswith("repro-obs-snapshot/")
        assert doc["mode"] == "trace"
        # snapshots are self-describing about the demand kernel in force
        from repro.analysis.dbf import demand_kernel

        assert doc["kernel"] == demand_kernel()
        assert list(doc["counters"])[0] == "a"  # sorted
        assert doc["gauges"] == {"g": 0.25}
        assert doc["histograms"]["h"]["count"] == 1
        assert doc["spans"] == {"count": 1, "by_name": {"s": 1}}
        json.dumps(doc)  # must be serializable as-is

    def test_render_table_sections(self, trace_recorder):
        obs.REGISTRY.add("some.counter", 3)
        obs.REGISTRY.set_gauge("util", 0.5)
        obs.REGISTRY.observe("lat", 1.0)
        with obs.span("work"):
            pass
        text = render_table(obs.REGISTRY, obs.spans())
        for needle in (
            "obs counters",
            "obs gauges",
            "obs histograms",
            "obs spans",
            "some.counter",
            "util",
            "lat",
            "work",
        ):
            assert needle in text

    def test_render_table_empty(self):
        assert render_table(MetricsRegistry()) == ""

    def test_chrome_trace_events(self, trace_recorder, tmp_path):
        with obs.span("outer", bucket=0.5):
            with obs.span("inner"):
                pass
        doc = chrome_trace(obs.spans())
        assert len(doc["traceEvents"]) == 2
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert {"name", "pid", "tid", "args"} <= set(event)
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        assert by_name["outer"]["args"]["bucket"] == 0.5
        assert by_name["inner"]["args"]["parent_span"] == "outer"
        path = write_chrome_trace(obs.spans(), tmp_path / "trace.json")
        assert json.loads(path.read_text())["traceEvents"]


class TestEnvConfiguration:
    def test_knob_selects_recorder(self, monkeypatch):
        from repro.obs import _configure_from_env

        previous = obs.get_recorder()
        try:
            monkeypatch.setenv("REPRO_OBS", "metrics")
            _configure_from_env()
            assert obs.mode() == "metrics"
            monkeypatch.setenv("REPRO_OBS", "trace")
            _configure_from_env()
            assert obs.mode() == "trace"
        finally:
            obs.set_recorder(previous)
