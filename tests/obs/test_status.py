"""``repro status``: the event fold, straggler rule and rendering."""

import pytest

from repro.obs.journal import Journal, JournalFollower
from repro.obs.status import (
    MIN_LATENCY_SAMPLES,
    CampaignStatus,
    render_status,
)


def ev(kind: str, mono: float, **fields) -> dict:
    return {"ev": kind, "mono": mono, "ts": 1000.0 + mono, "pid": 1, **fields}


def executed(status: CampaignStatus, n: int, seconds: float, t0: float = 0.0):
    """Feed n claim/exec-done pairs of the given latency."""
    for i in range(n):
        key = f"unit-{seconds}-{i}"
        status.apply(ev("claim", t0 + i, key=key, label="fig3", m=2))
        status.apply(
            ev(
                "exec-done",
                t0 + i + seconds,
                key=key,
                label="fig3",
                m=2,
                seconds=seconds,
            )
        )
        status.apply(ev("done", t0 + i + seconds, key=key, label="fig3", m=2))


class TestFold:
    def test_progress_counts(self):
        status = CampaignStatus(straggler_factor=4.0)
        status.apply(ev("open", 0.0, schema="repro-journal/1", campaign="c"))
        status.apply(
            ev("sweep-start", 0.1, label="fig3", m=2, units=10, cached=4)
        )
        executed(status, 3, 0.05, t0=0.2)
        assert status.campaign == "c"
        assert status.total_units() == 10
        assert status.done_units() == 4 + 3  # cached count as done
        assert status.sweeps[("fig3", 2)].cached == 4
        assert not status.ended
        status.apply(ev("campaign-end", 9.0))
        assert status.ended

    def test_fault_counters(self):
        status = CampaignStatus(straggler_factor=4.0)
        status.apply(ev("retry", 1.0, key="k", label="fig3", m=2, attempt=2))
        status.apply(ev("worker-lost", 1.1, slot=0, heartbeat_age=0.4))
        status.apply(ev("lease-expired", 1.2, key="k", slot=1))
        status.apply(ev("workers", 1.3, alive=1, total=2))
        status.apply(ev("crash", 1.4, key="k", attempts=3))
        assert status.retries == 1
        assert status.lost_workers == 1
        assert status.lease_expiries == 1
        assert (status.workers_alive, status.workers_total) == (1, 2)
        assert status.crashes == 1

    def test_latency_quantiles(self):
        status = CampaignStatus(straggler_factor=4.0)
        executed(status, 20, 0.1)
        quantiles = status.latency_quantiles()
        # geometric buckets: within one bucket ratio of exact
        assert 0.09 <= quantiles["p50"] <= 0.12
        assert 0.09 <= quantiles["p99"] <= 0.12

    def test_any_prefix_is_a_valid_state(self):
        events = [
            ev("open", 0.0, schema="repro-journal/1"),
            ev("sweep-start", 0.1, label="fig3", m=2, units=2, cached=0),
            ev("claim", 0.2, key="a", label="fig3", m=2),
            ev("exec-done", 0.4, key="a", label="fig3", m=2, seconds=0.2),
            ev("done", 0.4, key="a", label="fig3", m=2),
        ]
        for cut in range(len(events) + 1):
            status = CampaignStatus(straggler_factor=4.0).absorb(events[:cut])
            render_status(status, now=1.0)  # must never raise
            assert status.events == cut


class TestStragglers:
    def test_flags_only_old_inflight_units(self):
        status = CampaignStatus(straggler_factor=4.0)
        executed(status, MIN_LATENCY_SAMPLES, 0.1, t0=0.0)
        t = 100.0
        status.apply(ev("claim", t, key="slowpoke", label="fig3", m=2,
                        bucket=0.55))
        status.apply(ev("claim", t, key="fresh", label="fig3", m=2))
        p95 = status.shard_seconds.quantile(0.95)
        threshold = 4.0 * p95
        # fresh claims are not stragglers...
        assert status.stragglers(now=t + threshold * 0.5) == []
        # ...until their age passes k x p95
        found = status.stragglers(now=t + threshold + 1.0)
        assert {s.key for s in found} == {"slowpoke", "fresh"}
        assert all(s.age > s.threshold for s in found)

    def test_disarmed_below_min_samples(self):
        status = CampaignStatus(straggler_factor=4.0)
        executed(status, MIN_LATENCY_SAMPLES - 1, 0.1)
        status.apply(ev("claim", 50.0, key="old", label="fig3", m=2))
        assert status.stragglers(now=1e9) == []

    def test_done_and_reclaim_clear_inflight(self):
        status = CampaignStatus(straggler_factor=4.0)
        executed(status, MIN_LATENCY_SAMPLES, 0.1)
        status.apply(ev("claim", 50.0, key="a", label="fig3", m=2))
        status.apply(ev("claim", 50.0, key="b", label="fig3", m=2))
        status.apply(ev("done", 51.0, key="a", label="fig3", m=2))
        status.apply(ev("reclaim", 51.0, key="b", label="fig3", m=2, slot=0))
        assert status.stragglers(now=1e9) == []

    def test_exec_start_refreshes_the_claim_stamp(self):
        """A re-dispatched unit's age measures the current attempt."""
        status = CampaignStatus(straggler_factor=4.0)
        executed(status, MIN_LATENCY_SAMPLES, 0.1)
        status.apply(ev("claim", 10.0, key="a", label="fig3", m=2))
        status.apply(ev("exec-start", 500.0, key="a", label="fig3", m=2))
        assert status.inflight["a"][0] == 500.0

    def test_factor_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_STRAGGLER", "0.5")
        with pytest.raises(ValueError, match="REPRO_OBS_STRAGGLER"):
            CampaignStatus()


class TestRender:
    def test_render_mentions_everything(self):
        status = CampaignStatus(straggler_factor=4.0)
        status.apply(ev("open", 0.0, schema="repro-journal/1", campaign="camp"))
        status.apply(
            ev("sweep-start", 0.1, label="fig3", m=2, units=5, cached=1)
        )
        executed(status, MIN_LATENCY_SAMPLES, 0.1, t0=0.2)
        status.apply(ev("workers", 1.0, alive=2, total=2))
        status.apply(ev("retry", 1.1, key="k", label="fig3", m=2))
        status.apply(ev("worker-lost", 1.2, slot=0))
        status.apply(ev("claim", 2.0, key="straggling-unit", label="fig3",
                        m=2, bucket=0.6))
        text = render_status(status, now=2.0 + 1000.0)
        for needle in (
            "camp", "running", "workers: 2/2", "shard seconds", "p95",
            "1 retried", "1 workers lost", "fig3", "straggling-u",
            "stragglers (k=4)",
        ):
            assert needle in text, f"{needle!r} missing from:\n{text}"


class TestFollowIntegration:
    def test_status_tracks_a_growing_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        follower = JournalFollower(path)
        status = CampaignStatus(straggler_factor=4.0)

        journal.emit("open", schema="repro-journal/1", campaign="grow")
        journal.emit("sweep-start", label="fig3", m=2, units=2, cached=0)
        status.absorb(follower.poll())
        assert status.total_units() == 2 and status.done_units() == 0

        journal.emit("done", key="a", label="fig3", m=2)
        journal.emit("campaign-end")
        status.absorb(follower.poll())
        assert status.done_units() == 1
        assert status.ended
        journal.close()
