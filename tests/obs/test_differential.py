"""Recording is observe-only: results and cache bytes are bit-identical.

The design rule every instrumentation site promises (see the
:mod:`repro.obs` docstring) is asserted here over real sweeps drawn from
every figure family — implicit (fig3/4/5), constrained PH sweeps (fig6)
and the degradation extension (fig7a/fig7b service models) — plus the
simulator: running with the trace recorder (the heaviest mode) yields the
same merged results, the same per-shard outcomes and byte-identical shard
cache files as running with recording off.
"""

import pytest

from repro import obs
from repro.experiments.acceptance import SweepConfig
from repro.runner.cache import ShardCache
from repro.runner.pool import run_sweep

#: one (config, algorithms) slice per figure family the repo reproduces;
#: algorithm picks respect each test's deadline-type/service support.
SLICES = [
    (
        SweepConfig(
            label="fig345-slice",
            m=2,
            deadline_type="implicit",
            samples_per_bucket=3,
            ub_min=0.5,
            ub_max=0.7,
        ),
        ("cu-udp-edf-vd", "eca-wu-f-ey", "cu-udp-ecdf"),
    ),
    (
        SweepConfig(
            label="fig6-slice",
            m=2,
            deadline_type="constrained",
            p_high=0.7,
            samples_per_bucket=3,
            ub_min=0.5,
            ub_max=0.6,
        ),
        ("cu-udp-ecdf", "eca-wu-f-ey"),
    ),
    (
        SweepConfig(
            label="fig7-slice",
            m=2,
            deadline_type="implicit",
            samples_per_bucket=3,
            ub_min=0.5,
            ub_max=0.6,
            service="imprecise:0.5",
        ),
        ("cu-udp-res-edf-vd", "cu-udp-res-ecdf"),
    ),
]


def run_with_mode(config, algorithms, recorder_factory, cache_dir=None):
    obs.clear()
    previous = obs.set_recorder(recorder_factory(obs.REGISTRY))
    try:
        cache = ShardCache(cache_dir) if cache_dir else None
        diagnostics = []
        result = run_sweep(
            config, list(algorithms), jobs=1, cache=cache,
            diagnostics=diagnostics,
        )
        return result, diagnostics
    finally:
        obs.set_recorder(previous)
        obs.clear()


def cache_bytes(root):
    return {
        path.relative_to(root): path.read_bytes()
        for path in sorted(root.rglob("*.json"))
    }


@pytest.mark.parametrize(
    "config, algorithms", SLICES, ids=lambda value: getattr(value, "label", "")
)
def test_results_and_cache_identical_off_vs_trace(config, algorithms, tmp_path):
    off_dir = tmp_path / "off"
    trace_dir = tmp_path / "trace"
    result_off, shards_off = run_with_mode(
        config, algorithms, obs.NullRecorder, off_dir
    )
    result_trace, shards_trace = run_with_mode(
        config, algorithms, obs.TraceRecorder, trace_dir
    )
    assert result_off == result_trace
    assert shards_off == shards_trace  # ratios; diagnostics excluded from eq
    for a, b in zip(shards_off, shards_trace):
        assert a.accepted == b.accepted
        assert a.settled == b.settled
    off_bytes = cache_bytes(off_dir)
    trace_bytes = cache_bytes(trace_dir)
    assert off_bytes and off_bytes == trace_bytes


def test_parallel_trace_identical_to_serial_off(tmp_path):
    config, algorithms = SLICES[0]
    result_off, _ = run_with_mode(config, algorithms, obs.NullRecorder)
    obs.clear()
    previous = obs.set_recorder(obs.TraceRecorder(obs.REGISTRY))
    try:
        result_trace = run_sweep(config, list(algorithms), jobs=2)
        assert result_trace == result_off
        assert obs.spans(), "tracing collected no spans"
    finally:
        obs.set_recorder(previous)
        obs.clear()


def test_simulation_identical_off_vs_metrics(simple_mixed_taskset):
    from repro.sim import UniprocessorSim
    from repro.sim.policies import EDFVDPolicy
    from repro.sim.scenario import FixedOverrunScenario

    def simulate():
        sim = UniprocessorSim(simple_mixed_taskset, EDFVDPolicy())
        result = sim.run(FixedOverrunScenario(), horizon=2000)
        return (
            result.misses,
            result.mode_switches,
            result.preemptions,
            result.jobs_released,
            result.jobs_completed,
        )

    baseline = simulate()
    obs.clear()
    previous = obs.set_recorder(obs.MetricsRecorder(obs.REGISTRY))
    try:
        assert simulate() == baseline
        counters = obs.REGISTRY.counters("sim.")
        assert counters["sim.runs"] == 1
        assert counters["sim.jobs-released"] == baseline[3]
    finally:
        obs.set_recorder(previous)
        obs.clear()
