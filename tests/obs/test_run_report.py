"""``repro report``: journal aggregation, baselines and the CI tripwire.

The acceptance bar: the command exits non-zero on a synthetic regressed
journal and zero on self-compare — that exact behavior, through the real
CLI entry point, is pinned here alongside the pure summarize/compare
layers underneath it.
"""

import json

import pytest

from repro.cli import main
from repro.obs.report import (
    DEFAULT_THRESHOLD,
    compare_runs,
    load_baseline,
    render_report,
    summarize_journal,
)


def write_journal(path, shard_seconds: float, shards: int = 12, label="fig3"):
    """A synthetic campaign journal with a controlled latency profile."""
    lines = [
        {"ev": "open", "mono": 0.0, "ts": 0.0, "pid": 1,
         "schema": "repro-journal/1", "campaign": "synthetic"},
        {"ev": "sweep-start", "mono": 0.01, "ts": 0.01, "pid": 1,
         "label": label, "m": 2, "units": shards, "cached": 2},
    ]
    t = 0.1
    for i in range(shards):
        t += shard_seconds
        lines.append(
            {"ev": "exec-done", "mono": t, "ts": t, "pid": 2,
             "key": f"k{i}", "label": label, "m": 2,
             "seconds": shard_seconds}
        )
        lines.append({"ev": "done", "mono": t, "ts": t, "pid": 1,
                      "key": f"k{i}", "label": label, "m": 2})
    lines.append({"ev": "retry", "mono": t, "ts": t, "pid": 1, "key": "k0",
                  "label": label, "m": 2, "attempt": 2})
    lines.append({"ev": "worker-lost", "mono": t, "ts": t, "pid": 1,
                  "slot": 0})
    lines.append({"ev": "campaign-end", "mono": t + 0.01, "ts": t + 0.01,
                  "pid": 1, "campaign": "synthetic"})
    path.write_text("".join(json.dumps(line) + "\n" for line in lines))
    return path


class TestSummarize:
    def test_summary_fields(self, tmp_path):
        path = write_journal(tmp_path / "run.jsonl", 0.1, shards=10)
        summary = summarize_journal(path)
        assert summary.campaign == "synthetic"
        assert summary.executed == 10
        assert summary.cached == 2
        assert summary.retries == 1
        assert summary.lost_workers == 1
        assert summary.wall_seconds == pytest.approx(1.11, abs=0.01)
        assert summary.shards_per_sec == pytest.approx(10 / 1.11, rel=0.05)
        assert summary.latency["p95"] == pytest.approx(0.1, rel=0.1)
        sweep = summary.sweeps[("fig3", 2)]
        assert sweep["executed"] == 10
        assert sweep["seconds"] == pytest.approx(1.0, rel=1e-6)

    def test_render_report_never_raises_on_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        summary = summarize_journal(path)
        assert summary.executed == 0 and summary.shards_per_sec is None
        assert "runs" in render_report([summary])


class TestCompare:
    def test_self_compare_is_clean(self, tmp_path):
        summary = summarize_journal(write_journal(tmp_path / "a.jsonl", 0.1))
        comparisons = compare_runs(summary, summary)
        assert comparisons and all(not c.regressed for c in comparisons)
        assert all(c.ratio == pytest.approx(1.0) for c in comparisons)

    def test_throughput_drop_and_latency_rise_regress(self, tmp_path):
        fast = summarize_journal(write_journal(tmp_path / "fast.jsonl", 0.05))
        slow = summarize_journal(write_journal(tmp_path / "slow.jsonl", 0.5))
        regressed = {
            c.metric for c in compare_runs(slow, fast) if c.regressed
        }
        assert "shards_per_sec" in regressed
        assert "shard_seconds.p95" in regressed
        # the fast run against the slow baseline is an improvement, not
        # a regression — the rule is one-sided
        assert not any(c.regressed for c in compare_runs(fast, slow))

    def test_threshold_tolerates_small_drift(self, tmp_path):
        fast = summarize_journal(write_journal(tmp_path / "a.jsonl", 0.100))
        near = summarize_journal(write_journal(tmp_path / "b.jsonl", 0.105))
        assert not any(
            c.regressed for c in compare_runs(near, fast, threshold=0.2)
        )
        assert any(
            c.regressed for c in compare_runs(near, fast, threshold=0.01)
        )

    def test_threshold_validated(self, tmp_path):
        summary = summarize_journal(write_journal(tmp_path / "a.jsonl", 0.1))
        with pytest.raises(ValueError, match="threshold"):
            compare_runs(summary, summary, threshold=0.0)


class TestBenchBaseline:
    def test_mines_best_shards_per_sec(self, tmp_path):
        artifact = tmp_path / "BENCH_fabric.json"
        artifact.write_text(json.dumps({
            "schema": "repro-bench-fabric/1",
            "backends": {
                "serial": {"shards_per_sec": 40.0},
                "pool": {"shards_per_sec": 25.0},
            },
        }))
        baseline = load_baseline(artifact)
        assert baseline.synthetic
        assert baseline.shards_per_sec == 40.0
        assert baseline.latency["p95"] is None

    def test_journal_baseline_roundtrips(self, tmp_path):
        path = write_journal(tmp_path / "base.jsonl", 0.1)
        baseline = load_baseline(path)
        assert not baseline.synthetic
        assert baseline.executed == 12

    def test_artifact_gates_throughput_only(self, tmp_path):
        artifact = tmp_path / "BENCH.json"
        artifact.write_text(json.dumps({"x": {"shards_per_sec": 1e9}}))
        current = summarize_journal(write_journal(tmp_path / "run.jsonl", 0.1))
        comparisons = compare_runs(current, load_baseline(artifact))
        assert [c.metric for c in comparisons] == ["shards_per_sec"]
        assert comparisons[0].regressed


class TestCliExitCodes:
    """The ISSUE's acceptance bar, through the real entry point."""

    def test_self_compare_exits_zero(self, tmp_path, capsys):
        path = write_journal(tmp_path / "run.jsonl", 0.1)
        code = main(["report", str(path), "--baseline", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline diff" in out and "REGRESSED" not in out

    def test_synthetic_regression_exits_nonzero(self, tmp_path, capsys):
        fast = write_journal(tmp_path / "fast.jsonl", 0.05)
        slow = write_journal(tmp_path / "slow.jsonl", 0.5)
        code = main(["report", str(slow), "--baseline", str(fast)])
        assert code != 0
        captured = capsys.readouterr()
        assert "REGRESSED" in captured.out
        assert "REGRESSION" in captured.err

    def test_first_journal_anchors_the_rest(self, tmp_path):
        fast = write_journal(tmp_path / "fast.jsonl", 0.05)
        slow = write_journal(tmp_path / "slow.jsonl", 0.5)
        assert main(["report", str(fast), str(slow)]) != 0
        assert main(["report", str(fast), str(fast)]) == 0

    def test_single_journal_has_nothing_to_diff(self, tmp_path, capsys):
        path = write_journal(tmp_path / "run.jsonl", 0.1)
        assert main(["report", str(path)]) == 0
        assert "baseline diff" not in capsys.readouterr().out

    def test_generous_threshold_silences_noise(self, tmp_path):
        fast = write_journal(tmp_path / "fast.jsonl", 0.10)
        slow = write_journal(tmp_path / "slow.jsonl", 0.15)
        assert main(["report", str(slow), "--baseline", str(fast),
                     "--threshold", "0.05"]) != 0
        assert main(["report", str(slow), "--baseline", str(fast),
                     "--threshold", "0.9"]) == 0

    def test_missing_journal_fails_loudly(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", str(tmp_path / "absent.jsonl")])

    def test_bad_threshold_rejected(self, tmp_path):
        path = write_journal(tmp_path / "run.jsonl", 0.1)
        with pytest.raises(SystemExit):
            main(["report", str(path), "--threshold", "-1"])

    def test_default_threshold_is_documented_value(self):
        assert DEFAULT_THRESHOLD == 0.2
