"""Unit tests for experiment report rendering."""

import pytest

from repro.experiments import (
    fig6a,
    get_algorithm,
    improvement_summary,
    render_sweep,
    render_war,
    sweep_to_csv,
)
from repro.experiments.acceptance import AcceptanceSweep, SweepConfig
from repro.experiments.report import render_figure
from repro.generator import UtilizationGrid


@pytest.fixture(scope="module")
def small_sweep():
    config = SweepConfig(label="report", m=2, samples_per_bucket=3)
    grid = UtilizationGrid(u_hh_values=(0.4, 0.8), inner_step=0.4)
    algos = [get_algorithm("cu-udp-edf-vd"), get_algorithm("ca-nosort-f-f-edf-vd")]
    return AcceptanceSweep(config, grid=grid).run(algos)


class TestRenderSweep:
    def test_contains_headers_and_buckets(self, small_sweep):
        text = render_sweep(small_sweep)
        assert "UB" in text and "cu-udp-edf-vd" in text
        for bucket in small_sweep.buckets:
            assert f"{bucket:.2f}" in text

    def test_custom_title(self, small_sweep):
        assert render_sweep(small_sweep, title="XYZ").startswith("XYZ")


class TestImprovementSummary:
    def test_lists_pairs(self, small_sweep):
        text = improvement_summary(
            small_sweep, ["cu-udp-edf-vd"], ["ca-nosort-f-f-edf-vd"]
        )
        assert "cu-udp-edf-vd" in text
        assert "max gain" in text

    def test_skips_self_comparison(self, small_sweep):
        text = improvement_summary(
            small_sweep, ["cu-udp-edf-vd"], ["cu-udp-edf-vd"]
        )
        assert text.count("cu-udp-edf-vd") <= 1  # header row only


class TestCsv:
    def test_parsable(self, small_sweep):
        csv = sweep_to_csv(small_sweep)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("ub,sets,")
        assert len(lines) == 1 + len(small_sweep.buckets)
        first = lines[1].split(",")
        assert float(first[0]) == small_sweep.buckets[0]


class TestRenderWar:
    def test_war_table(self):
        result = fig6a(samples=1, ph_values=(0.5,), m_values=(2,))
        text = render_war(result)
        assert "PH" in text and "WAR" in text

    def test_render_figure_combines(self):
        result = fig6a(samples=1, ph_values=(0.5,), m_values=(2,))
        text = render_figure(result)
        assert "fig6a" in text

    def test_war_without_data_rejected(self, small_sweep):
        from repro.experiments.figures import FigureResult

        empty = FigureResult("figX")
        with pytest.raises(ValueError, match="no WAR"):
            render_war(empty)
