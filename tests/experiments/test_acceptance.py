"""Unit tests for the acceptance-ratio sweep harness."""

import pytest

from repro.experiments import AcceptanceSweep, SweepConfig, get_algorithm
from repro.generator import UtilizationGrid


def small_grid() -> UtilizationGrid:
    return UtilizationGrid(u_hh_values=(0.3, 0.6), inner_step=0.3)


def run_small(label="t", samples=5, **kwargs):
    config = SweepConfig(
        label=label, m=2, samples_per_bucket=samples, **kwargs
    )
    algos = [get_algorithm("cu-udp-edf-vd"), get_algorithm("ca-nosort-f-f-edf-vd")]
    return AcceptanceSweep(config, grid=small_grid()).run(algos)


class TestSweep:
    def test_ratios_in_unit_interval(self):
        result = run_small()
        for ratios in result.ratios.values():
            assert all(0.0 <= r <= 1.0 for r in ratios)
            assert len(ratios) == len(result.buckets)

    def test_buckets_ascending(self):
        result = run_small()
        assert result.buckets == sorted(result.buckets)

    def test_deterministic(self):
        a = run_small(label="same")
        b = run_small(label="same")
        assert a.ratios == b.ratios
        assert a.buckets == b.buckets

    def test_label_changes_generated_sets(self):
        """Different labels must draw different task-set samples."""
        grid = small_grid()
        buckets = grid.buckets(0.05)
        key, points = next(iter(buckets.items()))
        config_a = SweepConfig(label="one", m=2, samples_per_bucket=4)
        config_b = SweepConfig(label="two", m=2, samples_per_bucket=4)
        sets_a = AcceptanceSweep(config_a, grid).tasksets_for_bucket(key, points)
        sets_b = AcceptanceSweep(config_b, grid).tasksets_for_bucket(key, points)
        fingerprint_a = [[t.period for t in ts] for ts in sets_a]
        fingerprint_b = [[t.period for t in ts] for ts in sets_b]
        assert fingerprint_a != fingerprint_b

    def test_ub_window_filters_buckets(self):
        full = run_small()
        windowed = run_small(ub_min=0.5)
        assert min(windowed.buckets) >= 0.5
        assert len(windowed.buckets) < len(full.buckets)

    def test_max_improvement_sign_convention(self):
        result = run_small(samples=8)
        gain = result.max_improvement("cu-udp-edf-vd", "ca-nosort-f-f-edf-vd")
        loss = result.max_improvement("ca-nosort-f-f-edf-vd", "cu-udp-edf-vd")
        assert gain >= 0.0 or loss >= 0.0  # at least one direction non-negative

    def test_unknown_algorithm_error_lists_known_ones(self):
        result = run_small()
        with pytest.raises(KeyError, match="unknown algorithm 'nope'") as exc:
            result.ratio_curve("nope")
        assert "cu-udp-edf-vd" in str(exc.value)
        with pytest.raises(KeyError, match="this sweep ran"):
            result.max_improvement("cu-udp-edf-vd", "also-nope")

    def test_ratio_curve_pairs(self):
        result = run_small()
        curve = result.ratio_curve("cu-udp-edf-vd")
        assert [ub for ub, _ in curve] == result.buckets


class TestMergeOutcomes:
    def test_shard_order_is_irrelevant(self):
        from repro.experiments import BucketOutcome, merge_outcomes

        config = SweepConfig(label="merge", m=2, samples_per_bucket=1)
        outcomes = [
            BucketOutcome(bucket=0.6, samples=3, ratios={"a": 0.5}),
            BucketOutcome(bucket=0.2, samples=3, ratios={"a": 1.0}),
            BucketOutcome(bucket=0.4, samples=0, ratios={}),  # infeasible
        ]
        merged = merge_outcomes(config, ["a"], outcomes)
        reversed_merge = merge_outcomes(config, ["a"], outcomes[::-1])
        assert merged == reversed_merge
        assert merged.buckets == [0.2, 0.6]  # empty bucket dropped, sorted
        assert merged.ratios == {"a": [1.0, 0.5]}


class TestTasksetProvisioning:
    def test_same_sets_for_all_algorithms(self):
        """The sweep generates one sample per (bucket, replicate) shared by
        all algorithms — guaranteed by generation happening before the
        algorithm loop; here we pin the deterministic regeneration."""
        config = SweepConfig(label="share", m=2, samples_per_bucket=3)
        sweep = AcceptanceSweep(config, grid=small_grid())
        buckets = small_grid().buckets(config.bucket_width)
        key, points = next(iter(buckets.items()))
        first = sweep.tasksets_for_bucket(key, points)
        second = sweep.tasksets_for_bucket(key, points)
        assert [len(ts) for ts in first] == [len(ts) for ts in second]
        assert [[t.period for t in ts] for ts in first] == [
            [t.period for t in ts] for ts in second
        ]
