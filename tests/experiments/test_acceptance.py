"""Unit tests for the acceptance-ratio sweep harness."""

import pytest

from repro.experiments import AcceptanceSweep, SweepConfig, get_algorithm
from repro.generator import UtilizationGrid


def small_grid() -> UtilizationGrid:
    return UtilizationGrid(u_hh_values=(0.3, 0.6), inner_step=0.3)


def run_small(label="t", samples=5, **kwargs):
    config = SweepConfig(
        label=label, m=2, samples_per_bucket=samples, **kwargs
    )
    algos = [get_algorithm("cu-udp-edf-vd"), get_algorithm("ca-nosort-f-f-edf-vd")]
    return AcceptanceSweep(config, grid=small_grid()).run(algos)


class TestSweep:
    def test_ratios_in_unit_interval(self):
        result = run_small()
        for ratios in result.ratios.values():
            assert all(0.0 <= r <= 1.0 for r in ratios)
            assert len(ratios) == len(result.buckets)

    def test_buckets_ascending(self):
        result = run_small()
        assert result.buckets == sorted(result.buckets)

    def test_deterministic(self):
        a = run_small(label="same")
        b = run_small(label="same")
        assert a.ratios == b.ratios
        assert a.buckets == b.buckets

    def test_label_changes_generated_sets(self):
        """Different labels must draw different task-set samples."""
        grid = small_grid()
        buckets = grid.buckets(0.05)
        key, points = next(iter(buckets.items()))
        config_a = SweepConfig(label="one", m=2, samples_per_bucket=4)
        config_b = SweepConfig(label="two", m=2, samples_per_bucket=4)
        sets_a = AcceptanceSweep(config_a, grid).tasksets_for_bucket(key, points)
        sets_b = AcceptanceSweep(config_b, grid).tasksets_for_bucket(key, points)
        fingerprint_a = [[t.period for t in ts] for ts in sets_a]
        fingerprint_b = [[t.period for t in ts] for ts in sets_b]
        assert fingerprint_a != fingerprint_b

    def test_ub_window_filters_buckets(self):
        full = run_small()
        windowed = run_small(ub_min=0.5)
        assert min(windowed.buckets) >= 0.5
        assert len(windowed.buckets) < len(full.buckets)

    def test_max_improvement_sign_convention(self):
        result = run_small(samples=8)
        gain = result.max_improvement("cu-udp-edf-vd", "ca-nosort-f-f-edf-vd")
        loss = result.max_improvement("ca-nosort-f-f-edf-vd", "cu-udp-edf-vd")
        assert gain >= 0.0 or loss >= 0.0  # at least one direction non-negative

    def test_unknown_algorithm_error_lists_known_ones(self):
        result = run_small()
        with pytest.raises(KeyError, match="unknown algorithm 'nope'") as exc:
            result.ratio_curve("nope")
        assert "cu-udp-edf-vd" in str(exc.value)
        with pytest.raises(KeyError, match="this sweep ran"):
            result.max_improvement("cu-udp-edf-vd", "also-nope")

    def test_ratio_curve_pairs(self):
        result = run_small()
        curve = result.ratio_curve("cu-udp-edf-vd")
        assert [ub for ub, _ in curve] == result.buckets


class TestMergeOutcomes:
    def test_shard_order_is_irrelevant(self):
        from repro.experiments import BucketOutcome, merge_outcomes

        config = SweepConfig(label="merge", m=2, samples_per_bucket=1)
        outcomes = [
            BucketOutcome(bucket=0.6, samples=3, ratios={"a": 0.5}),
            BucketOutcome(bucket=0.2, samples=3, ratios={"a": 1.0}),
            BucketOutcome(bucket=0.4, samples=0, ratios={}),  # infeasible
        ]
        merged = merge_outcomes(config, ["a"], outcomes)
        reversed_merge = merge_outcomes(config, ["a"], outcomes[::-1])
        assert merged == reversed_merge
        assert merged.buckets == [0.2, 0.6]  # empty bucket dropped, sorted
        assert merged.ratios == {"a": [1.0, 0.5]}


class TestTasksetProvisioning:
    def test_same_sets_for_all_algorithms(self):
        """The sweep generates one sample per (bucket, replicate) shared by
        all algorithms — guaranteed by generation happening before the
        algorithm loop; here we pin the deterministic regeneration."""
        config = SweepConfig(label="share", m=2, samples_per_bucket=3)
        sweep = AcceptanceSweep(config, grid=small_grid())
        buckets = small_grid().buckets(config.bucket_width)
        key, points = next(iter(buckets.items()))
        first = sweep.tasksets_for_bucket(key, points)
        second = sweep.tasksets_for_bucket(key, points)
        assert [len(ts) for ts in first] == [len(ts) for ts in second]
        assert [[t.period for t in ts] for ts in first] == [
            [t.period for t in ts] for ts in second
        ]


class TestSweepSetupValidation:
    """Unsupported (algorithm, deadline type) pairings fail at setup."""

    def test_run_bucket_rejects_edfvd_on_constrained(self):
        from repro.experiments.acceptance import validate_algorithms

        config = SweepConfig(label="t", m=2, deadline_type="constrained")
        with pytest.raises(ValueError, match="cu-udp-edf-vd"):
            validate_algorithms(config, [get_algorithm("cu-udp-edf-vd")])

    def test_serial_run_rejects_up_front(self):
        config = SweepConfig(
            label="t", m=2, deadline_type="constrained", samples_per_bucket=2
        )
        sweep = AcceptanceSweep(config, grid=small_grid())
        with pytest.raises(ValueError, match="deadline_type"):
            sweep.run([get_algorithm("cu-udp-edf-vd")])

    def test_decompose_sweep_rejects_up_front(self):
        from repro.runner.units import decompose_sweep

        config = SweepConfig(label="t", m=2, deadline_type="constrained")
        with pytest.raises(ValueError, match="cu-udp-edf-vd"):
            decompose_sweep(config, ["cu-udp-edf-vd"])

    def test_supported_pairings_pass(self):
        from repro.experiments.acceptance import validate_algorithms

        config = SweepConfig(label="t", m=2, deadline_type="constrained")
        validate_algorithms(config, [get_algorithm("cu-udp-ecdf")])
        config = SweepConfig(label="t", m=2, deadline_type="implicit")
        validate_algorithms(config, [get_algorithm("cu-udp-edf-vd")])


class TestStrictSeriesAlignment:
    """Mismatched merged series must fail loudly, not truncate silently."""

    def _mismatched_result(self):
        from repro.experiments.acceptance import SweepResult

        config = SweepConfig(label="t", m=2)
        return SweepResult(
            config=config,
            buckets=[0.5, 0.6, 0.7],
            samples=[5, 5, 5],
            ratios={"good": [1.0, 0.8, 0.6], "stale": [1.0, 0.9]},
        )

    def test_ratio_curve_raises_on_length_mismatch(self):
        result = self._mismatched_result()
        with pytest.raises(ValueError, match="stale"):
            result.ratio_curve("stale")

    def test_ratio_curve_ok_when_aligned(self):
        result = self._mismatched_result()
        assert result.ratio_curve("good") == [(0.5, 1.0), (0.6, 0.8), (0.7, 0.6)]

    def test_max_improvement_raises_on_length_mismatch(self):
        result = self._mismatched_result()
        with pytest.raises(ValueError, match="disagree in length"):
            result.max_improvement("good", "stale")
        with pytest.raises(ValueError, match="disagree in length"):
            result.max_improvement("stale", "good")

    def test_max_improvement_ok_when_aligned(self):
        from repro.experiments.acceptance import SweepResult

        config = SweepConfig(label="t", m=2)
        result = SweepResult(
            config=config,
            buckets=[0.5, 0.6],
            samples=[5, 5],
            ratios={"a": [1.0, 0.8], "b": [0.9, 0.5]},
        )
        assert result.max_improvement("a", "b") == pytest.approx(30.0)
