"""Unit tests for the partitioned-algorithm registry."""

import pytest

from repro.experiments import get_algorithm, registered_algorithms


class TestRegistry:
    def test_paper_algorithms_present(self):
        names = registered_algorithms()
        for expected in (
            "ca-udp-edf-vd",
            "cu-udp-edf-vd",
            "ca-nosort-f-f-edf-vd",
            "cu-udp-ecdf",
            "cu-udp-amc",
            "eca-wu-f-ey",
            "ca-f-f-ey",
        ):
            assert expected in names

    def test_wiring_matches_name(self):
        algo = get_algorithm("cu-udp-ecdf")
        assert algo.strategy.name == "cu-udp"
        assert algo.test.name == "ecdf"

    def test_amc_default_is_amc_max_dm(self):
        algo = get_algorithm("cu-udp-amc")
        assert algo.test.name == "amc-max"
        assert algo.test.priority_policy == "dm"

    def test_opa_variant(self):
        algo = get_algorithm("cu-udp-amc-opa")
        assert algo.test.priority_policy == "opa"

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="known"):
            get_algorithm("fancy-new-algo")


class TestAlgorithmExecution:
    def test_accepts_easy_set(self, simple_mixed_taskset):
        algo = get_algorithm("cu-udp-edf-vd")
        assert algo.accepts(simple_mixed_taskset, m=2)

    def test_partition_returns_result(self, simple_mixed_taskset):
        algo = get_algorithm("ca-udp-edf-vd")
        result = algo.partition(simple_mixed_taskset, m=2)
        assert result.success
        assert result.strategy_name == "ca-udp"
