"""Unit tests for the weighted acceptance ratio."""

import pytest

from repro.experiments import weighted_acceptance_ratio


class TestWAR:
    def test_paper_formula(self):
        # WAR = sum(AR*UB)/sum(UB)
        buckets = [0.5, 1.0]
        ratios = [1.0, 0.4]
        expected = (1.0 * 0.5 + 0.4 * 1.0) / 1.5
        assert weighted_acceptance_ratio(buckets, ratios) == pytest.approx(expected)

    def test_all_accepted_gives_one(self):
        assert weighted_acceptance_ratio([0.2, 0.7], [1.0, 1.0]) == pytest.approx(1.0)

    def test_all_rejected_gives_zero(self):
        assert weighted_acceptance_ratio([0.2, 0.7], [0.0, 0.0]) == 0.0

    def test_heavier_buckets_dominate(self):
        # Failing only the heavy bucket hurts more than failing the light one.
        light_fail = weighted_acceptance_ratio([0.1, 0.9], [0.0, 1.0])
        heavy_fail = weighted_acceptance_ratio([0.1, 0.9], [1.0, 0.0])
        assert light_fail > heavy_fail

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            weighted_acceptance_ratio([0.1], [1.0, 0.5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            weighted_acceptance_ratio([], [])
