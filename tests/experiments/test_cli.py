"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def taskset_file(tmp_path):
    path = tmp_path / "ts.json"
    code = main(
        [
            "generate",
            "--m",
            "1",
            "--uhh",
            "0.5",
            "--ulh",
            "0.25",
            "--ull",
            "0.3",
            "--seed",
            "cli-test",
            "-o",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_valid_json(self, taskset_file):
        rows = json.loads(taskset_file.read_text())
        assert isinstance(rows, list) and rows
        assert {"period", "criticality", "wcet_lo", "wcet_hi"} <= set(rows[0])

    def test_stdout_mode(self, capsys):
        code = main(
            [
                "generate", "--m", "1",
                "--uhh", "0.4", "--ulh", "0.2", "--ull", "0.2",
            ]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows

    def test_infeasible_targets_exit_1(self, capsys):
        # m*U_HH = 7.92 cannot be carved into <= 4 HC tasks of u <= 0.99.
        code = main(
            [
                "generate", "--m", "8",
                "--uhh", "0.99", "--ulh", "0.5", "--ull", "0.3",
                "--nmin", "8", "--nmax", "8",
            ]
        )
        assert code == 1

    def test_count_range_respected(self, capsys):
        code = main(
            [
                "generate", "--m", "1",
                "--uhh", "0.4", "--ulh", "0.2", "--ull", "0.2",
                "--nmin", "4", "--nmax", "4",
            ]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 4


class TestCheck:
    def test_schedulable_exit_0(self, taskset_file, capsys):
        code = main(["check", str(taskset_file), "--test", "ecdf"])
        assert code == 0
        assert "SCHEDULABLE" in capsys.readouterr().out

    def test_all_tests_run(self, taskset_file):
        for test in ("edf-vd", "ey", "amc-max", "amc-rtb", "edf-lo"):
            code = main(["check", str(taskset_file), "--test", test])
            assert code in (0, 2)


class TestPartition:
    def test_partition_success(self, taskset_file, capsys):
        code = main(
            [
                "partition", str(taskset_file),
                "--m", "2", "--strategy", "cu-udp", "--test", "edf-vd",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SUCCESS" in out and "cu-udp" in out


class TestSimulate:
    def test_validates_accepted_set(self, taskset_file, capsys):
        code = main(
            [
                "simulate", str(taskset_file),
                "--test", "ecdf", "--horizon", "3000",
            ]
        )
        assert code == 0
        assert "validated" in capsys.readouterr().out


class TestFigure:
    def test_tiny_figure_run(self, capsys, tmp_path, monkeypatch):
        # run in tmp so an ambient REPRO_OBS=trace writes its default
        # BENCH_obs.json/repro-trace.json here, not over committed files
        monkeypatch.chdir(tmp_path)
        code = main(["figure", "fig3", "--samples", "1", "--m", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cu-udp-edf-vd" in out

    def test_parallel_run_with_cache_and_output(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        args = [
            "figure", "fig3", "--samples", "2", "--m", "2",
            "--jobs", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "-o", str(tmp_path / "fig3.json"),
        ]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert (tmp_path / "fig3.json").exists()
        # rerun answers from cache and renders the same tables
        assert main(args) == 0
        assert capsys.readouterr().out == serial_out


class TestTrace:
    def test_trace_writes_snapshot_and_chrome_trace(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro import obs

        monkeypatch.chdir(tmp_path)
        code = main(["trace", "fig3", "--samples", "1", "--m", "2"])
        obs.clear()  # the forced recorder fed the process-global registry
        assert code == 0
        out = capsys.readouterr().out
        assert "obs counters" in out and "obs spans" in out

        snapshot = json.loads((tmp_path / "BENCH_obs.json").read_text())
        assert snapshot["schema"].startswith("repro-obs-snapshot/")
        assert snapshot["mode"] == "trace"
        # a batched fig3 settles via the prefilter ledger; every shard
        # also lands one latency observation
        assert any(k.startswith("prefilter.") for k in snapshot["counters"])
        assert "runner.shard-seconds" in snapshot["histograms"]
        assert snapshot["spans"]["count"] > 0

        trace = json.loads((tmp_path / "repro-trace.json").read_text())
        names = {event["name"] for event in trace["traceEvents"]}
        assert {"sweep", "shard"} <= names

    def test_explicit_output_paths(self, capsys, tmp_path, monkeypatch):
        from repro import obs

        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "trace", "fig3", "--samples", "1", "--m", "2",
                "--trace-out", str(tmp_path / "t.json"),
                "--obs-out", str(tmp_path / "o.json"),
            ]
        )
        obs.clear()
        assert code == 0
        capsys.readouterr()
        assert (tmp_path / "t.json").exists()
        assert (tmp_path / "o.json").exists()
        assert not (tmp_path / "BENCH_obs.json").exists()


class TestCampaign:
    def test_campaign_runs_and_resumes(self, capsys, tmp_path):
        args = [
            "campaign", "--figures", "fig3", "--samples", "2",
            "--out", str(tmp_path / "out"), "--no-progress",
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "0 from cache" in first
        assert (tmp_path / "out" / "fig3.json").exists()
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 shards computed" in second

    def test_spec_file_campaign(self, capsys, tmp_path):
        spec = {
            "name": "from-file",
            "figures": [{"figure": "fig3", "samples": 1, "m_values": [2]}],
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        code = main(
            [
                "campaign", str(spec_path),
                "--out", str(tmp_path / "out"), "--no-progress",
            ]
        )
        assert code == 0
        assert "from-file" in capsys.readouterr().out

    def test_spec_and_figures_are_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "campaign", "spec.json", "--figures", "fig3",
                    "--out", str(tmp_path), "--no-progress",
                ]
            )


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig9"])
