"""The degradation sweep figures (fig7a/fig7b) and service-aware sweeps."""

from __future__ import annotations

import pytest

from repro.experiments import PAPER_FIGURES, figure_plan, run_figure
from repro.experiments.acceptance import (
    AcceptanceSweep,
    SweepConfig,
    validate_algorithms,
)
from repro.experiments.algorithms import get_algorithm
from repro.experiments.export import (
    figure_result_from_dict,
    figure_result_to_dict,
    sweep_config_to_dict,
)
from repro.experiments.report import render_figure
from repro.runner import CampaignSpec, FigureJob, run_campaign
from repro.degradation import ImpreciseBudget


class TestPlans:
    def test_fig7a_plan_shape(self):
        plan = figure_plan(
            "fig7a", samples=2, deg_values=(0.0, 0.5), m_values=(2,)
        )
        assert [job.key for job in plan] == [
            "m=2,imprecise=0.0",
            "m=2,imprecise=0.5",
        ]
        assert [job.config.service for job in plan] == [
            "imprecise:0.0",
            "imprecise:0.5",
        ]
        assert all(job.war_key == (2, v) for job, v in zip(plan, (0.0, 0.5)))
        assert all(job.config.deadline_type == "implicit" for job in plan)

    def test_fig7b_plan_uses_elastic(self):
        plan = figure_plan("fig7b", samples=2, deg_values=(2.0,), m_values=(2,))
        assert plan[0].config.service == "elastic:2.0"

    def test_paper_figures_excludes_extension(self):
        assert "fig7a" not in PAPER_FIGURES
        assert "fig7b" not in PAPER_FIGURES
        spec = CampaignSpec.paper_evaluation(samples=1)
        assert {job.figure for job in spec.figures} == set(PAPER_FIGURES)

    def test_degradation_extension_campaign(self):
        spec = CampaignSpec.degradation_extension(samples=1)
        assert {job.figure for job in spec.figures} == {"fig7a", "fig7b"}

    def test_figure_job_deg_values_validation(self):
        FigureJob("fig7a", deg_values=(0.5,))
        with pytest.raises(ValueError, match="degradation"):
            FigureJob("fig3", deg_values=(0.5,))


class TestServiceAwareSweeps:
    def test_sweep_attaches_service_model(self):
        config = SweepConfig(
            label="svc", m=2, samples_per_bucket=2, service="imprecise:0.5"
        )
        sweep = AcceptanceSweep(config)
        buckets = sweep.bucket_points()
        bucket, points = next(iter(buckets.items()))
        for taskset in sweep.tasksets_for_bucket(bucket, points):
            assert taskset.service_model == ImpreciseBudget(0.5)

    def test_same_tasksets_across_service_levels(self):
        """Generation ignores the service model, so sweeps differing only
        in ``service`` evaluate the identical task-set sample."""
        kwargs = dict(label="svc", m=2, samples_per_bucket=3)
        drop = AcceptanceSweep(SweepConfig(**kwargs))
        deg = AcceptanceSweep(
            SweepConfig(**kwargs, service="imprecise:0.5")
        )
        bucket, points = next(iter(drop.bucket_points().items()))
        a = drop.tasksets_for_bucket(bucket, points)
        b = deg.tasksets_for_bucket(bucket, points)
        assert len(a) == len(b)

        def shape(taskset):
            # task_ids (and the names derived from them) come from a global
            # counter, so compare the structural parameters only
            return [
                (t.period, t.criticality, t.wcet_lo, t.wcet_hi, t.deadline)
                for t in taskset
            ]

        for ts_drop, ts_deg in zip(a, b):
            assert shape(ts_drop) == shape(ts_deg)
            assert ts_drop.service_model is None
            assert ts_deg.service_model == ImpreciseBudget(0.5)

    def test_validate_algorithms_rejects_amc_on_degraded_sweep(self):
        config = SweepConfig(label="bad", m=2, service="imprecise:0.5")
        with pytest.raises(ValueError, match="service"):
            validate_algorithms(config, [get_algorithm("cu-udp-amc")])
        # drop-at-switch sweeps keep working with AMC
        validate_algorithms(
            SweepConfig(label="ok", m=2), [get_algorithm("cu-udp-amc")]
        )

    def test_config_serialization_omits_default_service(self):
        assert "service" not in sweep_config_to_dict(
            SweepConfig(label="x", m=2)
        )
        data = sweep_config_to_dict(
            SweepConfig(label="x", m=2, service="elastic:2.0")
        )
        assert data["service"] == "elastic:2.0"


class TestEndToEnd:
    def test_fig7a_runs_and_renders(self):
        result = run_figure(
            "fig7a", samples=2, m_values=(2,), deg_values=(0.0, 1.0)
        )
        assert set(result.sweeps) == {
            "m=2,imprecise=0.0",
            "m=2,imprecise=1.0",
        }
        assert set(result.war) == {(2, 0.0), (2, 1.0)}
        # more LC service can never improve schedulability
        for name in result.war[(2, 0.0)]:
            assert result.war[(2, 0.0)][name] >= result.war[(2, 1.0)][name]
        rendered = render_figure(result)
        assert "WAR vs rho" in rendered
        # round-trips through the JSON exporter
        again = figure_result_from_dict(figure_result_to_dict(result))
        assert again.war == result.war
        assert {
            key: sweep.ratios for key, sweep in again.sweeps.items()
        } == {key: sweep.ratios for key, sweep in result.sweeps.items()}

    def test_fig7_campaign_resumes_from_cache(self, tmp_path):
        spec = CampaignSpec(
            name="deg-mini",
            figures=(
                FigureJob(
                    "fig7a", samples=2, m_values=(2,), deg_values=(0.5,)
                ),
            ),
        )
        first = run_campaign(spec, tmp_path / "out")
        assert first.shards_computed > 0
        second = run_campaign(spec, tmp_path / "out")
        assert second.shards_computed == 0
        assert second.shards_cached == first.shards_computed
