"""Unit tests for figure-result persistence."""

import pytest

from repro.experiments import fig6a
from repro.experiments.export import (
    figure_result_from_dict,
    figure_result_to_dict,
    load_figure_result,
    save_figure_result,
)
from repro.experiments.report import render_figure


@pytest.fixture(scope="module")
def result():
    return fig6a(samples=2, ph_values=(0.5,), m_values=(2,))


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self, result):
        again = figure_result_from_dict(figure_result_to_dict(result))
        assert again.figure == result.figure
        assert set(again.sweeps) == set(result.sweeps)
        for key in result.sweeps:
            assert again.sweeps[key].buckets == result.sweeps[key].buckets
            assert again.sweeps[key].ratios == result.sweeps[key].ratios
            assert (
                again.sweeps[key].config.p_high
                == result.sweeps[key].config.p_high
            )
        assert again.war == result.war

    def test_file_roundtrip(self, result, tmp_path):
        path = tmp_path / "fig.json"
        save_figure_result(result, path)
        again = load_figure_result(path)
        assert again.war == result.war

    def test_rerender_after_load(self, result, tmp_path):
        path = tmp_path / "fig.json"
        save_figure_result(result, path)
        text = render_figure(load_figure_result(path))
        assert result.figure in text

    def test_version_guard(self, result):
        data = figure_result_to_dict(result)
        data["format_version"] = 99
        with pytest.raises(ValueError, match="format"):
            figure_result_from_dict(data)
