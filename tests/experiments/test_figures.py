"""Unit tests for the per-figure experiment runners (miniature scale)."""

import pytest

from repro.experiments import FIGURES, fig3, fig6a, run_figure
from repro.experiments.figures import (
    FIG3_ALGORITHMS,
    FIG45_ALGORITHMS,
    FIG6B_ALGORITHMS,
    default_samples,
    figure_plan,
)


class TestFigureConfigs:
    def test_series_match_paper(self):
        assert FIG3_ALGORITHMS == (
            "ca-udp-edf-vd",
            "cu-udp-edf-vd",
            "ca-nosort-f-f-edf-vd",
        )
        assert set(FIG45_ALGORITHMS) == {
            "cu-udp-amc",
            "cu-udp-ecdf",
            "eca-wu-f-ey",
            "ca-f-f-ey",
        }
        assert "eca-wu-f-ey" in FIG6B_ALGORITHMS

    def test_all_figures_registered(self):
        assert set(FIGURES) == {
            "fig3", "fig4", "fig5", "fig6a", "fig6b", "fig7a", "fig7b",
        }

    def test_run_figure_unknown(self):
        with pytest.raises(KeyError, match="known"):
            run_figure("fig9")


class TestFigurePlan:
    def test_acceptance_plan_one_sweep_per_m(self):
        plan = figure_plan("fig3", samples=2, m_values=(2, 4))
        assert [job.key for job in plan] == ["m=2", "m=4"]
        assert all(job.algorithms == FIG3_ALGORITHMS for job in plan)
        assert all(job.war_key is None for job in plan)
        assert plan[0].config.samples_per_bucket == 2

    def test_war_plan_carries_war_keys(self):
        plan = figure_plan("fig6a", samples=1, ph_values=(0.3, 0.7), m_values=(2,))
        assert [job.war_key for job in plan] == [(2, 0.3), (2, 0.7)]
        assert all(job.config.p_high == job.war_key[1] for job in plan)

    def test_unknown_figure(self):
        with pytest.raises(KeyError, match="known"):
            figure_plan("fig7")

    def test_env_default_reaches_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "9")
        plan = figure_plan("fig4", m_values=(2,))
        assert plan[0].config.samples_per_bucket == 9


class TestDefaultSamples:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "7")
        assert default_samples() == 7

    def test_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAMPLES", raising=False)
        assert default_samples(33) == 33

    def test_invalid_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLES", "0")
        with pytest.raises(ValueError):
            default_samples()


class TestMiniatureRuns:
    def test_fig3_structure(self):
        result = fig3(samples=2, m_values=(2,))
        assert result.figure == "fig3"
        sweep = result.sweeps["m=2"]
        assert set(sweep.ratios) == set(FIG3_ALGORITHMS)
        assert sweep.buckets  # non-empty

    def test_fig6a_war_table(self):
        result = fig6a(samples=2, ph_values=(0.5,), m_values=(2,))
        assert (2, 0.5) in result.war
        table = result.war[(2, 0.5)]
        assert set(table) == set(FIG3_ALGORITHMS)
        assert all(0.0 <= v <= 1.0 for v in table.values())

    def test_run_figure_dispatch(self):
        result = run_figure("fig3", samples=1, m_values=(2,))
        assert result.figure == "fig3"
