"""Unit tests for the utilization-difference sensitivity experiment."""

import pytest

from repro.experiments.algorithms import get_algorithm
from repro.experiments.sensitivity import difference_sensitivity


@pytest.fixture(scope="module")
def small_result():
    algorithms = [
        get_algorithm("cu-udp-edf-vd"),
        get_algorithm("ca-nosort-f-f-edf-vd"),
    ]
    return difference_sensitivity(
        algorithms,
        m=2,
        squeeze_ratios=(0.0, 0.5, 1.0),
        samples=10,
        label="test-sens",
    )


class TestDifferenceSensitivity:
    def test_structure(self, small_result):
        assert small_result.ratios == [0.0, 0.5, 1.0]
        for curve in small_result.war.values():
            assert len(curve) == 3
            assert all(0.0 <= v <= 1.0 for v in curve)

    def test_heavier_lo_load_reduces_war(self, small_result):
        """Squeezing raises LO-mode load, so WAR cannot improve with r."""
        for curve in small_result.war.values():
            assert curve[0] >= curve[-1] - 1e-9

    def test_advantage_series(self, small_result):
        gaps = small_result.advantage("cu-udp-edf-vd", "ca-nosort-f-f-edf-vd")
        assert len(gaps) == 3

    def test_render_contains_algorithms(self, small_result):
        text = small_result.render()
        assert "cu-udp-edf-vd" in text
        assert "squeeze" in text

    def test_deterministic(self):
        algorithms = [get_algorithm("cu-udp-edf-vd")]
        a = difference_sensitivity(
            algorithms, m=2, squeeze_ratios=(0.0,), samples=5, label="d"
        )
        b = difference_sensitivity(
            algorithms, m=2, squeeze_ratios=(0.0,), samples=5, label="d"
        )
        assert a.war == b.war
