"""Batched sweep pipeline == scalar pipeline, shard for shard.

The headline guarantee of the columnar refactor: for every figure
configuration, the batched pipeline produces bit-identical sweep results
(ratios, WAR inputs, shard outcomes) and identical cache keys — the
pipeline is a throughput knob, never a semantics knob.
"""

from __future__ import annotations

import pytest

from repro.experiments.acceptance import (
    AcceptanceSweep,
    SweepConfig,
    settled_summary,
)
from repro.experiments.algorithms import get_algorithm
from repro.experiments.weighted import weighted_acceptance_ratio
from repro.runner import ShardCache, decompose_sweep, run_sweep, run_unit

#: Mini versions of the paper's figure configurations (every test family,
#: both deadline types, a degraded-service fig7 slice).
FIGURE_SLICES = [
    ("fig3", "implicit", ("ca-udp-edf-vd", "cu-udp-edf-vd"), "full-drop"),
    ("fig4", "implicit", ("cu-udp-ecdf", "eca-wu-f-ey"), "full-drop"),
    ("fig5", "constrained", ("cu-udp-amc", "cu-udp-ecdf"), "full-drop"),
    ("fig7a", "implicit", ("cu-udp-res-edf-vd",), "imprecise:0.5"),
    ("fig7b", "implicit", ("cu-udp-res-ey",), "elastic:2.0"),
]


def config_for(label, deadline_type, service, samples=4):
    return SweepConfig(
        label=label,
        m=2,
        deadline_type=deadline_type,
        samples_per_bucket=samples,
        service=service,
    )


class TestPipelineEquivalence:
    @pytest.mark.parametrize(
        "label,deadline_type,algorithms,service", FIGURE_SLICES
    )
    def test_bucket_outcomes_bit_identical(
        self, label, deadline_type, algorithms, service
    ):
        config = config_for(label, deadline_type, service)
        algos = [get_algorithm(name) for name in algorithms]
        scalar = AcceptanceSweep(config, pipeline="scalar")
        batched = AcceptanceSweep(config, pipeline="batched")
        for bucket, points in scalar.bucket_points().items():
            a = scalar.run_bucket(bucket, points, algos)
            b = batched.run_bucket(bucket, points, algos)
            # Dataclass equality covers bucket, samples and exact ratios.
            assert a == b
            assert a.ratios == b.ratios
            if b.samples:
                assert b.accepted is not None
                for name in a.ratios:
                    assert b.accepted[name] == round(
                        b.ratios[name] * b.samples
                    )

    def test_sweep_results_and_war_bit_identical(self):
        config = config_for("fig4", "implicit", "full-drop", samples=3)
        names = ["cu-udp-ecdf", "ca-f-f-ey"]
        scalar = run_sweep(config, names, pipeline="scalar")
        batched = run_sweep(config, names, pipeline="batched")
        assert scalar.buckets == batched.buckets
        assert scalar.samples == batched.samples
        assert scalar.ratios == batched.ratios
        for name in names:
            assert weighted_acceptance_ratio(
                scalar.buckets, scalar.ratios[name]
            ) == weighted_acceptance_ratio(batched.buckets, batched.ratios[name])

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ValueError, match="unknown pipeline"):
            AcceptanceSweep(
                config_for("fig3", "implicit", "full-drop"), pipeline="turbo"
            )


class TestCacheInteraction:
    def test_cache_keys_ignore_pipeline(self, tmp_path):
        config = config_for("fig3", "implicit", "full-drop")
        names = ("cu-udp-edf-vd",)
        cache = ShardCache(tmp_path)
        scalar_units = decompose_sweep(config, names, pipeline="scalar")
        batched_units = decompose_sweep(config, names, pipeline="batched")
        for a, b in zip(scalar_units, batched_units):
            assert cache.key(a) == cache.key(b)

    def test_shards_interchangeable_between_pipelines(self, tmp_path):
        config = config_for("fig3", "implicit", "full-drop")
        names = ("cu-udp-edf-vd",)
        cache = ShardCache(tmp_path)
        unit_b = decompose_sweep(config, names, pipeline="batched")[3]
        outcome = run_unit(unit_b)
        cache.store(unit_b, outcome)
        unit_s = decompose_sweep(config, names, pipeline="scalar")[3]
        loaded = cache.load(unit_s)
        assert loaded == outcome
        assert loaded.accepted == outcome.accepted  # counts survive the cache

    def test_settled_summary_aggregates(self):
        config = config_for("fig3", "implicit", "full-drop")
        sweep = AcceptanceSweep(config, pipeline="batched")
        algos = [get_algorithm("cu-udp-edf-vd")]
        outcomes = [
            sweep.run_bucket(bucket, points, algos)
            for bucket, points in sweep.bucket_points().items()
        ]
        summary = settled_summary(outcomes)
        assert "cu-udp-edf-vd" in summary
        total = sum(summary["cu-udp-edf-vd"].values())
        assert total == sum(o.samples for o in outcomes)
