"""Shared utilities: integer math, ASCII tables, RNG and env-knob handling.

These helpers are deliberately dependency-light; every other subpackage may
import from here without creating cycles.
"""

from repro.util.env import (
    m_values_from_env,
    obs_mode_from_env,
    positive_int_env,
    samples_from_env,
)
from repro.util.intmath import (
    ceil_div,
    floor_div,
    hyperperiod,
    is_integral,
    lcm_all,
)
from repro.util.rng import derive_rng, spawn_seed
from repro.util.tables import format_table

__all__ = [
    "ceil_div",
    "floor_div",
    "hyperperiod",
    "is_integral",
    "lcm_all",
    "derive_rng",
    "spawn_seed",
    "format_table",
    "positive_int_env",
    "samples_from_env",
    "m_values_from_env",
    "obs_mode_from_env",
]
