"""Minimal ASCII table rendering for experiment reports.

The evaluation harness reports the same rows/series the paper plots; with no
plotting dependency available the canonical output format is a monospace
table (also convenient inside pytest-benchmark logs).
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table"]


def _cell(value: object, floatfmt: str) -> str:
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    floatfmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted with ``floatfmt``; everything else with ``str``.
    Returns the table as a single string (no trailing newline).
    """
    rendered = [[_cell(v, floatfmt) for v in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in rendered:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)
