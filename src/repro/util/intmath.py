"""Integer arithmetic helpers used by the schedulability analyses.

All response-time and demand-bound computations in :mod:`repro.analysis` use
an integer time model (periods, execution times and deadlines are integers),
which keeps fixed-point iterations exact.  The helpers here centralise the
common ceiling/floor division and hyperperiod computations.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

__all__ = ["ceil_div", "floor_div", "lcm_all", "hyperperiod", "is_integral"]


def ceil_div(a: int, b: int) -> int:
    """Return ``ceil(a / b)`` for integers without float round-off.

    ``b`` must be positive.  ``a`` may be negative, in which case the result
    is the mathematical ceiling (e.g. ``ceil_div(-1, 2) == 0``).
    """
    if b <= 0:
        raise ValueError(f"ceil_div divisor must be positive, got {b}")
    return -((-a) // b)


def floor_div(a: int, b: int) -> int:
    """Return ``floor(a / b)`` for integers; ``b`` must be positive."""
    if b <= 0:
        raise ValueError(f"floor_div divisor must be positive, got {b}")
    return a // b


def lcm_all(values: Iterable[int]) -> int:
    """Least common multiple of all ``values`` (each must be positive)."""
    result = 1
    seen_any = False
    for value in values:
        seen_any = True
        if value <= 0:
            raise ValueError(f"lcm_all requires positive integers, got {value}")
        result = math.lcm(result, value)
    if not seen_any:
        raise ValueError("lcm_all requires at least one value")
    return result


def hyperperiod(periods: Iterable[int]) -> int:
    """Hyperperiod (LCM of periods) of a task set."""
    return lcm_all(periods)


def is_integral(value: float, tol: float = 1e-9) -> bool:
    """True when ``value`` is within ``tol`` of an integer."""
    return abs(value - round(value)) <= tol
