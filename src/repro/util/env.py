"""Validated parsing of the repo-wide environment knobs.

Two knobs control experiment scale everywhere (figures, benchmarks, CI):

* ``REPRO_SAMPLES`` — task sets per ``UB`` bucket (the paper used 1000).
* ``REPRO_M`` — comma-separated processor counts (the paper swept 2,4,8).

Six more tune the demand kernel of :mod:`repro.analysis.dbf`:

* ``REPRO_DBF_KERNEL`` — ``forward``, ``qpa`` (default), ``vec`` or
  ``block``: the demand-kernel stack used for violation searches and
  shrink descents.  ``forward``/``qpa``/``vec`` are bit-identical down
  to the descent *trajectory*; ``block`` commits multi-task shrinks in
  one step and is verdict-identical only (see
  :func:`repro.analysis.dbf.set_demand_kernel`).  The resolution order
  is instance (``set_demand_kernel``) > CLI (``--demand-kernel``) >
  this knob > default.
* ``REPRO_DBF_SPEC_K`` — speculation depth ``k`` of the ``vec`` kernel's
  speculative shrink descent (default 4): how many ranked candidates per
  descent assignment get their screens pre-evaluated in one batch.
  Pure cost/coverage trade — results never depend on it.
* ``REPRO_DBF_SCAN_CHUNK`` — breakpoint chunk size of the forward
  violation scan (default 4096).
* ``REPRO_DBF_APPROX_K`` — exact-step depth ``k`` of the Fisher–Baruah
  style dbf upper-bound screens (default 3); the screens stay sound for
  every positive ``k``, larger values trade screen cost for coverage.
* ``REPRO_DBF_RANK_VEC_MIN`` — candidate-count crossover at which the
  vec/block descent switches from the scalar ranking loop to the
  vectorized one (default 24).  Both rankings compute IEEE-identical
  sort keys, so this is a pure cost knob.
* ``REPRO_DBF_SCREEN_VALVE`` — the qpa accept-screen cost valve: after
  this many screen calls on one ``(task, assignment)`` scaffolding
  entry the qpa kernel stops screening and pays the exact probe
  (default 2).  Screens are accept-only, so any positive value is
  sound; the vec/block split screen ignores the valve (its marginal
  shot is O(k)).

Three configure the canonical verdict cache of
:mod:`repro.analysis.verdict_cache` (opt-in; default off):

* ``REPRO_VERDICT_CACHE`` — ``off`` (default) or ``on``: consult the
  canonical task-set verdict cache in ``partition()`` and
  ``run_tuning_stages`` before any descent runs.  Keys are order- and
  id-normalized, so identically-parameterized task sets submitted in a
  different order hit; the float folds inside the descent are order
  sensitive, which is why the cache is opt-in rather than the default.
* ``REPRO_VERDICT_CACHE_SIZE`` — in-process LRU capacity in entries
  (default 4096).
* ``REPRO_VERDICT_CACHE_DIR`` — directory for the optional persistent
  tier (a shard-store blob bucket); empty (default) keeps the cache
  purely in-process.

And one selects the observability recorder of :mod:`repro.obs`:

* ``REPRO_OBS`` — ``off`` (default, null recorder), ``metrics``
  (counters/gauges/histograms) or ``trace`` (metrics plus tracing spans
  for the Chrome-trace export).  Recording never changes results — it
  only decides what diagnostics are collected alongside them.

Three configure the durable telemetry plane of :mod:`repro.obs.journal`:

* ``REPRO_OBS_JOURNAL`` — path of the append-only JSONL event journal
  the conductor and every worker write; empty (default) disables the
  journal.  Like ``REPRO_OBS``, journaling never changes results.
* ``REPRO_OBS_JOURNAL_FLUSH`` — cadence in seconds of the periodic
  registry snapshots and worker heartbeat stamps journaled alongside the
  per-unit events (default 2.0).
* ``REPRO_OBS_STRAGGLER`` — straggler factor ``k`` for ``repro status``:
  an in-flight unit counts as a straggler once its age exceeds ``k`` ×
  the running shard-seconds p95 (default 4.0).

Four configure the campaign fabric of :mod:`repro.runner`:

* ``REPRO_RUNNER_BACKEND`` — ``serial``, ``pool`` or ``cluster``
  executor backend; empty (default) auto-selects from ``jobs`` exactly
  as before the backend layer existed.
* ``REPRO_RUNNER_STORE`` — ``fs`` (default, the two-level fan-out
  layout) or ``object`` (flat content-keyed bucket) shard-store layout.
* ``REPRO_RUNNER_HEARTBEAT`` — cluster worker heartbeat interval in
  seconds (default 2.0).
* ``REPRO_RUNNER_LEASE`` — cluster work-unit lease timeout in seconds
  (default 300.0); a unit not finished within its lease is re-dispatched.

This module is the single parsing/validation point; the figure defaults,
the benchmark harness and the analysis kernel all delegate here so a
malformed knob fails the same way everywhere.
"""

from __future__ import annotations

import os

__all__ = [
    "positive_int_env",
    "positive_float_env",
    "samples_from_env",
    "m_values_from_env",
    "scan_chunk_from_env",
    "approx_k_from_env",
    "demand_kernel_from_env",
    "spec_depth_from_env",
    "rank_vec_min_from_env",
    "screen_valve_from_env",
    "verdict_cache_from_env",
    "verdict_cache_size_from_env",
    "verdict_cache_dir_from_env",
    "obs_mode_from_env",
    "journal_path_from_env",
    "journal_flush_interval_from_env",
    "straggler_factor_from_env",
    "runner_backend_from_env",
    "runner_store_from_env",
    "heartbeat_interval_from_env",
    "lease_timeout_from_env",
]

#: Valid ``REPRO_OBS`` values, in increasing collection order.
OBS_MODES = ("off", "metrics", "trace")

#: Valid demand kernels, in increasing machinery order.  The first three
#: are trajectory-identical; ``block`` is verdict-identical only.
DBF_KERNELS = ("forward", "qpa", "vec", "block")

#: Valid executor backends, in increasing machinery order ("" = auto).
RUNNER_BACKENDS = ("serial", "pool", "cluster")

#: Valid shard-store layouts.
RUNNER_STORES = ("fs", "object")


def positive_int_env(name: str, fallback: int) -> int:
    """Read a positive integer from the environment, or ``fallback``.

    Raises :class:`ValueError` for non-integer or non-positive values —
    a silent fallback would make a typo look like a tiny run.
    """
    raw = os.environ.get(name, "")
    if not raw:
        return fallback
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def positive_float_env(name: str, fallback: float) -> float:
    """Read a positive float from the environment, or ``fallback``.

    Same contract as :func:`positive_int_env`: malformed values raise
    instead of silently running with a surprising timeout.
    """
    raw = os.environ.get(name, "")
    if not raw:
        return fallback
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def samples_from_env(fallback: int = 100) -> int:
    """Samples per ``UB`` bucket: ``REPRO_SAMPLES`` or ``fallback``."""
    return positive_int_env("REPRO_SAMPLES", fallback)


def scan_chunk_from_env(fallback: int = 4096) -> int:
    """Forward-scan chunk size: ``REPRO_DBF_SCAN_CHUNK`` or ``fallback``."""
    return positive_int_env("REPRO_DBF_SCAN_CHUNK", fallback)


def approx_k_from_env(fallback: int = 3) -> int:
    """Approximation-screen depth ``k``: ``REPRO_DBF_APPROX_K`` or ``fallback``."""
    return positive_int_env("REPRO_DBF_APPROX_K", fallback)


def demand_kernel_from_env(fallback: str = "qpa") -> str:
    """Demand kernel: ``REPRO_DBF_KERNEL`` or ``fallback``.

    Accepts exactly ``forward``, ``qpa``, ``vec`` or ``block``; anything
    else raises :class:`ValueError` — all four produce identical
    verdicts, but a typo must not silently run a benchmark on the wrong
    machinery.
    """
    raw = os.environ.get("REPRO_DBF_KERNEL", "")
    if not raw:
        return fallback
    if raw not in DBF_KERNELS:
        raise ValueError(
            f"REPRO_DBF_KERNEL must be one of {'|'.join(DBF_KERNELS)}, "
            f"got {raw!r}"
        )
    return raw


def spec_depth_from_env(fallback: int = 4) -> int:
    """Speculation depth ``k`` of the vec descent: ``REPRO_DBF_SPEC_K``."""
    return positive_int_env("REPRO_DBF_SPEC_K", fallback)


def rank_vec_min_from_env(fallback: int = 24) -> int:
    """Vectorized-ranking crossover: ``REPRO_DBF_RANK_VEC_MIN``.

    Below this many descent candidates the scalar ranking loop wins on
    numpy's fixed per-call overhead; at or above it the column ranking
    takes over.  Both compute identical sort keys — a pure cost knob.
    """
    return positive_int_env("REPRO_DBF_RANK_VEC_MIN", fallback)


def screen_valve_from_env(fallback: int = 2) -> int:
    """QPA accept-screen cost valve: ``REPRO_DBF_SCREEN_VALVE``.

    After this many screen calls on one scaffolding entry the qpa kernel
    stops screening and pays the exact probe.  Screens are accept-only,
    so every positive value is sound; larger values trade repeated
    screen cost for probe avoidance.
    """
    return positive_int_env("REPRO_DBF_SCREEN_VALVE", fallback)


def verdict_cache_from_env(fallback: str = "off") -> str:
    """Verdict-cache switch: ``REPRO_VERDICT_CACHE`` or ``fallback``.

    Accepts exactly ``off`` or ``on``.  Opt-in because the canonical
    (order-normalized) keys identify task sets up to reordering while
    the descent's float folds are order sensitive — the default keeps
    bit-for-bit reproducibility of unordered submissions.
    """
    raw = os.environ.get("REPRO_VERDICT_CACHE", "")
    if not raw:
        return fallback
    if raw not in ("off", "on"):
        raise ValueError(
            f"REPRO_VERDICT_CACHE must be off|on, got {raw!r}"
        )
    return raw


def verdict_cache_size_from_env(fallback: int = 4096) -> int:
    """In-process verdict-cache LRU capacity: ``REPRO_VERDICT_CACHE_SIZE``."""
    return positive_int_env("REPRO_VERDICT_CACHE_SIZE", fallback)


def verdict_cache_dir_from_env(fallback: str = "") -> str:
    """Persistent verdict-cache directory: ``REPRO_VERDICT_CACHE_DIR``.

    ``""`` means "in-process only".  A value naming an existing *file*
    raises — the persistent tier is a shard-store blob bucket rooted at
    a directory.
    """
    raw = os.environ.get("REPRO_VERDICT_CACHE_DIR", "")
    if not raw:
        return fallback
    if raw.strip() != raw or not raw.strip():
        raise ValueError(
            f"REPRO_VERDICT_CACHE_DIR must be a directory path, got {raw!r}"
        )
    if os.path.isfile(raw):
        raise ValueError(
            f"REPRO_VERDICT_CACHE_DIR must name a directory, not a file: {raw!r}"
        )
    return raw


def obs_mode_from_env(fallback: str = "off") -> str:
    """Observability mode: ``REPRO_OBS`` or ``fallback``.

    Accepts exactly ``off``, ``metrics`` or ``trace``; anything else
    raises :class:`ValueError` — a typo must not silently disable the
    diagnostics a run was supposed to collect.
    """
    raw = os.environ.get("REPRO_OBS", "")
    if not raw:
        return fallback
    if raw not in OBS_MODES:
        raise ValueError(
            f"REPRO_OBS must be one of {'|'.join(OBS_MODES)}, got {raw!r}"
        )
    return raw


def journal_path_from_env(fallback: str = "") -> str:
    """Event-journal path: ``REPRO_OBS_JOURNAL`` or ``fallback``.

    ``""`` means "no journal".  A value naming an existing *directory*
    raises — the journal is one JSONL file per campaign, and silently
    appending nothing while a campaign runs would defeat the whole
    point of durable telemetry.
    """
    raw = os.environ.get("REPRO_OBS_JOURNAL", "")
    if not raw:
        return fallback
    if raw.strip() != raw or not raw.strip():
        raise ValueError(
            f"REPRO_OBS_JOURNAL must be a file path, got {raw!r}"
        )
    if os.path.isdir(raw):
        raise ValueError(
            f"REPRO_OBS_JOURNAL must name a file, not a directory: {raw!r}"
        )
    return raw


def journal_flush_interval_from_env(fallback: float = 2.0) -> float:
    """Journal snapshot/heartbeat cadence (s): ``REPRO_OBS_JOURNAL_FLUSH``."""
    return positive_float_env("REPRO_OBS_JOURNAL_FLUSH", fallback)


def straggler_factor_from_env(fallback: float = 4.0) -> float:
    """Straggler factor ``k`` for ``repro status``: ``REPRO_OBS_STRAGGLER``.

    A unit in flight longer than ``k`` × the running shard-seconds p95 is
    flagged.  Values below 1 would flag faster-than-typical units, which
    is always a misconfiguration.
    """
    value = positive_float_env("REPRO_OBS_STRAGGLER", fallback)
    if value < 1.0:
        raise ValueError(
            f"REPRO_OBS_STRAGGLER must be >= 1 (k x p95 of shard seconds), "
            f"got {value}"
        )
    return value


def runner_backend_from_env(fallback: str = "") -> str:
    """Executor backend: ``REPRO_RUNNER_BACKEND`` or ``fallback``.

    ``""`` means "auto": pick ``pool`` or ``serial`` from the ``jobs``
    argument like the pre-fabric runner did.  Anything other than
    :data:`RUNNER_BACKENDS` raises — running a campaign on the wrong
    backend because of a typo would waste hours, not milliseconds.
    """
    raw = os.environ.get("REPRO_RUNNER_BACKEND", "")
    if not raw:
        return fallback
    if raw not in RUNNER_BACKENDS:
        raise ValueError(
            f"REPRO_RUNNER_BACKEND must be one of "
            f"{'|'.join(RUNNER_BACKENDS)}, got {raw!r}"
        )
    return raw


def runner_store_from_env(fallback: str = "fs") -> str:
    """Shard-store layout: ``REPRO_RUNNER_STORE`` or ``fallback``."""
    raw = os.environ.get("REPRO_RUNNER_STORE", "")
    if not raw:
        return fallback
    if raw not in RUNNER_STORES:
        raise ValueError(
            f"REPRO_RUNNER_STORE must be one of "
            f"{'|'.join(RUNNER_STORES)}, got {raw!r}"
        )
    return raw


def heartbeat_interval_from_env(fallback: float = 2.0) -> float:
    """Cluster heartbeat interval (s): ``REPRO_RUNNER_HEARTBEAT`` or ``fallback``."""
    return positive_float_env("REPRO_RUNNER_HEARTBEAT", fallback)


def lease_timeout_from_env(fallback: float = 300.0) -> float:
    """Cluster unit-lease timeout (s): ``REPRO_RUNNER_LEASE`` or ``fallback``."""
    return positive_float_env("REPRO_RUNNER_LEASE", fallback)


def m_values_from_env(fallback: tuple[int, ...] = (2, 4, 8)) -> tuple[int, ...]:
    """Processor counts to sweep: ``REPRO_M`` (comma-separated) or ``fallback``."""
    raw = os.environ.get("REPRO_M", "")
    if not raw:
        return fallback
    values = []
    for part in raw.split(","):
        part = part.strip()
        try:
            value = int(part)
        except ValueError:
            raise ValueError(
                f"REPRO_M must be comma-separated integers, got {raw!r}"
            ) from None
        if value <= 0:
            raise ValueError(f"REPRO_M entries must be positive, got {value}")
        values.append(value)
    if not values:
        raise ValueError(f"REPRO_M must name at least one processor count, got {raw!r}")
    return tuple(values)
