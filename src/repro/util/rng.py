"""Deterministic random-number handling for experiments.

Every experiment in :mod:`repro.experiments` is reproducible: the harness
derives an independent :class:`numpy.random.Generator` for each
(figure, processor count, utilization bucket, replicate) tuple, so results do
not depend on execution order or parallelism.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["spawn_seed", "derive_rng"]


def spawn_seed(*components: object) -> int:
    """Derive a stable 63-bit seed from arbitrary hashable components.

    The derivation uses SHA-256 over the ``repr`` of the components, so it is
    stable across processes and Python versions (unlike built-in ``hash``).
    """
    digest = hashlib.sha256(repr(components).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def derive_rng(*components: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded from ``components``."""
    return np.random.default_rng(spawn_seed(*components))
