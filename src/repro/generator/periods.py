"""Period synthesis: log-uniform integer periods.

Section IV of the paper draws periods log-uniformly at random from
``[10, 500]``, following Emberson, Stafford & Davis (WATERS 2010): sampling
``exp(U(log T_min, log T_max))`` spreads periods evenly across orders of
magnitude instead of clustering at the large end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["log_uniform_periods"]


def log_uniform_periods(
    rng: np.random.Generator,
    n: int,
    t_min: int = 10,
    t_max: int = 500,
) -> np.ndarray:
    """``n`` integer periods drawn log-uniformly from ``[t_min, t_max]``.

    Values are rounded to the nearest integer and clipped into the range, so
    the endpoints are attainable.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if not 0 < t_min <= t_max:
        raise ValueError(f"need 0 < t_min <= t_max, got [{t_min}, {t_max}]")
    raw = np.exp(rng.uniform(np.log(t_min), np.log(t_max), size=n))
    periods = np.rint(raw).astype(np.int64)
    return np.clip(periods, t_min, t_max)
