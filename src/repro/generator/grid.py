"""The paper's utilization parameter grid and ``UB`` bucketing.

Section IV sweeps normalized system utilizations over

* ``U_HH in {0.1, 0.2, ..., 0.9, 0.99}``,
* ``U_LH in {0.05, 0.15, ...}`` up to ``U_HH``,
* ``U_LL in {0.05, 0.15, ...}`` up to ``0.99 - U_LH``,

and reports acceptance ratios against the total normalized utilization
``UB = max(U_LH + U_LL, U_HH)``, generating 1000 task sets per ``UB`` value.
This module enumerates the grid and groups its points into ``UB`` buckets so
the experiment harness can sample task sets per bucket exactly as the paper
describes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GridPoint", "UtilizationGrid", "bucket_by_bound"]


@dataclass(frozen=True)
class GridPoint:
    """One (U_HH, U_LH, U_LL) combination of normalized utilizations."""

    u_hh: float
    u_lh: float
    u_ll: float

    @property
    def bound(self) -> float:
        """``UB = max(U_LH + U_LL, U_HH)``."""
        return max(self.u_lh + self.u_ll, self.u_hh)


def _frange(start: float, stop: float, step: float) -> list[float]:
    """Inclusive float range robust to accumulation error."""
    values = []
    k = 0
    while True:
        value = round(start + k * step, 10)
        if value > stop + 1e-9:
            break
        values.append(value)
        k += 1
    return values


class UtilizationGrid:
    """Enumerates the paper's grid (or a customized variant of it)."""

    def __init__(
        self,
        u_hh_values: tuple[float, ...] = (
            0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99,
        ),
        inner_step: float = 0.1,
        inner_start: float = 0.05,
        budget: float = 0.99,
    ):
        self.u_hh_values = tuple(u_hh_values)
        self.inner_step = inner_step
        self.inner_start = inner_start
        self.budget = budget

    def points(self) -> list[GridPoint]:
        """All grid combinations, in deterministic order."""
        out = []
        for u_hh in self.u_hh_values:
            for u_lh in _frange(self.inner_start, u_hh, self.inner_step):
                for u_ll in _frange(
                    self.inner_start, self.budget - u_lh, self.inner_step
                ):
                    out.append(GridPoint(u_hh, u_lh, u_ll))
        return out

    def buckets(self, width: float = 0.05) -> dict[float, list[GridPoint]]:
        """Grid points grouped into ``UB`` buckets of the given width."""
        return bucket_by_bound(self.points(), width)


def bucket_by_bound(
    points: list[GridPoint], width: float = 0.05
) -> dict[float, list[GridPoint]]:
    """Group ``points`` by ``UB`` rounded to the bucket grid.

    Keys are bucket centers (``round(UB / width) * width``), sorted
    ascending in the returned dict.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    buckets: dict[float, list[GridPoint]] = {}
    for point in points:
        key = round(round(point.bound / width) * width, 10)
        buckets.setdefault(key, []).append(point)
    return dict(sorted(buckets.items()))
