"""Fair dual-criticality task-set generator (Section IV of the paper).

Reimplements the generator of Ramanathan & Easwaran, "Evaluation of
Mixed-Criticality Scheduling Algorithms using a Fair Taskset Generator"
(WATERS 2016), as parameterized in the DATE 2017 paper:

* ``m`` processors; targets are the *normalized* system utilizations
  ``U_HH``, ``U_LH``, ``U_LL`` (multiplied by ``m`` to obtain raw sums);
* task count ``n`` uniform in ``[m+1, 5m]``; a fraction ``PH`` of tasks is
  HC (default 0.5, varied in Figure 6);
* individual utilizations in ``[u_min, u_max] = [0.001, 0.99]``, drawn with
  UUniFast-discard (randfixedsum fallback when rejection rates explode);
* HC tasks additionally satisfy ``u_i^L <= u_i^H`` with
  ``sum u_i^L = m * U_LH`` exactly;
* periods log-uniform in ``[10, 500]``; ``C = ceil(u * T)``; deadlines equal
  to periods (implicit) or uniform in ``[C^H, T]`` (constrained).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.model import TaskColumns, TaskSet, TaskSetBatch
from repro.generator.periods import log_uniform_periods
from repro.generator.uunifast import randfixedsum, uunifast_discard

__all__ = ["GeneratorConfig", "MCTaskSetGenerator"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the fair task-set generator (paper defaults)."""

    m: int = 2
    u_min: float = 0.001
    u_max: float = 0.99
    p_high: float = 0.5
    n_min: int | None = None  #: default m + 1
    n_max: int | None = None  #: default 5 * m
    t_min: int = 10
    t_max: int = 500
    deadline_type: str = "implicit"  #: "implicit" or "constrained"
    max_attempts: int = 64  #: resampling attempts before giving up
    #: when set, every generated LC task carries an explicit per-task
    #: degraded budget ``wcet_degraded = floor(degradation_factor * C^L)``
    #: for the degradation-aware service models (:mod:`repro.degradation`);
    #: None (the default) leaves the fields unset — bit-identical output
    degradation_factor: float | None = None

    def __post_init__(self) -> None:
        if self.m <= 0:
            raise ValueError(f"m must be positive, got {self.m}")
        if not 0 < self.u_min < self.u_max <= 1.0:
            raise ValueError(
                f"need 0 < u_min < u_max <= 1, got [{self.u_min}, {self.u_max}]"
            )
        if not 0.0 < self.p_high < 1.0:
            raise ValueError(f"p_high must be in (0, 1), got {self.p_high}")
        if self.deadline_type not in ("implicit", "constrained"):
            raise ValueError(
                "deadline_type must be 'implicit' or 'constrained', "
                f"got {self.deadline_type!r}"
            )
        if self.degradation_factor is not None and not (
            0.0 <= self.degradation_factor <= 1.0
        ):
            raise ValueError(
                f"degradation_factor must be in [0, 1], "
                f"got {self.degradation_factor}"
            )

    @property
    def task_count_range(self) -> tuple[int, int]:
        """Inclusive ``(n_min, n_max)`` with the paper's ``[m+1, 5m]`` default."""
        lo = self.n_min if self.n_min is not None else self.m + 1
        hi = self.n_max if self.n_max is not None else 5 * self.m
        if not 2 <= lo <= hi:
            raise ValueError(f"invalid task count range [{lo}, {hi}]")
        return lo, hi


@dataclass
class _Targets:
    """Raw (un-normalized) utilization targets for one task set."""

    hh: float
    lh: float
    ll: float
    n_high: int
    n_low: int


class MCTaskSetGenerator:
    """Generates dual-criticality task sets hitting exact utilization sums."""

    def __init__(self, config: GeneratorConfig | None = None, **kwargs):
        """Accepts a ready config or the config's keyword arguments."""
        if config is not None and kwargs:
            raise TypeError("pass either a GeneratorConfig or kwargs, not both")
        self.config = config if config is not None else GeneratorConfig(**kwargs)
        #: counters for diagnostics: generated sets, resampling retries and
        #: proportional LO/HI coupling fallbacks (see :meth:`_couple_lo_hi`)
        self.stats: dict[str, int] = {
            "generated": 0,
            "retries": 0,
            "coupling_fallbacks": 0,
        }

    # -- public API ---------------------------------------------------------
    def generate(
        self,
        rng: np.random.Generator,
        u_hh: float,
        u_lh: float,
        u_ll: float,
    ) -> TaskSet | None:
        """One task set with normalized targets ``(U_HH, U_LH, U_LL)``.

        Returns None when the targets are infeasible under the config (e.g.
        ``m * U_HH > n_max * u_max``) after ``max_attempts`` resamples.
        Target validation lives in :meth:`generate_columns`, the shared
        implementation.
        """
        columns = self.generate_columns(rng, u_hh, u_lh, u_ll)
        if columns is None:
            return None
        return columns.materialize()

    def generate_columns(
        self,
        rng: np.random.Generator,
        u_hh: float,
        u_lh: float,
        u_ll: float,
    ) -> TaskColumns | None:
        """Numeric columns of one task set — :meth:`generate` without the
        ``MCTask`` objects.

        Consumes the RNG stream exactly as :meth:`generate` does (the two
        share this implementation), so ``generate_columns(rng, ...)``
        followed by :meth:`TaskColumns.materialize` *is* ``generate`` —
        while batched consumers that settle a set from its columns alone
        (exact prefilters, the utilization-ledger replay) skip object
        construction entirely.
        """
        if not 0 <= u_lh <= u_hh:
            raise ValueError(f"need 0 <= U_LH <= U_HH, got {u_lh} > {u_hh}")
        if u_ll < 0:
            raise ValueError(f"U_LL must be non-negative, got {u_ll}")
        for _ in range(self.config.max_attempts):
            targets = self._draw_structure(rng, u_hh, u_lh, u_ll)
            if targets is None:
                self.stats["retries"] += 1
                continue
            columns = self._realize(rng, targets)
            if columns is not None:
                self.stats["generated"] += 1
                return columns
            self.stats["retries"] += 1
        return None

    def generate_batch(
        self,
        rngs: Iterable[np.random.Generator],
        u_hh: float,
        u_lh: float,
        u_ll: float,
        service_model=None,
    ) -> TaskSetBatch:
        """One columnar batch for the same targets, one derived RNG per set.

        Each stream is consumed exactly as one scalar :meth:`generate` call
        would consume it, so the batch holds — column for column — the task
        sets ``[self.generate(rng, u_hh, u_lh, u_ll) for rng in rngs]``
        would produce (failures are skipped, as in :meth:`generate_many`).
        Cross-set draws are *not* fused into one stream on purpose: the
        sweep harness derives an independent generator per replicate so
        shards stay order-independent and resumable, and the batch contract
        has to preserve that derivation to keep sweep results bit-identical.
        """
        columns = []
        for rng in rngs:
            cols = self.generate_columns(rng, u_hh, u_lh, u_ll)
            if cols is not None:
                columns.append(cols)
        return TaskSetBatch(columns, service_model=service_model)

    def generate_many(
        self,
        rng: np.random.Generator,
        u_hh: float,
        u_lh: float,
        u_ll: float,
        count: int,
    ) -> list[TaskSet]:
        """Up to ``count`` task sets for the same targets (skips failures)."""
        out = []
        for _ in range(count):
            ts = self.generate(rng, u_hh, u_lh, u_ll)
            if ts is not None:
                out.append(ts)
        return out

    # -- structure ------------------------------------------------------------
    def _draw_structure(
        self,
        rng: np.random.Generator,
        u_hh: float,
        u_lh: float,
        u_ll: float,
    ) -> _Targets | None:
        cfg = self.config
        hh, lh, ll = u_hh * cfg.m, u_lh * cfg.m, u_ll * cfg.m
        n_lo, n_hi = cfg.task_count_range
        n = int(rng.integers(n_lo, n_hi + 1))
        n_high = int(round(cfg.p_high * n))
        n_high = min(max(n_high, 1), n - 1)
        n_low = n - n_high
        feasible = (
            n_high * cfg.u_min <= hh <= n_high * cfg.u_max
            and n_high * cfg.u_min <= lh
            and n_low * cfg.u_min <= ll <= n_low * cfg.u_max
        )
        if not feasible:
            return None
        return _Targets(hh, lh, ll, n_high, n_low)

    # -- utilizations ------------------------------------------------------------
    def _draw_vector(
        self, rng: np.random.Generator, n: int, total: float, u_max: float
    ) -> np.ndarray | None:
        """One utilization vector in ``[u_min, u_max]^n`` summing to total."""
        cfg = self.config
        values = uunifast_discard(
            rng, n, total, cfg.u_min, u_max, max_attempts=100
        )
        if values is None:
            values = randfixedsum(rng, n, total, cfg.u_min, u_max)
        return values

    def _couple_lo_hi(
        self,
        rng: np.random.Generator,
        u_high: np.ndarray,
        lh: float,
    ) -> np.ndarray | None:
        """LO utilizations for HC tasks: sum ``lh`` and ``u_lo <= u_hi``.

        Tries unbiased random pairing first, then rank pairing (sort both
        descending), then the exact proportional fallback
        ``u_lo = u_hi * lh / sum(u_hi)``.
        """
        cfg = self.config
        n = len(u_high)
        for _ in range(20):
            u_low = self._draw_vector(rng, n, lh, cfg.u_max)
            if u_low is None:
                break
            if np.all(u_low <= u_high + 1e-12):
                return np.minimum(u_low, u_high)
            order_low = np.argsort(-u_low)
            order_high = np.argsort(-u_high)
            paired = np.empty(n)
            paired[order_high] = u_low[order_low]
            if np.all(paired <= u_high + 1e-12):
                return np.minimum(paired, u_high)
        self.stats["coupling_fallbacks"] += 1
        scale = lh / u_high.sum()
        if scale > 1.0 + 1e-12:
            return None
        return u_high * min(scale, 1.0)

    # -- realization -----------------------------------------------------------
    def _realize(self, rng: np.random.Generator, t: _Targets) -> TaskColumns | None:
        """Columnar realization of one structure draw (HC rows first).

        The execution-requirement columns are elementwise transcriptions of
        the historical per-task loop (IEEE multiply/``ceil``/``floor`` are
        correctly-rounded primitives, so array and scalar evaluation agree
        bit-for-bit), and the only RNG consumers — the utilization vectors,
        the period draw and the constrained-deadline draws — run in the
        loop's exact stream order.
        """
        cfg = self.config
        u_hi = self._draw_vector(rng, t.n_high, t.hh, cfg.u_max)
        if u_hi is None:
            return None
        u_lo_high = self._couple_lo_hi(rng, u_hi, t.lh)
        if u_lo_high is None:
            return None
        u_lo_low = self._draw_vector(rng, t.n_low, t.ll, cfg.u_max)
        if u_lo_low is None:
            return None

        n = t.n_high + t.n_low
        periods = log_uniform_periods(rng, n, cfg.t_min, cfg.t_max)
        periods_h = periods[: t.n_high]
        periods_l = periods[t.n_high :]
        c_lo_h = np.maximum(1, np.ceil(u_lo_high * periods_h)).astype(np.int64)
        c_hi_h = np.maximum(c_lo_h, np.ceil(u_hi * periods_h).astype(np.int64))
        c_lo_l = np.maximum(1, np.ceil(u_lo_low * periods_l)).astype(np.int64)

        wcet_lo = np.concatenate([c_lo_h, c_lo_l])
        wcet_hi = np.concatenate([c_hi_h, c_lo_l])
        if cfg.deadline_type == "implicit":
            deadline = periods.copy()
        else:
            # The bound of each task's deadline draw is its HI budget, so
            # the draws stay scalar, in task order — the historical stream.
            deadline = np.empty(n, dtype=np.int64)
            for i in range(n):
                deadline[i] = self._draw_deadline(
                    rng, int(wcet_hi[i]), int(periods[i])
                )

        factor = cfg.degradation_factor
        wcet_degraded = np.full(n, -1, dtype=np.int64)
        if factor is not None:
            wcet_degraded[t.n_high :] = np.floor(factor * c_lo_l).astype(np.int64)
        is_high = np.zeros(n, dtype=bool)
        is_high[: t.n_high] = True
        return TaskColumns(
            period=periods.astype(np.int64, copy=False),
            wcet_lo=wcet_lo,
            wcet_hi=wcet_hi,
            deadline=deadline,
            is_high=is_high,
            wcet_degraded=wcet_degraded,
            period_degraded=np.full(n, -1, dtype=np.int64),
        )

    def _draw_deadline(
        self, rng: np.random.Generator, wcet_hi: int, period: int
    ) -> int:
        if self.config.deadline_type == "implicit":
            return period
        return int(rng.integers(wcet_hi, period + 1))
