"""Fair dual-criticality task-set generator (Section IV of the paper).

Reimplements the generator of Ramanathan & Easwaran, "Evaluation of
Mixed-Criticality Scheduling Algorithms using a Fair Taskset Generator"
(WATERS 2016), as parameterized in the DATE 2017 paper:

* ``m`` processors; targets are the *normalized* system utilizations
  ``U_HH``, ``U_LH``, ``U_LL`` (multiplied by ``m`` to obtain raw sums);
* task count ``n`` uniform in ``[m+1, 5m]``; a fraction ``PH`` of tasks is
  HC (default 0.5, varied in Figure 6);
* individual utilizations in ``[u_min, u_max] = [0.001, 0.99]``, drawn with
  UUniFast-discard (randfixedsum fallback when rejection rates explode);
* HC tasks additionally satisfy ``u_i^L <= u_i^H`` with
  ``sum u_i^L = m * U_LH`` exactly;
* periods log-uniform in ``[10, 500]``; ``C = ceil(u * T)``; deadlines equal
  to periods (implicit) or uniform in ``[C^H, T]`` (constrained).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model import Criticality, MCTask, TaskSet
from repro.generator.periods import log_uniform_periods
from repro.generator.uunifast import randfixedsum, uunifast_discard

__all__ = ["GeneratorConfig", "MCTaskSetGenerator"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the fair task-set generator (paper defaults)."""

    m: int = 2
    u_min: float = 0.001
    u_max: float = 0.99
    p_high: float = 0.5
    n_min: int | None = None  #: default m + 1
    n_max: int | None = None  #: default 5 * m
    t_min: int = 10
    t_max: int = 500
    deadline_type: str = "implicit"  #: "implicit" or "constrained"
    max_attempts: int = 64  #: resampling attempts before giving up
    #: when set, every generated LC task carries an explicit per-task
    #: degraded budget ``wcet_degraded = floor(degradation_factor * C^L)``
    #: for the degradation-aware service models (:mod:`repro.degradation`);
    #: None (the default) leaves the fields unset — bit-identical output
    degradation_factor: float | None = None

    def __post_init__(self) -> None:
        if self.m <= 0:
            raise ValueError(f"m must be positive, got {self.m}")
        if not 0 < self.u_min < self.u_max <= 1.0:
            raise ValueError(
                f"need 0 < u_min < u_max <= 1, got [{self.u_min}, {self.u_max}]"
            )
        if not 0.0 < self.p_high < 1.0:
            raise ValueError(f"p_high must be in (0, 1), got {self.p_high}")
        if self.deadline_type not in ("implicit", "constrained"):
            raise ValueError(
                "deadline_type must be 'implicit' or 'constrained', "
                f"got {self.deadline_type!r}"
            )
        if self.degradation_factor is not None and not (
            0.0 <= self.degradation_factor <= 1.0
        ):
            raise ValueError(
                f"degradation_factor must be in [0, 1], "
                f"got {self.degradation_factor}"
            )

    @property
    def task_count_range(self) -> tuple[int, int]:
        """Inclusive ``(n_min, n_max)`` with the paper's ``[m+1, 5m]`` default."""
        lo = self.n_min if self.n_min is not None else self.m + 1
        hi = self.n_max if self.n_max is not None else 5 * self.m
        if not 2 <= lo <= hi:
            raise ValueError(f"invalid task count range [{lo}, {hi}]")
        return lo, hi


@dataclass
class _Targets:
    """Raw (un-normalized) utilization targets for one task set."""

    hh: float
    lh: float
    ll: float
    n_high: int
    n_low: int


class MCTaskSetGenerator:
    """Generates dual-criticality task sets hitting exact utilization sums."""

    def __init__(self, config: GeneratorConfig | None = None, **kwargs):
        """Accepts a ready config or the config's keyword arguments."""
        if config is not None and kwargs:
            raise TypeError("pass either a GeneratorConfig or kwargs, not both")
        self.config = config if config is not None else GeneratorConfig(**kwargs)
        #: counters for diagnostics: generated sets, resampling retries and
        #: proportional LO/HI coupling fallbacks (see :meth:`_couple_lo_hi`)
        self.stats: dict[str, int] = {
            "generated": 0,
            "retries": 0,
            "coupling_fallbacks": 0,
        }

    # -- public API ---------------------------------------------------------
    def generate(
        self,
        rng: np.random.Generator,
        u_hh: float,
        u_lh: float,
        u_ll: float,
    ) -> TaskSet | None:
        """One task set with normalized targets ``(U_HH, U_LH, U_LL)``.

        Returns None when the targets are infeasible under the config (e.g.
        ``m * U_HH > n_max * u_max``) after ``max_attempts`` resamples.
        """
        if not 0 <= u_lh <= u_hh:
            raise ValueError(f"need 0 <= U_LH <= U_HH, got {u_lh} > {u_hh}")
        if u_ll < 0:
            raise ValueError(f"U_LL must be non-negative, got {u_ll}")
        for _ in range(self.config.max_attempts):
            targets = self._draw_structure(rng, u_hh, u_lh, u_ll)
            if targets is None:
                self.stats["retries"] += 1
                continue
            taskset = self._realize(rng, targets)
            if taskset is not None:
                self.stats["generated"] += 1
                return taskset
            self.stats["retries"] += 1
        return None

    def generate_many(
        self,
        rng: np.random.Generator,
        u_hh: float,
        u_lh: float,
        u_ll: float,
        count: int,
    ) -> list[TaskSet]:
        """Up to ``count`` task sets for the same targets (skips failures)."""
        out = []
        for _ in range(count):
            ts = self.generate(rng, u_hh, u_lh, u_ll)
            if ts is not None:
                out.append(ts)
        return out

    # -- structure ------------------------------------------------------------
    def _draw_structure(
        self,
        rng: np.random.Generator,
        u_hh: float,
        u_lh: float,
        u_ll: float,
    ) -> _Targets | None:
        cfg = self.config
        hh, lh, ll = u_hh * cfg.m, u_lh * cfg.m, u_ll * cfg.m
        n_lo, n_hi = cfg.task_count_range
        n = int(rng.integers(n_lo, n_hi + 1))
        n_high = int(round(cfg.p_high * n))
        n_high = min(max(n_high, 1), n - 1)
        n_low = n - n_high
        feasible = (
            n_high * cfg.u_min <= hh <= n_high * cfg.u_max
            and n_high * cfg.u_min <= lh
            and n_low * cfg.u_min <= ll <= n_low * cfg.u_max
        )
        if not feasible:
            return None
        return _Targets(hh, lh, ll, n_high, n_low)

    # -- utilizations ------------------------------------------------------------
    def _draw_vector(
        self, rng: np.random.Generator, n: int, total: float, u_max: float
    ) -> np.ndarray | None:
        """One utilization vector in ``[u_min, u_max]^n`` summing to total."""
        cfg = self.config
        values = uunifast_discard(
            rng, n, total, cfg.u_min, u_max, max_attempts=100
        )
        if values is None:
            values = randfixedsum(rng, n, total, cfg.u_min, u_max)
        return values

    def _couple_lo_hi(
        self,
        rng: np.random.Generator,
        u_high: np.ndarray,
        lh: float,
    ) -> np.ndarray | None:
        """LO utilizations for HC tasks: sum ``lh`` and ``u_lo <= u_hi``.

        Tries unbiased random pairing first, then rank pairing (sort both
        descending), then the exact proportional fallback
        ``u_lo = u_hi * lh / sum(u_hi)``.
        """
        cfg = self.config
        n = len(u_high)
        for _ in range(20):
            u_low = self._draw_vector(rng, n, lh, cfg.u_max)
            if u_low is None:
                break
            if np.all(u_low <= u_high + 1e-12):
                return np.minimum(u_low, u_high)
            order_low = np.argsort(-u_low)
            order_high = np.argsort(-u_high)
            paired = np.empty(n)
            paired[order_high] = u_low[order_low]
            if np.all(paired <= u_high + 1e-12):
                return np.minimum(paired, u_high)
        self.stats["coupling_fallbacks"] += 1
        scale = lh / u_high.sum()
        if scale > 1.0 + 1e-12:
            return None
        return u_high * min(scale, 1.0)

    # -- realization -----------------------------------------------------------
    def _realize(self, rng: np.random.Generator, t: _Targets) -> TaskSet | None:
        cfg = self.config
        u_hi = self._draw_vector(rng, t.n_high, t.hh, cfg.u_max)
        if u_hi is None:
            return None
        u_lo_high = self._couple_lo_hi(rng, u_hi, t.lh)
        if u_lo_high is None:
            return None
        u_lo_low = self._draw_vector(rng, t.n_low, t.ll, cfg.u_max)
        if u_lo_low is None:
            return None

        n = t.n_high + t.n_low
        periods = log_uniform_periods(rng, n, cfg.t_min, cfg.t_max)
        tasks = []
        for i in range(t.n_high):
            period = int(periods[i])
            c_lo = max(1, int(np.ceil(u_lo_high[i] * period)))
            c_hi = max(c_lo, int(np.ceil(u_hi[i] * period)))
            deadline = self._draw_deadline(rng, c_hi, period)
            tasks.append(
                MCTask(
                    period=period,
                    criticality=Criticality.HC,
                    wcet_lo=c_lo,
                    wcet_hi=c_hi,
                    deadline=deadline,
                )
            )
        factor = cfg.degradation_factor
        for i in range(t.n_low):
            period = int(periods[t.n_high + i])
            c_lo = max(1, int(np.ceil(u_lo_low[i] * period)))
            deadline = self._draw_deadline(rng, c_lo, period)
            degraded = None if factor is None else int(np.floor(factor * c_lo))
            tasks.append(
                MCTask(
                    period=period,
                    criticality=Criticality.LC,
                    wcet_lo=c_lo,
                    wcet_hi=c_lo,
                    deadline=deadline,
                    wcet_degraded=degraded,
                )
            )
        return TaskSet(tasks)

    def _draw_deadline(
        self, rng: np.random.Generator, wcet_hi: int, period: int
    ) -> int:
        if self.config.deadline_type == "implicit":
            return period
        return int(rng.integers(wcet_hi, period + 1))
