"""Synthetic MC task-set generation (system S9 in DESIGN.md).

Implements the experiment setup of Section IV of the paper: the fair MC
task-set generator of Ramanathan & Easwaran (WATERS 2016) built on the
standard utilization-distribution techniques — UUniFast / UUniFast-discard
(Bini & Buttazzo) and Stafford's randfixedsum (Emberson, Stafford & Davis,
WATERS 2010) — with log-uniform periods.
"""

from repro.generator.grid import (
    GridPoint,
    UtilizationGrid,
    bucket_by_bound,
)
from repro.generator.mcgen import GeneratorConfig, MCTaskSetGenerator
from repro.generator.periods import log_uniform_periods
from repro.generator.uunifast import (
    randfixedsum,
    uunifast,
    uunifast_discard,
)

__all__ = [
    "GridPoint",
    "UtilizationGrid",
    "bucket_by_bound",
    "GeneratorConfig",
    "MCTaskSetGenerator",
    "log_uniform_periods",
    "randfixedsum",
    "uunifast",
    "uunifast_discard",
]
