"""Unbiased utilization-vector generators.

Three standard techniques used by the real-time systems community to draw
``n`` per-task utilizations summing to a target ``U``:

* :func:`uunifast` — Bini & Buttazzo's UUniFast: exact-sum, uniform over the
  simplex, but individual values may exceed 1 when ``U > 1``.
* :func:`uunifast_discard` — UUniFast with rejection of vectors containing a
  value outside ``[u_min, u_max]`` (Davis & Burns); this is the "standard
  technique ensuring a uniform distribution" referenced in Section IV of the
  paper.
* :func:`randfixedsum` — Stafford's algorithm (as popularized for task-set
  synthesis by Emberson, Stafford & Davis, WATERS 2010): uniform over the
  intersection of the simplex and the ``[u_min, u_max]^n`` box without
  rejection, preferable when rejection rates explode (``U`` close to
  ``n * u_max``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["uunifast", "uunifast_discard", "randfixedsum"]


def uunifast(rng: np.random.Generator, n: int, total: float) -> np.ndarray:
    """UUniFast: ``n`` non-negative values summing exactly to ``total``.

    Uniformly distributed over the ``(n-1)``-simplex scaled by ``total``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if n == 1:
        return np.asarray([total])
    # One batched draw replaces n-1 scalar generator calls.  Array filling
    # consumes the underlying bit stream in exactly the per-call order, so
    # the draws — and everything derived from them — are bit-identical to
    # the historical loop (asserted by the generator exactness tests).  The
    # arithmetic stays scalar: numpy's elementwise ``power`` is not
    # guaranteed ulp-identical to C ``pow``, and the fold below feeds each
    # step's rounding into the next.
    draws = rng.random(n - 1)
    values = np.empty(n)
    remaining = total
    for i in range(n - 1):
        nxt = remaining * float(draws[i]) ** (1.0 / (n - 1 - i))
        values[i] = remaining - nxt
        remaining = nxt
    values[n - 1] = remaining
    return values


def uunifast_discard(
    rng: np.random.Generator,
    n: int,
    total: float,
    u_min: float = 0.0,
    u_max: float = 1.0,
    max_attempts: int = 1000,
) -> np.ndarray | None:
    """UUniFast-discard: reject vectors with a value outside ``[u_min, u_max]``.

    Returns None when no feasible vector was found within ``max_attempts``
    (also immediately when the box is infeasible: ``total > n*u_max`` or
    ``total < n*u_min``).
    """
    if total > n * u_max + 1e-12 or total < n * u_min - 1e-12:
        return None
    for _ in range(max_attempts):
        values = uunifast(rng, n, total)
        if values.max(initial=0.0) <= u_max and values.min(initial=1.0) >= u_min:
            return values
    return None


def randfixedsum(
    rng: np.random.Generator,
    n: int,
    total: float,
    u_min: float = 0.0,
    u_max: float = 1.0,
) -> np.ndarray | None:
    """Stafford's randfixedsum restricted to ``[u_min, u_max]^n``.

    Draws a vector uniformly from the set
    ``{u in [u_min, u_max]^n : sum(u) = total}`` without rejection.
    Returns None when that set is empty.

    Implementation follows the published MATLAB ``randfixedsum`` (Roger
    Stafford, 2006) specialized to a single output vector, after an affine
    map of the box to ``[0, 1]^n``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if u_max < u_min:
        raise ValueError(f"u_max ({u_max}) < u_min ({u_min})")
    width = u_max - u_min
    if width <= 0:
        if abs(total - n * u_min) <= 1e-12:
            return np.full(n, u_min)
        return None
    # Map to s = sum of n values in [0, 1].
    s = (total - n * u_min) / width
    if s < -1e-12 or s > n + 1e-12:
        return None
    s = min(max(s, 0.0), float(n))
    if n == 1:
        return np.asarray([u_min + s * width])

    k = int(min(max(np.floor(s), 0), n - 1))
    s = max(k, min(s, k + 1))
    s1 = s - np.arange(k, k - n, -1)
    s2 = np.arange(k + n, k, -1) - s

    tiny = np.finfo(float).tiny
    huge = np.finfo(float).max
    w = np.zeros((n, n + 1))
    w[0, 1] = huge
    t = np.zeros((n - 1, n))
    for i in range(2, n + 1):
        tmp1 = w[i - 2, 1 : i + 1] * s1[: i] / i
        tmp2 = w[i - 2, 0:i] * s2[n - i : n] / i
        w[i - 1, 1 : i + 1] = tmp1 + tmp2
        tmp3 = w[i - 1, 1 : i + 1] + tiny
        tmp4 = s2[n - i : n] > s1[: i]
        t[i - 2, 0:i] = (tmp2 / tmp3) * tmp4 + (1 - tmp1 / tmp3) * (~tmp4)

    x = np.zeros(n + 1)
    rt = rng.random(n - 1)
    rs = rng.random(n - 1)
    j = k + 1
    sm = 0.0
    pr = 1.0
    for i in range(n - 1, 0, -1):
        e = float(rt[n - 1 - i] <= t[i - 1, j - 1])
        sx = rs[n - 1 - i] ** (1.0 / i)
        sm += (1.0 - sx) * pr * s / (i + 1)
        pr *= sx
        x[n - 1 - i] = sm + pr * e
        s = s - e
        j = j - int(e)
    x[n - 1] = sm + pr * s

    # Random permutation for exchangeability, then map back to the box.
    values = x[:n]
    rng.shuffle(values)
    result = u_min + values * width
    # Guard against round-off drifting outside the box.
    np.clip(result, u_min, u_max, out=result)
    drift = total - result.sum()
    if abs(drift) > 1e-9:
        # Spread residual drift over entries with headroom.
        order = np.argsort(result) if drift > 0 else np.argsort(-result)
        for idx in order:
            room = (u_max - result[idx]) if drift > 0 else (result[idx] - u_min)
            adjust = np.sign(drift) * min(abs(drift), room)
            result[idx] += adjust
            drift -= adjust
            if abs(drift) <= 1e-12:
                break
    return result
