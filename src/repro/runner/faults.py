"""Env-triggered fault injection for cluster workers (tests/benchmarks).

The fault-tolerance claims of :class:`~repro.runner.cluster.
ClusterBackend` — lease re-dispatch, heartbeat liveness, exactly-once
merge — are only worth anything if they are exercised by *real* worker
deaths.  This module gives the cluster worker entry point a hook that
kills or hangs it mid-shard, driven entirely by environment variables so
the injected process needs no cooperation from the code under test:

* ``REPRO_RUNNER_FAULT`` — the fault spec, ``<action>:<selector>``:

  - actions: ``crash`` (``SIGKILL`` to self — indistinguishable from the
    OOM killer) or ``hang`` (sleep far past any lease timeout);
  - selectors: ``all`` (every unit), ``bucket=<float>`` (units for one
    ``UB`` bucket), ``rate=<p>`` (a deterministic pseudo-random fraction
    ``p`` of units, keyed on the unit's content hash so every process
    agrees which units are doomed).

* ``REPRO_RUNNER_FAULT_DIR`` — when set, each (unit, action) faults *at
  most once*, coordinated through atomically-created marker files in
  this directory; the re-dispatched attempt then succeeds.  Unset, the
  fault fires every time — that is how the give-up path
  (:class:`~repro.runner.executor.WorkerCrashError`) is tested.

Parsing is validated loudly (a typo must not silently un-inject a fault
the test relies on), and the spec is re-read per unit so fork-inherited
module state can never pin a stale spec.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from repro.runner.store import unit_key
from repro.runner.units import WorkUnit

__all__ = ["FaultSpec", "parse_fault_spec", "fault_spec_from_env", "maybe_inject"]

_ACTIONS = ("crash", "hang")

#: How long a "hung" worker sleeps — effectively forever next to any
#: sane lease timeout; the parent reclaims the lease and kills us first.
HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: what to do and which units it hits."""

    action: str  #: ``crash`` or ``hang``
    selector: str  #: ``all`` / ``bucket`` / ``rate``
    value: float = 0.0  #: bucket center or rate, per selector

    def matches(self, unit: WorkUnit, key: str) -> bool:
        if self.selector == "all":
            return True
        if self.selector == "bucket":
            return abs(unit.bucket - self.value) < 1e-9
        # rate: the unit's content hash is uniform, stable across
        # processes and hosts — every worker agrees on the doomed set.
        return int(key[:8], 16) / 0xFFFFFFFF < self.value


def parse_fault_spec(raw: str) -> FaultSpec:
    """Parse ``<action>:<selector>`` (see module docstring); raise on typos."""
    action, sep, rest = raw.partition(":")
    if action not in _ACTIONS or not sep:
        raise ValueError(
            f"fault spec must be <{'|'.join(_ACTIONS)}>:<selector>, got {raw!r}"
        )
    if rest == "all":
        return FaultSpec(action, "all")
    kind, sep, value = rest.partition("=")
    if kind in ("bucket", "rate") and sep:
        try:
            number = float(value)
        except ValueError:
            raise ValueError(
                f"fault selector {kind}= needs a number, got {value!r}"
            ) from None
        if kind == "rate" and not 0.0 <= number <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {number}")
        return FaultSpec(action, kind, number)
    raise ValueError(
        f"unknown fault selector {rest!r}; use all, bucket=<UB> or rate=<p>"
    )


def fault_spec_from_env() -> FaultSpec | None:
    """The active fault spec, or ``None`` when ``REPRO_RUNNER_FAULT`` is unset."""
    raw = os.environ.get("REPRO_RUNNER_FAULT", "")
    return parse_fault_spec(raw) if raw else None


def _claim_once_marker(key: str, action: str) -> bool:
    """Whether this (unit, action) may still fault.

    With no marker directory configured, always yes (the fault repeats).
    Otherwise the first process to atomically create the marker file gets
    to fault; everyone after — in particular the re-dispatched attempt —
    runs the unit normally.
    """
    marker_dir = os.environ.get("REPRO_RUNNER_FAULT_DIR", "")
    if not marker_dir:
        return True
    os.makedirs(marker_dir, exist_ok=True)
    marker = os.path.join(marker_dir, f"{key}.{action}")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def maybe_inject(unit: WorkUnit) -> None:
    """Crash or hang the calling process if the env says this unit is doomed.

    Called by the cluster worker entry point right after claiming a unit
    — i.e. mid-shard from the parent's point of view: the lease exists,
    the outcome does not.
    """
    spec = fault_spec_from_env()
    if spec is None:
        return
    key = unit_key(unit)
    if not spec.matches(unit, key) or not _claim_once_marker(key, spec.action):
        return
    if spec.action == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(HANG_SECONDS)  # pragma: no cover - the parent SIGKILLs us
