"""Shard execution through the campaign fabric.

The contract, relied on by the equivalence tests: for a fixed config and
algorithm list, :func:`run_sweep` returns a result **bit-identical** to
``AcceptanceSweep(config).run(...)`` no matter the executor backend, the
job count, the shard store's state, or the order workers finish in.
Determinism comes for free from the per-replicate RNG derivation (see
:mod:`repro.util.rng`); this module only has to preserve unit identity
and merge in bucket order.

The heavy lifting lives one layer down: :mod:`repro.runner.executor`
defines the ``ExecutorBackend`` protocol (serial / pool / cluster — the
latter in :mod:`repro.runner.cluster`) and :mod:`repro.runner.store` the
``ShardStore`` persistence interface.  This module is the conductor:
load what the store already has, hand the rest to a backend, absorb obs
payloads, record outcomes and progress.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro import obs
from repro.obs import clock
from repro.obs.journal import active_journal
from repro.experiments.acceptance import (
    BucketOutcome,
    SweepConfig,
    SweepResult,
    merge_outcomes,
)
from repro.runner.executor import (
    ExecutorBackend,
    FabricObserver,
    default_jobs,
    resolve_backend,
)
from repro.runner.store import unit_key
from repro.runner.units import WorkUnit, decompose_sweep
from repro.util.env import journal_flush_interval_from_env

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.progress import ProgressReporter
    from repro.runner.store import ShardStore

__all__ = ["default_jobs", "execute_units", "run_sweep"]


def execute_units(
    units: Sequence[WorkUnit],
    *,
    jobs: int = 1,
    cache: "ShardStore | None" = None,
    progress: "ProgressReporter | None" = None,
    backend: "str | ExecutorBackend | None" = None,
) -> list[BucketOutcome]:
    """Run every unit, preferring stored shards, and return them in order.

    ``backend`` picks the executor (``"serial"`` / ``"pool"`` /
    ``"cluster"``, a ready instance, or ``None`` to consult
    ``REPRO_RUNNER_BACKEND`` and fall back to the historical auto rule:
    in-process serial unless ``jobs > 1``).  Every backend produces
    bit-identical outcomes; the serial path is what the others are
    verified against.

    With ``REPRO_OBS_JOURNAL`` set, the conductor journals the sweep's
    shape (``sweep-start`` with unit/cached counts), each merged outcome
    (``done``) and a registry ``snapshot`` every journal-flush interval —
    all observe-only: outcomes, cache writes and merge order are
    untouched, which the journal differential suite asserts.
    """
    if progress is not None:
        progress.add_total(len(units))

    outcomes: list[BucketOutcome | None] = [None] * len(units)
    pending: list[int] = []
    for idx, unit in enumerate(units):
        cached = cache.load(unit) if cache is not None else None
        if cached is not None:
            outcomes[idx] = cached
            if progress is not None:
                progress.unit_done(cached=True)
        else:
            pending.append(idx)

    journal = active_journal()
    if journal is not None and units:
        config = units[0].config
        journal.emit(
            "sweep-start",
            label=config.label,
            m=config.m,
            units=len(units),
            cached=len(units) - len(pending),
            pending=len(pending),
        )

    def record(idx: int, outcome: BucketOutcome) -> None:
        outcomes[idx] = outcome
        if cache is not None:
            cache.store(units[idx], outcome)
        if progress is not None:
            progress.unit_done()

    if pending:
        flush_every = journal_flush_interval_from_env()
        last_snapshot = clock.monotonic()
        executor = resolve_backend(
            backend,
            jobs=jobs,
            pending=len(pending),
            observer=FabricObserver(progress),
        )
        executor.submit([units[i] for i in pending])
        try:
            for result in executor.as_completed():
                if result.payload is not None:
                    obs.absorb_payload(result.payload)
                record(pending[result.pos], result.outcome)
                if journal is not None:
                    unit = units[pending[result.pos]]
                    journal.emit(
                        "done",
                        key=unit_key(unit),
                        label=unit.config.label,
                        m=unit.config.m,
                        bucket=unit.bucket,
                    )
                    now = clock.monotonic()
                    if now - last_snapshot >= flush_every:
                        journal.emit("snapshot", registry=obs.snapshot())
                        last_snapshot = now
        finally:
            executor.shutdown()

    if journal is not None and units:
        config = units[0].config
        journal.emit("sweep-done", label=config.label, m=config.m)
    return [outcome for outcome in outcomes if outcome is not None]


def run_sweep(
    config: SweepConfig,
    algorithm_names: Sequence[str],
    *,
    jobs: int = 1,
    cache: "ShardStore | None" = None,
    progress: "ProgressReporter | None" = None,
    pipeline: str = "batched",
    backend: "str | ExecutorBackend | None" = None,
    diagnostics: list | None = None,
) -> SweepResult:
    """One full acceptance sweep through the shard runner.

    ``pipeline`` picks the shard execution path (columnar ``"batched"`` or
    per-taskset ``"scalar"``) and ``backend`` the executor; results and
    cache identities are the same under every combination — see
    :mod:`repro.experiments.acceptance` and :mod:`repro.runner.executor`.
    When a ``diagnostics`` list is passed, the raw per-bucket outcomes are
    appended to it so callers can render the settled-by report
    (:func:`~repro.experiments.acceptance.settled_summary`); the demand-
    kernel half (:func:`~repro.experiments.acceptance.kernel_summary`)
    reads the obs registry, which the shard runs populate either way.
    """
    names = list(algorithm_names)
    units = decompose_sweep(config, names, pipeline=pipeline)
    with obs.span("sweep", label=config.label, m=config.m):
        outcomes = execute_units(
            units, jobs=jobs, cache=cache, progress=progress, backend=backend
        )
    if diagnostics is not None:
        diagnostics.extend(outcomes)
    return merge_outcomes(config, names, outcomes)
