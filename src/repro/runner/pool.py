"""Shard execution: serial or across a ``multiprocessing`` pool.

The contract, relied on by the equivalence tests: for a fixed config and
algorithm list, :func:`run_sweep` returns a result **bit-identical** to
``AcceptanceSweep(config).run(...)`` no matter the job count, the cache
state, or the order workers finish in.  Determinism comes for free from
the per-replicate RNG derivation (see :mod:`repro.util.rng`); this module
only has to preserve unit identity and merge in bucket order.

Observability rides the same wire: every pool worker clears the process
:data:`repro.obs.REGISTRY` before a unit and ships its contribution back
next to the outcome (:func:`repro.obs.capture_payload`), and the parent
folds payloads in associatively — so counters, histograms and (under
``REPRO_OBS=trace``) spans survive multiprocessing with the same totals a
serial run reports.  Payloads are always shipped, because the demand-kernel
counters behind the CLI ``--pipeline`` diagnostics predate the ``REPRO_OBS``
knob and must keep working with it off; everything gated stays near-free.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import TYPE_CHECKING, Sequence

from repro import obs
from repro.obs import clock
from repro.experiments.acceptance import (
    BucketOutcome,
    SweepConfig,
    SweepResult,
    merge_outcomes,
)
from repro.runner.units import WorkUnit, decompose_sweep, run_unit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.cache import ShardCache
    from repro.runner.progress import ProgressReporter

__all__ = ["default_jobs", "execute_units", "run_sweep"]


def default_jobs() -> int:
    """A sensible worker count for ``--jobs 0`` (\"use the machine\")."""
    return max(1, len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (os.cpu_count() or 1))


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork keeps worker start-up negligible next to shard runtimes; fall
    # back to spawn where fork does not exist (Windows).
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _timed_unit(unit: WorkUnit) -> BucketOutcome:
    """Run one unit under a ``shard`` span, feeding the latency histogram.

    On Linux ``fork`` workers CLOCK_MONOTONIC is system-wide, so worker
    span timestamps land on the same trace axis as the parent's.
    """
    start = clock.monotonic()
    with obs.span(
        "shard", label=unit.config.label, m=unit.config.m, bucket=unit.bucket
    ):
        outcome = run_unit(unit)
    if obs.active():
        obs.REGISTRY.observe("runner.shard-seconds", clock.monotonic() - start)
    return outcome


def _run_unit_observed(unit: WorkUnit) -> tuple[BucketOutcome, dict]:
    """Pool-worker entry point: the outcome plus this unit's obs payload.

    Clearing first makes the payload exactly the unit's contribution, so
    the parent can absorb payloads in any completion order without double
    counting (registry merge is associative and commutative).
    """
    obs.clear()
    outcome = _timed_unit(unit)
    return outcome, obs.capture_payload()


def execute_units(
    units: Sequence[WorkUnit],
    *,
    jobs: int = 1,
    cache: "ShardCache | None" = None,
    progress: "ProgressReporter | None" = None,
) -> list[BucketOutcome]:
    """Run every unit, preferring cached shards, and return them in order.

    ``jobs <= 1`` stays entirely in-process (no pool, no pickling) —
    that path is what the parallel paths are verified against.
    """
    if progress is not None:
        progress.add_total(len(units))

    outcomes: list[BucketOutcome | None] = [None] * len(units)
    pending: list[int] = []
    for idx, unit in enumerate(units):
        cached = cache.load(unit) if cache is not None else None
        if cached is not None:
            outcomes[idx] = cached
            if progress is not None:
                progress.unit_done(cached=True)
        else:
            pending.append(idx)

    def record(idx: int, outcome: BucketOutcome) -> None:
        outcomes[idx] = outcome
        if cache is not None:
            cache.store(units[idx], outcome)
        if progress is not None:
            progress.unit_done()

    if jobs > 1 and len(pending) > 1:
        workers = min(jobs, len(pending))
        busy = 0.0
        started = clock.monotonic()
        with _pool_context().Pool(processes=workers) as pool:
            computed = pool.imap(
                _run_unit_observed, [units[i] for i in pending], chunksize=1
            )
            for idx, (outcome, payload) in zip(pending, computed):
                busy += _payload_busy_seconds(payload)
                obs.absorb_payload(payload)
                record(idx, outcome)
        if obs.active():
            wall = clock.monotonic() - started
            if wall > 0:
                obs.REGISTRY.set_gauge(
                    "runner.worker-utilization",
                    min(1.0, busy / (workers * wall)),
                )
    else:
        for idx in pending:
            record(idx, _timed_unit(units[idx]))

    return [outcome for outcome in outcomes if outcome is not None]


def _payload_busy_seconds(payload: dict) -> float:
    """Worker-side shard seconds carried by one obs payload (0.0 when the
    worker recorded none, i.e. recording is off)."""
    histograms = payload.get("registry", {}).get("histograms", {})
    state = histograms.get("runner.shard-seconds")
    return float(state["total"]) if state else 0.0


def run_sweep(
    config: SweepConfig,
    algorithm_names: Sequence[str],
    *,
    jobs: int = 1,
    cache: "ShardCache | None" = None,
    progress: "ProgressReporter | None" = None,
    pipeline: str = "batched",
    diagnostics: list | None = None,
) -> SweepResult:
    """One full acceptance sweep through the shard runner.

    ``pipeline`` picks the shard execution path (columnar ``"batched"`` or
    per-taskset ``"scalar"``); results and cache identities are the same
    either way — see :mod:`repro.experiments.acceptance`.  When a
    ``diagnostics`` list is passed, the raw per-bucket outcomes are
    appended to it so callers can render the settled-by report
    (:func:`~repro.experiments.acceptance.settled_summary`); the demand-
    kernel half (:func:`~repro.experiments.acceptance.kernel_summary`)
    reads the obs registry, which the shard runs populate either way.
    """
    names = list(algorithm_names)
    units = decompose_sweep(config, names, pipeline=pipeline)
    with obs.span("sweep", label=config.label, m=config.m):
        outcomes = execute_units(
            units, jobs=jobs, cache=cache, progress=progress
        )
    if diagnostics is not None:
        diagnostics.extend(outcomes)
    return merge_outcomes(config, names, outcomes)
