"""Declarative experiment campaigns: many figures, one resumable run.

A :class:`CampaignSpec` names the figures to reproduce (with optional
per-figure scale overrides); :func:`run_campaign` executes every sweep
through the shard runner, persists each figure under ``out_dir`` via
:mod:`repro.experiments.export`, and keeps every shard in a
content-addressed cache so an interrupted or repeated campaign only pays
for shards it has never computed.  A ``campaign.json`` manifest records
what was produced and how much came from cache.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import obs
from repro.obs.journal import emit_open, journal_env
from repro.experiments.export import save_figure_result
from repro.experiments.figures import FIGURES, PAPER_FIGURES, run_figure
from repro.runner.executor import ExecutorBackend
from repro.runner.progress import ProgressReporter
from repro.runner.store import create_store
from repro.util.env import runner_backend_from_env, runner_store_from_env

__all__ = ["FigureJob", "CampaignSpec", "CampaignReport", "run_campaign"]


@dataclass(frozen=True)
class FigureJob:
    """One figure to reproduce, with optional scale overrides."""

    figure: str
    samples: int | None = None
    m_values: tuple[int, ...] | None = None
    ph_values: tuple[float, ...] | None = None
    #: degradation-level overrides (rho for fig7a, lambda for fig7b)
    deg_values: tuple[float, ...] | None = None
    key: str = ""  #: output stem; defaults to the figure name

    def __post_init__(self):
        if self.figure not in FIGURES:
            known = ", ".join(sorted(FIGURES))
            raise ValueError(f"unknown figure {self.figure!r}; known: {known}")
        if self.ph_values is not None and self.figure not in ("fig6a", "fig6b"):
            raise ValueError(f"{self.figure} does not sweep PH values")
        if self.deg_values is not None and self.figure not in ("fig7a", "fig7b"):
            raise ValueError(f"{self.figure} does not sweep degradation values")
        if not self.key:
            object.__setattr__(self, "key", self.figure)

    def run_kwargs(self) -> dict[str, Any]:
        kwargs: dict[str, Any] = {"samples": self.samples}
        if self.m_values is not None:
            kwargs["m_values"] = self.m_values
        if self.ph_values is not None:
            kwargs["ph_values"] = self.ph_values
        if self.deg_values is not None:
            kwargs["deg_values"] = self.deg_values
        return kwargs

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"figure": self.figure, "key": self.key}
        if self.samples is not None:
            data["samples"] = self.samples
        if self.m_values is not None:
            data["m_values"] = list(self.m_values)
        if self.ph_values is not None:
            data["ph_values"] = list(self.ph_values)
        if self.deg_values is not None:
            data["deg_values"] = list(self.deg_values)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FigureJob":
        return cls(
            figure=data["figure"],
            samples=data.get("samples"),
            m_values=tuple(data["m_values"]) if "m_values" in data else None,
            ph_values=tuple(data["ph_values"]) if "ph_values" in data else None,
            deg_values=tuple(data["deg_values"]) if "deg_values" in data else None,
            key=data.get("key", ""),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A named set of figure jobs (the paper's full evaluation by default)."""

    name: str
    figures: tuple[FigureJob, ...]

    def __post_init__(self):
        if not self.figures:
            raise ValueError("a campaign needs at least one figure job")
        keys = [job.key for job in self.figures]
        duplicates = {key for key in keys if keys.count(key) > 1}
        if duplicates:
            raise ValueError(
                f"duplicate output keys {sorted(duplicates)}; give jobs "
                f"sharing a figure distinct 'key' values"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "figures": [job.to_dict() for job in self.figures],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignSpec":
        return cls(
            name=data["name"],
            figures=tuple(FigureJob.from_dict(j) for j in data["figures"]),
        )

    @classmethod
    def from_json_file(cls, path: str | Path) -> "CampaignSpec":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    @classmethod
    def paper_evaluation(cls, samples: int | None = None) -> "CampaignSpec":
        """Every figure of the paper at uniform scale.

        Covers the paper's own figures only; the degradation extension
        sweeps run on request (``--figures fig7a,fig7b`` or
        :meth:`degradation_extension`).
        """
        return cls(
            name="paper-evaluation",
            figures=tuple(
                FigureJob(name, samples=samples) for name in PAPER_FIGURES
            ),
        )

    @classmethod
    def degradation_extension(cls, samples: int | None = None) -> "CampaignSpec":
        """The LO-service degradation sweeps (fig7a: imprecise budgets vs
        rho, fig7b: elastic periods vs lambda)."""
        return cls(
            name="degradation-extension",
            figures=(
                FigureJob("fig7a", samples=samples),
                FigureJob("fig7b", samples=samples),
            ),
        )


@dataclass
class CampaignReport:
    """What a campaign run produced and what it cost."""

    spec: CampaignSpec
    outputs: dict[str, Path] = field(default_factory=dict)
    shards_computed: int = 0
    shards_cached: int = 0
    backend: str = "auto"
    store: str = "fs"

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "outputs": {key: str(path) for key, path in self.outputs.items()},
            "shards_computed": self.shards_computed,
            "shards_cached": self.shards_cached,
            "backend": self.backend,
            "store": self.store,
        }


def run_campaign(
    spec: CampaignSpec,
    out_dir: str | Path,
    *,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    progress: ProgressReporter | None = None,
    pipeline: str = "batched",
    backend: "str | ExecutorBackend | None" = None,
    store: str | None = None,
    journal: str | Path | None = None,
) -> CampaignReport:
    """Execute ``spec``, writing one ``<key>.json`` per figure job.

    The shard store defaults to ``<out_dir>/cache`` so simply re-running
    the same command resumes/finishes an interrupted campaign; point
    ``cache_dir`` at shared storage to pool shards across campaigns and
    hosts.  ``pipeline`` selects the shard execution path (columnar
    ``"batched"`` by default), ``backend`` the executor (``serial`` /
    ``pool`` / ``cluster``; default consults ``REPRO_RUNNER_BACKEND``)
    and ``store`` the shard-store layout (``fs`` / ``object``; default
    consults ``REPRO_RUNNER_STORE``) — outputs and shard payloads are
    identical under every combination.

    ``journal`` names the durable event-journal file (``--journal`` on
    the CLI); ``None`` consults ``REPRO_OBS_JOURNAL``.  The path is
    exported through that env knob for the duration, so worker processes
    inherit it and every writer agrees on the file.  Journaling is
    observe-only: outputs, WAR tables and shard-cache bytes are
    bit-identical with it on or off.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    store_kind = store if store is not None else runner_store_from_env()
    cache = create_store(
        store_kind, cache_dir if cache_dir is not None else out / "cache"
    )

    report = CampaignReport(spec)
    if isinstance(backend, ExecutorBackend):
        report.backend = backend.name
    else:
        report.backend = backend or runner_backend_from_env("") or "auto"
    report.store = store_kind
    with journal_env(journal) as jrnl:
        if jrnl is not None:
            emit_open(jrnl, campaign=spec.name)
            jrnl.emit(
                "campaign-start",
                campaign=spec.name,
                figures=[job.key for job in spec.figures],
                backend=report.backend,
                store=store_kind,
            )
        with obs.span("campaign", campaign=spec.name):
            for job in spec.figures:
                if jrnl is not None:
                    jrnl.emit("figure-start", figure=job.figure, key=job.key)
                with obs.span("figure", figure=job.figure, key=job.key):
                    result = run_figure(
                        job.figure,
                        jobs=jobs,
                        cache=cache,
                        progress=progress,
                        pipeline=pipeline,
                        backend=backend,
                        **job.run_kwargs(),
                    )
                path = out / f"{job.key}.json"
                save_figure_result(result, path)
                report.outputs[job.key] = path
                if jrnl is not None:
                    jrnl.emit(
                        "figure-done",
                        figure=job.figure,
                        key=job.key,
                        output=str(path),
                    )
        if progress is not None:
            progress.finish()
            progress.write_summary()

        report.shards_computed = cache.stored
        report.shards_cached = cache.hits
        if jrnl is not None:
            jrnl.emit(
                "campaign-end",
                campaign=spec.name,
                shards_computed=report.shards_computed,
                shards_cached=report.shards_cached,
            )
    manifest = out / "campaign.json"
    manifest.write_text(
        json.dumps(report.to_dict(), indent=2) + "\n", encoding="utf-8"
    )
    return report
