"""Parallel, resumable, fault-tolerant execution for experiment campaigns.

The paper's evaluation is thousands of independent ``(config, bucket)``
shards; this package — the *campaign fabric* — turns any sweep into
exactly those shards and runs them fast, restartably and survivably:

* :mod:`repro.runner.units` — decompose a sweep into picklable
  :class:`~repro.runner.units.WorkUnit` shards; ``run_unit`` executes one.
* :mod:`repro.runner.executor` — the ``ExecutorBackend`` protocol
  (``submit``/``as_completed``/``shutdown``) with in-process
  :class:`~repro.runner.executor.SerialBackend` and fork-pool
  :class:`~repro.runner.executor.ProcessPoolBackend` implementations;
  worker failures surface as typed
  :class:`~repro.runner.executor.WorkerCrashError`\\ s.
* :mod:`repro.runner.cluster` — the work-stealing
  :class:`~repro.runner.cluster.ClusterBackend`: lease-based claims,
  heartbeat liveness, re-dispatch of units lost to killed/hung workers,
  exactly-once merge.
* :mod:`repro.runner.store` — the ``ShardStore`` interface over the
  content-addressed shard layout: :class:`~repro.runner.store.FsStore`
  (PR 1's ``ShardCache``) and the flat multi-host
  :class:`~repro.runner.store.ObjectStore`; interrupted campaigns
  resume, re-renders never recompute.
* :mod:`repro.runner.pool` — ``run_sweep``/``execute_units`` conduct
  store + backend + obs with a deterministic merge: every backend ×
  store combination is bit-identical to the serial, uncached path.
* :mod:`repro.runner.campaign` — declarative
  :class:`~repro.runner.campaign.CampaignSpec` over many figures.
* :mod:`repro.runner.progress` — live shard counts, retries, worker
  liveness and a merged ETA.

Typical use::

    from repro.runner import CampaignSpec, run_campaign

    spec = CampaignSpec.paper_evaluation(samples=1000)
    run_campaign(spec, "results/paper", jobs=8, backend="cluster")
"""

from repro.runner.campaign import (
    CampaignReport,
    CampaignSpec,
    FigureJob,
    run_campaign,
)
from repro.runner.cluster import ClusterBackend
from repro.runner.executor import (
    ExecutorBackend,
    FabricObserver,
    ProcessPoolBackend,
    SerialBackend,
    UnitResult,
    WorkerCrashError,
    default_jobs,
    registered_backends,
    resolve_backend,
)
from repro.runner.pool import execute_units, run_sweep
from repro.runner.progress import ProgressReporter, format_eta
from repro.runner.store import (
    SHARD_FORMAT_VERSION,
    FsStore,
    ObjectStore,
    ShardCache,
    ShardStore,
    create_store,
    unit_key,
)
from repro.runner.units import WorkUnit, decompose_sweep, run_unit

__all__ = [
    "SHARD_FORMAT_VERSION",
    "ShardStore",
    "ShardCache",
    "FsStore",
    "ObjectStore",
    "create_store",
    "unit_key",
    "CampaignReport",
    "CampaignSpec",
    "FigureJob",
    "run_campaign",
    "ExecutorBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ClusterBackend",
    "UnitResult",
    "WorkerCrashError",
    "FabricObserver",
    "registered_backends",
    "resolve_backend",
    "default_jobs",
    "execute_units",
    "run_sweep",
    "ProgressReporter",
    "format_eta",
    "WorkUnit",
    "decompose_sweep",
    "run_unit",
]
