"""Parallel, resumable execution engine for experiment campaigns.

The paper's evaluation is thousands of independent ``(config, bucket)``
shards; this package turns any sweep into exactly those shards and runs
them fast and restartably:

* :mod:`repro.runner.units` — decompose a sweep into picklable
  :class:`~repro.runner.units.WorkUnit` shards; ``run_unit`` executes one.
* :mod:`repro.runner.pool` — serial or ``multiprocessing`` execution with
  a deterministic merge: parallel output is bit-identical to serial.
* :mod:`repro.runner.cache` — content-addressed on-disk shard cache;
  interrupted campaigns resume, re-renders never recompute.
* :mod:`repro.runner.campaign` — declarative
  :class:`~repro.runner.campaign.CampaignSpec` over many figures.
* :mod:`repro.runner.progress` — live shard counts and ETA.

Typical use::

    from repro.runner import CampaignSpec, run_campaign

    spec = CampaignSpec.paper_evaluation(samples=1000)
    run_campaign(spec, "results/paper", jobs=8)
"""

from repro.runner.cache import SHARD_FORMAT_VERSION, ShardCache
from repro.runner.campaign import (
    CampaignReport,
    CampaignSpec,
    FigureJob,
    run_campaign,
)
from repro.runner.pool import default_jobs, execute_units, run_sweep
from repro.runner.progress import ProgressReporter, format_eta
from repro.runner.units import WorkUnit, decompose_sweep, run_unit

__all__ = [
    "SHARD_FORMAT_VERSION",
    "ShardCache",
    "CampaignReport",
    "CampaignSpec",
    "FigureJob",
    "run_campaign",
    "default_jobs",
    "execute_units",
    "run_sweep",
    "ProgressReporter",
    "format_eta",
    "WorkUnit",
    "decompose_sweep",
    "run_unit",
]
