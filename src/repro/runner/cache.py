"""Content-addressed on-disk cache for sweep shards.

Each :class:`~repro.runner.units.WorkUnit` is keyed by a SHA-256 over its
canonical JSON description (full sweep config + bucket + algorithm names +
shard format version), so

* an interrupted campaign resumes exactly where it stopped — finished
  shards are loaded, unfinished ones recomputed;
* re-rendering a figure from an existing cache recomputes nothing;
* any change to the config schema or shard format bumps the key/version
  and transparently invalidates stale entries.

Robustness over cleverness: a shard file that is missing, truncated,
corrupted, version-skewed or otherwise suspicious is treated as a miss and
recomputed — the cache can never poison a result.  Writes are atomic
(temp file + ``os.replace``) so a killed campaign cannot leave a partial
shard that later loads.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro.experiments.acceptance import BucketOutcome
from repro.experiments.export import sweep_config_to_dict
from repro.runner.units import WorkUnit

__all__ = ["SHARD_FORMAT_VERSION", "ShardCache"]

#: Bump whenever the shard payload layout *or* the semantics of the
#: computation behind it change; old cache entries then miss cleanly.
SHARD_FORMAT_VERSION = 1


class ShardCache:
    """Directory of ``<key-prefix>/<key>.json`` shard files plus hit stats.

    Statistics (``hits``, ``misses``, ``rejected``, ``stored``) accumulate
    over the cache's lifetime; campaign reports read them to prove a
    resumed run recomputed nothing.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.hits = 0  #: shards served from disk
        self.misses = 0  #: shards absent (includes rejected ones)
        self.rejected = 0  #: shards present but corrupt/invalid
        self.stored = 0  #: shards written

    # -- keying -----------------------------------------------------------------
    def describe(self, unit: WorkUnit) -> dict[str, Any]:
        """The canonical (JSON-stable) identity of a unit."""
        return {
            "format_version": SHARD_FORMAT_VERSION,
            "config": sweep_config_to_dict(unit.config),
            "bucket": unit.bucket,
            "algorithms": list(unit.algorithms),
        }

    def key(self, unit: WorkUnit) -> str:
        """Stable content hash of a unit's full configuration."""
        canonical = json.dumps(self.describe(unit), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def shard_path(self, unit: WorkUnit) -> Path:
        """Where this unit's shard lives (two-level fan-out à la git)."""
        key = self.key(unit)
        return self.root / key[:2] / f"{key}.json"

    # -- load/store -------------------------------------------------------------
    def load(self, unit: WorkUnit) -> BucketOutcome | None:
        """The cached outcome for ``unit``, or ``None`` on any doubt."""
        path = self.shard_path(unit)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            outcome = self._parse(unit, raw)
        except (ValueError, TypeError, KeyError):
            # Truncated write, manual edit, version skew, hash collision on
            # the file name — all indistinguishable, all safely recomputed.
            self.rejected += 1
            self.misses += 1
            return None
        self.hits += 1
        return outcome

    def store(self, unit: WorkUnit, outcome: BucketOutcome) -> Path:
        """Atomically persist one computed shard."""
        path = self.shard_path(unit)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": self.key(unit),
            "unit": self.describe(unit),
            "bucket": outcome.bucket,
            "samples": outcome.samples,
            "ratios": outcome.ratios,
        }
        if outcome.accepted is not None:
            # Columnar acceptance counts (batched pipeline): diagnostic
            # payload, optional on load so pre-batch shards keep hitting.
            payload["accepted"] = outcome.accepted
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        os.replace(tmp, path)
        self.stored += 1
        return path

    # -- validation -------------------------------------------------------------
    def _parse(self, unit: WorkUnit, raw: str) -> BucketOutcome:
        data = json.loads(raw)
        if not isinstance(data, dict):
            raise ValueError("shard payload is not an object")
        if data.get("key") != self.key(unit):
            raise ValueError("shard key mismatch")
        if data.get("unit") != self.describe(unit):
            raise ValueError("shard unit description mismatch")
        bucket = data["bucket"]
        samples = data["samples"]
        ratios = data["ratios"]
        if bucket != unit.bucket:
            raise ValueError("shard bucket mismatch")
        if not isinstance(samples, int) or samples < 0:
            raise ValueError(f"invalid sample count {samples!r}")
        if not isinstance(ratios, dict):
            raise ValueError("ratios is not a mapping")
        expected = set(unit.algorithms) if samples else set()
        if set(ratios) != expected:
            raise ValueError("ratios cover the wrong algorithm set")
        for name, value in ratios.items():
            if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
                raise ValueError(f"ratio {name}={value!r} out of range")
        accepted = data.get("accepted")
        if accepted is not None:
            if not isinstance(accepted, dict) or set(accepted) != set(ratios):
                raise ValueError("accepted counts cover the wrong algorithms")
            for name, count in accepted.items():
                if not isinstance(count, int) or not 0 <= count <= samples:
                    raise ValueError(f"accepted {name}={count!r} out of range")
            accepted = {name: int(count) for name, count in accepted.items()}
        return BucketOutcome(
            bucket=bucket,
            samples=samples,
            ratios={name: float(value) for name, value in ratios.items()},
            accepted=accepted,
        )
