"""Back-compat shim: the shard cache grew into :mod:`repro.runner.store`.

PR 1 named the content-addressed filesystem layout ``ShardCache``; the
fabric refactor promoted it behind the :class:`~repro.runner.store.
ShardStore` interface as :class:`~repro.runner.store.FsStore` and added
the flat :class:`~repro.runner.store.ObjectStore` layout next to it.
Everything historical keeps importing from here unchanged.
"""

from repro.runner.store import (  # noqa: F401  (re-exported surface)
    SHARD_FORMAT_VERSION,
    FsStore,
    ObjectStore,
    ShardCache,
    ShardStore,
    create_store,
    encode_outcome,
    unit_describe,
    unit_key,
)

__all__ = [
    "SHARD_FORMAT_VERSION",
    "ShardCache",
    "ShardStore",
    "FsStore",
    "ObjectStore",
    "create_store",
    "encode_outcome",
    "unit_describe",
    "unit_key",
]
