"""Content-addressed shard stores: the persistence half of the fabric.

Every :class:`~repro.runner.units.WorkUnit` has one canonical identity —
a SHA-256 over its JSON description (full sweep config + bucket +
algorithm names + shard format version, :func:`unit_key`) — and one
canonical payload serialization (:func:`encode_outcome`).  A
:class:`ShardStore` maps keys to payloads so that

* an interrupted campaign resumes exactly where it stopped — finished
  shards are loaded, unfinished ones recomputed;
* re-rendering a figure from an existing store recomputes nothing;
* any change to the config schema or shard format bumps the key/version
  and transparently invalidates stale entries;
* several hosts can share one store: payload bytes are a pure function
  of the key, so concurrent writers always write identical content and
  atomic renames make every put all-or-nothing.

Two layouts implement the interface:

* :class:`FsStore` — the original two-level ``<key[:2]>/<key>.json``
  fan-out (à la git objects).  ``ShardCache`` is this class under its
  historical name.
* :class:`ObjectStore` — a flat ``objects/<key>`` bucket shaped like a
  put/get/exists object store; point it at shared (e.g. network) storage
  and independent campaign processes on different hosts pool shards.

Robustness over cleverness, in the base class once for every layout: a
payload that is missing, truncated, corrupted, version-skewed or
otherwise suspicious is treated as a miss and recomputed — a store can
never poison a result.  Writes are atomic (temp file + ``os.replace``)
so a killed campaign cannot leave a partial shard that later loads.

The four blob primitives (``get``/``put``/``exists``/``discard``) are
deliberately generic: the opt-in verdict cache
(:mod:`repro.analysis.verdict_cache`) reuses them for its persistent
tier, storing canonical-key verdict payloads in an :class:`ObjectStore`
bucket with the same miss-on-doubt discipline.
"""

from __future__ import annotations

import abc
import hashlib
import json
import os
import uuid
from pathlib import Path
from typing import Any

from repro.experiments.acceptance import BucketOutcome
from repro.experiments.export import sweep_config_to_dict
from repro.runner.units import WorkUnit

__all__ = [
    "SHARD_FORMAT_VERSION",
    "ShardStore",
    "FsStore",
    "ObjectStore",
    "ShardCache",
    "STORES",
    "create_store",
    "unit_describe",
    "unit_key",
    "encode_outcome",
]

#: Bump whenever the shard payload layout *or* the semantics of the
#: computation behind it change; old store entries then miss cleanly.
SHARD_FORMAT_VERSION = 1


def unit_describe(unit: WorkUnit) -> dict[str, Any]:
    """The canonical (JSON-stable) identity of a unit."""
    return {
        "format_version": SHARD_FORMAT_VERSION,
        "config": sweep_config_to_dict(unit.config),
        "bucket": unit.bucket,
        "algorithms": list(unit.algorithms),
    }


def unit_key(unit: WorkUnit) -> str:
    """Stable content hash of a unit's full configuration.

    The same in every process on every host — it is what lets executor
    backends and shard stores agree on identity without coordination.
    """
    canonical = json.dumps(unit_describe(unit), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def encode_outcome(unit: WorkUnit, outcome: BucketOutcome) -> str:
    """The canonical shard payload text (identical across stores/backends)."""
    payload = {
        "key": unit_key(unit),
        "unit": unit_describe(unit),
        "bucket": outcome.bucket,
        "samples": outcome.samples,
        "ratios": outcome.ratios,
    }
    if outcome.accepted is not None:
        # Columnar acceptance counts (batched pipeline): diagnostic
        # payload, optional on load so pre-batch shards keep hitting.
        payload["accepted"] = outcome.accepted
    return json.dumps(payload, indent=2) + "\n"


class ShardStore(abc.ABC):
    """Validated load/store of shard outcomes over a key -> text blob map.

    Subclasses supply only the blob primitives (:meth:`get`, :meth:`put`,
    :meth:`exists`, :meth:`discard`); keying, serialization and the
    reject-on-any-doubt validation live here so every layout quarantines
    damage identically: a rejected blob is discarded on sight, so the
    recompute's :meth:`store` repairs it even under first-writer-wins
    layouts.
    Statistics (``hits``, ``misses``, ``rejected``, ``stored``) accumulate
    over the store's lifetime; campaign reports read them to prove a
    resumed run recomputed nothing.
    """

    #: registry name of the layout (``fs`` / ``object``).
    kind: str = ""

    def __init__(self):
        self.hits = 0  #: shards served from the store
        self.misses = 0  #: shards absent (includes rejected ones)
        self.rejected = 0  #: shards present but corrupt/invalid
        self.stored = 0  #: shards written

    # -- keying -----------------------------------------------------------------
    def describe(self, unit: WorkUnit) -> dict[str, Any]:
        """The canonical (JSON-stable) identity of a unit."""
        return unit_describe(unit)

    def key(self, unit: WorkUnit) -> str:
        """Stable content hash of a unit's full configuration."""
        return unit_key(unit)

    # -- blob primitives (the ObjectStore-shaped inner interface) ---------------
    @abc.abstractmethod
    def get(self, key: str) -> str | None:
        """The blob text stored under ``key``, or ``None`` when absent."""

    @abc.abstractmethod
    def put(self, key: str, text: str) -> Path:
        """Atomically persist ``text`` under ``key``; return its location."""

    @abc.abstractmethod
    def exists(self, key: str) -> bool:
        """Whether ``key`` currently has a blob (possibly invalid)."""

    @abc.abstractmethod
    def discard(self, key: str) -> None:
        """Drop the blob under ``key`` if present (quarantine support)."""

    # -- load/store -------------------------------------------------------------
    def load(self, unit: WorkUnit) -> BucketOutcome | None:
        """The stored outcome for ``unit``, or ``None`` on any doubt."""
        raw = self.get(self.key(unit))
        if raw is None:
            self.misses += 1
            return None
        try:
            outcome = self._parse(unit, raw)
        except (ValueError, TypeError, KeyError):
            # Truncated write, manual edit, version skew, hash collision on
            # the blob name — all indistinguishable, all safely recomputed.
            # Quarantine the damaged blob so the recompute's store() repairs
            # it even under first-writer-wins layouts.
            self.rejected += 1
            self.misses += 1
            self.discard(self.key(unit))
            return None
        self.hits += 1
        return outcome

    def store(self, unit: WorkUnit, outcome: BucketOutcome) -> Path:
        """Atomically persist one computed shard."""
        path = self.put(self.key(unit), encode_outcome(unit, outcome))
        self.stored += 1
        return path

    # -- validation -------------------------------------------------------------
    def _parse(self, unit: WorkUnit, raw: str) -> BucketOutcome:
        data = json.loads(raw)
        if not isinstance(data, dict):
            raise ValueError("shard payload is not an object")
        if data.get("key") != self.key(unit):
            raise ValueError("shard key mismatch")
        if data.get("unit") != self.describe(unit):
            raise ValueError("shard unit description mismatch")
        bucket = data["bucket"]
        samples = data["samples"]
        ratios = data["ratios"]
        if bucket != unit.bucket:
            raise ValueError("shard bucket mismatch")
        if not isinstance(samples, int) or samples < 0:
            raise ValueError(f"invalid sample count {samples!r}")
        if not isinstance(ratios, dict):
            raise ValueError("ratios is not a mapping")
        expected = set(unit.algorithms) if samples else set()
        if set(ratios) != expected:
            raise ValueError("ratios cover the wrong algorithm set")
        for name, value in ratios.items():
            if not isinstance(value, (int, float)) or not 0.0 <= value <= 1.0:
                raise ValueError(f"ratio {name}={value!r} out of range")
        accepted = data.get("accepted")
        if accepted is not None:
            if not isinstance(accepted, dict) or set(accepted) != set(ratios):
                raise ValueError("accepted counts cover the wrong algorithms")
            for name, count in accepted.items():
                if not isinstance(count, int) or not 0 <= count <= samples:
                    raise ValueError(f"accepted {name}={count!r} out of range")
            accepted = {name: int(count) for name, count in accepted.items()}
        return BucketOutcome(
            bucket=bucket,
            samples=samples,
            ratios={name: float(value) for name, value in ratios.items()},
            accepted=accepted,
        )


def _atomic_write(path: Path, text: str) -> None:
    """All-or-nothing write: temp file in the same directory + rename.

    The temp name is unique per writer so concurrent processes sharing
    the store never clobber each other's in-flight writes; ``os.replace``
    then makes whichever finishes last win with complete content (all
    writers of one key produce identical bytes anyway).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{uuid.uuid4().hex[:8]}.tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


class FsStore(ShardStore):
    """Two-level ``<key-prefix>/<key>.json`` fan-out on a filesystem."""

    kind = "fs"

    def __init__(self, root: str | Path):
        super().__init__()
        self.root = Path(root)

    def shard_path(self, unit: WorkUnit) -> Path:
        """Where this unit's shard lives (two-level fan-out à la git)."""
        return self._blob_path(self.key(unit))

    def _blob_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> str | None:
        try:
            return self._blob_path(key).read_text(encoding="utf-8")
        except OSError:
            return None

    def put(self, key: str, text: str) -> Path:
        path = self._blob_path(key)
        _atomic_write(path, text)
        return path

    def exists(self, key: str) -> bool:
        return self._blob_path(key).is_file()

    def discard(self, key: str) -> None:
        self._blob_path(key).unlink(missing_ok=True)


class ObjectStore(ShardStore):
    """Flat content-keyed bucket: ``<root>/objects/<key>``.

    The minimal put/get/exists surface a remote object store exposes,
    realized on a directory so a network mount shared between hosts
    becomes a multi-writer shard store today, and an S3-style backend
    only has to reimplement the four blob primitives.  Puts are
    first-writer-wins: once a key exists its (content-determined) bytes
    never change, so late duplicate writers skip the IO entirely.
    """

    kind = "object"

    def __init__(self, root: str | Path):
        super().__init__()
        self.root = Path(root)

    def _blob_path(self, key: str) -> Path:
        return self.root / "objects" / key

    def get(self, key: str) -> str | None:
        try:
            return self._blob_path(key).read_text(encoding="utf-8")
        except OSError:
            return None

    def put(self, key: str, text: str) -> Path:
        path = self._blob_path(key)
        if not path.is_file():
            _atomic_write(path, text)
        return path

    def exists(self, key: str) -> bool:
        return self._blob_path(key).is_file()

    def discard(self, key: str) -> None:
        self._blob_path(key).unlink(missing_ok=True)


#: The historical name: PR 1's cache class *is* the filesystem store.
ShardCache = FsStore

#: Registered layouts, by the name the CLI/env knob uses.
STORES: dict[str, type[ShardStore]] = {
    "fs": FsStore,
    "object": ObjectStore,
}


def create_store(kind: str, root: str | Path) -> ShardStore:
    """Instantiate a registered store layout at ``root``."""
    try:
        factory = STORES[kind]
    except KeyError:
        known = "|".join(sorted(STORES))
        raise ValueError(f"unknown shard store {kind!r}; known: {known}") from None
    return factory(root)
