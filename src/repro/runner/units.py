"""Work-unit decomposition of acceptance sweeps.

A sweep over the utilization grid is an embarrassingly parallel job: each
``UB`` bucket's task-set sample is generated from an RNG derived purely
from ``(label, m, deadline_type, p_high, bucket, replicate)``, so one
:class:`WorkUnit` — one ``(sweep config, bucket)`` shard — can run in any
process, in any order, and still produce the exact outcome the serial
sweep would.  :func:`run_unit` is the picklable entry point the worker
pool ships to subprocesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.acceptance import (
    AcceptanceSweep,
    BucketOutcome,
    SweepConfig,
    validate_algorithms,
)
from repro.experiments.algorithms import get_algorithm

__all__ = ["WorkUnit", "decompose_sweep", "run_unit"]


@dataclass(frozen=True)
class WorkUnit:
    """One shard of a sweep: a single ``UB`` bucket under one config.

    Carries only plain picklable data (the frozen config, the bucket
    center and algorithm *names*); the worker re-derives grid points and
    algorithm instances locally, so units stay tiny on the wire — the
    task sets themselves only ever exist inside the worker, as a columnar
    :class:`~repro.model.batch.TaskSetBatch` under the default pipeline.

    ``pipeline`` selects the execution path (see
    :data:`repro.experiments.acceptance.PIPELINES`).  It is deliberately
    *excluded* from the shard-cache identity: both pipelines produce the
    identical outcome, so shards are interchangeable between them.
    """

    config: SweepConfig
    bucket: float
    algorithms: tuple[str, ...]
    pipeline: str = "batched"


def decompose_sweep(
    config: SweepConfig,
    algorithm_names: Sequence[str],
    pipeline: str = "batched",
) -> list[WorkUnit]:
    """Split a sweep into independent per-bucket work units, ascending."""
    names = tuple(algorithm_names)
    # Fail fast on typos and on algorithm/deadline-type pairings the tests
    # cannot analyze, before any worker spawns.
    validate_algorithms(config, [get_algorithm(name) for name in names])
    sweep = AcceptanceSweep(config, pipeline=pipeline)
    return [
        WorkUnit(
            config=config, bucket=bucket, algorithms=names, pipeline=pipeline
        )
        for bucket in sweep.bucket_points()
    ]


def run_unit(unit: WorkUnit) -> BucketOutcome:
    """Execute one work unit (in this process).

    Deterministic in the unit alone — the pool relies on this both for
    order-independent merging and for content-addressed caching.
    """
    sweep = AcceptanceSweep(unit.config, pipeline=unit.pipeline)
    points = sweep.bucket_points().get(unit.bucket)
    if points is None:
        raise ValueError(
            f"bucket {unit.bucket!r} is not part of the sweep grid for "
            f"config {unit.config!r}"
        )
    algorithms = [get_algorithm(name) for name in unit.algorithms]
    return sweep.run_bucket(unit.bucket, points, algorithms)
