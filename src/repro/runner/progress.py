"""Progress and ETA reporting for campaign runs.

A campaign at paper scale executes hundreds of shards for minutes to
hours; :class:`ProgressReporter` keeps a single self-overwriting status
line on a stream (stderr by default) with completion counts, cache hits,
fault-recovery retries, executor worker liveness and a smoothed ETA
merged across however many sweeps (and whichever backend) the campaign
runs.  It is intentionally dumb and injectable — a plain object with
``add_total``/``unit_done``/``unit_retried``/``worker_lost``/
``set_workers``/``finish``
— so the fabric can drive it without knowing about terminals, and tests
can drive it with a fake clock and a ``StringIO``.
"""

from __future__ import annotations

import sys
from typing import Callable, TextIO

from repro.obs import clock as _clock

__all__ = ["ProgressReporter", "format_eta"]


def format_eta(seconds: float) -> str:
    """Humanize a duration: ``42s``, ``3m10s``, ``2h05m``."""
    seconds = max(0, int(round(seconds)))
    if seconds < 60:
        return f"{seconds}s"
    minutes, secs = divmod(seconds, 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressReporter:
    """Counts shards as they finish and renders ``done/total`` + ETA.

    The total is accrued incrementally (``add_total``) because a campaign
    discovers its sweeps one figure at a time; the ETA simply scales
    elapsed wall time by the remaining fraction, which converges quickly
    since shards are similarly sized.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        label: str = "run",
        min_interval: float = 0.2,
        clock: Callable[[], float] = _clock.monotonic,
    ):
        self._stream = stream if stream is not None else sys.stderr
        self.label = label
        self.min_interval = min_interval
        self._clock = clock
        self._started: float | None = None
        self._last_render = float("-inf")
        self.total = 0
        self.completed = 0
        self.cached = 0
        self.retried = 0
        self.lost = 0
        self.workers_alive: int | None = None
        self.workers_total: int | None = None

    # -- event intake -----------------------------------------------------------
    def add_total(self, units: int) -> None:
        """Announce ``units`` more shards of upcoming work."""
        if self._started is None:
            self._started = self._clock()
        self.total += units
        self._render()

    def unit_done(self, cached: bool = False) -> None:
        """Record one finished shard (served from cache if ``cached``)."""
        self.completed += 1
        if cached:
            self.cached += 1
        self._render(force=self.completed == self.total)

    def unit_retried(self) -> None:
        """Record one shard re-dispatched after its worker was lost/hung.

        Retries never touch ``total``: the unit was already announced and
        will complete exactly once, so the ETA stays a merged view of
        real remaining work across whatever backend is executing it.
        """
        self.retried += 1
        self._render()

    def worker_lost(self) -> None:
        """Record one executor worker declared dead (killed, hung or
        heartbeat-stale) and replaced; its claimed shards were reclaimed
        and re-dispatched, so like retries this never touches ``total``.
        """
        self.lost += 1
        self._render()

    def set_workers(self, alive: int, total: int) -> None:
        """Record executor worker liveness (fabric backends report this)."""
        self.workers_alive = alive
        self.workers_total = total
        self._render()

    def finish(self) -> None:
        """Render the final state and terminate the status line."""
        self._render(force=True)
        self._stream.write("\n")
        self._stream.flush()

    # -- rendering --------------------------------------------------------------
    def elapsed_seconds(self) -> float:
        """Wall time (monotonic) since the first ``add_total``."""
        return 0.0 if self._started is None else self._clock() - self._started

    def summary_line(self) -> str:
        """Final one-line wall-time summary for the whole run."""
        shard_word = "shard" if self.completed == 1 else "shards"
        line = (
            f"{self.label}: {self.completed} {shard_word} in "
            f"{format_eta(self.elapsed_seconds())}"
        )
        extras = []
        if self.cached:
            extras.append(f"{self.cached} from cache")
        if self.retried:
            extras.append(f"{self.retried} retried")
        if self.lost:
            word = "worker" if self.lost == 1 else "workers"
            extras.append(f"{self.lost} {word} lost/reclaimed")
        if extras:
            line += f" ({', '.join(extras)})"
        return line

    def write_summary(self) -> None:
        """Emit :meth:`summary_line` on the stream (after :meth:`finish`)."""
        self._stream.write(self.summary_line() + "\n")
        self._stream.flush()

    def eta_seconds(self) -> float | None:
        """Estimated remaining seconds, or ``None`` before any signal."""
        if self._started is None or self.completed == 0:
            return None
        remaining = self.total - self.completed
        if remaining <= 0:
            return 0.0
        elapsed = self._clock() - self._started
        return elapsed / self.completed * remaining

    def status_line(self) -> str:
        parts = [f"{self.label}: {self.completed}/{self.total} shards"]
        if self.cached:
            parts.append(f"{self.cached} cached")
        if self.retried:
            parts.append(f"{self.retried} retried")
        if self.lost:
            parts.append(f"{self.lost} lost")
        if (
            self.workers_total is not None
            and self.completed < self.total
        ):
            parts.append(f"workers {self.workers_alive}/{self.workers_total}")
        eta = self.eta_seconds()
        if eta is not None and self.completed < self.total:
            parts.append(f"eta {format_eta(eta)}")
        elif self._started is not None and self.completed >= self.total:
            parts.append(f"done in {format_eta(self._clock() - self._started)}")
        return parts[0] + (f" ({', '.join(parts[1:])})" if parts[1:] else "")

    def _render(self, force: bool = False) -> None:
        now = self._clock()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        self._stream.write("\r\x1b[2K" + self.status_line())
        self._stream.flush()
