"""Executor backends: the compute half of the campaign fabric.

One :class:`ExecutorBackend` turns a submitted batch of
:class:`~repro.runner.units.WorkUnit` shards into a stream of
:class:`UnitResult`\\ s.  The protocol is deliberately tiny —
``submit`` / ``as_completed`` / ``shutdown`` — and the contract is
absolute: **every backend yields the same outcomes**, because a unit's
outcome is a pure function of the unit (see :mod:`repro.runner.units`);
backends only decide *where* and *with what fault tolerance* units run.

* :class:`SerialBackend` — in-process, in order; no pickling, no
  subprocesses.  The reference all other backends are verified against.
* :class:`ProcessPoolBackend` — the classic ``multiprocessing`` fork
  pool (PR 1's execution path, behavior-preserving).  A unit that raises
  surfaces as a typed :class:`WorkerCrashError` instead of a raw
  traceback bubbling out of ``imap``.
* :class:`~repro.runner.cluster.ClusterBackend` — work-stealing queue
  over independent worker subprocesses with lease-based claims,
  heartbeat liveness and re-dispatch of units lost to killed or hung
  workers (its own module).

Observability rides the same wire as before the fabric existed: every
out-of-process worker clears the process :data:`repro.obs.REGISTRY`
before a unit and ships its contribution back next to the outcome
(:func:`repro.obs.capture_payload`); the caller folds payloads in
associatively, so counters, histograms and (under ``REPRO_OBS=trace``)
spans survive any backend with the same totals a serial run reports.
Payloads are always shipped, because the demand-kernel counters behind
the CLI ``--pipeline`` diagnostics predate the ``REPRO_OBS`` knob and
must keep working with it off; everything gated stays near-free.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

from repro import obs
from repro.obs import clock
from repro.obs.forensics import assemble_postmortem
from repro.obs.journal import active_journal
from repro.experiments.acceptance import BucketOutcome
from repro.runner.store import unit_key
from repro.runner.units import WorkUnit, run_unit
from repro.util.env import runner_backend_from_env

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runner.progress import ProgressReporter

__all__ = [
    "UnitResult",
    "WorkerCrashError",
    "FabricObserver",
    "ExecutorBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "default_jobs",
    "pool_context",
    "resolve_backend",
    "registered_backends",
]


def default_jobs() -> int:
    """A sensible worker count for ``--jobs 0`` (\"use the machine\")."""
    return max(1, len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (os.cpu_count() or 1))


def pool_context() -> multiprocessing.context.BaseContext:
    # fork keeps worker start-up negligible next to shard runtimes; fall
    # back to spawn where fork does not exist (Windows).
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


@dataclass(frozen=True)
class UnitResult:
    """One finished unit: its position in the submitted batch, the
    outcome, and the worker's obs payload (``None`` when the unit ran in
    the calling process and recorded straight into the live registry)."""

    pos: int
    outcome: BucketOutcome
    payload: dict | None = None


class WorkerCrashError(RuntimeError):
    """A work unit could not be completed by any worker.

    Carries everything a post-mortem needs instead of a raw pool
    traceback: the failing :class:`WorkUnit` and its content key (the
    shard the campaign is missing), how many attempts were made, the age
    of the responsible worker's last heartbeat when it was given up on,
    the last error detail (a formatted worker traceback for an
    exception, or a liveness description for a killed/hung worker) and —
    when an event journal was active — the full postmortem bundle the
    conductor assembled from it (:mod:`repro.obs.forensics`).
    """

    def __init__(
        self,
        unit: WorkUnit,
        *,
        attempts: int,
        heartbeat_age: float | None = None,
        detail: str = "",
        postmortem: dict | None = None,
    ):
        self.unit = unit
        self.unit_key = unit_key(unit)
        self.attempts = attempts
        self.heartbeat_age = heartbeat_age
        self.detail = detail
        self.postmortem = postmortem
        age = (
            f", last heartbeat {heartbeat_age:.2f}s ago"
            if heartbeat_age is not None
            else ""
        )
        message = (
            f"work unit {self.unit_key[:12]} "
            f"(label={unit.config.label!r}, m={unit.config.m}, "
            f"bucket={unit.bucket}) failed after {attempts} "
            f"attempt{'s' if attempts != 1 else ''}{age}"
        )
        if detail:
            message += f"\n{detail.rstrip()}"
        super().__init__(message)


@dataclass
class FabricObserver:
    """Bridges backend lifecycle events to progress + obs + the journal.

    Backends call these hooks; the observer fans them out to the
    (optional) :class:`~repro.runner.progress.ProgressReporter`, to the
    obs registry when recording is on (``runner.retries`` /
    ``runner.lost-workers`` counters, worker liveness and heartbeat-age
    gauges), and to the event journal when ``REPRO_OBS_JOURNAL`` is set
    (``retry`` / ``reclaim`` / ``worker-lost`` / ``workers`` /
    ``lease-expired`` events; on every reclaim the postmortem bundle is
    journaled too, so forensic evidence survives even when the retry
    eventually succeeds).  A default-constructed observer is a cheap
    no-op sink, so backends never need ``if observer`` checks.
    """

    progress: "ProgressReporter | None" = None

    def unit_retried(self, unit: WorkUnit, attempt: int) -> None:
        if obs.active():
            obs.REGISTRY.add("runner.retries")
        if self.progress is not None:
            self.progress.unit_retried()
        journal = active_journal()
        if journal is not None:
            journal.emit(
                "retry",
                key=unit_key(unit),
                label=unit.config.label,
                m=unit.config.m,
                bucket=unit.bucket,
                attempt=attempt,
            )

    def unit_reclaimed(
        self, unit: WorkUnit, slot: int, heartbeat_age: float | None
    ) -> None:
        """A leased unit was taken back from a dead/wedged worker."""
        journal = active_journal()
        if journal is None:
            return
        key = unit_key(unit)
        journal.emit(
            "reclaim",
            key=key,
            label=unit.config.label,
            m=unit.config.m,
            bucket=unit.bucket,
            slot=slot,
            heartbeat_age=heartbeat_age,
        )
        # Durable forensics even when the re-dispatch later succeeds:
        # the bundle rides the journal, not a file per reclaim.
        journal.emit(
            "postmortem", key=key, bundle=assemble_postmortem(str(journal.path), key)
        )

    def lease_expired(self, unit: WorkUnit, slot: int) -> None:
        journal = active_journal()
        if journal is not None:
            journal.emit("lease-expired", key=unit_key(unit), slot=slot)

    def worker_lost(self, worker: int, heartbeat_age: float | None) -> None:
        if obs.active():
            obs.REGISTRY.add("runner.lost-workers")
        if self.progress is not None:
            self.progress.worker_lost()
        journal = active_journal()
        if journal is not None:
            journal.emit("worker-lost", slot=worker, heartbeat_age=heartbeat_age)

    def workers_changed(self, alive: int, total: int) -> None:
        if obs.active():
            obs.REGISTRY.set_gauge("runner.workers-alive", alive)
        if self.progress is not None:
            self.progress.set_workers(alive, total)
        journal = active_journal()
        if journal is not None:
            journal.emit("workers", alive=alive, total=total)

    def heartbeat_age(self, age: float) -> None:
        if obs.active():
            obs.REGISTRY.set_gauge("runner.heartbeat-age", age)


# -- worker-side helpers (shared by every backend) -----------------------------
def timed_unit(unit: WorkUnit, backend: str) -> BucketOutcome:
    """Run one unit under a ``shard`` span, feeding the latency histogram.

    On Linux ``fork`` workers CLOCK_MONOTONIC is system-wide, so worker
    span timestamps land on the same trace axis as the parent's.

    With a journal active, the executing process (worker or conductor —
    this is the one instrumentation site every backend funnels through)
    brackets the run with ``exec-start``/``exec-done`` events; the
    latter carries the shard seconds that feed ``repro status``'s
    latency quantiles and, under tracing, a census of the spans this
    unit shipped (the "last shipped spans" a postmortem reports).
    """
    journal = active_journal()
    key = unit_key(unit) if journal is not None else ""
    if journal is not None:
        journal.emit(
            "exec-start",
            key=key,
            label=unit.config.label,
            m=unit.config.m,
            bucket=unit.bucket,
            backend=backend,
        )
    prior_spans = len(obs.spans()) if journal is not None and obs.tracing() else 0
    start = clock.monotonic()
    with obs.span(
        "shard",
        label=unit.config.label,
        m=unit.config.m,
        bucket=unit.bucket,
        backend=backend,
    ):
        outcome = run_unit(unit)
    seconds = clock.monotonic() - start
    if obs.active():
        obs.REGISTRY.observe("runner.shard-seconds", seconds)
    if journal is not None:
        extra = {}
        if obs.tracing():
            census: dict[str, int] = {}
            for record in obs.spans()[prior_spans:]:
                census[record.name] = census.get(record.name, 0) + 1
            extra["spans"] = census
        journal.emit(
            "exec-done",
            key=key,
            label=unit.config.label,
            m=unit.config.m,
            bucket=unit.bucket,
            backend=backend,
            seconds=round(seconds, 6),
            **extra,
        )
    return outcome


def run_unit_observed(unit: WorkUnit, backend: str) -> tuple[BucketOutcome, dict]:
    """Out-of-process entry point: the outcome plus this unit's obs payload.

    Clearing first makes the payload exactly the unit's contribution, so
    the parent can absorb payloads in any completion order without double
    counting (registry merge is associative and commutative).
    """
    obs.clear()
    outcome = timed_unit(unit, backend)
    return outcome, obs.capture_payload()


def payload_busy_seconds(payload: dict | None) -> float:
    """Worker-side shard seconds carried by one obs payload (0.0 when the
    worker recorded none, i.e. recording is off)."""
    if not payload:
        return 0.0
    histograms = payload.get("registry", {}).get("histograms", {})
    state = histograms.get("runner.shard-seconds")
    return float(state["total"]) if state else 0.0


class ExecutorBackend:
    """The backend protocol: ``submit`` once, drain ``as_completed``,
    always ``shutdown`` (idempotent, also mid-stream on error paths).

    Backends are single-shot: one ``submit`` per instance.  Concrete
    classes set ``name`` (the registry/CLI identity) and ``workers``.
    """

    name: str = ""
    workers: int = 1

    def submit(self, units: Sequence[WorkUnit]) -> None:
        raise NotImplementedError

    def as_completed(self) -> Iterator[UnitResult]:
        raise NotImplementedError

    def shutdown(self) -> None:
        raise NotImplementedError


class SerialBackend(ExecutorBackend):
    """Everything in the calling process, in submission order.

    No pickling, no clearing of the live registry — exactly the path the
    parallel backends are differentially verified against.
    """

    name = "serial"

    def __init__(self, observer: FabricObserver | None = None):
        self.observer = observer or FabricObserver()
        self._units: list[WorkUnit] = []

    def submit(self, units: Sequence[WorkUnit]) -> None:
        self._units = list(units)

    def as_completed(self) -> Iterator[UnitResult]:
        for pos, unit in enumerate(self._units):
            yield UnitResult(pos, timed_unit(unit, self.name))

    def shutdown(self) -> None:
        pass


def _pool_entry(job: tuple[int, WorkUnit]) -> tuple[int, str, object, dict | None]:
    """Picklable pool-worker function: never raises, always reports.

    Returns ``(pos, "ok", outcome, payload)`` or ``(pos, "error",
    formatted traceback, None)`` so the parent can raise a typed
    :class:`WorkerCrashError` naming the unit instead of surfacing a raw
    remote traceback out of ``imap``.
    """
    pos, unit = job
    try:
        outcome, payload = run_unit_observed(unit, "pool")
    except Exception:
        return pos, "error", traceback.format_exc(), None
    return pos, "ok", outcome, payload


class ProcessPoolBackend(ExecutorBackend):
    """Today's fork pool behind the backend protocol (behavior-preserving):
    ``imap`` with chunksize 1, results yielded in submission order."""

    name = "pool"

    def __init__(self, workers: int, observer: FabricObserver | None = None):
        self.workers = max(1, workers)
        self.observer = observer or FabricObserver()
        self._units: list[WorkUnit] = []
        self._pool = None

    def submit(self, units: Sequence[WorkUnit]) -> None:
        self._units = list(units)
        self.workers = min(self.workers, max(1, len(self._units)))

    def as_completed(self) -> Iterator[UnitResult]:
        busy = 0.0
        started = clock.monotonic()
        self._pool = pool_context().Pool(processes=self.workers)
        self.observer.workers_changed(self.workers, self.workers)
        try:
            computed = self._pool.imap(
                _pool_entry, list(enumerate(self._units)), chunksize=1
            )
            for pos, status, result, payload in computed:
                if status == "error":
                    raise WorkerCrashError(
                        self._units[pos], attempts=1, detail=str(result)
                    )
                busy += payload_busy_seconds(payload)
                yield UnitResult(pos, result, payload)
        finally:
            self.shutdown()
        if obs.active() and self.workers > 1:
            wall = clock.monotonic() - started
            if wall > 0:
                obs.REGISTRY.set_gauge(
                    "runner.worker-utilization",
                    min(1.0, busy / (self.workers * wall)),
                )

    def shutdown(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
            self.observer.workers_changed(0, self.workers)


def registered_backends() -> tuple[str, ...]:
    """The executor backend names the fabric can instantiate."""
    return ("serial", "pool", "cluster")


def resolve_backend(
    backend: "str | ExecutorBackend | None",
    *,
    jobs: int,
    pending: int,
    observer: FabricObserver | None = None,
) -> ExecutorBackend:
    """Instantiate the backend a run asked for.

    Resolution order: an explicit instance wins; an explicit name is
    honored as-is; ``None``/``""`` consults ``REPRO_RUNNER_BACKEND``; an
    empty knob auto-selects exactly like the pre-fabric runner —
    ``pool`` when both ``jobs`` and the pending unit count exceed one,
    in-process ``serial`` otherwise.
    """
    if isinstance(backend, ExecutorBackend):
        if observer is not None:
            backend.observer = observer
        return backend
    name = backend if backend else runner_backend_from_env("")
    if not name:
        name = "pool" if jobs > 1 and pending > 1 else "serial"
    workers = min(max(1, jobs), max(1, pending))
    if name == "serial":
        return SerialBackend(observer=observer)
    if name == "pool":
        return ProcessPoolBackend(workers, observer=observer)
    if name == "cluster":
        from repro.runner.cluster import ClusterBackend

        return ClusterBackend(workers, observer=observer)
    known = "|".join(registered_backends())
    raise ValueError(f"unknown executor backend {name!r}; known: {known}")
