"""Fault-tolerant work-stealing execution: the ``cluster`` backend.

:class:`ClusterBackend` runs a batch of work units over *independent*
worker subprocesses — no ``multiprocessing.Pool`` machinery, no shared
fate.  The parent owns a work queue that idle workers steal from, and
three cooperating mechanisms make the run survive anything short of the
parent itself dying:

* **Lease-based claims.**  A worker announces each unit it pulls
  (``claim``) before touching it; the parent records a lease.  A unit
  whose lease outlives ``lease_timeout`` is presumed stuck — its worker
  is killed and the unit is re-dispatched with exponential backoff.
* **Heartbeat liveness.**  Every worker stamps a shared heartbeat slot
  from a daemon thread; a worker whose process is gone (``SIGKILL``,
  OOM) or whose stamp goes stale is declared lost, its leased units are
  re-dispatched immediately, and a replacement worker is spawned into
  the same slot.  Detection of a killed worker is driven by process
  liveness, well inside one heartbeat interval.
* **Exactly-once merge.**  Re-dispatch can race a slow-but-alive
  original attempt, so completions are deduplicated by unit: the first
  outcome wins, later duplicates are counted (``stats["duplicates"]``)
  and dropped.  Outcomes are pure functions of their unit, so *which*
  attempt wins is immaterial — the merged result is bit-identical to a
  serial run regardless, which the fault-injection suite asserts.

A unit that keeps failing (``max_attempts`` worker deaths, hangs or
exceptions) raises a typed :class:`~repro.runner.executor.
WorkerCrashError` carrying the unit's content key, attempt count and the
last heartbeat age — never a raw traceback from pool internals.

Results travel over a ``SimpleQueue``, whose sends complete in the
calling thread before ``put`` returns — a worker killed *between* sends
can never leave a half-written claim behind.  Claims carry a per-slot
*generation* stamp: a claim drained after its sender was already reaped
(the conductor reaps before it polls, and a replacement may occupy the
slot) is recognized as stale and its unit re-dispatched immediately
instead of leased to a worker that never took it.  (A worker killed in
the middle of a send is the one residual race; its units still recover
through the lease timeout.)  Worker deaths injected for testing go
through :mod:`repro.runner.faults`, which SIGKILLs mid-shard — after
the claim, before the outcome — precisely the window the lease/
heartbeat machinery exists for.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import traceback
from typing import Iterator, Sequence

from repro import obs
from repro.obs import clock
from repro.obs.forensics import (
    assemble_postmortem,
    describe_postmortem,
    write_postmortem,
)
from repro.obs.journal import active_journal
from repro.runner import faults
from repro.runner.executor import (
    ExecutorBackend,
    FabricObserver,
    UnitResult,
    WorkerCrashError,
    payload_busy_seconds,
    pool_context,
    run_unit_observed,
)
from repro.runner.store import unit_key
from repro.runner.units import WorkUnit
from repro.util.env import (
    heartbeat_interval_from_env,
    journal_flush_interval_from_env,
    lease_timeout_from_env,
)

__all__ = ["ClusterBackend"]

#: Cap on the exponential re-dispatch backoff (seconds).
BACKOFF_CAP = 2.0


def _cluster_worker_main(
    slot: int,
    units: list[WorkUnit],
    task_q,
    result_q,
    heartbeats,
    beat_every: float,
    generation: int,
) -> None:
    """Worker entry point: steal, claim, run, report — until the sentinel.

    The claim is sent *before* the unit runs (and before the
    fault-injection hook fires) so the parent always knows which unit a
    lost worker took down with it.  Each claim carries this worker's
    ``generation`` stamp so the parent can tell a claim drained *after*
    the sender was reaped (and a replacement spawned into the slot)
    from a claim by the slot's current occupant.

    With ``REPRO_OBS_JOURNAL`` set (inherited from the conductor's
    environment), the worker also journals each claim and a heartbeat
    stamp every journal-flush interval — the durable trail crash
    forensics reconstructs a SIGKILLed worker from, since everything in
    this process's memory dies with it.
    """
    heartbeats[slot] = clock.monotonic()
    stop = threading.Event()
    flush_every = journal_flush_interval_from_env()

    def beat() -> None:
        journal = active_journal()
        if journal is not None:
            journal.emit("heartbeat", slot=slot)
        last_emit = clock.monotonic()
        while not stop.wait(beat_every):
            now = clock.monotonic()
            heartbeats[slot] = now
            if journal is not None and now - last_emit >= flush_every:
                journal.emit("heartbeat", slot=slot)
                last_emit = now

    threading.Thread(target=beat, daemon=True).start()
    try:
        while True:
            item = task_q.get()
            if item is None:
                return
            seq, pos = item
            result_q.put(("claim", slot, seq, pos, generation))
            unit = units[pos]
            journal = active_journal()
            if journal is not None:
                journal.emit(
                    "claim",
                    key=unit_key(unit),
                    label=unit.config.label,
                    m=unit.config.m,
                    bucket=unit.bucket,
                    slot=slot,
                    seq=seq,
                )
            try:
                faults.maybe_inject(unit)
                outcome, payload = run_unit_observed(unit, "cluster")
            except Exception:
                result_q.put(("error", slot, seq, pos, traceback.format_exc()))
                continue
            result_q.put(("done", slot, seq, pos, outcome, payload))
    finally:
        stop.set()


class ClusterBackend(ExecutorBackend):
    """Work-stealing queue over independent, expendable worker processes."""

    name = "cluster"

    def __init__(
        self,
        workers: int,
        *,
        heartbeat_interval: float | None = None,
        lease_timeout: float | None = None,
        backoff_base: float = 0.05,
        max_attempts: int = 5,
        poll_interval: float = 0.02,
        observer: FabricObserver | None = None,
    ):
        self.workers = max(1, workers)
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else heartbeat_interval_from_env()
        )
        self.lease_timeout = (
            lease_timeout if lease_timeout is not None else lease_timeout_from_env()
        )
        self.backoff_base = backoff_base
        self.max_attempts = max(1, max_attempts)
        self.poll_interval = poll_interval
        self.observer = observer or FabricObserver()
        #: always-on fabric accounting (tests and reports read this;
        #: the obs counters mirror it only while recording is active).
        self.stats = {
            "retries": 0,
            "lost_workers": 0,
            "duplicates": 0,
            "worker_errors": 0,
        }
        self._units: list[WorkUnit] = []
        self._ctx = pool_context()
        self._procs: list = []
        self._task_q = None
        self._result_q = None
        self._heartbeats = None
        self._shutdown = False
        # dispatch bookkeeping (all parent-side, all per-run)
        self._seq = itertools.count()
        self._inflight: dict[int, int] = {}  # seq -> pos
        self._dispatched_at: dict[int, float] = {}  # seq -> enqueue time
        self._leases: dict[int, tuple[int, float]] = {}  # seq -> (slot, t)
        self._claims: dict[int, set[int]] = {}  # slot -> claimed seqs
        self._generations: dict[int, int] = {}  # slot -> spawn count
        self._attempts: dict[int, int] = {}  # pos -> dispatch count
        self._redispatch: list[tuple[float, int]] = []  # (due, pos) heap
        self._done: set[int] = set()

    # -- protocol ---------------------------------------------------------------
    def submit(self, units: Sequence[WorkUnit]) -> None:
        self._units = list(units)
        self.workers = min(self.workers, max(1, len(self._units)))

    def as_completed(self) -> Iterator[UnitResult]:
        if not self._units:
            return
        self._task_q = self._ctx.Queue()
        self._result_q = self._ctx.SimpleQueue()
        self._heartbeats = self._ctx.Array("d", self.workers, lock=False)
        now = clock.monotonic()
        self._procs = [None] * self.workers
        for slot in range(self.workers):
            self._spawn(slot, now)
        self.observer.workers_changed(self.workers, self.workers)
        for pos in range(len(self._units)):
            self._attempts[pos] = 1
            self._dispatch(pos, now)

        busy = 0.0
        started = now
        while len(self._done) < len(self._units):
            now = clock.monotonic()
            self._reap_lost_workers(now)
            self._expire_leases(now)
            self._flush_redispatch(now)
            message = self._poll_result(self.poll_interval)
            if message is None:
                continue
            kind, slot, seq, pos = message[0], message[1], message[2], message[3]
            if kind == "claim":
                self._record_claim(slot, seq, message[4])
            elif kind == "done":
                self._release(seq, slot)
                if pos in self._done:
                    self.stats["duplicates"] += 1
                    continue
                self._done.add(pos)
                busy += payload_busy_seconds(message[5])
                yield UnitResult(pos, message[4], message[5])
            elif kind == "error":
                self._release(seq, slot)
                self.stats["worker_errors"] += 1
                self._retry_or_fail(pos, detail=message[4])

        if obs.active():
            wall = clock.monotonic() - started
            if wall > 0:
                obs.REGISTRY.set_gauge(
                    "runner.worker-utilization",
                    min(1.0, busy / (self.workers * wall)),
                )

    def shutdown(self) -> None:
        if self._shutdown:
            return
        self._shutdown = True
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=2.0)
                if proc.is_alive():  # pragma: no cover - stuck in kernel
                    proc.kill()
                    proc.join(timeout=2.0)
        self._procs = []
        if self._task_q is not None:
            self._task_q.cancel_join_thread()
            self._task_q.close()
            self._task_q = None
        self._result_q = None
        self.observer.workers_changed(0, self.workers)

    # -- worker lifecycle -------------------------------------------------------
    def _spawn(self, slot: int, now: float) -> None:
        self._heartbeats[slot] = now
        self._generations[slot] = self._generations.get(slot, 0) + 1
        proc = self._ctx.Process(
            target=_cluster_worker_main,
            args=(
                slot,
                self._units,
                self._task_q,
                self._result_q,
                self._heartbeats,
                self.heartbeat_interval / 4.0,
                self._generations[slot],
            ),
            daemon=True,
        )
        proc.start()
        self._procs[slot] = proc

    def _reap_lost_workers(self, now: float) -> None:
        """Declare dead/stale workers lost; re-dispatch their claims fast."""
        max_age = 0.0
        for slot, proc in enumerate(self._procs):
            if proc is None:
                continue
            age = now - self._heartbeats[slot]
            max_age = max(max_age, age)
            if proc.is_alive() and age <= 2.0 * self.heartbeat_interval:
                continue
            self._lose_worker(slot, age, now)
        self.observer.heartbeat_age(max_age)

    def _lose_worker(self, slot: int, heartbeat_age: float, now: float) -> None:
        proc = self._procs[slot]
        self.stats["lost_workers"] += 1
        self.observer.worker_lost(slot, heartbeat_age)
        if proc.is_alive():  # stale heartbeat on a live process: put it down
            proc.kill()
        proc.join(timeout=2.0)
        alive = sum(
            1 for p in self._procs if p is not None and p.is_alive()
        )
        self.observer.workers_changed(alive, self.workers)
        for seq in sorted(self._claims.pop(slot, ())):
            pos = self._inflight.pop(seq, None)
            self._leases.pop(seq, None)
            self._dispatched_at.pop(seq, None)
            if pos is not None and pos not in self._done:
                self.observer.unit_reclaimed(
                    self._units[pos], slot, heartbeat_age
                )
                self._retry_or_fail(pos, heartbeat_age=heartbeat_age)
        if not self._shutdown:
            self._spawn(slot, now)
            self.observer.workers_changed(
                sum(1 for p in self._procs if p is not None and p.is_alive()),
                self.workers,
            )

    # -- dispatch / retry -------------------------------------------------------
    def _dispatch(self, pos: int, now: float) -> None:
        seq = next(self._seq)
        self._inflight[seq] = pos
        self._dispatched_at[seq] = now
        self._task_q.put((seq, pos))

    def _record_claim(self, slot: int, seq: int, generation: int) -> None:
        """Lease the unit to its claimer — unless the claimer is dead.

        A claim can be drained from the result channel *after* its
        sender was reaped and a replacement spawned into the same slot
        (the conductor reaps before it polls).  Leasing it then would
        park the unit on a worker that never took it, stalling the run
        until the lease times out.  A stale generation stamp identifies
        that wreck: the unit died with its claimer, so reclaim it on
        the spot.
        """
        pos = self._inflight.get(seq)
        if pos is None:
            return
        if generation == self._generations.get(slot):
            self._leases[seq] = (slot, clock.monotonic())
            self._claims.setdefault(slot, set()).add(seq)
            return
        self._inflight.pop(seq, None)
        self._leases.pop(seq, None)
        self._dispatched_at.pop(seq, None)
        if pos not in self._done:
            self.observer.unit_reclaimed(self._units[pos], slot, 0.0)
            self._retry_or_fail(pos)

    def _release(self, seq: int, slot: int) -> None:
        self._inflight.pop(seq, None)
        self._leases.pop(seq, None)
        self._dispatched_at.pop(seq, None)
        claimed = self._claims.get(slot)
        if claimed is not None:
            claimed.discard(seq)

    def _expire_leases(self, now: float) -> None:
        """Reclaim units stuck past their lease — hung workers included.

        A claimed unit whose lease expired means its worker is wedged:
        the worker is put down like any lost one (which also re-dispatches
        everything else it claimed).  An *unclaimed* dispatch this old
        means the claim was lost with a dying worker — re-dispatch it.
        """
        expired_slots = set()
        for seq, (slot, since) in self._leases.items():
            if now - since > self.lease_timeout:
                expired_slots.add(slot)
                pos = self._inflight.get(seq)
                if pos is not None:
                    self.observer.lease_expired(self._units[pos], slot)
        for slot in expired_slots:
            self._lose_worker(slot, now - self._heartbeats[slot], now)
        for seq, since in list(self._dispatched_at.items()):
            if seq in self._leases or now - since <= 2.0 * self.lease_timeout:
                continue
            pos = self._inflight.pop(seq, None)
            self._dispatched_at.pop(seq, None)
            if pos is not None and pos not in self._done:
                self._retry_or_fail(pos)

    def _retry_or_fail(
        self,
        pos: int,
        *,
        detail: str = "",
        heartbeat_age: float | None = None,
    ) -> None:
        attempts = self._attempts[pos]
        if attempts >= self.max_attempts:
            unit = self._units[pos]
            detail = detail or "worker lost (killed, hung or unreachable)"
            postmortem = None
            journal = active_journal()
            if journal is not None:
                # Stamp the give-up first so the bundle's reference time
                # is the moment the conductor acted, then assemble the
                # forensics from the durable record and dump them next
                # to the journal.
                key = unit_key(unit)
                journal.emit("crash", key=key, attempts=attempts, detail=detail)
                postmortem = assemble_postmortem(str(journal.path), key)
                path = write_postmortem(postmortem, journal.path.parent)
                detail += "\n" + describe_postmortem(postmortem, path)
                if heartbeat_age is None:
                    heartbeat_age = postmortem.get("last_heartbeat_age")
            raise WorkerCrashError(
                unit,
                attempts=attempts,
                heartbeat_age=heartbeat_age,
                detail=detail,
                postmortem=postmortem,
            )
        self._attempts[pos] = attempts + 1
        self.stats["retries"] += 1
        self.observer.unit_retried(self._units[pos], attempts + 1)
        backoff = min(self.backoff_base * (2.0 ** (attempts - 1)), BACKOFF_CAP)
        heapq.heappush(self._redispatch, (clock.monotonic() + backoff, pos))

    def _flush_redispatch(self, now: float) -> None:
        while self._redispatch and self._redispatch[0][0] <= now:
            _, pos = heapq.heappop(self._redispatch)
            if pos not in self._done:
                self._dispatch(pos, now)

    # -- result intake ----------------------------------------------------------
    def _poll_result(self, timeout: float):
        """One message from the result channel, or ``None`` after ``timeout``.

        ``SimpleQueue`` has no timed ``get``; its reader connection does.
        """
        reader = getattr(self._result_q, "_reader", None)
        if reader is not None:
            if not reader.poll(timeout):
                return None
        elif self._result_q.empty():  # pragma: no cover - exotic platforms
            time.sleep(timeout)
            return None
        return self._result_q.get()
