"""The one clock the observability layer (and its consumers) read.

Every duration in the repo — span wall times, timer histograms, the
progress reporter's ETA smoothing — must come from the *monotonic* clock:
``time.time()`` can jump backwards under NTP adjustment and would produce
negative spans and oscillating ETAs.  Funnelling all reads through this
module keeps that rule greppable and gives tests a single seam to patch.

``CLOCK_MONOTONIC`` is system-wide on Linux, so timestamps taken in
forked pool workers are directly comparable with the parent's — which is
what lets the Chrome-trace export lay worker shard spans on the same time
axis as the campaign span that contains them.
"""

from __future__ import annotations

import time

__all__ = ["monotonic", "wall"]

#: Monotonic seconds; the timestamp source for spans, timers and ETAs.
monotonic = time.monotonic

#: Wall-clock seconds since the epoch — only for *labelling* artifacts
#: (e.g. "generated at"), never for measuring durations.
wall = time.time
