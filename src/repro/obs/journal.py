"""Durable campaign telemetry: the append-only JSONL event journal.

Everything :mod:`repro.obs` records lives in one process's memory and
dies with it.  The journal is the durable complement: one JSONL file per
campaign (schema :data:`JOURNAL_SCHEMA`) that the conductor *and* every
worker append to — unit lifecycle events (cached / claimed / executed /
done / retried / reclaimed), worker heartbeat stamps, lease expiries,
periodic registry snapshots and postmortem bundles — so a second
terminal can watch a running campaign (``repro status``), a SIGKILLed
worker leaves forensic evidence (:mod:`repro.obs.forensics`) and two
runs can be compared long after both processes exited
(``repro report``, :mod:`repro.obs.report`).

Design rules:

* **Observe-only.**  Like the recorder, the journal never influences
  results: sweeps run journal-on and journal-off produce bit-identical
  ``SweepResult``s, WAR tables and shard-cache bytes (asserted by
  ``tests/obs/test_journal.py``).
* **Crash-safe line-atomic appends.**  Every event is one ``write()``
  of one newline-terminated JSON object on an ``O_APPEND`` descriptor —
  POSIX guarantees appends land whole and in order, so concurrent
  writers (conductor + N workers, even across hosts on a shared mount)
  can never interleave half-lines, and a process killed mid-campaign
  leaves a journal that is valid up to its last completed event.
  :func:`read_events` additionally tolerates a damaged tail, because a
  postmortem is exactly when the journal must still parse.
* **Env-gated.**  The validated ``REPRO_OBS_JOURNAL`` knob (see
  :func:`repro.util.env.journal_path_from_env`) is the single switch:
  the conductor exports it (``--journal`` sets it for the process tree)
  and forked workers inherit it, so every process agrees on the file
  without any plumbing through the fabric's interfaces.

Event shape: ``{"ev": <type>, "ts": <wall s>, "mono": <monotonic s>,
"pid": <writer>}`` plus event-specific fields.  ``mono`` is
CLOCK_MONOTONIC, system-wide on Linux, so ages and durations computed
across writer processes are meaningful; ``ts`` labels events for humans
and cross-host comparison.  The first event of a file is ``open`` and
carries ``schema``.
"""

from __future__ import annotations

import json
import os
import platform
from contextlib import contextmanager
from pathlib import Path

from repro.obs import clock
from repro.util.env import journal_path_from_env

__all__ = [
    "JOURNAL_SCHEMA",
    "Journal",
    "active_journal",
    "journal_env",
    "emit_open",
    "open_journal",
    "read_events",
    "JournalFollower",
]

#: Format marker written by the ``open`` event; bumped on breaking
#: changes so readers can refuse journals they do not understand.
JOURNAL_SCHEMA = "repro-journal/1"


class Journal:
    """One append-only JSONL event sink.

    Cheap to construct (the descriptor opens lazily on first emit) and
    safe to share across forks: ``O_APPEND`` makes every ``write()``
    land at the current end of file regardless of inherited offsets.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fd: int | None = None
        self._pid = os.getpid()

    def _descriptor(self) -> int:
        # Re-open after a fork: sharing the fd would be correct for
        # O_APPEND writes, but a child closing it must not sabotage the
        # parent, so each process owns its descriptor.
        if self._fd is None or self._pid != os.getpid():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(
                self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644
            )
            self._pid = os.getpid()
        return self._fd

    def emit(self, ev: str, **fields) -> None:
        """Append one event; a single atomic ``write()`` per line."""
        record = {
            "ev": ev,
            "ts": round(clock.wall(), 6),
            "mono": round(clock.monotonic(), 6),
            "pid": os.getpid(),
        }
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        os.write(self._descriptor(), (line + "\n").encode("utf-8"))

    def close(self) -> None:
        if self._fd is not None and self._pid == os.getpid():
            os.close(self._fd)
        self._fd = None


# -- process-wide resolution ----------------------------------------------------
#: (pid, path) -> Journal the last :func:`active_journal` call produced.
_CACHE: tuple[int, str, Journal | None] = (-1, "", None)


def active_journal() -> Journal | None:
    """The journal the env knob points at, or ``None`` when off.

    Re-reads ``REPRO_OBS_JOURNAL`` on every call (a dict lookup — the
    instrumentation sites fire per *unit*, not per task) so
    fork-inherited module state can never pin a stale path, mirroring
    :func:`repro.runner.faults.fault_spec_from_env`.
    """
    global _CACHE
    path = journal_path_from_env()
    pid = os.getpid()
    cached_pid, cached_path, cached = _CACHE
    if cached_pid == pid and cached_path == path:
        return cached
    journal = Journal(path) if path else None
    _CACHE = (pid, path, journal)
    return journal


@contextmanager
def journal_env(path: str | Path | None):
    """Point ``REPRO_OBS_JOURNAL`` at ``path`` for the duration.

    The env var — not an argument threaded through every fabric layer —
    is what worker processes inherit, so an explicit ``--journal`` flag
    or ``run_campaign(journal=...)`` call funnels through here.  ``None``
    leaves the ambient knob untouched (the "consult the environment"
    default); the previous value is restored on exit either way.
    """
    if path is None:
        yield active_journal()
        return
    previous = os.environ.get("REPRO_OBS_JOURNAL")
    os.environ["REPRO_OBS_JOURNAL"] = str(path)
    try:
        yield active_journal()
    finally:
        if previous is None:
            os.environ.pop("REPRO_OBS_JOURNAL", None)
        else:
            os.environ["REPRO_OBS_JOURNAL"] = previous


def emit_open(journal: Journal, **fields) -> None:
    """Stamp the ``open`` header event (schema + host + python)."""
    journal.emit(
        "open",
        schema=JOURNAL_SCHEMA,
        host=platform.node(),
        python=platform.python_version(),
        **fields,
    )


def open_journal(path: str | Path, **fields) -> Journal:
    """Create a journal and stamp its ``open`` header event.

    The conductor calls this once per campaign *before* spawning
    workers; workers only ever append (:func:`active_journal`).
    """
    journal = Journal(path)
    emit_open(journal, **fields)
    return journal


# -- reading ---------------------------------------------------------------------
def _parse_line(line: bytes) -> dict | None:
    line = line.strip()
    if not line:
        return None
    try:
        event = json.loads(line)
    except ValueError:
        # A damaged line (torn by a dying filesystem, truncated copy,
        # manual edit) must not take the postmortem down with it.
        return None
    return event if isinstance(event, dict) else None


def read_events(path: str | Path) -> list[dict]:
    """Every parseable event in the journal, in append order."""
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        raise FileNotFoundError(f"cannot read journal {path}: {exc}") from None
    events = []
    for line in raw.splitlines():
        event = _parse_line(line)
        if event is not None:
            events.append(event)
    return events


class JournalFollower:
    """Incremental reader for ``repro status --follow``.

    Remembers its byte offset between polls and never consumes a
    partial final line, so tailing a journal that another process is
    actively appending to yields each event exactly once.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.offset = 0

    def poll(self) -> list[dict]:
        """The events appended since the last poll (empty when none)."""
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self.offset)
                chunk = handle.read()
        except OSError:
            return []
        if not chunk:
            return []
        # Hold back an unterminated tail — a writer is mid-append.
        complete, sep, _rest = chunk.rpartition(b"\n")
        if not sep:
            return []
        self.offset += len(complete) + 1
        events = []
        for line in complete.splitlines():
            event = _parse_line(line)
            if event is not None:
                events.append(event)
        return events
