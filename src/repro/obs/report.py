"""Cross-run regression reports from event journals: ``repro report``.

A journal (:mod:`repro.obs.journal`) outlives the campaign that wrote
it, so two journals — today's run and last week's — can be compared long
after both processes exited.  :func:`summarize_journal` reduces one
journal to a :class:`RunSummary` (shards executed, wall seconds,
throughput, shard-latency quantiles, per-sweep breakdowns, fault
counters); :func:`compare_runs` diffs a summary against a baseline and
flags regressions past a configurable threshold; :func:`render_report`
renders the per-figure/per-bucket tables.  The CLI exits non-zero when
any comparison regresses, which is what makes ``repro report --baseline
BENCH_fabric.json`` a ready-made CI perf tripwire.

Baselines come in two shapes and :func:`load_baseline` accepts both:

* another journal (JSONL) — summarized exactly like the current run;
* a committed ``BENCH_*.json`` artifact — mined for its best
  ``shards_per_sec`` figure (every fabric/telemetry bench artifact
  reports one per backend) and, when present, shard-seconds quantiles.

The regression rule is deliberately one-sided and simple: with
threshold ``t`` (default :data:`DEFAULT_THRESHOLD`), throughput must not
drop below ``baseline * (1 - t)`` and p95 shard latency must not rise
above ``baseline * (1 + t)``.  CI passes a generous ``t`` because 1-CPU
runners are noisy; the default suits a developer's own machine.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.registry import Histogram
from repro.util.tables import format_table

__all__ = [
    "DEFAULT_THRESHOLD",
    "RunSummary",
    "Comparison",
    "summarize_journal",
    "load_baseline",
    "compare_runs",
    "render_report",
]

#: Default maximum tolerated fractional drift before a run "regresses".
DEFAULT_THRESHOLD = 0.2


@dataclass
class RunSummary:
    """One run reduced to the numbers two runs can be compared on."""

    name: str
    campaign: str | None = None
    executed: int = 0
    cached: int = 0
    retries: int = 0
    lost_workers: int = 0
    wall_seconds: float = 0.0
    busy_seconds: float = 0.0
    shards_per_sec: float | None = None
    latency: dict[str, float | None] = field(default_factory=dict)
    #: (label, m) -> {"executed", "seconds", "p50", "p95", "p99"}
    sweeps: dict[tuple[str, int | None], dict] = field(default_factory=dict)
    #: True when this summary came from a BENCH_*.json artifact rather
    #: than a journal (no sweeps / fault counters to show).
    synthetic: bool = False


@dataclass(frozen=True)
class Comparison:
    """One metric of one run measured against the baseline."""

    run: str
    metric: str
    current: float
    baseline: float
    #: current / baseline (>1 is faster for throughput, slower for latency).
    ratio: float
    regressed: bool


def summarize_journal(path: str | Path, events=None) -> RunSummary:
    """Reduce a journal to a :class:`RunSummary`.

    ``events`` short-circuits the file read when the caller already
    holds the parsed list (tests, ``repro report`` over many journals).
    """
    from repro.obs.journal import read_events

    if events is None:
        events = read_events(path)
    summary = RunSummary(name=str(path))
    overall = Histogram()
    per_sweep: dict[tuple[str, int | None], Histogram] = {}
    first_mono: float | None = None
    last_mono: float | None = None
    for event in events:
        mono = event.get("mono")
        if isinstance(mono, (int, float)):
            first_mono = mono if first_mono is None else first_mono
            last_mono = mono
        ev = event.get("ev")
        if ev in ("open", "campaign-start") and event.get("campaign"):
            summary.campaign = event["campaign"]
        elif ev == "sweep-start":
            summary.cached += int(event.get("cached", 0))
        elif ev == "exec-done":
            seconds = event.get("seconds")
            if not isinstance(seconds, (int, float)):
                continue
            summary.executed += 1
            summary.busy_seconds += seconds
            overall.observe(seconds)
            key = (event.get("label", "?"), event.get("m"))
            histogram = per_sweep.get(key)
            if histogram is None:
                histogram = per_sweep[key] = Histogram()
            histogram.observe(seconds)
        elif ev == "retry":
            summary.retries += 1
        elif ev == "worker-lost":
            summary.lost_workers += 1
    if first_mono is not None and last_mono is not None:
        summary.wall_seconds = last_mono - first_mono
    if summary.executed and summary.wall_seconds > 0:
        summary.shards_per_sec = summary.executed / summary.wall_seconds
    summary.latency = {
        "p50": overall.quantile(0.5),
        "p95": overall.quantile(0.95),
        "p99": overall.quantile(0.99),
    }
    summary.sweeps = {
        key: {
            "executed": histogram.count,
            "seconds": round(histogram.total, 6),
            "p50": histogram.quantile(0.5),
            "p95": histogram.quantile(0.95),
            "p99": histogram.quantile(0.99),
        }
        for key, histogram in sorted(
            per_sweep.items(), key=lambda kv: (kv[0][0], kv[0][1] or 0)
        )
    }
    return summary


# -- baselines -------------------------------------------------------------------
def _mine(node, key: str, found: list) -> None:
    if isinstance(node, dict):
        for name, value in node.items():
            if name == key and isinstance(value, (int, float)):
                found.append(float(value))
            else:
                _mine(value, key, found)
    elif isinstance(node, list):
        for value in node:
            _mine(value, key, found)


def _bench_baseline(path: Path, payload: dict) -> RunSummary:
    """A pseudo-summary mined from a committed ``BENCH_*.json`` artifact.

    Takes the *best* ``shards_per_sec`` the artifact reports (bench
    artifacts record one per backend/mode; the gate should compare
    against what the machine proved it can do) and shard-seconds
    quantiles when the artifact carries them under ``shard_seconds``.
    """
    throughput: list[float] = []
    _mine(payload, "shards_per_sec", throughput)
    summary = RunSummary(name=str(path), synthetic=True)
    if throughput:
        summary.shards_per_sec = max(throughput)
    p95: list[float] = []
    _mine(payload.get("shard_seconds", {}), "p95", p95)
    p50: list[float] = []
    _mine(payload.get("shard_seconds", {}), "p50", p50)
    summary.latency = {
        "p50": min(p50) if p50 else None,
        "p95": min(p95) if p95 else None,
        "p99": None,
    }
    return summary


def load_baseline(path: str | Path) -> RunSummary:
    """Summarize a baseline: a journal (JSONL) or a ``BENCH_*.json``."""
    path = Path(path)
    raw = path.read_text(encoding="utf-8")
    stripped = raw.lstrip()
    if stripped.startswith("{"):
        try:
            payload = json.loads(raw)
        except ValueError:
            payload = None
        if isinstance(payload, dict) and "ev" not in payload:
            return _bench_baseline(path, payload)
    return summarize_journal(path)


# -- regression diff --------------------------------------------------------------
def compare_runs(
    current: RunSummary,
    baseline: RunSummary,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[Comparison]:
    """Diff ``current`` against ``baseline``.

    Only metrics both sides actually have are compared — a bench-artifact
    baseline without latency quantiles gates throughput alone.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    comparisons: list[Comparison] = []
    if current.shards_per_sec and baseline.shards_per_sec:
        ratio = current.shards_per_sec / baseline.shards_per_sec
        comparisons.append(
            Comparison(
                run=current.name,
                metric="shards_per_sec",
                current=current.shards_per_sec,
                baseline=baseline.shards_per_sec,
                ratio=ratio,
                regressed=ratio < 1.0 - threshold,
            )
        )
    for quantile in ("p50", "p95", "p99"):
        now = current.latency.get(quantile)
        then = baseline.latency.get(quantile)
        if now and then:
            ratio = now / then
            comparisons.append(
                Comparison(
                    run=current.name,
                    metric=f"shard_seconds.{quantile}",
                    current=now,
                    baseline=then,
                    ratio=ratio,
                    regressed=ratio > 1.0 + threshold,
                )
            )
    return comparisons


# -- rendering --------------------------------------------------------------------
def _round(value: float | None, digits: int = 4) -> float | str:
    return "-" if value is None else round(value, digits)


def render_report(
    summaries: list[RunSummary],
    comparisons: list[Comparison] | None = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> str:
    """The text block ``repro report`` prints."""
    blocks: list[str] = []
    rows = [
        [
            Path(s.name).name,
            s.campaign or "-",
            s.executed,
            s.cached,
            s.retries,
            s.lost_workers,
            _round(s.wall_seconds, 2),
            _round(s.shards_per_sec, 2),
            _round(s.latency.get("p50")),
            _round(s.latency.get("p95")),
            _round(s.latency.get("p99")),
        ]
        for s in summaries
    ]
    blocks.append(
        format_table(
            [
                "run", "campaign", "executed", "cached", "retried",
                "lost", "wall s", "shards/s", "p50 s", "p95 s", "p99 s",
            ],
            rows,
            title="runs",
        )
    )
    for summary in summaries:
        if not summary.sweeps:
            continue
        blocks.append("")
        blocks.append(
            format_table(
                ["sweep", "m", "executed", "seconds", "p50 s", "p95 s", "p99 s"],
                [
                    [
                        label,
                        "-" if m is None else m,
                        stats["executed"],
                        _round(stats["seconds"], 2),
                        _round(stats["p50"]),
                        _round(stats["p95"]),
                        _round(stats["p99"]),
                    ]
                    for (label, m), stats in summary.sweeps.items()
                ],
                title=f"sweeps — {Path(summary.name).name}",
            )
        )
    if comparisons is not None:
        blocks.append("")
        if comparisons:
            blocks.append(
                format_table(
                    ["run", "metric", "current", "baseline", "ratio", "verdict"],
                    [
                        [
                            Path(c.run).name,
                            c.metric,
                            _round(c.current),
                            _round(c.baseline),
                            _round(c.ratio, 3),
                            "REGRESSED" if c.regressed else "ok",
                        ]
                        for c in comparisons
                    ],
                    title=f"baseline diff (threshold {threshold:g})",
                )
            )
        else:
            blocks.append(
                "baseline diff: no comparable metrics (baseline has no "
                "throughput or latency figures)"
            )
    return "\n".join(blocks)
