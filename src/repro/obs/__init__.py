"""repro.obs — unified metrics, tracing spans and profiling hooks.

The observability spine of the repo: one process-local
:class:`~repro.obs.registry.MetricsRegistry` (:data:`REGISTRY`), one
injectable recorder (:func:`set_recorder`) gating all *optional*
instrumentation, and nestable :func:`span` contexts feeding the
Chrome-trace export.  Design rules, relied on everywhere:

* **Observe-only.**  Nothing in this package influences analysis
  verdicts, figure ratios, WAR tables or shard-cache identity; the
  differential test suite runs sweeps with recording off and on and
  asserts bit-identical outputs.
* **One branch when off.**  With the default :class:`~repro.obs.recorder.
  NullRecorder` installed, every instrumentation site reduces to an
  ``active()``/``tracing()`` check.  (The demand-kernel counters predate
  this subsystem and stay *always on* as a registry counter scope — plain
  dict increments, exactly their historical cost — because the CLI
  pipeline diagnostics must work without any knob.)
* **Mergeable.**  Worker processes ship their registry snapshot and spans
  back through the pool (:func:`capture_payload` / :func:`absorb_payload`)
  and the parent folds them in associatively, so parallel runs report the
  same totals as serial ones.

The ``REPRO_OBS`` env knob (``off`` | ``metrics`` | ``trace``, parsed by
:func:`repro.util.env.obs_mode_from_env`) selects the recorder once at
import, mirroring the ``REPRO_DBF_*`` knob pattern; :func:`set_recorder`
overrides it at runtime (tests, the ``repro trace`` command).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs import clock
from repro.obs.export import (
    chrome_trace,
    render_table,
    snapshot_summary,
    to_json,
    write_chrome_trace,
)
from repro.obs.journal import (
    JOURNAL_SCHEMA,
    Journal,
    JournalFollower,
    active_journal,
    journal_env,
    open_journal,
    read_events,
)
from repro.obs.recorder import (
    MetricsRecorder,
    NullRecorder,
    Recorder,
    SpanRecord,
    TraceRecorder,
    span_context,
)
from repro.obs.registry import Histogram, MetricsRegistry
from repro.util.env import obs_mode_from_env

__all__ = [
    "REGISTRY",
    "Histogram",
    "MetricsRegistry",
    "Recorder",
    "NullRecorder",
    "MetricsRecorder",
    "TraceRecorder",
    "SpanRecord",
    "active",
    "tracing",
    "mode",
    "get_recorder",
    "set_recorder",
    "span",
    "spans",
    "clear",
    "capture_payload",
    "absorb_payload",
    "snapshot",
    "to_json",
    "render_table",
    "snapshot_summary",
    "chrome_trace",
    "write_chrome_trace",
    "clock",
    "JOURNAL_SCHEMA",
    "Journal",
    "JournalFollower",
    "active_journal",
    "journal_env",
    "open_journal",
    "read_events",
]

#: The process-wide metrics registry.  Never replaced — counter scopes
#: hand out live references — only reset.
REGISTRY = MetricsRegistry()

_RECORDER: Recorder = NullRecorder(REGISTRY)


def get_recorder() -> Recorder:
    """The currently installed recorder."""
    return _RECORDER


def set_recorder(recorder: Recorder) -> Recorder:
    """Install ``recorder`` and return the previous one (for restoring)."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    return previous


def active() -> bool:
    """True when optional metric instrumentation should record."""
    return _RECORDER.enabled


def tracing() -> bool:
    """True when spans are being collected."""
    return _RECORDER.records_spans


def mode() -> str:
    """The effective mode string (``off`` / ``metrics`` / ``trace``)."""
    if _RECORDER.records_spans:
        return "trace"
    return "metrics" if _RECORDER.enabled else "off"


def span(name: str, /, **attrs):
    """Nestable tracing context; a near-no-op unless tracing is on."""
    return span_context(_RECORDER, name, attrs)


def spans() -> list[SpanRecord]:
    """The spans collected so far in this process (empty unless tracing)."""
    return list(getattr(_RECORDER, "spans", ()))


def clear() -> None:
    """Reset the registry and drop collected spans (counter-scope dicts
    stay registered and are zeroed in place)."""
    REGISTRY.reset()
    collected = getattr(_RECORDER, "spans", None)
    if collected is not None:
        collected.clear()


def snapshot() -> dict:
    """The registry's picklable snapshot (counters/gauges/histograms)."""
    return REGISTRY.snapshot()


# -- worker -> parent transport ----------------------------------------------
def capture_payload() -> dict:
    """Everything this process recorded, as one picklable payload.

    Pool workers call :func:`clear` before a unit and this afterwards, so
    the payload is exactly the unit's contribution and the parent can
    merge payloads in any order without double counting.
    """
    return {"registry": REGISTRY.snapshot(), "spans": spans()}


def absorb_payload(payload: dict | None) -> None:
    """Fold a worker's :func:`capture_payload` into this process."""
    if not payload:
        return
    REGISTRY.merge(payload.get("registry", {}))
    if _RECORDER.records_spans:
        for record in payload.get("spans", ()):
            _RECORDER.record_span(record)


# -- env-knob configuration ---------------------------------------------------
def _configure_from_env() -> None:
    knob = obs_mode_from_env()
    if knob == "metrics":
        set_recorder(MetricsRecorder(REGISTRY))
    elif knob == "trace":
        set_recorder(TraceRecorder(REGISTRY))


_configure_from_env()
