"""Process-local metrics: counters, gauges and quantile histograms.

One :class:`MetricsRegistry` lives per process (``repro.obs.REGISTRY``).
Everything it stores is plain picklable data, and every aggregate is
*mergeable*: a worker process can snapshot its registry, ship the snapshot
through the pool, and the parent folds it in with :meth:`MetricsRegistry.
merge` — addition for counters, element-wise max for gauges, bucket-wise
addition for histograms — so the merged result is independent of worker
count and arrival order (merge is associative and commutative; the test
suite asserts this).

Histograms are geometric-bucket sketches, not sample dumps: observing is
O(1), the state stays tiny no matter how many values stream in, and the
reported quantile ``q`` is guaranteed to lie within one bucket ratio
(:data:`Histogram.BASE`, ~9%) *above* the exact sample quantile — good
enough for p50/p95/p99 latency reporting, cheap enough for hot loops.
"""

from __future__ import annotations

import math

__all__ = ["Histogram", "MetricsRegistry"]

#: Quantiles every histogram export reports.
QUANTILES = (0.5, 0.95, 0.99)


class Histogram:
    """Geometric-bucket quantile sketch over non-negative-ish samples.

    A positive value ``v`` lands in bucket ``ceil(log(v) / log(BASE))``;
    values ``<= 0`` share one underflow bucket (quantile representative
    0.0).  The reported quantile is the containing bucket's upper edge,
    clamped to the observed ``[min, max]`` — hence ``exact <= reported <=
    exact * BASE`` for positive samples.
    """

    #: Bucket growth ratio: 2**(1/8) ≈ 1.09, i.e. 8 buckets per octave.
    BASE = 2 ** 0.125

    __slots__ = ("count", "total", "vmin", "vmax", "nonpos", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.vmin: float | None = None
        self.vmax: float | None = None
        self.nonpos = 0
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)
        if value <= 0.0:
            self.nonpos += 1
            return
        index = math.ceil(math.log(value) / math.log(self.BASE))
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def quantile(self, q: float) -> float | None:
        """The ``q``-quantile estimate (upper bucket edge), or None when empty."""
        if self.count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = max(1, math.ceil(q * self.count))
        seen = self.nonpos
        if rank <= seen:
            return max(0.0, self.vmin or 0.0)
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if rank <= seen:
                edge = self.BASE ** index
                return max(self.vmin, min(edge, self.vmax))
        return self.vmax  # pragma: no cover - rank always falls in a bucket

    # -- merge / transport ---------------------------------------------------
    def state(self) -> dict:
        """Picklable snapshot; :meth:`merge_state` folds one back in."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "nonpos": self.nonpos,
            "buckets": dict(self.buckets),
        }

    def merge_state(self, state: dict) -> None:
        if not state["count"]:
            return
        self.count += state["count"]
        self.total += state["total"]
        self.vmin = (
            state["min"] if self.vmin is None else min(self.vmin, state["min"])
        )
        self.vmax = (
            state["max"] if self.vmax is None else max(self.vmax, state["max"])
        )
        self.nonpos += state["nonpos"]
        for index, count in state["buckets"].items():
            self.buckets[index] = self.buckets.get(index, 0) + count

    def summary(self) -> dict:
        """The export form: count/total/min/max plus p50/p95/p99."""
        out = {
            "count": self.count,
            "total": round(self.total, 6),
            "min": self.vmin,
            "max": self.vmax,
        }
        for q in QUANTILES:
            value = self.quantile(q)
            out[f"p{int(q * 100)}"] = (
                None if value is None else round(value, 6)
            )
        return out


class MetricsRegistry:
    """Counters, gauges and histograms for one process.

    Two counter stores coexist:

    * plain named counters (:meth:`add`) — general instrumentation and
      the landing place for merged worker snapshots;
    * *counter scopes* (:meth:`counter_scope`) — a mutable plain dict
      handed out once at import time so hot loops can do
      ``scope["key"] += 1`` with zero indirection (this is how the demand
      kernel's counters live on the registry without costing the kernel
      anything).  :meth:`counters` folds a scope's entries in as
      ``<scope>.<key>``.
    """

    def __init__(self):
        self._counters: dict[str, float] = {}
        self._scopes: dict[str, dict[str, int]] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- counters ------------------------------------------------------------
    def counter_scope(self, name: str, keys: tuple[str, ...] = ()) -> dict:
        """The mutable counter dict registered under ``name`` (created on
        first use, same object ever after — callers may keep a reference
        and increment it directly)."""
        scope = self._scopes.setdefault(name, {})
        for key in keys:
            scope.setdefault(key, 0)
        return scope

    def add(self, name: str, value: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def add_counters(self, values: dict[str, float]) -> None:
        for name, value in values.items():
            self.add(name, value)

    def counters(self, prefix: str = "") -> dict[str, float]:
        """Folded counter view (plain + scoped), optionally prefix-filtered."""
        out = dict(self._counters)
        for scope, entries in self._scopes.items():
            for key, value in entries.items():
                name = f"{scope}.{key}"
                out[name] = out.get(name, 0) + value
        if prefix:
            out = {k: v for k, v in out.items() if k.startswith(prefix)}
        return out

    # -- gauges / histograms -------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def gauges(self) -> dict[str, float]:
        return dict(self._gauges)

    def observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    # -- snapshot / merge / reset --------------------------------------------
    def snapshot(self) -> dict:
        """Everything, as plain picklable data (the worker->parent wire
        format; also what :func:`repro.obs.export.to_json` renders)."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                name: h.state() for name, h in self._histograms.items()
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` in: counters/histograms add, gauges take
        the element-wise **max**.

        Gauges are point-in-time readings, so there is no universally
        right fold — but last-writer-wins (the old behavior) made the
        merged value depend on worker *arrival order*, which varies run
        to run under any parallel backend.  Max is commutative and
        associative, so the merged registry is deterministic no matter
        how many workers report or in what order, and for the gauges the
        fabric actually ships (peak heartbeat age, worker liveness,
        utilization) the maximum is the honest summary of "what the run
        saw".  Pinned by the order-shuffled merge test.
        """
        self.add_counters(snapshot.get("counters", {}))
        for name, value in snapshot.get("gauges", {}).items():
            mine = self._gauges.get(name)
            self._gauges[name] = value if mine is None else max(mine, value)
        for name, state in snapshot.get("histograms", {}).items():
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.merge_state(state)

    def reset(self) -> None:
        """Zero everything.  Scope dicts are zeroed *in place* so references
        handed out by :meth:`counter_scope` stay live."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        for scope in self._scopes.values():
            for key in scope:
                scope[key] = 0
