"""Exporters: JSON snapshot, human table, Chrome-trace span dump.

Three read-only views over the same recorded state:

* :func:`to_json` — the ``BENCH_obs.json``-compatible snapshot (flat
  counters, gauges, histogram summaries with p50/p95/p99, span census);
* :func:`render_table` — the ASCII diagnostics block the CLI prints;
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format dump loadable in Perfetto (https://ui.perfetto.dev) or
  ``about:tracing``: one complete ("ph": "X") event per span,
  microsecond timestamps, workers appearing as their own pid rows.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.registry import MetricsRegistry
from repro.obs.recorder import SpanRecord
from repro.util.tables import format_table

__all__ = [
    "snapshot_summary",
    "to_json",
    "render_table",
    "chrome_trace",
    "write_chrome_trace",
]

#: Format marker of the JSON snapshot, bumped on breaking shape changes.
SNAPSHOT_SCHEMA = "repro-obs-snapshot/1"


def snapshot_summary(registry: MetricsRegistry) -> dict:
    """Histogram summaries (count/total/min/max/p50/p95/p99) by name."""
    return {
        name: histogram.summary()
        for name, histogram in registry.histograms().items()
    }


def to_json(
    registry: MetricsRegistry,
    spans: list[SpanRecord] | None = None,
    mode: str = "off",
) -> dict:
    """The ``BENCH_obs.json``-compatible snapshot of one process's view.

    The active demand kernel is stamped alongside the mode so every
    exported snapshot (``--obs-out``, trace artifacts, BENCH files) is
    self-describing about the machinery that produced its counters —
    ``repro trace --demand-kernel vec`` and a default run are otherwise
    indistinguishable on disk.  (Additive field; the schema stays
    ``repro-obs-snapshot/1``.)
    """
    # Deferred: repro.analysis.dbf imports repro.obs at module load.
    from repro.analysis.dbf import demand_kernel

    spans = spans or []
    by_name: dict[str, int] = {}
    for record in spans:
        by_name[record.name] = by_name.get(record.name, 0) + 1
    return {
        "schema": SNAPSHOT_SCHEMA,
        "mode": mode,
        "kernel": demand_kernel(),
        "counters": {
            name: value for name, value in sorted(registry.counters().items())
        },
        "gauges": registry.gauges(),
        "histograms": snapshot_summary(registry),
        "spans": {"count": len(spans), "by_name": by_name},
    }


def render_table(registry: MetricsRegistry, spans: list[SpanRecord] | None = None) -> str:
    """Human diagnostics block: one table per populated metric kind."""
    parts = []
    counters = registry.counters()
    nonzero = {name: value for name, value in counters.items() if value}
    if nonzero:
        parts.append(
            format_table(
                ["counter", "value"],
                [[name, nonzero[name]] for name in sorted(nonzero)],
                title="obs counters",
            )
        )
    gauges = registry.gauges()
    if gauges:
        parts.append(
            format_table(
                ["gauge", "value"],
                [[name, round(gauges[name], 4)] for name in sorted(gauges)],
                title="obs gauges",
            )
        )
    histograms = registry.histograms()
    if histograms:
        rows = []
        for name in sorted(histograms):
            s = histograms[name].summary()
            rows.append(
                [name, s["count"], s["p50"], s["p95"], s["p99"], s["max"]]
            )
        parts.append(
            format_table(
                ["histogram", "count", "p50", "p95", "p99", "max"],
                rows,
                title="obs histograms",
            )
        )
    if spans:
        by_name: dict[str, list[float]] = {}
        for record in spans:
            by_name.setdefault(record.name, []).append(record.duration)
        rows = [
            [name, len(durations), round(sum(durations), 4)]
            for name, durations in sorted(by_name.items())
        ]
        parts.append(
            format_table(
                ["span", "count", "total s"],
                rows,
                title="obs spans",
            )
        )
    return "\n\n".join(parts)


def chrome_trace(spans: list[SpanRecord]) -> dict:
    """Trace Event Format document for Perfetto / ``about:tracing``."""
    events = []
    for record in spans:
        args = {str(k): v for k, v in record.attrs.items()}
        if record.parent is not None:
            args["parent_span"] = record.parent
        events.append(
            {
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "ts": round(record.start * 1e6, 3),
                "dur": round(record.duration * 1e6, 3),
                "pid": record.pid,
                "tid": record.tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: list[SpanRecord], path: str | Path) -> Path:
    """Write the Chrome-trace dump to ``path`` and return it."""
    path = Path(path)
    path.write_text(
        json.dumps(chrome_trace(spans), indent=2) + "\n", encoding="utf-8"
    )
    return path
