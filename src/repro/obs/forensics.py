"""Crash forensics: postmortem bundles assembled from the event journal.

When the cluster backend gives up on a unit (``WorkerCrashError``) — and
on every lost-worker reclaim along the way — the conductor turns the
journal's raw event stream into a *postmortem bundle*: the dead worker's
last claim, its heartbeat history and last-heartbeat age, the unit's
full attempt chain, the fault spec and marker files active at the time,
and the last spans the worker shipped before dying.  The bundle is
attached to the error (``WorkerCrashError.postmortem``), journaled as a
``postmortem`` event, and dumped as ``postmortem-<unit>.json`` next to
the journal, so "why is shard X missing" is answerable from artifacts
alone — no re-run, no debugger, no surviving process required.

The assembly is pure (events in, dict out) and tolerant: every section
degrades to an empty value when the journal never saw the corresponding
events (e.g. a serial run has no claims or heartbeats), because a
postmortem must never raise while reporting someone else's death.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs.journal import read_events

__all__ = [
    "POSTMORTEM_SCHEMA",
    "assemble_postmortem",
    "write_postmortem",
    "describe_postmortem",
]

#: Format marker for the bundle (journals carry :data:`~repro.obs.
#: journal.JOURNAL_SCHEMA`; bundles version independently).
POSTMORTEM_SCHEMA = "repro-postmortem/1"

#: Unit-lifecycle events that belong in the attempt timeline.
_TIMELINE = (
    "claim", "exec-start", "exec-done", "retry", "reclaim",
    "lease-expired", "done", "crash",
)

#: Heartbeat stamps kept per bundle — enough to see the cadence and the
#: silence, not enough to drown the file.
HEARTBEAT_LIMIT = 20


def _fault_context(key: str) -> dict:
    """The fault-injection state active for ``key`` right now.

    Marker files are how :func:`repro.runner.faults.maybe_inject`
    coordinates fault-at-most-once, so a ``<key>.crash`` marker is
    direct evidence the crash fault fired for exactly this unit.
    """
    spec = os.environ.get("REPRO_RUNNER_FAULT", "")
    markers: list[str] = []
    marker_dir = os.environ.get("REPRO_RUNNER_FAULT_DIR", "")
    if marker_dir and os.path.isdir(marker_dir):
        markers = sorted(
            name
            for name in os.listdir(marker_dir)
            if name.startswith(key)
        )
    return {"spec": spec, "markers": markers}


def assemble_postmortem(source, key: str) -> dict:
    """Build the postmortem bundle for unit ``key``.

    ``source`` is a journal path or an already-parsed event list (the
    conductor re-reads the file; tests hand events straight in).
    """
    events = source if isinstance(source, list) else read_events(source)
    timeline = [
        event
        for event in events
        if event.get("key") == key and event.get("ev") in _TIMELINE
    ]
    claims = [event for event in timeline if event["ev"] == "claim"]
    last_claim = claims[-1] if claims else None
    retries = [event for event in timeline if event["ev"] == "retry"]
    # Dispatch attempts: every retry re-dispatches once on top of the
    # initial dispatch; claims undercount when a worker dies between
    # stealing and claiming, so take whichever chain saw more.
    attempts = max(len(claims), len(retries) + 1 if retries else 1)
    for event in retries:
        if isinstance(event.get("attempt"), int):
            attempts = max(attempts, event["attempt"])

    worker_pid = last_claim.get("pid") if last_claim else None
    worker_slot = last_claim.get("slot") if last_claim else None
    heartbeats = [
        event
        for event in events
        if event.get("ev") == "heartbeat" and event.get("pid") == worker_pid
    ][-HEARTBEAT_LIMIT:]
    lost = [
        event
        for event in events
        if event.get("ev") == "worker-lost" and event.get("slot") == worker_slot
    ]

    # Age of the worker's last sign of life, measured at the moment the
    # conductor acted on the death (reclaim/crash event) — falling back
    # to the journal's end when the run was cut down before reacting.
    reference = None
    for event in reversed(timeline):
        if event["ev"] in ("reclaim", "crash") and isinstance(
            event.get("mono"), (int, float)
        ):
            reference = event["mono"]
            break
    if reference is None and events:
        reference = events[-1].get("mono")
    last_sign = None
    for event in heartbeats + ([last_claim] if last_claim else []):
        mono = event.get("mono")
        if isinstance(mono, (int, float)):
            last_sign = mono if last_sign is None else max(last_sign, mono)
    heartbeat_age = (
        round(reference - last_sign, 6)
        if reference is not None and last_sign is not None
        else None
    )

    last_spans = None
    if worker_pid is not None:
        for event in reversed(events):
            if event.get("ev") == "exec-done" and event.get("pid") == worker_pid:
                last_spans = {
                    "key": event.get("key"),
                    "spans": event.get("spans"),
                    "seconds": event.get("seconds"),
                }
                break

    return {
        "schema": POSTMORTEM_SCHEMA,
        "unit": key,
        "attempts": attempts,
        "last_claim": last_claim,
        "worker": {"slot": worker_slot, "pid": worker_pid},
        "last_heartbeat_age": heartbeat_age,
        "heartbeats": heartbeats,
        "worker_lost": lost,
        "timeline": timeline,
        "last_spans": last_spans,
        "fault": _fault_context(key),
    }


def write_postmortem(bundle: dict, directory: str | Path) -> Path:
    """Dump ``bundle`` as ``postmortem-<unit>.json`` under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"postmortem-{bundle['unit'][:12]}.json"
    path.write_text(json.dumps(bundle, indent=2) + "\n", encoding="utf-8")
    return path


def describe_postmortem(bundle: dict, path: Path | None = None) -> str:
    """One human paragraph for ``WorkerCrashError.detail``."""
    parts = [f"postmortem for unit {bundle['unit'][:12]}"]
    worker = bundle.get("worker") or {}
    if worker.get("pid") is not None:
        parts.append(
            f"last claimed by worker slot {worker.get('slot')} "
            f"(pid {worker.get('pid')})"
        )
    parts.append(f"{bundle.get('attempts', 0)} attempt(s)")
    age = bundle.get("last_heartbeat_age")
    if age is not None:
        parts.append(f"last heartbeat {age:.2f}s before give-up")
    fault = bundle.get("fault") or {}
    if fault.get("spec"):
        parts.append(f"active fault spec {fault['spec']!r}")
    if fault.get("markers"):
        parts.append(f"fault markers {fault['markers']}")
    if path is not None:
        parts.append(f"bundle at {path}")
    return ", ".join(parts)
