"""Recorder protocol, span records and the nestable ``span()`` context.

The recorder is the one switch the instrumented layers consult:

* :class:`NullRecorder` (the default) — ``enabled`` is False, so every
  instrumentation site reduces to a single attribute check and the hot
  paths pay effectively nothing;
* :class:`MetricsRecorder` — counters/gauges/histograms flow into the
  registry, spans are still skipped;
* :class:`TraceRecorder` — metrics plus :class:`SpanRecord` collection
  for the Chrome-trace export.

Span nesting is tracked per thread: each open span pushes its name on a
thread-local stack, so records carry their depth and parent name — enough
for ownership attribution in tables, while the Chrome trace gets nesting
for free from timestamp containment on the same pid/tid row.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs import clock
from repro.obs.registry import MetricsRegistry

__all__ = [
    "SpanRecord",
    "Recorder",
    "NullRecorder",
    "MetricsRecorder",
    "TraceRecorder",
]


@dataclass
class SpanRecord:
    """One closed span: monotonic wall time plus ownership attribution."""

    name: str
    start: float  #: monotonic seconds (comparable across forked workers)
    duration: float
    pid: int
    tid: int
    depth: int  #: 0 = top-level in its thread
    parent: str | None  #: enclosing span's name, if any
    attrs: dict = field(default_factory=dict)


class Recorder:
    """Base recorder: the injectable sink the instrumentation writes to.

    ``registry`` is shared — all recorders write into the process registry
    passed at construction (the global one by default), so swapping
    recorders never loses accumulated metrics.
    """

    enabled = True
    records_spans = False

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry

    def record_span(self, record: SpanRecord) -> None:  # pragma: no cover
        """Spans are dropped unless the recorder collects them."""


class NullRecorder(Recorder):
    """Recording off: instrumentation sites see ``enabled`` False and skip
    all metric work; the always-on counter scopes still function."""

    enabled = False


class MetricsRecorder(Recorder):
    """Metrics on, span collection off."""


class TraceRecorder(MetricsRecorder):
    """Metrics plus span collection (the ``trace`` mode)."""

    records_spans = True

    def __init__(self, registry: MetricsRegistry):
        super().__init__(registry)
        self.spans: list[SpanRecord] = []

    def record_span(self, record: SpanRecord) -> None:
        self.spans.append(record)


_STACK = threading.local()


def _span_stack() -> list[str]:
    stack = getattr(_STACK, "names", None)
    if stack is None:
        stack = _STACK.names = []
    return stack


@contextmanager
def span_context(recorder: Recorder, name: str, attrs: dict):
    """The implementation behind :func:`repro.obs.span`.

    No-op (beyond one truthiness check) when the recorder does not collect
    spans; otherwise times the block on the monotonic clock and records a
    :class:`SpanRecord` on exit — also when the block raises, so a failing
    shard still shows up in the trace with its true duration.
    """
    if not recorder.records_spans:
        yield
        return
    stack = _span_stack()
    depth = len(stack)
    parent = stack[-1] if stack else None
    stack.append(name)
    start = clock.monotonic()
    try:
        yield
    finally:
        duration = clock.monotonic() - start
        stack.pop()
        recorder.record_span(
            SpanRecord(
                name=name,
                start=start,
                duration=duration,
                pid=os.getpid(),
                tid=threading.get_ident(),
                depth=depth,
                parent=parent,
                attrs=attrs,
            )
        )
