"""Live campaign status from the event journal: ``repro status``.

:class:`CampaignStatus` folds journal events (see
:mod:`repro.obs.journal`) into the state a second terminal wants while a
campaign runs — workers alive, per-sweep progress, fault counters,
shard-latency quantiles and straggler detection — and
:func:`render_status` turns it into the text block the CLI prints.  The
fold is pure and incremental (one event at a time, any prefix of a
journal is a valid state), which is what lets ``--follow`` tail a
running campaign through a :class:`~repro.obs.journal.JournalFollower`
without re-reading the file.

Straggler rule: a unit is *in flight* from its ``claim``/``exec-start``
event until its ``done``/``exec-done``; once at least
:data:`MIN_LATENCY_SAMPLES` shard latencies are known, any in-flight
unit older than ``k`` × the running shard-seconds p95 is flagged
(``k`` = ``REPRO_OBS_STRAGGLER``, default 4.0).  Ages are computed on
the monotonic clock, which is system-wide on Linux — comparable between
the campaign's workers and the status process watching them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import clock
from repro.obs.registry import Histogram
from repro.util.env import straggler_factor_from_env
from repro.util.tables import format_table

__all__ = ["CampaignStatus", "Straggler", "render_status"]

#: Latency samples required before straggler detection arms: a p95 over
#: a handful of shards is noise, and flagging the first slow bucket of a
#: fresh campaign would cry wolf on every run.
MIN_LATENCY_SAMPLES = 5


@dataclass(frozen=True)
class Straggler:
    """One in-flight unit whose age exceeds the straggler threshold."""

    key: str
    label: str
    m: int | None
    bucket: float | None
    age: float
    threshold: float


@dataclass
class _SweepProgress:
    total: int = 0
    done: int = 0
    cached: int = 0
    retried: int = 0


class CampaignStatus:
    """Incremental fold of journal events into a live status view."""

    def __init__(self, straggler_factor: float | None = None):
        self.straggler_factor = (
            straggler_factor
            if straggler_factor is not None
            else straggler_factor_from_env()
        )
        self.schema: str | None = None
        self.campaign: str | None = None
        self.ended = False
        self.workers_alive: int | None = None
        self.workers_total: int | None = None
        self.lost_workers = 0
        self.lease_expiries = 0
        self.retries = 0
        self.crashes = 0
        self.postmortems = 0
        self.busy_seconds = 0.0
        self.shard_seconds = Histogram()
        self.sweeps: dict[tuple[str, int | None], _SweepProgress] = {}
        #: key -> (start mono, label, m, bucket) for units in flight
        self.inflight: dict[str, tuple[float, str, int | None, float | None]] = {}
        self.first_mono: float | None = None
        self.last_mono: float | None = None
        self.last_snapshot: dict | None = None
        self.events = 0

    # -- folding ------------------------------------------------------------
    def absorb(self, events) -> "CampaignStatus":
        for event in events:
            self.apply(event)
        return self

    def apply(self, event: dict) -> None:
        self.events += 1
        mono = event.get("mono")
        if isinstance(mono, (int, float)):
            self.first_mono = mono if self.first_mono is None else self.first_mono
            self.last_mono = mono
        ev = event.get("ev")
        if ev == "open":
            self.schema = event.get("schema")
            self.campaign = event.get("campaign", self.campaign)
        elif ev == "campaign-start":
            self.campaign = event.get("campaign", self.campaign)
        elif ev == "campaign-end":
            self.ended = True
        elif ev == "sweep-start":
            progress = self._sweep(event)
            progress.total += int(event.get("units", 0))
            progress.cached += int(event.get("cached", 0))
            progress.done += int(event.get("cached", 0))
        elif ev == "done":
            self._sweep(event).done += 1
            self.inflight.pop(event.get("key", ""), None)
        elif ev == "claim" or ev == "exec-start":
            key = event.get("key")
            if key and isinstance(mono, (int, float)):
                # exec-start refreshes a claim's stamp: age then measures
                # the *attempt*, not time spent waiting in the queue.
                self.inflight[key] = (
                    mono,
                    event.get("label", "?"),
                    event.get("m"),
                    event.get("bucket"),
                )
        elif ev == "exec-done":
            self.inflight.pop(event.get("key", ""), None)
            seconds = event.get("seconds")
            if isinstance(seconds, (int, float)):
                self.shard_seconds.observe(seconds)
                self.busy_seconds += seconds
        elif ev == "retry":
            self.retries += 1
            self._sweep(event).retried += 1
        elif ev == "reclaim":
            self.inflight.pop(event.get("key", ""), None)
        elif ev == "worker-lost":
            self.lost_workers += 1
        elif ev == "lease-expired":
            self.lease_expiries += 1
        elif ev == "workers":
            self.workers_alive = event.get("alive")
            self.workers_total = event.get("total")
        elif ev == "crash":
            self.crashes += 1
        elif ev == "postmortem":
            self.postmortems += 1
        elif ev == "snapshot":
            self.last_snapshot = event.get("registry")

    def _sweep(self, event: dict) -> _SweepProgress:
        key = (event.get("label", "?"), event.get("m"))
        progress = self.sweeps.get(key)
        if progress is None:
            progress = self.sweeps[key] = _SweepProgress()
        return progress

    # -- derived views --------------------------------------------------------
    def total_units(self) -> int:
        return sum(p.total for p in self.sweeps.values())

    def done_units(self) -> int:
        return sum(p.done for p in self.sweeps.values())

    def utilization(self) -> float | None:
        """Busy worker seconds over available worker seconds, so far."""
        if (
            not self.workers_total
            or self.first_mono is None
            or self.last_mono is None
        ):
            return None
        wall = self.last_mono - self.first_mono
        if wall <= 0:
            return None
        return min(1.0, self.busy_seconds / (self.workers_total * wall))

    def latency_quantiles(self) -> dict[str, float | None]:
        return {
            "p50": self.shard_seconds.quantile(0.5),
            "p95": self.shard_seconds.quantile(0.95),
            "p99": self.shard_seconds.quantile(0.99),
        }

    def stragglers(self, now: float | None = None) -> list[Straggler]:
        """In-flight units older than ``k`` × the running p95.

        ``now`` defaults to this process's monotonic clock for a live
        campaign, and to the journal's last timestamp once the campaign
        ended (nothing can be "in flight" relative to a later wall).
        """
        if self.shard_seconds.count < MIN_LATENCY_SAMPLES:
            return []
        p95 = self.shard_seconds.quantile(0.95)
        if not p95:
            return []
        threshold = self.straggler_factor * p95
        if now is None:
            now = self.last_mono if self.ended else clock.monotonic()
        if now is None:
            return []
        found = [
            Straggler(
                key=key,
                label=label,
                m=m,
                bucket=bucket,
                age=now - since,
                threshold=threshold,
            )
            for key, (since, label, m, bucket) in self.inflight.items()
            if now - since > threshold
        ]
        return sorted(found, key=lambda s: s.age, reverse=True)


def render_status(status: CampaignStatus, now: float | None = None) -> str:
    """The human status block ``repro status`` prints."""
    title = status.campaign or "campaign"
    state = "finished" if status.ended else "running"
    lines = [f"{title}: {state} — {status.done_units()}/"
             f"{status.total_units()} shards ({status.events} events)"]
    if status.workers_total is not None:
        line = f"workers: {status.workers_alive}/{status.workers_total} alive"
        utilization = status.utilization()
        if utilization is not None:
            line += f", utilization {utilization:.0%}"
        lines.append(line)
    quantiles = status.latency_quantiles()
    if status.shard_seconds.count:
        lines.append(
            "shard seconds: "
            + "  ".join(
                f"{name} {value:.3f}"
                for name, value in quantiles.items()
                if value is not None
            )
            + f"  (n={status.shard_seconds.count})"
        )
    faults = []
    if status.retries:
        faults.append(f"{status.retries} retried")
    if status.lost_workers:
        faults.append(f"{status.lost_workers} workers lost")
    if status.lease_expiries:
        faults.append(f"{status.lease_expiries} leases expired")
    if status.crashes:
        faults.append(f"{status.crashes} units given up")
    if faults:
        lines.append("faults: " + ", ".join(faults))
    if status.sweeps:
        rows = [
            [
                label,
                "-" if m is None else m,
                f"{p.done}/{p.total}",
                p.cached,
                p.retried,
            ]
            for (label, m), p in sorted(
                status.sweeps.items(), key=lambda kv: (kv[0][0], kv[0][1] or 0)
            )
        ]
        lines.append("")
        lines.append(
            format_table(
                ["sweep", "m", "done", "cached", "retried"],
                rows,
                title="progress",
            )
        )
    stragglers = status.stragglers(now)
    if stragglers:
        lines.append("")
        lines.append(
            format_table(
                ["unit", "sweep", "m", "bucket", "age s", "> k*p95 s"],
                [
                    [
                        s.key[:12],
                        s.label,
                        "-" if s.m is None else s.m,
                        "-" if s.bucket is None else s.bucket,
                        round(s.age, 2),
                        round(s.threshold, 2),
                    ]
                    for s in stragglers
                ],
                title=f"stragglers (k={status.straggler_factor:g})",
            )
        )
    return "\n".join(lines)
