"""repro — Utilization-difference based partitioned MC scheduling.

A production-quality reproduction of Ramanathan & Easwaran,
"Utilization Difference Based Partitioned Scheduling of Mixed-Criticality
Systems" (DATE 2017), including:

* the dual-criticality sporadic task model (:mod:`repro.model`);
* uniprocessor MC schedulability tests — EDF-VD, Ekberg-Yi, ECDF, AMC-rtb
  and AMC-max (:mod:`repro.analysis`);
* the UDP partitioning strategies and all published baselines over one
  generic allocation engine (:mod:`repro.core`);
* the fair synthetic task-set generator (:mod:`repro.generator`);
* a discrete-event MC simulator used to validate the analyses
  (:mod:`repro.sim`);
* the experiment harness regenerating every figure of the paper
  (:mod:`repro.experiments`);
* graceful LO-criticality service degradation — imprecise budgets and
  elastic periods as alternatives to dropping LC work at the mode switch
  (:mod:`repro.degradation`).

Quickstart::

    import repro

    ts = repro.MCTaskSetGenerator(m=4).generate(
        repro.derive_rng("quickstart"), u_hh=0.6, u_lh=0.3, u_ll=0.3
    )
    result = repro.partition(ts, m=4, test=repro.EDFVDTest(),
                             strategy=repro.cu_udp())
    print(result.describe())
"""

from repro.model import (
    Criticality,
    MCTask,
    TaskSet,
    UtilizationSummary,
    validate_task,
    validate_taskset,
)
from repro.analysis import (
    AMCmaxTest,
    AMCrtbTest,
    AnalysisContext,
    AnalysisResult,
    ECDFTest,
    EDFTest,
    EDFVDTest,
    EYTest,
    SchedulabilityTest,
    edfvd_scaling_factor,
    get_test,
    registered_tests,
)
from repro.core import (
    PartitionResult,
    PartitioningStrategy,
    UnsupportedTasksetError,
    bfd,
    ca_f_f,
    ca_nosort_f_f,
    ca_udp,
    ca_wu_f,
    cu_udp,
    eca_wu_f,
    ffd,
    get_strategy,
    partition,
    registered_strategies,
    wfd,
)
from repro.degradation import (
    ElasticPeriod,
    FullDrop,
    ImpreciseBudget,
    ServiceModel,
    parse_service_model,
)
from repro.generator import (
    GeneratorConfig,
    GridPoint,
    MCTaskSetGenerator,
    UtilizationGrid,
    log_uniform_periods,
    randfixedsum,
    uunifast,
    uunifast_discard,
)
from repro.util import derive_rng, spawn_seed

__version__ = "1.0.0"

__all__ = [
    # model
    "Criticality",
    "MCTask",
    "TaskSet",
    "UtilizationSummary",
    "validate_task",
    "validate_taskset",
    # analysis
    "AMCmaxTest",
    "AMCrtbTest",
    "AnalysisContext",
    "AnalysisResult",
    "ECDFTest",
    "EDFTest",
    "EDFVDTest",
    "EYTest",
    "SchedulabilityTest",
    "edfvd_scaling_factor",
    "get_test",
    "registered_tests",
    # core
    "PartitionResult",
    "PartitioningStrategy",
    "UnsupportedTasksetError",
    "partition",
    "ca_udp",
    "cu_udp",
    "ca_wu_f",
    "ca_f_f",
    "ca_nosort_f_f",
    "eca_wu_f",
    "ffd",
    "wfd",
    "bfd",
    "get_strategy",
    "registered_strategies",
    # degradation
    "ServiceModel",
    "FullDrop",
    "ImpreciseBudget",
    "ElasticPeriod",
    "parse_service_model",
    # generator
    "GeneratorConfig",
    "GridPoint",
    "MCTaskSetGenerator",
    "UtilizationGrid",
    "log_uniform_periods",
    "randfixedsum",
    "uunifast",
    "uunifast_discard",
    # util
    "derive_rng",
    "spawn_seed",
    "__version__",
]
