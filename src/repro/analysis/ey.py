"""Ekberg-Yi demand-bound test with deadline tuning (S5).

Implements the ECRTS 2012 "Bounding and shaping the demand of
mixed-criticality sporadic tasks" analysis: the two-mode dbf of
:mod:`repro.analysis.dbf` (without the trigger refinement) combined with the
iterative tuning loop that shrinks one virtual deadline at a time, always
picking the task with the steepest HI-demand reduction at the earliest
violation point.

In the DATE 2017 paper this test (under the name EY) backs the two baseline
partitioned algorithms ECA-Wu-F-EY and CA-F-F-EY; the paper characterizes it
as "relatively less efficient in terms of schedulability" than ECDF, which
the test suite verifies empirically on random batches.

Valid for implicit- and constrained-deadline dual-criticality task sets.
"""

from __future__ import annotations

from repro.model import TaskSet
from repro.analysis.dbf import DEFAULT_HORIZON_CAP
from repro.analysis.interface import (
    AnalysisResult,
    SchedulabilityTest,
    register_test,
)
from repro.analysis.vdtuning import run_tuning_stages

__all__ = ["EYTest"]

#: EY is a single-stage tuning chain: steepest descent, no refinement.
_EY_STAGES: tuple[tuple[str, bool], ...] = (("steepest", False),)


class EYTest(SchedulabilityTest):
    """Ekberg-Yi dbf test with steepest-descent virtual-deadline tuning."""

    name = "ey"

    def __init__(self, horizon_cap: int = DEFAULT_HORIZON_CAP):
        self.horizon_cap = horizon_cap

    def analyze(self, taskset: TaskSet) -> AnalysisResult:
        outcome = run_tuning_stages(taskset, _EY_STAGES, self.horizon_cap)
        return AnalysisResult(
            outcome.schedulable,
            virtual_deadlines=dict(outcome.virtual_deadlines),
            detail=outcome.detail,
        )

    def supports_service_model(self, service) -> bool:
        """The dbf machinery carries the residual LC HI-mode demand term."""
        return True

    def make_context(self, service=None):
        """Incremental context sharing dbf work across per-core probes."""
        from repro.analysis.context import DemandContext

        return DemandContext(self, _EY_STAGES, self.horizon_cap, service=service)

    def batch_screen(self):
        """Partial probe screen — the context's utilization pre-screen plus
        the demand-level fast-path screens for this test's tuning chain."""
        from repro.analysis.prefilter import DemandPreScreen

        return DemandPreScreen(stages=_EY_STAGES, horizon_cap=self.horizon_cap)


register_test("ey", EYTest)
