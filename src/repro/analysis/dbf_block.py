"""Block-shrink planning for the ``block`` demand kernel.

The scalar shrink descent (:func:`repro.analysis.vdtuning._descend`)
commits **one** task per exact HI probe: rank the candidates at the
current violation, shrink the best one just far enough to clear the
deficit, re-probe.  PR 9 measured that wall as *memo-bound* — each
iteration is already as cheap as memoization allows, so the remaining
lever is committing **more shrink per exact probe**, i.e. visiting fewer
distinct violation fronts.

This module plans that bigger commit.  From the scaffolding the scalar
descent already memoizes, :func:`plan_block` derives for several ranked
candidates at once their *minimal LO-feasible virtual deadline* ``V*``
(:meth:`~repro.analysis.vdtuning.DemandEngine.lo_min_deadline` — the
closed-form :func:`~repro.analysis.dbf_vec.vstar_own` machinery under
the vec/block kernels) and proposes jumping each straight to its
boundary.  Two sound clamps make the *joint* jump provable:

* **Per-task lower bound.**  Each ``V*`` is a *lower* bound on the
  task's boundary at every assignment the scalar descent could reach
  from here: other tasks only ever shrink, which only removes LO slack
  and raises the boundary — so the jump never lands below anything the
  scalar descent could itself have committed (the property the
  block-vs-scalar oracle test asserts).
* **Sequential virtual walk.**  Committing several jumps at once is
  LO-safe only if the *combined* assignment stays feasible, and the
  tasks' boundaries couple through the shared LO slack.  The planner
  therefore walks the ranked candidates against a *virtual* copy of the
  assignment: each candidate's ``V*`` is evaluated with every earlier
  jump already applied, so each step is exactly LO-feasible by the same
  verdict machinery the scalar ``max_lo_feasible_shrink`` inverts, and
  the final joint assignment — reached through individually proven
  steps — is LO-feasible outright.  No screen-style approximation is
  involved; what the walk *skips* is the exact HI probe the scalar
  descent pays between any two commits.

Candidates whose boundary the plan cannot settle — ``V*`` unavailable
(horizon trouble), no remaining shrink, or no HI gain at the current
violation — fall through to the scalar per-task step, and any reject of
the block trajectory falls back to a
full scalar descent.  The ``block`` kernel therefore accepts at least
everything the scalar kernels accept; the fig3–fig7 differential suite
asserts the verdicts (acceptance ratios, WAR tables, shard-cache bytes)
are *identical* in practice.  What the block kernel deliberately gives
up is the bit-identical descent *trajectory*: iteration counts and the
committed virtual deadlines of accepted sets may differ from
forward/qpa/vec.

Diagnostics live in the always-on ``kernel.block.*`` counter scope,
mirroring the vec kernel's ``kernel.vec.*``: ``block-jumps`` (blocks
committed), ``block-settled`` (tasks jumped inside those blocks),
``block-residual`` (ranked candidates the planner had to leave to the
scalar step), ``block-fallback`` (descents re-run on the scalar path
after a block-trajectory reject).
"""

from __future__ import annotations

from repro.obs import REGISTRY as _OBS_REGISTRY

__all__ = ["plan_block", "block_counters", "reset_block_counters"]

# Always-on like the "dbf" and "kernel.vec" scopes: the registry hands
# back a mutable dict, so planning keeps plain ``+= 1`` cost while
# snapshots and worker->parent merging see ``kernel.block.<key>``.
_COUNTERS = _OBS_REGISTRY.counter_scope(
    "kernel.block",
    (
        "block-jumps",  # committed multi-task blocks
        "block-settled",  # tasks jumped to their V* boundary in a block
        "block-residual",  # ranked candidates left to the scalar step
        "block-fallback",  # scalar-descent re-runs after a block reject
    ),
)


def plan_block(engine, vd, ranked, frozen, violation):
    """Plan a joint boundary jump for the current descent assignment.

    Walks ``ranked`` (the scalar descent's candidate ranking for ``vd``,
    best first, the ``(key, task, desired)`` entries of
    ``_rank_candidates``) against a virtual copy of the assignment:
    each candidate's boundary is evaluated with every earlier jump
    already applied, so every commit is exactly LO-feasible.  Returns
    ``{task_id: new_deadline}`` — empty when no candidate can be
    settled, in which case the caller takes one scalar step instead.

    Pure with respect to the descent state: only reads ``vd`` and the
    engine's memoized scaffolding (warming ``("vmin", ...)``/
    ``("lofp", ...)`` entries keyed by the virtual assignments — valid
    cache entries for any later query at the same signature), never
    mutates either.
    """
    commits: dict[int, int] = {}
    virtual = dict(vd)
    for _key, task, _desired in ranked:
        tid = task.task_id
        if tid in frozen:
            continue
        base = virtual[tid]
        v_min = engine.lo_min_deadline(virtual, task)
        if v_min is None or v_min >= base:
            # Horizon trouble, never LO-feasible, or already at (or past)
            # the boundary vs the virtually shrunk others — scalar's
            # problem if the violation survives the block.
            _COUNTERS["block-residual"] += 1
            continue
        if engine.hi_gain(task, base, base - v_min, violation) <= 0:
            # The jump would not lower HI demand at the violation the
            # descent is currently clearing; committing it risks
            # non-progress, so leave the task to the scalar freeze logic.
            _COUNTERS["block-residual"] += 1
            continue
        commits[tid] = v_min
        virtual[tid] = v_min

    if commits:
        _COUNTERS["block-jumps"] += 1
        _COUNTERS["block-settled"] += len(commits)
    return commits


def block_counters() -> dict[str, int]:
    """Snapshot of the process-local block-descent diagnostics."""
    return dict(_COUNTERS)


def reset_block_counters() -> None:
    """Zero the block-descent diagnostics (process-local slice)."""
    for key in _COUNTERS:
        _COUNTERS[key] = 0
