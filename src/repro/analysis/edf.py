"""Plain (non-MC) EDF schedulability tests — substrate S3.

Two variants are exposed through :class:`EDFTest`:

* ``mode="reservation"`` (default): every HC task is budgeted at its HI-mode
  WCET at all times.  This is the classical static-reservation design the
  paper's introduction contrasts MC scheduling against, and it is trivially
  MC-correct (no mode-switch logic needed).
* ``mode="lo"``: every task is budgeted at its LO-mode WCET.  This is *not*
  MC-correct for HC tasks; it exists as the non-MC substrate used for
  baselines, LC-only cores and generator sanity checks.

For implicit deadlines the utilization bound ``U <= 1`` is exact; for
constrained deadlines the processor-demand criterion (dbf) is used.
"""

from __future__ import annotations

from repro.model import TaskSet
from repro.analysis.dbf import DemandScenario, HorizonExceeded
from repro.analysis.interface import (
    AnalysisResult,
    SchedulabilityTest,
    register_test,
)

__all__ = ["EDFTest", "edf_utilization_schedulable", "edf_demand_schedulable"]

_EPS = 1e-9


def edf_utilization_schedulable(utilization: float) -> bool:
    """EDF exact test for implicit-deadline sporadic tasks: ``U <= 1``."""
    return utilization <= 1.0 + _EPS


def edf_demand_schedulable(taskset: TaskSet, use_hi_wcet: bool) -> bool:
    """Processor-demand criterion for constrained-deadline sporadic tasks.

    ``use_hi_wcet`` selects the HI-mode WCET for HC tasks (reservation
    analysis); LC tasks always use their (only) LO WCET.
    """
    if use_hi_wcet:
        # Re-express each HC task as a single-mode task at C_H.  LC tasks are
        # untouched.  This stays within the same dbf machinery by giving
        # every task wcet_lo == wcet_hi.
        from dataclasses import replace

        tasks = [
            replace(t, wcet_lo=t.wcet_hi) if t.is_high else t for t in taskset
        ]
        taskset = TaskSet(tasks)
    scenario = DemandScenario(taskset)
    try:
        return scenario.lo_violation() is None
    except HorizonExceeded:
        return False


class EDFTest(SchedulabilityTest):
    """Uniprocessor EDF test (see module docstring for the two modes)."""

    def __init__(self, mode: str = "reservation"):
        if mode not in ("reservation", "lo"):
            raise ValueError(f"mode must be 'reservation' or 'lo', got {mode!r}")
        self.mode = mode
        self.name = f"edf-{mode}"

    def supports_service_model(self, service) -> bool:
        """EDF never drops LC work: the reservation certificate budgets
        full LC service at all times, which dominates every degraded
        service level, so any service model is (trivially) covered."""
        return True

    def analyze(self, taskset: TaskSet) -> AnalysisResult:
        use_hi = self.mode == "reservation"
        if taskset.is_implicit_deadline:
            util = sum(
                (t.utilization_hi if use_hi and t.is_high else t.utilization_lo)
                for t in taskset
            )
            ok = edf_utilization_schedulable(util)
            return AnalysisResult(ok, detail=f"U={util:.4f}")
        ok = edf_demand_schedulable(taskset, use_hi_wcet=use_hi)
        return AnalysisResult(ok, detail="processor-demand criterion")


register_test("edf-reservation", lambda: EDFTest("reservation"))
register_test("edf-lo", lambda: EDFTest("lo"))
