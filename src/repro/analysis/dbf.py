"""Demand-bound-function machinery for dual-criticality systems (S2).

This module implements the two-mode demand abstraction used by the
Ekberg-Yi (EY, ECRTS 2012) and ECDF (Easwaran, RTSS 2013) tests:

LO mode
    Every task contributes the standard sporadic dbf with its LO-mode WCET
    and its *LO-mode deadline* (the virtual deadline ``Dv_i <= D_i`` for HC
    tasks, the real deadline for LC tasks)::

        dbf_LO(i, l) = max(0, floor((l - d_i) / T_i) + 1) * C_i^L

HI mode
    Under the classical drop-at-switch semantics LC tasks contribute
    nothing.  An HC task behaves like a sporadic task whose deadline is the
    *residual* ``D_i - Dv_i``, with a correction for the carry-over job (the
    job active at the mode-switch instant): if the switch occurs ``d`` time
    units before the job's virtual deadline, LO-mode schedulability
    guarantees the job already executed at least ``C_i^L - d``, so::

        dbf_HI(i, l) = (floor(x / T_i) + 1) * C_i^H - max(0, C_i^L - x mod T_i)

    for ``x = l - (D_i - Dv_i) >= 0`` (0 otherwise).  This is the EY bound;
    it is tight for the single-task abstraction (the carry-over position that
    maximizes demand is exactly ``d = x mod T_i``).

Residual LC service (degradation models, :mod:`repro.degradation`)
    When the task set carries a service model that keeps LC tasks alive in
    HI mode (imprecise budgets ``C^HI = floor(rho C^L)`` or elastic periods
    ``T^HI = ceil(lambda T)``), each such LC task contributes the same
    EY-shaped bound with residual deadline 0 (its LO deadline *is* its real
    deadline), HI budget ``C^HI`` and HI period ``T^HI``::

        dbf_HI^LC(i, l) = (floor(l / T_i^HI) + 1) * C_i^HI
                          - min(C_i^HI, max(0, C_i^L - l mod T_i^HI))

    The extra inner ``min`` clamps the carry-over reduction at the degraded
    budget: LO-mode progress (``>= C^L - d`` by deadline distance ``d``)
    can discharge at most the whole degraded allowance.  For HC tasks the
    clamp is inert (``C^H >= C^L``), which is why one generalized formula
    serves both and the drop-at-switch results stay bit-identical.

Trigger refinement (used by ECDF)
    In a partitioned system a core enters HI mode only when one of *its own*
    HC tasks exhausts its LO budget.  The triggering job has executed exactly
    ``C_j^L``, so its carry-over demand is at most ``C_j^H - C_j^L`` — which
    is ``min(C_j^L, x_j mod T_j)`` less than the EY bound assumes.  Since
    *some* local HC task must be the trigger, the total HI demand can be
    soundly reduced by ``min_j`` of that quantity (0 for tasks whose
    carry-over deadline falls outside the window).

Check points
    Total demand minus ``l`` is piecewise linear and convex between
    *breakpoints* (dbf jumps at ``d_i + k T_i`` and carry-over ramp ends at
    ``d_i + k T_i + C_i^L``), so evaluating at every breakpoint plus the
    horizon is exact.  The horizon is the classical bound: any violation
    satisfies ``l < sum(u_i * max(0, T_i - d_i)) / (1 - U)``.

Violation kernels
    The predicate both checks decide — ``exists l: dbf(l) > l`` — has two
    exact deciders here.  The **forward kernel** enumerates every
    breakpoint up to the horizon in chunks (the historical path, kept as
    the differential oracle).  The **QPA kernel** (after Zhang & Burns'
    Quick Processor-demand Analysis) runs the backward fixed-point
    iteration ``l <- dbf(l)`` / ``l <- max breakpoint < l`` from the
    horizon down; because every demand function here is a monotone
    non-decreasing step/ramp function whose violations occur at
    breakpoints, the iteration decides the predicate exactly and — when it
    stops on a violation — stops on the **largest** violating length
    (every iterate bounds all violations from above).  The earliest
    violation, which the tuning descent consumes, is then recovered by the
    forward scan below the witness.  Monotonicity holds for the *refined*
    HI demand too: the trigger cut of task ``j`` grows only inside task
    ``j``'s own carry-over ramp, where its dbf term grows at the same unit
    rate, so ``dbf - cut_j`` is non-decreasing for every ``j`` and the
    refined demand is their max.  :func:`set_demand_kernel` switches the
    default; an O(n·k) Fisher–Baruah-style upper-bound screen
    (:func:`approx_accepts`) settles clear passes before either kernel
    runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.model import MCTask, TaskSet
from repro.obs import REGISTRY as _OBS_REGISTRY
from repro.util.env import (
    approx_k_from_env,
    demand_kernel_from_env,
    scan_chunk_from_env,
)

__all__ = [
    "DEFAULT_HORIZON_CAP",
    "DemandScenario",
    "HorizonExceeded",
    "LoShrinkProbe",
    "approx_accepts",
    "demand_kernel",
    "kernel_counters",
    "lo_feasible_exact",
    "overload_marker",
    "qpa_violation_search",
    "reset_kernel_counters",
    "set_demand_kernel",
    "sporadic_dbf",
    "hi_mode_dbf",
    "lc_hi_mode_dbf",
    "lc_hi_mode_entries",
    "lc_hi_mode_tasks",
]

#: Above this horizon the dbf tests conservatively reject (sound: they never
#: unsafely accept).  Only near-saturated cores hit the cap.
DEFAULT_HORIZON_CAP = 100_000


class HorizonExceeded(Exception):
    """The dbf check horizon exceeds the configured cap.

    Callers treat this as "not schedulable" (conservative rejection).
    """


def sporadic_dbf(wcet: int, deadline: int, period: int, length: int) -> int:
    """Standard sporadic demand bound ``max(0, floor((l-D)/T)+1) * C``."""
    if length < deadline:
        return 0
    return ((length - deadline) // period + 1) * wcet


def hi_mode_dbf(task: MCTask, virtual_deadline: int, length: int) -> int:
    """EY HI-mode demand bound of one HC task (scalar reference version).

    ``virtual_deadline`` is the LO-mode deadline ``Dv_i``; see module
    docstring.  Used by tests and as a readable specification — the batch
    path in :class:`DemandScenario` is vectorized.
    """
    if not task.is_high:
        return 0
    residual = task.deadline - virtual_deadline
    x = length - residual
    if x < 0:
        return 0
    jobs = x // task.period + 1
    reduction = max(0, task.wcet_lo - (x % task.period))
    return jobs * task.wcet_hi - reduction


def lc_hi_mode_dbf(
    budget: int, period: int, wcet_lo: int, length: int
) -> int:
    """HI-mode demand bound of one degraded LC task (scalar reference).

    ``budget``/``period`` are the HI-mode sporadic parameters the service
    model assigns (see module docstring); ``wcet_lo`` is the LO-mode budget
    whose guaranteed progress discharges the carry-over job.  Used by tests
    as the readable specification of the batch path.
    """
    if budget <= 0 or length < 0:
        return 0
    jobs = length // period + 1
    reduction = min(budget, max(0, wcet_lo - (length % period)))
    return jobs * budget - reduction


def lc_hi_mode_entries(taskset: TaskSet) -> list[tuple[int, "_ModeTask"]]:
    """``(task_id, HI-mode _ModeTask)`` for each contributing LC task of
    ``taskset`` under its attached service model (empty under
    drop-at-switch).

    The single definition of the degraded-LC abstraction — residual
    deadline 0, degraded budget/period, the LO budget as the carry-over
    reduction allowance — shared by :class:`DemandScenario` and the
    memo-backed :class:`~repro.analysis.vdtuning.DemandEngine` (which also
    needs the ids for its HI-mode memo keys), so the two can never drift
    apart and break their bit-identical parity.
    """
    service = taskset.service_model
    if service is None or service.is_full_drop:
        return []
    out = []
    for task in taskset:
        params = service.lc_hi_parameters(task)
        if params is None:
            continue
        budget, period = params
        out.append((task.task_id, _ModeTask(budget, 0, period, task.wcet_lo)))
    return out


def lc_hi_mode_tasks(taskset: TaskSet) -> list["_ModeTask"]:
    """The :class:`_ModeTask` half of :func:`lc_hi_mode_entries`."""
    return [mode_task for _, mode_task in lc_hi_mode_entries(taskset)]


def overload_marker(tasks) -> int:
    """The violation *marker* reported when a mode's utilization exceeds 1.

    With total utilization above 1 a demand violation is guaranteed at
    *some* interval length, so the checks short-circuit instead of scanning
    for the exact point.  The value they report — the smallest deadline of
    the mode's tasks (0 for an empty list) — is a **marker, not the
    earliest violating length**: a smaller breakpoint may well violate too.
    Callers must treat any non-None violation as "infeasible here" and may
    only use the returned length as a monotone scan hint, never as the
    exact violation front.  Both :meth:`DemandScenario.lo_violation` and
    :meth:`DemandScenario.hi_violation` (and the windowed scan in
    :mod:`repro.analysis.vdtuning`) share this one definition so the
    convention cannot drift between the modes.
    """
    return min((t.deadline for t in tasks), default=0)


#: Breakpoint chunk size for the early-exit violation scan (the
#: ``REPRO_DBF_SCAN_CHUNK`` knob, see :mod:`repro.util.env`).  During
#: virtual-deadline tuning, violations typically sit near the front of the
#: horizon; scanning in chunks avoids evaluating demand over the full
#: breakpoint set just to find them.  Both knobs are consumed **once at
#: import** — the kernel's inner loops must not re-read the environment —
#: so later changes to the variables have no effect on a running process.
_SCAN_CHUNK = scan_chunk_from_env()

#: Exact-step depth of the dbf upper-bound accept screens (the
#: ``REPRO_DBF_APPROX_K`` knob).  Sound for every positive value.
_APPROX_K = approx_k_from_env()

#: QPA iteration budget per search before falling back to the forward scan
#: (a cost valve, not a correctness bound: an aborted search simply hands
#: the decision to the oracle kernel).
_QPA_ITER_CAP = 256


def _first_violation(points: np.ndarray, demand_fn) -> int | None:
    """Smallest check point where ``demand_fn(chunk) > chunk``, or None."""
    for start in range(0, len(points), _SCAN_CHUNK):
        chunk = points[start : start + _SCAN_CHUNK]
        mask = demand_fn(chunk) > chunk
        if mask.any():
            return int(chunk[np.argmax(mask)])
    return None


# -- kernel selection and diagnostics ---------------------------------------

_KERNELS = ("qpa", "vec", "block", "forward")
# Consumed once at import, like the scan-chunk/approx-k knobs; the CLI's
# ``--demand-kernel`` both exports the env var (for spawned workers) and
# calls :func:`set_demand_kernel` (for this process), so the effective
# resolution order is instance > CLI > env > default.
_KERNEL = demand_kernel_from_env()

# The kernel diagnostics live on the obs registry as the "dbf" counter
# scope: the registry hands back a plain mutable dict, so the hot loops
# below keep their historical ``_COUNTERS[key] += 1`` cost while snapshots,
# worker->parent merging and the exporters see the values as ``dbf.<key>``.
# They are always on (no REPRO_OBS gate) — the pipeline diagnostics the
# CLI prints must work out of the box.
_COUNTERS = _OBS_REGISTRY.counter_scope(
    "dbf",
    (
        "qpa-accept",  # checks settled by a QPA pass
        "approx-accept",  # checks settled by the upper-bound screen
        "approx-reject",  # probes settled by a point-violation reject screen
        "qpa-iterations",  # total backward fixed-point iterations
        "qpa-runs",  # number of QPA searches started
    ),
)


def demand_kernel() -> str:
    """The active violation-search kernel (``qpa``/``vec``/``block``/``forward``)."""
    return _KERNEL


def set_demand_kernel(name: str) -> str:
    """Select the violation-search kernel; returns the previous one.

    ``"qpa"`` (the default) runs the screens + backward fixed-point search;
    ``"vec"`` keeps the identical QPA decision procedure at this level and
    additionally enables the vectorized machinery of
    :mod:`repro.analysis.dbf_vec` inside the shrink-descent engine
    (closed-form V* windows, split upper-bound screens, vectorized
    candidate ranking and speculative shrink batches);
    ``"block"`` keeps the QPA decision procedure and the vec machinery
    and additionally lets the shrink descent commit *blocks* of
    closed-form V* jumps across several tasks per exact probe
    (:mod:`repro.analysis.dbf_block`) — it relaxes the bit-identical
    *trajectory* contract of the other three to bit-identical
    *verdicts* (same accept/reject, acceptance ratios, WAR tables and
    shard-cache bytes; iteration counts and committed virtual deadlines
    on accepted sets may differ);
    ``"forward"`` restores the pure chunked breakpoint enumeration — the
    differential oracle and the baseline the kernel benchmark measures
    against.  All kernels decide the violation predicate exactly, so
    every verdict, violation point and figure output is identical under
    any of them.  The startup default comes from ``REPRO_DBF_KERNEL``
    (:func:`repro.util.env.demand_kernel_from_env`); this call overrides
    it for the current process.
    """
    global _KERNEL
    if name not in _KERNELS:
        raise ValueError(f"unknown demand kernel {name!r}; choose from {_KERNELS}")
    previous = _KERNEL
    _KERNEL = name
    return previous


def kernel_counters() -> dict[str, int]:
    """Snapshot of the process-local kernel diagnostics counters."""
    return dict(_COUNTERS)


def reset_kernel_counters() -> None:
    """Zero the kernel diagnostics counters (process-local)."""
    for key in _COUNTERS:
        _COUNTERS[key] = 0


def _lo_point_demand(tasks, length: int) -> int:
    """Scalar LO-mode demand at one length (the QPA evaluation function)."""
    total = 0
    for t in tasks:
        x = length - t.deadline
        if x >= 0:
            total += (x // t.period + 1) * t.wcet
    return total


def _hi_point_demand(
    tasks,
    length: int,
    refine: bool,
    n_trigger: int | None = None,
) -> int:
    """Scalar transcription of :meth:`DemandScenario._hi_demand` for one
    point (same integer terms, same inactive-task-zero refinement min,
    same HC-only trigger restriction)."""
    if n_trigger is None:
        n_trigger = len(tasks)
    total = 0
    min_cut = None
    for index, mode_task in enumerate(tasks):
        x = length - mode_task.deadline
        if x >= 0:
            residue = x % mode_task.period
            total += (x // mode_task.period + 1) * mode_task.wcet - min(
                mode_task.wcet, max(0, mode_task.wcet_lo - residue)
            )
            cut = min(mode_task.wcet_lo, residue)
        else:
            cut = 0
        if index < n_trigger and (min_cut is None or cut < min_cut):
            min_cut = cut
    if refine and min_cut is not None:
        total -= min_cut
    return total


def _prev_breakpoint(tasks, length: int, ramps: bool) -> int | None:
    """Largest demand breakpoint strictly below ``length``, or None.

    Breakpoints are the dbf jump points ``d_i + k T_i`` and — with
    ``ramps`` — the carry-over ramp ends ``d_i + k T_i + min(C_i^L, T_i)``,
    exactly the families :meth:`DemandScenario._breakpoints` enumerates.
    """
    best = -1
    for t in tasks:
        d = t.deadline
        if d < length:
            candidate = d + ((length - 1 - d) // t.period) * t.period
            if candidate > best:
                best = candidate
        if ramps and t.wcet_lo > 0:
            end = d + min(t.wcet_lo, t.period)
            if end < length:
                candidate = end + ((length - 1 - end) // t.period) * t.period
                if candidate > best:
                    best = candidate
    return best if best >= 0 else None


def _next_breakpoint(tasks, length: int, ramps: bool) -> int | None:
    """Smallest demand breakpoint at or above ``length``, or None.

    The forward twin of :func:`_prev_breakpoint`, enumerating the same
    jump/ramp-end families — used by the scalar micro-walk that checks the
    first few breakpoints past a violation front before any vectorized
    window is built.
    """
    best = None
    for t in tasks:
        d = t.deadline
        if d >= length:
            candidate = d
        else:
            candidate = d - ((d - length) // t.period) * t.period
        if best is None or candidate < best:
            best = candidate
        if ramps and t.wcet_lo > 0:
            end = d + min(t.wcet_lo, t.period)
            if end < length:
                end = end - ((end - length) // t.period) * t.period
            if end < best:
                best = end
    return best


def qpa_violation_search(
    tasks,
    horizon: int,
    demand_at,
    ramps: bool,
    max_iters: int | None = None,
) -> tuple[str, int | None, int]:
    """Backward fixed-point search for ``exists l <= horizon: demand(l) > l``.

    Returns ``(status, witness, iterations)`` with status ``"pass"`` (no
    violation in ``[0, horizon]``), ``"violation"`` (``witness`` is the
    **largest** violating length — every iterate bounds all violations
    from above, so stopping on one proves the region above it clean), or
    ``"abort"`` (iteration budget exhausted; the caller must fall back to
    the forward oracle).

    Exactness requires ``demand_at`` to be monotone non-decreasing with
    all violations at breakpoints — true for the LO demand, the unrefined
    HI demand and the refined HI demand (see module docstring).  The
    iteration: start at the horizon; while ``demand(l) <= l``, step to
    ``demand(l)`` when that descends, else to the largest breakpoint below
    ``l``; stop with a pass when demand drops to the smallest breakpoint
    (below which demand is 0) or no breakpoint remains.
    """
    if not tasks or horizon < 0:
        return ("pass", None, 0)
    floor = min(t.deadline for t in tasks)
    limit = _QPA_ITER_CAP if max_iters is None else max_iters
    t = horizon
    iterations = 0
    _COUNTERS["qpa-runs"] += 1
    while t >= 0:
        iterations += 1
        if iterations > limit:
            _COUNTERS["qpa-iterations"] += iterations
            return ("abort", None, iterations)
        demand = demand_at(t)
        if demand > t:
            _COUNTERS["qpa-iterations"] += iterations
            return ("violation", t, iterations)
        if demand <= floor:
            break
        if demand < t:
            t = demand
        else:
            below = _prev_breakpoint(tasks, t, ramps)
            if below is None:
                break
            t = below
    _COUNTERS["qpa-iterations"] += iterations
    return ("pass", None, iterations)


def _ub_screen_points(tasks, horizon: int, k: int, ramps: bool) -> np.ndarray:
    """Candidate maxima of the k-step upper bound in ``[0, horizon]``.

    Every jump and kink of the bound: the first ``k+1`` step points of
    each task (the ``k+1``-th is the blend point where the staircase meets
    its utilization-slope chord), the ramp ends inside the exact region,
    and the horizon.  Between consecutive candidates the bound is linear,
    so checking the bound at these points bounds it everywhere.
    """
    families = [np.asarray([horizon], dtype=np.int64)]
    for t in tasks:
        if t.deadline > horizon:
            continue
        jumps = np.arange(
            t.deadline,
            min(t.deadline + k * t.period, horizon) + 1,
            t.period,
            dtype=np.int64,
        )
        families.append(jumps)
        if ramps and t.wcet_lo > 0:
            ends = jumps + min(t.wcet_lo, t.period)
            families.append(ends[ends <= horizon])
    return np.concatenate(families)


def approx_accepts(tasks, horizon: int, hi: bool, k: int | None = None) -> bool:
    """Sound accept screen: True proves ``demand(l) <= l`` on ``[0, horizon]``.

    Fisher–Baruah-style k-step bound: each task contributes its exact
    staircase (HI mode: carry-over reduction included) below its blend
    point ``d + k T`` and the integer-ceiling chord
    ``ceil(C (l - d + T) / T)`` — the line through the staircase corners,
    an upper bound of the (unrefined) demand — above it.  The total bound
    is piecewise linear between the O(n·k) candidate points, so demand
    fits everywhere iff the bound fits at each of them.  A False return
    proves nothing (the screen is an accept filter, not a decider); the
    unrefined bound also covers the refined HI demand, which only
    subtracts.
    """
    if not tasks or horizon < 0:
        return True  # empty region or no demand: nothing can violate
    if k is None:
        k = _APPROX_K
    points = _ub_screen_points(tasks, horizon, k, ramps=hi)
    deadline = np.array([t.deadline for t in tasks], dtype=np.int64)[:, None]
    period = np.array([t.period for t in tasks], dtype=np.int64)[:, None]
    wcet = np.array([t.wcet for t in tasks], dtype=np.int64)[:, None]
    x = points[None, :] - deadline
    active = x >= 0
    xa = np.where(active, x, 0)
    stair = (xa // period + 1) * wcet
    if hi:
        wcet_lo = np.array([t.wcet_lo for t in tasks], dtype=np.int64)[:, None]
        stair = stair - np.minimum(wcet, np.maximum(0, wcet_lo - xa % period))
    # Integer ceiling of the chord C (x + T) / T — exact, no float noise.
    chord = -((-wcet * (xa + period)) // period)
    exact = points[None, :] < deadline + k * period
    total = np.where(active, np.where(exact, stair, chord), 0).sum(axis=0)
    return bool((total <= points).all())


@dataclass(frozen=True)
class _ModeTask:
    """Effective sporadic parameters of one task in one mode."""

    wcet: int
    deadline: int
    period: int
    wcet_lo: int  # carry-over reduction budget (HI mode only)


def _lo_violation_scan(tasks: list["_ModeTask"], horizon: int) -> int | None:
    """Earliest LO-mode violation in ``(0, horizon]``, kernel-dispatched.

    Both kernels decide the same predicate over the same breakpoint
    multiset; the QPA path additionally settles clear passes with the
    upper-bound screen, and hands a found witness back to the forward scan
    for the earliest-point localization the callers' contract requires.
    """
    if _KERNEL != "forward":
        if approx_accepts(tasks, horizon, hi=False):
            _COUNTERS["approx-accept"] += 1
            return None
        status, witness, _ = qpa_violation_search(
            tasks, horizon, lambda t: _lo_point_demand(tasks, t), ramps=False
        )
        if status == "pass":
            _COUNTERS["qpa-accept"] += 1
            return None
        if status == "violation":
            # The earliest violation is at most the witness (the largest
            # violating breakpoint), so the localizing forward scan only
            # needs the breakpoints up to there — usually a small prefix.
            horizon = witness
        # An aborted search hands the full question to the forward oracle.
    points = DemandScenario._breakpoints(tasks, horizon, ramps=False)
    return _first_violation(
        points, lambda chunk: DemandScenario._lo_demand(tasks, chunk)
    )


def lo_feasible_exact(tasks: list["_ModeTask"], cap: int) -> bool:
    """Exact LO-mode feasibility of ``tasks`` under the horizon-cap gates.

    The boolean twin of :meth:`DemandScenario.lo_violation` on an already
    built mode-task list — same float-folded horizon bound, same
    conservative False on overload or cap overrun — used by callers that
    mirror ``engine.lo_feasible`` without materializing a scenario (the
    batch probe screens).
    """
    try:
        horizon = DemandScenario._horizon(tasks, cap)
    except HorizonExceeded:
        return False
    if horizon is None:
        return False  # utilization above 1: guaranteed violation
    if horizon == 0:
        return True
    return _lo_violation_scan(tasks, horizon) is None


class DemandScenario:
    """Demand checks for a task set under fixed virtual deadlines.

    Parameters
    ----------
    taskset:
        The tasks on one processor.
    virtual_deadlines:
        Mapping ``task_id -> Dv`` for HC tasks; missing entries default to
        the real deadline.  ``C_i^L <= Dv_i <= D_i`` is required.
    horizon_cap:
        Upper limit on the dbf check horizon; beyond it the check raises
        :class:`HorizonExceeded`.
    """

    def __init__(
        self,
        taskset: TaskSet,
        virtual_deadlines: dict[int, int] | None = None,
        horizon_cap: int = DEFAULT_HORIZON_CAP,
    ):
        virtual_deadlines = virtual_deadlines or {}
        self.taskset = taskset
        self.horizon_cap = horizon_cap
        self._lo: list[_ModeTask] = []
        self._hi: list[_ModeTask] = []
        #: degraded LC tasks' HI-mode abstraction (empty under drop
        #: semantics); appended *after* the HC entries wherever the two are
        #: combined, so the trigger refinement can stay HC-only by count.
        self._hi_lc: list[_ModeTask] = lc_hi_mode_tasks(taskset)
        for task in taskset:
            dv = virtual_deadlines.get(task.task_id, task.deadline)
            if task.is_high:
                if not task.wcet_lo <= dv <= task.deadline:
                    raise ValueError(
                        f"{task.name}: virtual deadline {dv} outside "
                        f"[{task.wcet_lo}, {task.deadline}]"
                    )
                self._lo.append(_ModeTask(task.wcet_lo, dv, task.period, task.wcet_lo))
                self._hi.append(
                    _ModeTask(
                        task.wcet_hi,
                        task.deadline - dv,
                        task.period,
                        task.wcet_lo,
                    )
                )
            else:
                self._lo.append(
                    _ModeTask(task.wcet_lo, task.deadline, task.period, task.wcet_lo)
                )

    # -- horizons ----------------------------------------------------------
    @staticmethod
    def _horizon(tasks: list[_ModeTask], cap: int) -> int | None:
        """Check horizon for ``tasks``; None means "demand always exceeds"
        (utilization >= 1), so the caller should reject immediately.
        """
        total_u = sum(t.wcet / t.period for t in tasks)
        if total_u > 1.0 + 1e-12:
            return None
        numerator = sum(
            (t.wcet / t.period) * max(0, t.period - t.deadline) for t in tasks
        )
        if numerator == 0:
            return 0  # implicit-deadline EDF case: nothing to check
        if total_u >= 1.0 - 1e-12:
            # Utilization exactly 1 with deadline < period somewhere: the
            # classical bound diverges; fall back to the cap (conservative).
            raise HorizonExceeded(f"utilization {total_u:.6f} ~ 1, bound diverges")
        bound = math.ceil(numerator / (1.0 - total_u))
        if bound > cap:
            raise HorizonExceeded(f"bound {bound} exceeds cap {cap}")
        return bound

    # -- check point construction -------------------------------------------
    @staticmethod
    def _breakpoints(tasks: list[_ModeTask], horizon: int, ramps: bool) -> np.ndarray:
        """All dbf breakpoints of ``tasks`` in ``[0, horizon]`` plus horizon.

        Sorted but *not* deduplicated — duplicate check points are harmless
        for the violation scan and skipping the dedup hash pass is a large
        win in the tuning inner loop.
        """
        families = []
        for t in tasks:
            if t.deadline > horizon:
                continue
            jumps = np.arange(t.deadline, horizon + 1, t.period, dtype=np.int64)
            families.append(jumps)
            if ramps and t.wcet_lo > 0:
                ends = jumps + min(t.wcet_lo, t.period)
                families.append(ends[ends <= horizon])
        families.append(np.asarray([horizon], dtype=np.int64))
        return np.sort(np.concatenate(families))

    # -- demand evaluation ----------------------------------------------------
    @staticmethod
    def _lo_demand(tasks: list[_ModeTask], points: np.ndarray) -> np.ndarray:
        total = np.zeros(len(points), dtype=np.int64)
        for t in tasks:
            x = points - t.deadline
            active = x >= 0
            jobs = np.where(active, x // t.period + 1, 0)
            total += jobs * t.wcet
        return total

    @staticmethod
    def _hi_demand(
        tasks: list[_ModeTask],
        points: np.ndarray,
        refine: bool,
        n_trigger: int | None = None,
    ) -> np.ndarray:
        """Total HI-mode demand of ``tasks`` at each point.

        The per-task carry-over reduction is clamped at the task's HI
        budget (inert for HC tasks, where ``wcet >= wcet_lo``; load-bearing
        for degraded LC entries, whose budget may undercut ``C^L``).  Only
        the first ``n_trigger`` tasks (default: all — correct whenever the
        list is HC-only) can be the mode-switch trigger; degraded LC
        entries never trigger, so callers mixing them in pass the HC count.
        """
        if n_trigger is None:
            n_trigger = len(tasks)
        total = np.zeros(len(points), dtype=np.int64)
        min_trigger_cut = None
        for index, t in enumerate(tasks):
            x = points - t.deadline
            active = x >= 0
            xa = np.where(active, x, 0)
            jobs = xa // t.period + 1
            residue = xa % t.period
            reduction = np.minimum(t.wcet, np.maximum(0, t.wcet_lo - residue))
            total += np.where(active, jobs * t.wcet - reduction, 0)
            if refine and index < n_trigger:
                cut = np.where(active, np.minimum(t.wcet_lo, residue), 0)
                if min_trigger_cut is None:
                    min_trigger_cut = cut
                else:
                    min_trigger_cut = np.minimum(min_trigger_cut, cut)
        if refine and min_trigger_cut is not None:
            total -= min_trigger_cut
        return total

    # -- public checks ----------------------------------------------------------
    def lo_violation(self) -> int | None:
        """Smallest interval length where LO-mode demand exceeds supply.

        Returns None when the LO-mode dbf test passes.  Raises
        :class:`HorizonExceeded` when the horizon cap is hit.

        When total utilization exceeds 1 a violation is guaranteed at
        *some* length; the check short-circuits and reports
        :func:`overload_marker` — the smallest LO deadline, which is **not
        necessarily the earliest violating length** (a smaller breakpoint
        may violate).  Callers must interpret any non-None return as
        "infeasible", never as an exact violation front; see the marker
        contract on :func:`overload_marker`.
        """
        horizon = self._horizon(self._lo, self.horizon_cap)
        if horizon is None:
            return overload_marker(self._lo)
        if horizon == 0:
            return None
        return _lo_violation_scan(self._lo, horizon)

    def hi_violation(self, refine: bool = False) -> int | None:
        """Smallest interval length where HI-mode demand exceeds supply.

        ``refine`` enables the ECDF trigger refinement (the trigger must be
        a *local HC* task, so degraded LC entries never contribute to the
        refinement min).  A core without HC tasks can never switch modes
        locally, so it vacuously passes — degraded LC demand included, as
        it only materializes after a switch.  As in :meth:`lo_violation`,
        HI utilization above 1 short-circuits with the same
        :func:`overload_marker` convention — the smallest residual
        deadline, a marker rather than the exact earliest violation.
        """
        if not self._hi:
            return None
        tasks = self._hi + self._hi_lc
        horizon = self._horizon(tasks, self.horizon_cap)
        if horizon is None:
            return overload_marker(tasks)
        # Even at horizon 0 the carry-over term can demand C_H - C_L at l=0;
        # always include the breakpoints up to at least the first deadlines.
        horizon = max(horizon, max(t.deadline for t in tasks))
        if horizon > self.horizon_cap:
            raise HorizonExceeded(f"bound {horizon} exceeds cap {self.horizon_cap}")
        n_trigger = len(self._hi)
        if _KERNEL != "forward":
            if approx_accepts(tasks, horizon, hi=True):
                _COUNTERS["approx-accept"] += 1
                return None
            status, witness, _ = qpa_violation_search(
                tasks,
                horizon,
                lambda t: _hi_point_demand(tasks, t, refine, n_trigger),
                ramps=True,
            )
            if status == "pass":
                _COUNTERS["qpa-accept"] += 1
                return None
            if status == "violation":
                # Earliest violation <= witness: scan only that prefix.
                horizon = witness
        points = self._breakpoints(tasks, horizon, ramps=True)
        return _first_violation(
            points,
            lambda chunk: self._hi_demand(tasks, chunk, refine, n_trigger),
        )

    def schedulable(self, refine: bool = False) -> bool:
        """LO and HI checks both pass (conservative False on horizon cap)."""
        try:
            return self.lo_violation() is None and self.hi_violation(refine) is None
        except HorizonExceeded:
            return False

    # -- introspection helpers (used by tuning algorithms) ---------------------
    def lo_demand_at(self, length: int) -> int:
        """Total LO-mode demand at one interval length."""
        pts = np.asarray([length], dtype=np.int64)
        return int(self._lo_demand(self._lo, pts)[0])

    def lo_shrink_probe(self, task: MCTask) -> "LoShrinkProbe":
        """Fast repeated LO checks while varying ``task``'s virtual deadline.

        Used by the tuning engine's binary search; see
        :class:`LoShrinkProbe`.
        """
        return LoShrinkProbe(self, task)

    def hi_demand_at(self, length: int, refine: bool = False) -> int:
        """Total HI-mode demand at one interval length."""
        pts = np.asarray([length], dtype=np.int64)
        tasks = self._hi + self._hi_lc
        return int(self._hi_demand(tasks, pts, refine, len(self._hi))[0])


class LoShrinkProbe:
    """Repeated LO-mode feasibility checks varying one task's deadline.

    The tuning engine binary-searches the largest virtual-deadline shrink
    of a single HC task that keeps the LO check feasible; re-running the
    full :class:`DemandScenario` per probe recomputes every task's dbf.
    This helper precomputes the *other* tasks' demand (and slack) once, at
    a horizon that is sound for every probe (the probed task pinned at its
    minimal deadline, which maximizes demand and therefore the classical
    bound), leaving each probe a pair of vectorized comparisons.

    Verdicts match ``DemandScenario(..., {task: vd}).lo_violation() is
    None`` exactly, except that the shared worst-case horizon may hit the
    cap where a per-probe horizon would not — in which case the probe
    reports infeasible (conservative, consistent with the tests' sufficient-
    only contract).
    """

    def __init__(self, scenario: DemandScenario, task: MCTask):
        if not task.is_high:
            raise ValueError(f"{task.name}: only HC deadlines are tunable")
        self._task = task
        others = []
        found = False
        for mode_task, source in zip(scenario._lo, scenario.taskset):
            if source.task_id == task.task_id:
                found = True
                continue
            others.append(mode_task)
        if not found:
            raise ValueError(f"{task.name} is not part of the scenario")
        # Horizon with the probed task at its minimal deadline (max demand).
        worst = others + [
            _ModeTask(task.wcet_lo, task.wcet_lo, task.period, task.wcet_lo)
        ]
        horizon = DemandScenario._horizon(worst, scenario.horizon_cap)
        self._infeasible_always = horizon is None  # utilization > 1
        self._horizon = horizon or 0
        if self._infeasible_always or self._horizon == 0:
            self._points_o = np.empty(0, dtype=np.int64)
            self._slack_o = np.empty(0, dtype=np.int64)
            return
        points = DemandScenario._breakpoints(others, self._horizon, ramps=False)
        demand = DemandScenario._lo_demand(others, points)
        self._points_o = points
        self._slack_o = points - demand  # slack available to the probed task

    def feasible(self, virtual_deadline: int) -> bool:
        """LO check verdict with the probed task at ``virtual_deadline``."""
        task = self._task
        if not task.wcet_lo <= virtual_deadline <= task.deadline:
            raise ValueError(
                f"{task.name}: virtual deadline {virtual_deadline} outside "
                f"[{task.wcet_lo}, {task.deadline}]"
            )
        if self._infeasible_always:
            return False
        if self._horizon == 0:
            return True
        # Probed task's demand at the other tasks' breakpoints.
        x = self._points_o - virtual_deadline
        jobs = np.where(x >= 0, x // task.period + 1, 0)
        if np.any(jobs * task.wcet_lo > self._slack_o):
            return False
        return self._own_feasible(virtual_deadline)

    def _own_feasible(self, virtual_deadline: int) -> bool:
        """The own-breakpoint half of :meth:`feasible`.

        Callers that already know the other-breakpoint half holds (its
        per-point bounds invert in closed form and are monotone in the
        deadline) may query this directly; ``feasible`` is the conjunction.
        """
        task = self._task
        if self._infeasible_always:
            return False
        if self._horizon == 0:
            return True
        # Check at the probed task's own breakpoints (its demand steps up
        # there; the other tasks' demand is a step function evaluated by
        # rank lookup against their precomputed breakpoints).
        own = np.arange(
            virtual_deadline, self._horizon + 1, task.period, dtype=np.int64
        )
        if len(own) == 0:
            return True
        own_demand = (
            (own - virtual_deadline) // task.period + 1
        ) * task.wcet_lo
        if len(self._points_o):
            idx = np.searchsorted(self._points_o, own, side="right") - 1
            others_at_own = np.where(
                idx >= 0,
                self._points_o[np.maximum(idx, 0)]
                - self._slack_o[np.maximum(idx, 0)],
                0,
            )
        else:
            others_at_own = np.zeros(len(own), dtype=np.int64)
        return not np.any(own_demand + others_at_own > own)
