"""Exact vectorized prefilters over columnar task-set batches.

The acceptance-ratio sweeps decide one boolean per (task set, algorithm):
does :func:`repro.core.allocator.partition` succeed?  This module evaluates
*necessary conditions* for that success over a whole
:class:`~repro.model.batch.TaskSetBatch` at once; every set a filter
settles is **rejected for certain** — each decision is provably equal to
the full partition outcome, never a heuristic — so the curves the batched
pipeline produces stay bit-identical to the scalar path while the expensive
per-taskset machinery only runs on the survivors.

Why the rejects are exact
-------------------------
``sum-lo`` (``sum(u_i^L) > m``) and ``sum-hi`` (``sum(u_i^H) > m`` over HC
tasks) rest on a pigeonhole argument: if :func:`partition` succeeded, every
core's final state was accepted by the schedulability test, and each
registered test only ever accepts a core whose LO utilization (resp. HI
utilization) is at most ``1 + 1e-9``:

* EDF-VD admits via ``a + c <= 1`` (and ``b <= c``) or explicitly gates on
  ``a + b <= 1`` and ``c <= 1`` (:func:`repro.analysis.edf_vd.edfvd_admits`);
* the EY/ECDF tuning rejects up front when ``U_LO`` or ``U_HH`` exceeds
  ``1 + 1e-9`` (and its fast-accept region satisfies both bounds);
* the AMC response-time iterations diverge past any deadline once a core's
  utilization exceeds 1 in either mode.

Summing the per-core bounds, success implies ``sum <= m * (1 + 1e-9)`` up
to float-fold noise.  The filters therefore fire only above
``m + SUM_MARGIN`` with ``SUM_MARGIN`` orders of magnitude larger than both
the tests' epsilon and the worst-case difference between numpy's pairwise
segment sums and the analyses' left-folded sums — firing proves failure.

``lone-task`` uses subset monotonicity: a task the test rejects *alone on
an empty core* can never be admitted on any core (every candidate core set
is a superset of the singleton; see
:attr:`~repro.analysis.interface.SchedulabilityTest.is_subset_monotone`),
so every allocation order dooms the set.  Candidate tasks are screened
vectorized (a task with ``C^H <= D`` and own-level utilization at most
``1 + 1e-9`` is accepted alone by every registered test — the singleton
demand fits each window, see the test-specific arguments in
``tests/analysis/test_prefilter.py``) and the rare survivors are confirmed
by running the *actual* test on a materialized singleton, which is the same
verdict an empty-core probe produces.

Probe screens
-------------
Beyond whole-batch rejects, tests can expose a :class:`ProbeScreen` — the
O(1) utilization region in which a single admission probe's verdict is
already determined.  :func:`repro.core.batch.partition_batch` replays the
allocation loop through these screens ("utilization-ledger replay") and
settles every set whose walk never leaves the decided region; the EDF-VD
screen is complete (every probe decides), the EY/ECDF screen mirrors the
pre-screen of :class:`repro.analysis.context.DemandContext` and reports
``None`` for probes that would need dbf work.

Every filter and screen here is demand-kernel independent: the conditions
are utilization arithmetic over the batch columns and never evaluate a
demand bound function, so the rejects hold — and the survivors' verdicts
stay bit-identical — whichever kernel (``forward``, ``qpa`` or ``vec``,
see :func:`repro.analysis.dbf.set_demand_kernel`) analyzes the survivors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model import TaskSet, TaskSetBatch
from repro.analysis.interface import SchedulabilityTest

__all__ = [
    "SUM_MARGIN",
    "ProbeScreen",
    "RowView",
    "EDFVDScreen",
    "DemandPreScreen",
    "PrefilterReport",
    "PrefilterBank",
    "default_prefilter_bank",
]

#: Fire the utilization-sum filters only above ``m + SUM_MARGIN``.  The
#: margin dominates the tests' acceptance epsilon (``m * 1e-9`` for any
#: realistic core count) plus summation-order noise (``<= n * ulp``), which
#: is what makes a firing filter a *proof* of partition failure.
SUM_MARGIN = 1e-7

#: The utilization epsilon of the O(1) probe screens — the exact constant
#: used by the EDF-VD test and the DemandContext pre-screen.
_EPS = 1e-9


@dataclass(frozen=True)
class RowView:
    """Integer task parameters of one set, exposed to rows-aware screens.

    Plain Python int lists indexed by the set's local row index (the same
    indexing the replay's ledger walk uses), plus whether a degraded LC
    service model rides on the batch.  Built lazily by
    :func:`repro.core.batch.partition_batch` only when a screen sets
    ``uses_rows``.
    """

    period: list[int]
    wcet_lo: list[int]
    wcet_hi: list[int]
    deadline: list[int]
    is_high: list[bool]
    degraded: bool


class ProbeScreen:
    """O(1) admission-probe decider over candidate utilization sums.

    ``decide`` receives the candidate core's accumulated sums *with the
    probed task already folded in* — ``a = U_LL``, ``b = U_LH``,
    ``c = U_HH``, ``u_res`` the residual LC HI-mode utilization — plus
    whether core and task are all implicit-deadline.  It returns the probe
    verdict, or None when the verdict cannot be determined from the sums
    alone (the caller then abandons the columnar replay for that set).
    Implementations must be bit-exact mirrors of the corresponding
    incremental context's arithmetic.

    Screens that can settle more probes from the candidate's task
    parameters set ``uses_rows`` and override :meth:`decide_rows`, which
    additionally receives the committed rows of the candidate core (in
    commit order), the probed row and a :class:`RowView` — the same
    verdict contract applies.
    """

    #: whether the replay should build a :class:`RowView` and call
    #: :meth:`decide_rows` instead of :meth:`decide`
    uses_rows = False

    def decide(
        self,
        a: float,
        b: float,
        c: float,
        u_res: float,
        implicit: bool,
    ) -> bool | None:
        raise NotImplementedError

    def decide_rows(
        self,
        a: float,
        b: float,
        c: float,
        u_res: float,
        implicit: bool,
        members: list[int],
        probe: int,
        view: RowView,
    ) -> bool | None:
        return self.decide(a, b, c, u_res, implicit)


class EDFVDScreen(ProbeScreen):
    """The EDF-VD utilization test *is* an O(1) screen.

    Delegates to :func:`repro.analysis.edf_vd.edfvd_admits`, the very
    function :class:`~repro.analysis.context.EDFVDContext` probes with, on
    the same floats.  Every implicit-deadline probe is decided; a
    non-implicit candidate — which the context would reject with an error
    — reports None so the replay backs off to the scalar path's gates.
    """

    def __init__(self):
        from repro.analysis.edf_vd import edfvd_admits

        self._admits = edfvd_admits

    def decide(self, a, b, c, u_res, implicit):
        if not implicit:
            return None
        return self._admits(a, b, c, u_res)


class DemandPreScreen(ProbeScreen):
    """The utilization pre-screen of the EY/ECDF incremental context, plus
    optional demand-level accept/reject screens over the candidate rows.

    ``decide`` is the term-for-term transcription of the opening checks of
    :meth:`repro.analysis.context.DemandContext.analyze`: reject when
    ``a + b`` or ``c`` exceeds ``1 + 1e-9``; accept the implicit-deadline
    plain-EDF reserve ``a + c <= 1 + 1e-9``; everything else needs dbf work
    and reports None.

    Constructed with the owning test's ``(policy, refine)`` ``stages`` and
    horizon cap, :meth:`decide_rows` additionally settles probes whose
    verdict the *tuning fast path* determines, mirroring
    :func:`repro.analysis.vdtuning.tune_virtual_deadlines` step for step
    (identical float folds over the candidate rows in commit order):

    * the utilization gates (reject) and the implicit-deadline certified
      fast accept — on the tuning-level folds, which can decide where the
      ledger sums sat just outside the pre-screen's epsilon;
    * an exact LO-mode check at full deadlines — infeasibility there
      rejects in *every* stage;
    * the floor HI check at minimal virtual deadlines, ``Dv_i = C_i^L``:
      a horizon-cap overrun, utilization overload or demand violation
      there rejects in every stage (a violation of the *refined* demand
      implies one of the unrefined, so testing with ``refine = any stage
      refined`` covers mixed chains soundly); the violation itself is
      found by the per-point reject screen (exact demand at the O(n·k)
      screen points — a lower bound on the sup) with the QPA search as
      the exact closer.

    A candidate without HC rows accepts outright once LO passes (the
    descent's vacuous HI pass).  Everything past the floor check — the
    uniform-scaling bisection and the per-task descent — stays undecided
    (None), as does any probe under a degraded service model.  Settles are
    counted in the process-local kernel counters of
    :mod:`repro.analysis.dbf` (``approx-reject`` for reject-screen
    settles).
    """

    def __init__(self, stages=None, horizon_cap=None):
        from repro.analysis.dbf import DEFAULT_HORIZON_CAP

        self._stages = tuple(stages) if stages else None
        self._cap = DEFAULT_HORIZON_CAP if horizon_cap is None else horizon_cap
        self.uses_rows = self._stages is not None
        #: reject with the refined demand only when a refined stage exists
        #: (refined violation => unrefined violation covers the rest)
        self._reject_refine = any(r for _, r in self._stages or ())

    def decide(self, a, b, c, u_res, implicit):
        if a + b > 1.0 + _EPS or c > 1.0 + _EPS:
            return False
        if implicit and a + c <= 1.0 + _EPS:
            return True
        return None

    def decide_rows(self, a, b, c, u_res, implicit, members, probe, view):
        from repro.analysis import dbf as _dbf
        from repro.analysis.dbf import (
            DemandScenario,
            HorizonExceeded,
            _ModeTask,
            lo_feasible_exact,
        )

        base = self.decide(a, b, c, u_res, implicit)
        if base is not None or self._stages is None or view.degraded:
            return base
        rows = members + [probe]
        period, wcet_lo, wcet_hi = view.period, view.wcet_lo, view.wcet_hi
        deadline, is_high = view.deadline, view.is_high
        # Tuning-level utilization folds: each accumulator left-folds its
        # criticality class in candidate order, exactly like
        # TaskSet.utilization on the materialized candidate.
        u_ll = u_lh = u_hh = 0
        for r in rows:
            if is_high[r]:
                u_lh = u_lh + wcet_lo[r] / period[r]
                u_hh = u_hh + wcet_hi[r] / period[r]
            else:
                u_ll = u_ll + wcet_lo[r] / period[r]
        if u_ll + u_lh > 1.0 + _EPS or u_hh > 1.0 + _EPS:
            _dbf._COUNTERS["approx-reject"] += 1
            return False  # "utilization above 1" in every stage
        if all(deadline[r] == period[r] for r in rows) and (
            u_ll + u_hh <= 1.0 + _EPS
        ):
            return True  # certified plain-EDF fast accept (stage 1)
        lo_tasks = [
            _ModeTask(wcet_lo[r], deadline[r], period[r], wcet_lo[r])
            for r in rows
        ]
        if not lo_feasible_exact(lo_tasks, self._cap):
            _dbf._COUNTERS["approx-reject"] += 1
            return False  # "LO-mode infeasible at full deadlines" everywhere
        hc = [r for r in rows if is_high[r]]
        if not hc:
            return True  # no HC task: the HI check passes vacuously
        floor_tasks = [
            _ModeTask(
                wcet_hi[r], deadline[r] - wcet_lo[r], period[r], wcet_lo[r]
            )
            for r in hc
        ]
        try:
            horizon = DemandScenario._horizon(floor_tasks, self._cap)
            if horizon is not None:
                horizon = max(horizon, max(t.deadline for t in floor_tasks))
                if horizon > self._cap:
                    raise HorizonExceeded(
                        f"bound {horizon} exceeds cap {self._cap}"
                    )
        except HorizonExceeded:
            _dbf._COUNTERS["approx-reject"] += 1
            return False  # "HI horizon cap exceeded" in every stage
        if horizon is None:
            _dbf._COUNTERS["approx-reject"] += 1
            return False  # HI overload: the floor check reports a violation
        if self._floor_hi_infeasible(floor_tasks, horizon):
            _dbf._COUNTERS["approx-reject"] += 1
            return False  # "HI infeasible even at minimal Dv" in every stage
        return None  # uniform scaling / descent territory

    def _floor_hi_infeasible(self, floor_tasks, horizon: int) -> bool:
        """Exact floor-HI violation decision (point screen, then QPA)."""
        from repro.analysis.dbf import (
            _APPROX_K,
            DemandScenario,
            _first_violation,
            _hi_point_demand,
            _ub_screen_points,
            qpa_violation_search,
        )
        from repro.analysis.vdtuning import _hi_demand_2d, _hi_demand_columns

        refine = self._reject_refine
        points = _ub_screen_points(floor_tasks, horizon, _APPROX_K, ramps=True)
        demand = _hi_demand_2d(
            _hi_demand_columns(floor_tasks), points, refine, None
        )
        if bool((demand > points).any()):
            return True
        status, _, _ = qpa_violation_search(
            floor_tasks,
            horizon,
            lambda t: _hi_point_demand(floor_tasks, t, refine, None),
            ramps=True,
        )
        if status != "abort":
            return status == "violation"
        points = DemandScenario._breakpoints(floor_tasks, horizon, ramps=True)
        return (
            _first_violation(
                points,
                lambda chunk: DemandScenario._hi_demand(
                    floor_tasks, chunk, refine, None
                ),
            )
            is not None
        )


@dataclass
class PrefilterReport:
    """Which sets the bank settled, and which filter settled each.

    ``settled[i]`` is the name of the filter that decided set ``i`` (all
    decisions are rejects), or None when the set fell through.  ``counts``
    aggregates per filter over the batch — the "settled-count report" the
    batched sweep and the benchmark surface.
    """

    settled: list[str | None]
    counts: dict[str, int] = field(default_factory=dict)


class PrefilterBank:
    """The ordered filter bank; see module docstring for exactness proofs.

    One bank serves one schedulability test: the lone-task filter memoizes
    verdicts of *that test* (per service model), so :meth:`apply` pins the
    first test instance it sees and rejects any other — sharing a bank
    across tests would replay one test's verdicts as another's.
    """

    def __init__(self, lone_task: bool = True):
        self.lone_task = lone_task
        self._test: SchedulabilityTest | None = None
        #: memoized singleton verdicts keyed by (service key, task params)
        self._lone_memo: dict[tuple, bool] = {}

    def serves(self, test: SchedulabilityTest) -> bool:
        """Whether this bank can apply ``test`` (unbound, or bound to it)."""
        return self._test is None or self._test is test

    def apply(
        self, batch: TaskSetBatch, m: int, test: SchedulabilityTest
    ) -> PrefilterReport:
        """Run every filter over ``batch``; later filters skip settled sets."""
        if self._test is None:
            self._test = test
        elif self._test is not test:
            raise ValueError(
                "a PrefilterBank serves exactly one test instance; this "
                f"bank is bound to {self._test!r}, got {test!r} — create "
                "one bank per (algorithm, test)"
            )
        n_sets = len(batch)
        settled: list[str | None] = [None] * n_sets
        counts = {"sum-lo": 0, "sum-hi": 0, "lone-task": 0}
        if n_sets == 0:
            return PrefilterReport(settled, counts)

        # The per-set sums depend on the batch alone; several algorithms
        # walk the same batch per bucket, so they live in its scratch memo.
        sums = batch.replay_cache.get("prefilter-sums")
        if sums is None:
            sums = (
                batch.sum_per_set(batch.u_lo),
                batch.sum_per_set(np.where(batch.is_high, batch.u_hi, 0.0)),
            )
            batch.replay_cache["prefilter-sums"] = sums
        sum_lo, sum_hi = sums
        for i in np.flatnonzero(sum_lo > m + SUM_MARGIN):
            settled[i] = "sum-lo"
            counts["sum-lo"] += 1
        for i in np.flatnonzero(sum_hi > m + SUM_MARGIN):
            if settled[i] is None:
                settled[i] = "sum-hi"
                counts["sum-hi"] += 1

        if self.lone_task and getattr(test, "is_subset_monotone", True):
            counts["lone-task"] += self._apply_lone_task(batch, test, settled)
        return PrefilterReport(settled, counts)

    # -- lone-task filter ----------------------------------------------------
    def _apply_lone_task(
        self,
        batch: TaskSetBatch,
        test: SchedulabilityTest,
        settled: list[str | None],
    ) -> int:
        """Settle sets containing a task the test rejects alone.

        The vectorized screen keeps only tasks that could conceivably fail
        alone (``C^H > D``, or own-level utilization above ``1 + 1e-9``);
        each survivor's verdict comes from the real test on a singleton
        task set (memoized by parameters), so a settle is the exact
        empty-core probe outcome plus subset monotonicity.
        """
        u_own = np.where(batch.is_high, batch.u_hi, batch.u_lo)
        suspect = (batch.wcet_hi > batch.deadline) | (u_own > 1.0 + _EPS)
        if not suspect.any():
            return 0
        service = batch.service_model
        fired = 0
        for i in range(len(batch)):
            if settled[i] is not None:
                continue
            rows = batch.set_slice(i)
            for j in np.flatnonzero(suspect[rows]):
                row = rows.start + int(j)
                if not self._lone_task_fails(batch, row, test, service):
                    continue
                settled[i] = "lone-task"
                fired += 1
                break
        return fired

    def _lone_task_fails(
        self, batch: TaskSetBatch, row: int, test, service
    ) -> bool:
        service_key = (
            None if service is None or service.is_full_drop else service.key()
        )
        key = (
            service_key,
            int(batch.period[row]),
            int(batch.wcet_lo[row]),
            int(batch.wcet_hi[row]),
            int(batch.deadline[row]),
            bool(batch.is_high[row]),
            int(batch.wcet_degraded[row]),
            int(batch.period_degraded[row]),
        )
        verdict = self._lone_memo.get(key)
        if verdict is None:
            singleton = TaskSet([batch.row_task(row)], service_model=service)
            verdict = not test.is_schedulable(singleton)
            self._lone_memo[key] = verdict
        return verdict


def default_prefilter_bank() -> PrefilterBank:
    """A fresh bank with every exact filter enabled."""
    return PrefilterBank()
