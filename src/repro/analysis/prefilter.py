"""Exact vectorized prefilters over columnar task-set batches.

The acceptance-ratio sweeps decide one boolean per (task set, algorithm):
does :func:`repro.core.allocator.partition` succeed?  This module evaluates
*necessary conditions* for that success over a whole
:class:`~repro.model.batch.TaskSetBatch` at once; every set a filter
settles is **rejected for certain** — each decision is provably equal to
the full partition outcome, never a heuristic — so the curves the batched
pipeline produces stay bit-identical to the scalar path while the expensive
per-taskset machinery only runs on the survivors.

Why the rejects are exact
-------------------------
``sum-lo`` (``sum(u_i^L) > m``) and ``sum-hi`` (``sum(u_i^H) > m`` over HC
tasks) rest on a pigeonhole argument: if :func:`partition` succeeded, every
core's final state was accepted by the schedulability test, and each
registered test only ever accepts a core whose LO utilization (resp. HI
utilization) is at most ``1 + 1e-9``:

* EDF-VD admits via ``a + c <= 1`` (and ``b <= c``) or explicitly gates on
  ``a + b <= 1`` and ``c <= 1`` (:func:`repro.analysis.edf_vd.edfvd_admits`);
* the EY/ECDF tuning rejects up front when ``U_LO`` or ``U_HH`` exceeds
  ``1 + 1e-9`` (and its fast-accept region satisfies both bounds);
* the AMC response-time iterations diverge past any deadline once a core's
  utilization exceeds 1 in either mode.

Summing the per-core bounds, success implies ``sum <= m * (1 + 1e-9)`` up
to float-fold noise.  The filters therefore fire only above
``m + SUM_MARGIN`` with ``SUM_MARGIN`` orders of magnitude larger than both
the tests' epsilon and the worst-case difference between numpy's pairwise
segment sums and the analyses' left-folded sums — firing proves failure.

``lone-task`` uses subset monotonicity: a task the test rejects *alone on
an empty core* can never be admitted on any core (every candidate core set
is a superset of the singleton; see
:attr:`~repro.analysis.interface.SchedulabilityTest.is_subset_monotone`),
so every allocation order dooms the set.  Candidate tasks are screened
vectorized (a task with ``C^H <= D`` and own-level utilization at most
``1 + 1e-9`` is accepted alone by every registered test — the singleton
demand fits each window, see the test-specific arguments in
``tests/analysis/test_prefilter.py``) and the rare survivors are confirmed
by running the *actual* test on a materialized singleton, which is the same
verdict an empty-core probe produces.

Probe screens
-------------
Beyond whole-batch rejects, tests can expose a :class:`ProbeScreen` — the
O(1) utilization region in which a single admission probe's verdict is
already determined.  :func:`repro.core.batch.partition_batch` replays the
allocation loop through these screens ("utilization-ledger replay") and
settles every set whose walk never leaves the decided region; the EDF-VD
screen is complete (every probe decides), the EY/ECDF screen mirrors the
pre-screen of :class:`repro.analysis.context.DemandContext` and reports
``None`` for probes that would need dbf work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.model import TaskSet, TaskSetBatch
from repro.analysis.interface import SchedulabilityTest

__all__ = [
    "SUM_MARGIN",
    "ProbeScreen",
    "EDFVDScreen",
    "DemandPreScreen",
    "PrefilterReport",
    "PrefilterBank",
    "default_prefilter_bank",
]

#: Fire the utilization-sum filters only above ``m + SUM_MARGIN``.  The
#: margin dominates the tests' acceptance epsilon (``m * 1e-9`` for any
#: realistic core count) plus summation-order noise (``<= n * ulp``), which
#: is what makes a firing filter a *proof* of partition failure.
SUM_MARGIN = 1e-7

#: The utilization epsilon of the O(1) probe screens — the exact constant
#: used by the EDF-VD test and the DemandContext pre-screen.
_EPS = 1e-9


class ProbeScreen:
    """O(1) admission-probe decider over candidate utilization sums.

    ``decide`` receives the candidate core's accumulated sums *with the
    probed task already folded in* — ``a = U_LL``, ``b = U_LH``,
    ``c = U_HH``, ``u_res`` the residual LC HI-mode utilization — plus
    whether core and task are all implicit-deadline.  It returns the probe
    verdict, or None when the verdict cannot be determined from the sums
    alone (the caller then abandons the columnar replay for that set).
    Implementations must be bit-exact mirrors of the corresponding
    incremental context's arithmetic.
    """

    def decide(
        self,
        a: float,
        b: float,
        c: float,
        u_res: float,
        implicit: bool,
    ) -> bool | None:
        raise NotImplementedError


class EDFVDScreen(ProbeScreen):
    """The EDF-VD utilization test *is* an O(1) screen.

    Delegates to :func:`repro.analysis.edf_vd.edfvd_admits`, the very
    function :class:`~repro.analysis.context.EDFVDContext` probes with, on
    the same floats.  Every implicit-deadline probe is decided; a
    non-implicit candidate — which the context would reject with an error
    — reports None so the replay backs off to the scalar path's gates.
    """

    def __init__(self):
        from repro.analysis.edf_vd import edfvd_admits

        self._admits = edfvd_admits

    def decide(self, a, b, c, u_res, implicit):
        if not implicit:
            return None
        return self._admits(a, b, c, u_res)


class DemandPreScreen(ProbeScreen):
    """The utilization pre-screen of the EY/ECDF incremental context.

    Term-for-term transcription of the opening checks of
    :meth:`repro.analysis.context.DemandContext.analyze`: reject when
    ``a + b`` or ``c`` exceeds ``1 + 1e-9``; accept the implicit-deadline
    plain-EDF reserve ``a + c <= 1 + 1e-9``; everything else needs dbf work
    and reports None.
    """

    def decide(self, a, b, c, u_res, implicit):
        if a + b > 1.0 + _EPS or c > 1.0 + _EPS:
            return False
        if implicit and a + c <= 1.0 + _EPS:
            return True
        return None


@dataclass
class PrefilterReport:
    """Which sets the bank settled, and which filter settled each.

    ``settled[i]`` is the name of the filter that decided set ``i`` (all
    decisions are rejects), or None when the set fell through.  ``counts``
    aggregates per filter over the batch — the "settled-count report" the
    batched sweep and the benchmark surface.
    """

    settled: list[str | None]
    counts: dict[str, int] = field(default_factory=dict)


class PrefilterBank:
    """The ordered filter bank; see module docstring for exactness proofs.

    One bank serves one schedulability test: the lone-task filter memoizes
    verdicts of *that test* (per service model), so :meth:`apply` pins the
    first test instance it sees and rejects any other — sharing a bank
    across tests would replay one test's verdicts as another's.
    """

    def __init__(self, lone_task: bool = True):
        self.lone_task = lone_task
        self._test: SchedulabilityTest | None = None
        #: memoized singleton verdicts keyed by (service key, task params)
        self._lone_memo: dict[tuple, bool] = {}

    def serves(self, test: SchedulabilityTest) -> bool:
        """Whether this bank can apply ``test`` (unbound, or bound to it)."""
        return self._test is None or self._test is test

    def apply(
        self, batch: TaskSetBatch, m: int, test: SchedulabilityTest
    ) -> PrefilterReport:
        """Run every filter over ``batch``; later filters skip settled sets."""
        if self._test is None:
            self._test = test
        elif self._test is not test:
            raise ValueError(
                "a PrefilterBank serves exactly one test instance; this "
                f"bank is bound to {self._test!r}, got {test!r} — create "
                "one bank per (algorithm, test)"
            )
        n_sets = len(batch)
        settled: list[str | None] = [None] * n_sets
        counts = {"sum-lo": 0, "sum-hi": 0, "lone-task": 0}
        if n_sets == 0:
            return PrefilterReport(settled, counts)

        # The per-set sums depend on the batch alone; several algorithms
        # walk the same batch per bucket, so they live in its scratch memo.
        sums = batch.replay_cache.get("prefilter-sums")
        if sums is None:
            sums = (
                batch.sum_per_set(batch.u_lo),
                batch.sum_per_set(np.where(batch.is_high, batch.u_hi, 0.0)),
            )
            batch.replay_cache["prefilter-sums"] = sums
        sum_lo, sum_hi = sums
        for i in np.flatnonzero(sum_lo > m + SUM_MARGIN):
            settled[i] = "sum-lo"
            counts["sum-lo"] += 1
        for i in np.flatnonzero(sum_hi > m + SUM_MARGIN):
            if settled[i] is None:
                settled[i] = "sum-hi"
                counts["sum-hi"] += 1

        if self.lone_task and getattr(test, "is_subset_monotone", True):
            counts["lone-task"] += self._apply_lone_task(batch, test, settled)
        return PrefilterReport(settled, counts)

    # -- lone-task filter ----------------------------------------------------
    def _apply_lone_task(
        self,
        batch: TaskSetBatch,
        test: SchedulabilityTest,
        settled: list[str | None],
    ) -> int:
        """Settle sets containing a task the test rejects alone.

        The vectorized screen keeps only tasks that could conceivably fail
        alone (``C^H > D``, or own-level utilization above ``1 + 1e-9``);
        each survivor's verdict comes from the real test on a singleton
        task set (memoized by parameters), so a settle is the exact
        empty-core probe outcome plus subset monotonicity.
        """
        u_own = np.where(batch.is_high, batch.u_hi, batch.u_lo)
        suspect = (batch.wcet_hi > batch.deadline) | (u_own > 1.0 + _EPS)
        if not suspect.any():
            return 0
        service = batch.service_model
        fired = 0
        for i in range(len(batch)):
            if settled[i] is not None:
                continue
            rows = batch.set_slice(i)
            for j in np.flatnonzero(suspect[rows]):
                row = rows.start + int(j)
                if not self._lone_task_fails(batch, row, test, service):
                    continue
                settled[i] = "lone-task"
                fired += 1
                break
        return fired

    def _lone_task_fails(
        self, batch: TaskSetBatch, row: int, test, service
    ) -> bool:
        service_key = (
            None if service is None or service.is_full_drop else service.key()
        )
        key = (
            service_key,
            int(batch.period[row]),
            int(batch.wcet_lo[row]),
            int(batch.wcet_hi[row]),
            int(batch.deadline[row]),
            bool(batch.is_high[row]),
            int(batch.wcet_degraded[row]),
            int(batch.period_degraded[row]),
        )
        verdict = self._lone_memo.get(key)
        if verdict is None:
            singleton = TaskSet([batch.row_task(row)], service_model=service)
            verdict = not test.is_schedulable(singleton)
            self._lone_memo[key] = verdict
        return verdict


def default_prefilter_bank() -> PrefilterBank:
    """A fresh bank with every exact filter enabled."""
    return PrefilterBank()
