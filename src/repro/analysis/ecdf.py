"""ECDF — Easwaran's demand-based test with greedy deadline assignment (S6).

Reconstruction of "Demand-based scheduling of mixed-criticality sporadic
tasks on one processor" (RTSS 2013) from its published structure:

* the same two-mode dbf abstraction as EY (:mod:`repro.analysis.dbf`);
* the *carry-over trigger refinement*: on a partitioned core the mode switch
  is triggered by a local HC job that has exhausted exactly its LO budget,
  so one carry-over contribution can be tightened by
  ``min(C_L, x mod T)`` — the HI check runs with ``refine=True``;
* the *greedy deadline assignment*: virtual deadlines are assigned by a
  benefit/cost rule (HI-demand reduction per unit of LO-mode density
  increase) instead of EY's steepest-descent pick.

See DESIGN.md §5 for the fidelity discussion.  The property relied on by the
DATE 2017 experiments — ECDF accepts a superset of EY in practice — is
enforced structurally here: ``ECDFTest`` falls back to the EY descent path
when the greedy path fails, so its acceptance region *contains* EY's by
construction, with the trigger refinement providing strict improvements.

Valid for implicit- and constrained-deadline dual-criticality task sets.
"""

from __future__ import annotations

from repro.model import TaskSet
from repro.analysis.dbf import DEFAULT_HORIZON_CAP
from repro.analysis.interface import (
    AnalysisResult,
    SchedulabilityTest,
    register_test,
)
from repro.analysis.vdtuning import run_tuning_stages

__all__ = ["ECDFTest"]


class ECDFTest(SchedulabilityTest):
    """ECDF dbf test: trigger-refined demand + greedy deadline assignment."""

    name = "ecdf"

    def __init__(
        self,
        horizon_cap: int = DEFAULT_HORIZON_CAP,
        fallback_to_steepest: bool = True,
    ):
        self.horizon_cap = horizon_cap
        self.fallback_to_steepest = fallback_to_steepest

    @property
    def stages(self) -> tuple[tuple[str, bool], ...]:
        """The ``(policy, refine)`` fallback chain of this test.

        The greedy rule can occasionally descend into a corner the steepest
        rule avoids; on rejection the chain retries with the refined
        steepest descent, then with EY's exact descent path
        (``refine=False``), which makes ECDF's acceptance region a superset
        of EY's by construction.
        """
        if not self.fallback_to_steepest:
            return (("ratio", True),)
        return (("ratio", True), ("steepest", True), ("steepest", False))

    def analyze(self, taskset: TaskSet) -> AnalysisResult:
        outcome = run_tuning_stages(taskset, self.stages, self.horizon_cap)
        return AnalysisResult(
            outcome.schedulable,
            virtual_deadlines=dict(outcome.virtual_deadlines),
            detail=outcome.detail,
        )

    def supports_service_model(self, service) -> bool:
        """The dbf machinery carries the residual LC HI-mode demand term."""
        return True

    def make_context(self, service=None):
        """Incremental context sharing dbf work across probes and stages."""
        from repro.analysis.context import DemandContext

        return DemandContext(self, self.stages, self.horizon_cap, service=service)

    def batch_screen(self):
        """Partial probe screen — the context's utilization pre-screen plus
        the demand-level fast-path screens for this test's tuning chain."""
        from repro.analysis.prefilter import DemandPreScreen

        return DemandPreScreen(stages=self.stages, horizon_cap=self.horizon_cap)


register_test("ecdf", ECDFTest)
