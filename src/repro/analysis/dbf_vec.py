"""Vectorized demand machinery of the ``"vec"`` kernel.

:func:`repro.analysis.dbf.set_demand_kernel` ``("vec")`` keeps the QPA
decision procedure of :mod:`repro.analysis.dbf` (screens + backward
fixed-point search + forward localization) and additionally enables the
machinery here inside the shrink-descent engine of
:mod:`repro.analysis.vdtuning`.  Everything in this module is either a
pure-value replacement (the identical integer/float is produced by
different array code) or an accept-only cost layer, so results stay
bit-identical to the ``"qpa"`` and ``"forward"`` kernels — the property
the differential suite in ``tests/analysis/test_dbf_vec.py`` asserts.

Four layers:

Closed-form V* (:func:`vstar_own`)
    The own-breakpoint half of the minimal LO-feasible virtual deadline,
    evaluated over the *whole* other-breakpoint window at once instead of
    a ``feasible(v)`` bisection.  For the probed task (``C = wcet_lo``,
    period ``T``) the own-half fails at an own point ``l = v + jT`` in
    others' slack region ``i`` iff ``(j+1) C > slack_o[i] + (l - p_i)``;
    for each region only the *minimal* reaching job count
    ``j* = max(slack_o[i] // C, ceil((p_i - D) / T), 0)`` matters (every
    term of the failing-``l`` bound is non-increasing in ``j``), so the
    largest failing deadline is a max over one fused candidate array.
    Above the closed-form floor the other-breakpoint half already holds,
    making own-half feasibility ≡ full feasibility ≡ monotone in ``v`` —
    hence the boundary this computes is exactly the bisection's.

Split upper-bound screen (:func:`lo_screen_prepare` / :func:`lo_screen_accepts`)
    ``approx_accepts(others + [probe], horizon, hi=False)`` re-evaluates
    the *others'* k-step bound from scratch on every probe even though
    only the probed deadline moved.  The split caches the others' bound
    at the others' candidate points once per ``(task, assignment)`` and
    each probe adds one single-task term — integer addition is
    associative, so the totals (and hence the verdict) are the ones the
    one-shot screen computes over the same candidate multiset.  The
    descent engages it lazily (first shot on an entry stays one-shot;
    the cache is built on the second) and, because the marginal shot is
    O(k), keeps screening where the qpa cost valve stops after two shots
    and pays the exact probe — accept-only screens make both pure cost
    policies with verdict-identical results.

Vectorized candidate ranking (:meth:`DescentSession.rank`)
    The per-assignment shrink-candidate ranking (single-task HI staircase
    now/floor/new demand, the closed-form staircase inversion, both score
    policies) on task columns instead of a scalar loop.  All integer
    arithmetic plus *elementwise* float64 division — IEEE-identical to
    the scalar expressions, no reductions — feeding the identical
    ``(score, slack, -task_id)`` sort keys.  Array dispatch only pays for
    itself on wide candidate sets (numpy's per-call overhead dwarfs a
    loop over a handful of tasks), so the descent engages this path above
    :data:`RANK_VEC_MIN` candidates and keeps the scalar loop below it —
    a pure cost crossover, both sides produce the same entries.

Speculative shrink batches (:meth:`DescentSession.speculate` / ``consume``)
    Each descent iteration ranks candidates once per assignment; the
    sequential trajectory then walks the ranking one freeze at a time.
    ``speculate`` pre-evaluates the next ``k`` ranked candidates' shrink
    targets against the engine's accept screens (memoized monotone hit,
    density condition) in one batch; ``consume`` hands the pre-computed
    answer — *including the side effects the sequential screen would have
    applied at that moment* — to whichever candidate the trajectory
    actually reaches, and :meth:`DescentSession.retire` discards the rest
    on commit.  Sound because every speculated value is a pure function
    of the probe (``vd`` is frozen between commits, so batch entries
    cannot go stale); iteration accounting and descent outcomes are
    untouched.  The batch is also *cost-bounded*: it settles only from
    scaffolding the memo already holds (the repeated-pick pattern of the
    micro-walk) and never computes a fresh others-entry for a candidate
    the trajectory may skip — per batch it spends dict lookups and a few
    integer comparisons, so even a zero hit rate costs noise while every
    hit removes a full sequential gate chain.  ``REPRO_DBF_SPEC_K`` sets
    the depth — a pure cost knob.

Speculation diagnostics live on the obs registry as the ``kernel.vec``
counter scope (``spec-hit``/``spec-waste``/``spec-batches``/``spec-width``),
aggregated by :func:`repro.experiments.acceptance.kernel_summary` and
rendered in the CLI ``--pipeline`` diagnostics block.  Like the ``dbf``
scope they are compare-excluded cost diagnostics; cache keys never see
them.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import dbf as _dbf
from repro.obs import REGISTRY as _OBS_REGISTRY
from repro.util.env import rank_vec_min_from_env, spec_depth_from_env

__all__ = [
    "DescentSession",
    "lo_screen_accepts",
    "lo_screen_prepare",
    "reset_vec_counters",
    "set_speculation_depth",
    "speculation_depth",
    "vec_counters",
    "vstar_own",
]

#: Ranked candidates whose screens each descent assignment pre-evaluates
#: (the ``REPRO_DBF_SPEC_K`` knob).  Pure cost/coverage trade.
_SPEC_DEPTH = spec_depth_from_env()

#: Candidate-set width at which array ranking overtakes the scalar loop
#: (the ``REPRO_DBF_RANK_VEC_MIN`` knob).  Below it numpy's fixed
#: per-call overhead (~20 tiny array ops) loses to a plain loop over a
#: handful of tasks; measured crossover on the bench host sits near two
#: dozen HC tasks per core.  Cost-only: both paths emit identical
#: entries.
RANK_VEC_MIN = rank_vec_min_from_env()

# Always-on like the "dbf" scope: the registry hands back a mutable dict,
# so the descent keeps plain ``+= 1`` cost while snapshots, worker->parent
# merging and the exporters see ``kernel.vec.<key>``.
_COUNTERS = _OBS_REGISTRY.counter_scope(
    "kernel.vec",
    (
        "spec-hit",  # speculated screen settles the trajectory consumed
        "spec-waste",  # speculated settles discarded on commit/retire
        "spec-batches",  # speculation batches built
        "spec-width",  # candidates examined across all batches
    ),
)


def speculation_depth() -> int:
    """The active speculation depth ``k`` of the vec descent."""
    return _SPEC_DEPTH


def set_speculation_depth(k: int) -> int:
    """Set the speculation depth; returns the previous one.

    A pure cost knob: any positive depth yields identical descent
    trajectories and outcomes (the property the trace-equality test
    asserts), it only moves work between speculated batches and
    sequential screen calls.
    """
    global _SPEC_DEPTH
    if not isinstance(k, int) or k <= 0:
        raise ValueError(f"speculation depth must be a positive int, got {k!r}")
    previous = _SPEC_DEPTH
    _SPEC_DEPTH = k
    return previous


def vec_counters() -> dict[str, int]:
    """Snapshot of the process-local speculation diagnostics counters."""
    return dict(_COUNTERS)


def reset_vec_counters() -> None:
    """Zero the speculation diagnostics counters (process-local)."""
    for key in _COUNTERS:
        _COUNTERS[key] = 0


# -- closed-form V* ----------------------------------------------------------


def vstar_own(
    points_o: np.ndarray,
    slack_o: np.ndarray,
    wcet_lo: int,
    period: int,
    deadline: int,
    floor_v: int,
    horizon: int,
) -> int | None:
    """Minimal own-half-feasible virtual deadline in ``[floor_v, deadline]``.

    Value-identical to the sequential search over
    :meth:`repro.analysis.dbf.LoShrinkProbe._own_feasible` (floor probe,
    full-deadline probe, bisection): the own-half fails for deadline ``v``
    iff some own point ``l = v + jT <= horizon`` has
    ``(j+1) C > slack(l)``, where within others' region ``i`` (from
    ``p_i = points_o[i]`` up to the next point) the slack is
    ``slack_o[i] + (l - p_i)``.  For each region the smallest job count
    that can fail at all is
    ``j* = max(slack_o[i] // C, ceil((p_i - deadline) / T), 0)``
    (below ``slack_o[i] // C`` the region start already has enough slack;
    below the middle term no ``v <= deadline`` reaches the region), and
    the largest failing ``l`` at that count is

        ``min(p_{i+1} - 1, p_i + (j*+1) C - 1 - slack_o[i],
        deadline + j* T, horizon)``

    — every term non-increasing in ``j``, so ``j*`` dominates all larger
    counts and ``v = l - j* T`` is the region's largest failing deadline.
    Duplicate breakpoints make a region empty; the ``l >= p_i`` mask
    voids it.  Requires ``C <= T`` (constrained-deadline model) and the
    caller's guarantees from the V* ``compute()`` path: ``slack_o >= 0``
    everywhere and ``floor_v`` at or above the closed-form
    other-breakpoint floor, which makes own-half feasibility monotone on
    the searched range.  Returns None when even ``deadline`` fails —
    exactly when the bisection path would.
    """
    if len(points_o) == 0:
        return floor_v
    c, t, d = wcet_lo, period, deadline
    jmin = slack_o // c
    jlo = -((d - points_o) // t)  # ceil((p - d) / t) in floor division
    jstar = np.maximum(np.maximum(jmin, jlo), 0)
    p_next = np.empty_like(points_o)
    p_next[:-1] = points_o[1:]
    p_next[-1] = horizon + 1
    l_cand = np.minimum(
        np.minimum(p_next - 1, points_o + (jstar + 1) * c - 1 - slack_o),
        np.minimum(d + jstar * t, horizon),
    )
    valid = l_cand >= points_o
    if not valid.any():
        return floor_v
    maxfail = int((l_cand - jstar * t)[valid].max())
    if maxfail >= d:
        return None
    return max(floor_v, maxfail + 1)


# -- split upper-bound screen ------------------------------------------------


def _screen_terms(columns: tuple, points: np.ndarray, k: int) -> np.ndarray:
    """Per-task k-step LO bound terms at ``points`` (tasks × points).

    The exact per-task expression of
    :func:`repro.analysis.dbf.approx_accepts` with ``hi=False``: the
    staircase below the blend point ``d + k T``, the integer-ceiling
    chord above it, zero before the deadline.
    """
    deadline, period, wcet = columns
    x = points[None, :] - deadline
    active = x >= 0
    xa = np.where(active, x, 0)
    stair = (xa // period + 1) * wcet
    chord = -((-wcet * (xa + period)) // period)
    exact = points[None, :] < deadline + k * period
    return np.where(active, np.where(exact, stair, chord), 0)


def lo_screen_prepare(others, horizon: int, k: int) -> tuple:
    """Others' half of the LO upper-bound screen at ``horizon``, cached.

    Evaluates the other tasks' k-step bound at *their* candidate points
    (their first ``k+1`` step points plus the horizon — the ramp-free
    ``hi=False`` candidate family of ``_ub_screen_points``) once; the
    returned tuple lets :func:`lo_screen_accepts` decide each probe by
    adding a single task's terms.
    """
    families = [np.asarray([horizon], dtype=np.int64)]
    for task in others:
        if task.deadline > horizon:
            continue
        families.append(
            np.arange(
                task.deadline,
                min(task.deadline + k * task.period, horizon) + 1,
                task.period,
                dtype=np.int64,
            )
        )
    pts_o = np.concatenate(families)
    if others:
        columns = (
            np.array([task.deadline for task in others], dtype=np.int64)[:, None],
            np.array([task.period for task in others], dtype=np.int64)[:, None],
            np.array([task.wcet for task in others], dtype=np.int64)[:, None],
        )
        ub_o = _screen_terms(columns, pts_o, k).sum(axis=0)
    else:
        columns = None
        ub_o = np.zeros(len(pts_o), dtype=np.int64)
    others_ok = bool((ub_o <= pts_o).all())
    return (pts_o, ub_o, columns, others_ok)


def lo_screen_accepts(
    prepared: tuple, wcet_lo: int, period: int, v: int, horizon: int, k: int
) -> bool:
    """Verdict-identical to ``approx_accepts(others + [probe@v], horizon,
    hi=False, k=k)`` against the cached others' half.

    The one-shot screen compares the summed bound against the union of
    the others' and the probe's candidate points; integer addition is
    associative, so splitting the sum into "cached others + one probe
    term" reproduces the exact totals at the exact points.  A probe
    deadline past the horizon contributes no points and no terms — the
    one-shot screen's ``deadline > horizon`` filter — leaving only the
    cached others' verdict.
    """
    pts_o, ub_o, columns, others_ok = prepared
    if v > horizon:
        return others_ok
    x = pts_o - v
    active = x >= 0
    xa = np.where(active, x, 0)
    stair = (xa // period + 1) * wcet_lo
    chord = -((-wcet_lo * (xa + period)) // period)
    exact = pts_o < v + k * period
    probe_terms = np.where(active, np.where(exact, stair, chord), 0)
    if np.any(ub_o + probe_terms > pts_o):
        return False
    # The probe's own candidate points: x there is a multiple of the
    # period, where the chord equals the staircase — no blend branch.
    pts_p = np.arange(
        v, min(v + k * period, horizon) + 1, period, dtype=np.int64
    )
    total = ((pts_p - v) // period + 1) * wcet_lo
    if columns is not None:
        total = total + _screen_terms(columns, pts_p, k).sum(axis=0)
    return not np.any(total > pts_p)


# -- vectorized ranking + speculative descent --------------------------------


class DescentSession:
    """Per-descent state of the vec kernel: task columns for vectorized
    candidate ranking plus the speculative shrink batch.

    One session serves one :func:`~repro.analysis.vdtuning._descend` run;
    it reads the engine's private memo scaffolding (same package, shared
    invariants).  Every method is value-identical to its scalar
    counterpart — the session moves cost, never results.
    """

    def __init__(self, engine, high_tasks):
        self._engine = engine
        self._tasks = list(high_tasks)
        self._period = np.array([t.period for t in self._tasks], dtype=np.int64)
        self._wcet_lo = np.array([t.wcet_lo for t in self._tasks], dtype=np.int64)
        self._wcet_hi = np.array([t.wcet_hi for t in self._tasks], dtype=np.int64)
        self._deadline = np.array([t.deadline for t in self._tasks], dtype=np.int64)
        #: position of each task inside the engine's candidate order, for
        #: building ``_sig_others`` tuples by deletion instead of n scans.
        self._pos = {t.task_id: i for i, t in enumerate(engine.taskset)}
        self._spec: dict | None = None
        #: task_id of the last committed shrink — the one candidate whose
        #: others-signature survives a commit (see ``speculate``).
        self._last: int | None = None
        #: whether the candidate set is wide enough for array ranking to
        #: beat the scalar loop (see :data:`RANK_VEC_MIN`).
        self.vector_rank = len(self._tasks) >= RANK_VEC_MIN

    # -- ranking -------------------------------------------------------------
    def rank(self, vd, violation: int, deficit: int, policy: str) -> list:
        """Entry-identical to ``_rank_candidates`` (same keys, same order).

        The scalar loop's closed forms — single-task HI staircase demand
        now / at the shrink floor / after the shrink, the staircase
        inversion of the minimal deficit-clearing shrink, both score
        policies — as column arithmetic.  Integer ops are exact; the two
        float divisions of the ratio policy are elementwise, hence
        IEEE-identical to the scalar expressions; the assembled tuples
        and the descending sort are byte-for-byte the scalar path's.
        """
        tasks = self._tasks
        if not tasks:
            return []
        period, wcet_lo, wcet_hi = self._period, self._wcet_lo, self._wcet_hi
        vd_now = np.fromiter(
            (vd[t.task_id] for t in tasks), dtype=np.int64, count=len(tasks)
        )
        max_shrink = vd_now - wcet_lo
        x = violation - (self._deadline - vd_now)
        r0 = x % period
        first = np.where(r0 < wcet_lo, 1, r0 - wcet_lo + 1)
        keep = (max_shrink > 0) & (x >= 0) & (first <= max_shrink)
        d_now = (x // period + 1) * wcet_hi - np.maximum(0, wcet_lo - r0)
        x_floor = x - max_shrink
        d_floor = np.where(
            x_floor >= 0,
            (x_floor // period + 1) * wcet_hi
            - np.maximum(0, wcet_lo - x_floor % period),
            0,
        )
        target = np.minimum(deficit, d_now - d_floor)
        # _invert_shrink, all branches at once: largest y >= 0 with
        # H(y) <= d_now - target (-1 when none), minimal shrink x - y*.
        level = d_now - target
        jobs = (level + wcet_lo) // wcet_hi - 1
        need = (jobs + 1) * wcet_hi - level
        y_star = np.where(
            jobs < 0,
            -1,
            np.where(
                need <= 0,
                jobs * period + period - 1,
                jobs * period + wcet_lo - need,
            ),
        )
        desired = np.where(target <= 0, max_shrink, np.maximum(1, x - y_star))
        desired = np.maximum(desired, first)
        x_new = x - desired
        d_new = np.where(
            x_new >= 0,
            (x_new // period + 1) * wcet_hi
            - np.maximum(0, wcet_lo - x_new % period),
            0,
        )
        gain = d_now - d_new
        keep &= gain > 0
        idx = np.nonzero(keep)[0]
        if not len(idx):
            return []
        if policy == "steepest":
            score = gain[idx].astype(np.float64)
        else:  # ratio: HI gain per unit of LO density increase
            vd_k = vd_now[idx]
            lo_k = wcet_lo[idx]
            cost = np.maximum(lo_k / (vd_k - desired[idx]) - lo_k / vd_k, 1e-12)
            score = gain[idx] / cost
        ranked = []
        for row, i in enumerate(idx.tolist()):
            task = tasks[i]
            ranked.append(
                (
                    (float(score[row]), int(max_shrink[i]), -task.task_id),
                    task,
                    int(desired[i]),
                )
            )
        ranked.sort(key=lambda entry: entry[0], reverse=True)
        return ranked

    # -- speculation ---------------------------------------------------------
    def speculate(self, ranked: list, vd) -> None:
        """Pre-evaluate the next ``k`` ranked candidates' shrink screens.

        For each of the top ``k`` entries this replays the gate sequence
        of ``max_lo_feasible_shrink``'s warm path against the frozen
        ``vd``: target above the task's floor, no banked V*, scaffolding
        cached, horizon available, then the memoized monotone hit or the
        O(1) density accept.  A candidate that settles is stored with the
        *kind* of settle, so ``consume`` can replay the sequential side
        effects (diagnostics counter, smallest-accepted-deadline memo) at
        the moment the trajectory actually reaches it; a candidate that
        does not settle still banks its ``sig_others`` tuple (one shared
        pass over the candidate order instead of one scan per pick).  Two
        costs are deliberately *not* speculated: a fresh others-entry (an
        O(n) fold a skipped candidate would turn into pure waste — only
        memo-cached scaffolding settles here) and the O(n·k) upper-bound
        screen (its cost-valve counter is observable in the screen-call
        accounting, and the split screen makes the sequential call cheap
        anyway).
        """
        engine = self._engine
        memo = engine._memo
        self._spec = spec = {}
        if memo is None or not ranked:
            return
        depth = min(_SPEC_DEPTH, len(ranked))
        _COUNTERS["spec-batches"] += 1
        _COUNTERS["spec-width"] += depth
        # A commit rewrites every *other* candidate's others-signature, so
        # under the frozen vd only the last-committed task's scaffolding
        # (or a warm shared memo's) can be cached.  One integer compare
        # gates the rest of the batch out before any tuple or dict work —
        # this is what bounds a missed speculation at noise cost.
        last = self._last
        pairs = None
        for _key, task, desired in ranked[:depth]:
            if task.task_id != last:
                continue
            if pairs is None:
                pairs = [
                    (t.task_id, vd.get(t.task_id, t.deadline))
                    for t in engine.taskset
                ]
            pos = self._pos[task.task_id]
            sig_o = tuple(pairs[:pos] + pairs[pos + 1 :])
            target = vd[task.task_id] - desired
            # [kind, desired, sig_o, prepared, target]
            entry = [None, desired, sig_o, None, target]
            spec[task.task_id] = entry
            if target < task.wcet_lo:
                continue
            if memo.get(("vmin", task.task_id, sig_o)) is not None:
                continue
            prepared = memo.get(("lofp", task.task_id, sig_o))
            if prepared is None:
                continue  # never fold a fresh others-entry speculatively
            horizon, density, accepted_v = prepared[1], prepared[2], prepared[3]
            if horizon is None:
                continue
            entry[3] = prepared
            if accepted_v is not None and target >= accepted_v:
                entry[0] = "hit"
            elif horizon == 0:
                entry[0] = "screen"
            elif density + task.wcet_lo / min(target, task.period) <= 1.0 - 1e-9:
                entry[0] = "screen"

    def consume(self, task, desired: int):
        """``(shrink, sig_o)`` for the candidate the trajectory picked.

        ``shrink`` is the speculated settle (always ``desired`` — the
        screens are accept-only) or None when the candidate must take the
        sequential path; ``sig_o`` is the banked signature tuple for that
        path, or None when nothing was speculated.  Consuming a settle
        applies exactly the side effects the sequential screen accept
        would have applied now: the ``approx-accept`` diagnostics tick
        and the monotone smallest-accepted-deadline update for a fresh
        screen settle, nothing for a memoized monotone hit.
        """
        spec = self._spec
        entry = spec.pop(task.task_id, None) if spec else None
        if entry is None or entry[1] != desired:
            return (None, None)
        kind, _, sig_o, prepared, target = entry
        if kind is None:
            return (None, sig_o)
        _COUNTERS["spec-hit"] += 1
        if kind == "screen":
            _dbf._COUNTERS["approx-accept"] += 1
            accepted_v = prepared[3]
            prepared[3] = target if accepted_v is None else min(accepted_v, target)
        return (desired, sig_o)

    def retire(self, committed: int | None = None) -> None:
        """Discard the batch (on commit or descent exit), counting the
        speculated settles the trajectory never reached as waste.

        ``committed`` is the task_id of a just-committed shrink — the
        anchor the next batch speculates around (its others-signature is
        the only one the commit leaves intact)."""
        if committed is not None:
            self._last = committed
        spec = self._spec
        self._spec = None
        if not spec:
            return
        wasted = sum(1 for entry in spec.values() if entry[0] is not None)
        if wasted:
            _COUNTERS["spec-waste"] += wasted
