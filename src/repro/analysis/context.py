"""Incremental per-core analysis contexts (the partitioning hot path).

Algorithm 1 of the paper evaluates a uniprocessor schedulability test once
per (task, candidate core) probe.  The from-scratch path rebuilds a
:class:`~repro.model.TaskSet` and reruns the full analysis for every probe;
an :class:`AnalysisContext` is the stateful per-core alternative: it keeps
the core's committed tasks, running utilization accumulators and memoized
dbf intermediates alive across probes, so only the work that actually
depends on the probed task is redone.

Protocol
--------
``probe(task)``
    Verdict for "committed tasks plus ``task``" — bit-identical to
    ``test.analyze(TaskSet(committed + [task])).schedulable``.  Probing
    never mutates observable context state (a failed probe leaves the
    context exactly as it was; only pure memo entries may be added).
``commit(task)``
    Append ``task`` to the core after a successful probe (the allocator
    mirrors this into its :class:`~repro.core.allocator.ProcessorState`
    accumulator, which stays the source of truth for the fit rules).
``analyze(task)``
    The full :class:`~repro.analysis.interface.AnalysisResult` of the
    candidate — what the differential tests compare against the
    from-scratch analysis.
``snapshot()`` / ``rollback(token)``
    Cheap O(1) state capture/restore, for callers that tentatively commit
    (the running sums are restored verbatim, so rolled-back state is
    float-exact, not merely approximately equal).

Fallback semantics
------------------
Contexts are created by :meth:`SchedulabilityTest.make_context`.  Tests
without an incremental formulation return None and
:func:`repro.core.allocator.partition` transparently falls back to the
from-scratch path, so every (strategy, test) pairing keeps working whether
or not a context exists.  Because every context value is either a running
accumulator maintained in the exact evaluation order of the from-scratch
code or a memoized pure-function result, the incremental path produces
bit-identical verdicts, virtual deadlines and sweep results — a property
the differential test suite asserts rather than assumes.

Demand-kernel independence
--------------------------
Context memo keys never encode the active demand kernel
(:func:`repro.analysis.dbf.demand_kernel`): all four kernels are
verdict-identical decision procedures over the same demand functions, so
a memoized result is valid under any of them and switching kernels
mid-session cannot poison a context.  The identity contract is tiered:
``forward``, ``qpa`` and ``vec`` are additionally bit-identical down to
the descent *trajectory* (iteration counts, committed deadlines), while
``block`` commits multi-task boundary jumps and guarantees only the
*verdicts* — which is exactly the level the memo keys, the shard-cache
payloads and the opt-in :mod:`repro.analysis.verdict_cache` depend on.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.model import MCTask, TaskSet
from repro import obs as _obs
from repro.analysis.interface import AnalysisResult, SchedulabilityTest

__all__ = [
    "AnalysisContext",
    "EDFVDContext",
    "DemandContext",
    "AMCContext",
]


class AnalysisContext(abc.ABC):
    """Stateful per-core incremental schedulability analysis.

    The base class maintains the committed task list and the three running
    utilization sums in *commit order*.  Commit order equals the candidate
    ``TaskSet`` order of the from-scratch path, and each sum is folded
    left-to-right exactly like ``sum()`` in
    :meth:`repro.model.TaskSet.utilization` — so the accumulators are
    float-identical to the from-scratch aggregates, not merely close.
    """

    def __init__(self, test: SchedulabilityTest, service=None):
        self.test = test
        #: LC service model of the partitioned task set (None = drop).
        self.service = service
        self._degraded = service is not None and not service.is_full_drop
        self._tasks: list[MCTask] = []
        self._u_ll = 0.0
        self._u_lh = 0.0
        self._u_hh = 0.0
        #: running residual LC HI-mode utilization under ``service`` —
        #: stays exactly 0.0 under drop semantics (never accumulated), so
        #: the drop path's float state is untouched.
        self._u_res = 0.0
        self._implicit = True
        self._constrained = True
        # Rollback-divergence bookkeeping: every commit records the current
        # generation, and each rollback starts a new one.  A snapshot can
        # then tell whether the commits it would retain are really the ones
        # it saw (all from generations <= its own) or a diverged history.
        self._generation = 0
        self._epochs: list[int] = []

    # -- committed state ----------------------------------------------------
    @property
    def tasks(self) -> tuple[MCTask, ...]:
        """The committed tasks, in commit order."""
        return tuple(self._tasks)

    def taskset(self) -> TaskSet:
        """The committed tasks as an immutable :class:`TaskSet`."""
        return TaskSet(self._tasks, service_model=self.service)

    def commit(self, task: MCTask) -> None:
        """Assign ``task`` to this core."""
        if _obs.active():
            _obs.REGISTRY.add("context.commits")
        self._tasks.append(task)
        self._epochs.append(self._generation)
        if task.is_high:
            self._u_lh += task.utilization_lo
            self._u_hh += task.utilization_hi
        else:
            self._u_ll += task.utilization_lo
            if self._degraded:
                self._u_res += self.service.residual_utilization(task)
        self._implicit = self._implicit and task.implicit_deadline
        self._constrained = self._constrained and task.constrained_deadline

    def snapshot(self) -> Any:
        """Opaque token capturing the committed state (O(1))."""
        if _obs.active():
            _obs.REGISTRY.add("context.snapshots")
        return (
            len(self._tasks),
            self._generation,
            self._u_ll,
            self._u_lh,
            self._u_hh,
            self._u_res,
            self._implicit,
            self._constrained,
        )

    def rollback(self, token: Any) -> None:
        """Restore the committed state captured by :meth:`snapshot`.

        The utilization accumulators are restored to their captured float
        values verbatim (not recomputed), so a rollback is exact.  A token
        only applies to the history it saw: restoring it after the context
        has been rolled back *past* it and re-committed different tasks
        raises ``ValueError`` instead of silently pairing the captured
        sums with a diverged task list.  (Replaying the same token
        repeatedly around retries is fine — its retained prefix is
        unchanged in that pattern.)
        """
        if _obs.active():
            _obs.REGISTRY.add("context.rollbacks")
        count, generation, u_ll, u_lh, u_hh, u_res, implicit, constrained = token
        if count > len(self._tasks):
            raise ValueError("snapshot is newer than the current context state")
        if any(epoch > generation for epoch in self._epochs[:count]):
            raise ValueError(
                "snapshot does not match this context's history (the "
                "committed tasks it would retain were replaced after an "
                "earlier rollback)"
            )
        del self._tasks[count:]
        del self._epochs[count:]
        self._generation += 1
        self._u_ll = u_ll
        self._u_lh = u_lh
        self._u_hh = u_hh
        self._u_res = u_res
        self._implicit = implicit
        self._constrained = constrained

    # -- candidate helpers --------------------------------------------------
    def _candidate_sums(self, task: MCTask) -> tuple[float, float, float]:
        """(U_LL, U_LH, U_HH) of committed + ``task``, fold-order exact."""
        a, b, c = self._u_ll, self._u_lh, self._u_hh
        if task.is_high:
            b += task.utilization_lo
            c += task.utilization_hi
        else:
            a += task.utilization_lo
        return a, b, c

    def _candidate_residual(self, task: MCTask) -> float:
        """``U_res`` of committed + ``task`` (0.0 under drop semantics)."""
        if not self._degraded:
            return 0.0
        u_res = self._u_res
        if not task.is_high:
            u_res += self.service.residual_utilization(task)
        return u_res

    def _candidate_taskset(self, task: MCTask) -> TaskSet:
        return TaskSet(self._tasks + [task], service_model=self.service)

    # -- probing ------------------------------------------------------------
    @abc.abstractmethod
    def analyze(self, task: MCTask) -> AnalysisResult:
        """Full analysis of committed + ``task``; state is left untouched."""

    def probe(self, task: MCTask) -> bool:
        """Would the core stay schedulable with ``task`` added?"""
        return self.analyze(task).schedulable

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} test={self.test.name!r} "
            f"tasks={len(self._tasks)}>"
        )


class EDFVDContext(AnalysisContext):
    """EDF-VD utilization test over running sums — O(1) per probe.

    The from-scratch test is a closed-form predicate over ``(U_LL, U_LH,
    U_HH)``; with the sums maintained incrementally a probe needs no
    :class:`TaskSet` at all.  Verdicts, scaling factors and detail strings
    are produced by the same module functions on the same floats as
    :meth:`EDFVDTest.analyze`.
    """

    def analyze(self, task: MCTask) -> AnalysisResult:
        from repro.analysis.edf_vd import edfvd_admits, scaling_factor_from_sums

        if not (self._implicit and task.implicit_deadline):
            raise ValueError(
                "EDFVDTest requires an implicit-deadline task set; "
                "use ECDFTest/EYTest for constrained deadlines"
            )
        a, b, c = self._candidate_sums(task)
        u_res = self._candidate_residual(task)
        if not edfvd_admits(a, b, c, u_res):
            return AnalysisResult(
                False,
                detail=(
                    f"a={a:.4f} b={b:.4f} c={c:.4f} "
                    "fails EDF-VD utilization test"
                ),
            )
        return AnalysisResult(
            True, scaling_factor=scaling_factor_from_sums(a, b, c, u_res)
        )


class DemandContext(AnalysisContext):
    """Incremental demand-based analysis (EY and ECDF).

    Persists two things across probes:

    * the utilization accumulators, powering an O(1) necessary-condition
      pre-screen (the ``U > 1`` reject and the implicit-deadline plain-EDF
      fast accept) that settles a probe before any dbf machinery runs;
    * a memo shared by every :class:`~repro.analysis.vdtuning.DemandEngine`
      the context creates, holding per-virtual-deadline dbf query results
      (LO/HI violations, shrink searches, ``LoShrinkProbe`` instances).
      HI-mode entries are keyed by the HC tasks alone, so probing different
      LC tasks on the same core reuses all HI-mode work, and the ECDF
      fallback chain (greedy → steepest → unrefined) shares every query
      its stages have in common instead of recomputing them three times.

    ``stages`` is the ``(policy, refine)`` chain of the owning test; the
    pre-screen replicates the opening checks of
    :func:`~repro.analysis.vdtuning.tune_virtual_deadlines` on the same
    floats, so a screened probe returns the identical outcome the full
    chain would.
    """

    def __init__(
        self,
        test: SchedulabilityTest,
        stages: tuple[tuple[str, bool], ...],
        horizon_cap: int,
        service=None,
    ):
        super().__init__(test, service=service)
        self.stages = stages
        self.horizon_cap = horizon_cap
        self._memo: dict = {}

    def analyze(self, task: MCTask) -> AnalysisResult:
        from repro.analysis.vdtuning import DemandEngine, run_tuning_stages

        a, b, c = self._candidate_sums(task)
        # Necessary-condition pre-screen: these mirror (same floats, same
        # epsilons, same detail strings) the first checks of
        # tune_virtual_deadlines, which every stage of the chain would
        # repeat — so deciding here skips TaskSet construction and all dbf
        # work without any chance of changing the outcome.
        if a + b > 1.0 + 1e-9 or c > 1.0 + 1e-9:
            return AnalysisResult(
                False,
                virtual_deadlines=self._full_deadlines(task),
                detail="utilization above 1",
            )
        if self._implicit and task.implicit_deadline and a + c <= 1.0 + 1e-9:
            return AnalysisResult(
                True,
                virtual_deadlines=self._full_deadlines(task),
                detail="plain-EDF reserve (a + c <= 1)",
            )
        candidate = self._candidate_taskset(task)
        engine = DemandEngine(
            candidate,
            self.horizon_cap,
            memo=self._memo,
            committed=len(self._tasks),
        )
        outcome = run_tuning_stages(
            candidate, self.stages, self.horizon_cap, engine=engine
        )
        return AnalysisResult(
            outcome.schedulable,
            virtual_deadlines=dict(outcome.virtual_deadlines),
            detail=outcome.detail,
        )

    def _full_deadlines(self, task: MCTask) -> dict[int, int]:
        """``{task_id: D}`` over the candidate's HC tasks (vd start point)."""
        vd = {t.task_id: t.deadline for t in self._tasks if t.is_high}
        if task.is_high:
            vd[task.task_id] = task.deadline
        return vd


class AMCContext(AnalysisContext):
    """Incremental AMC response-time analysis (deadline-monotonic policy).

    AMC's per-task feasibility depends only on the *set* of higher-priority
    tasks (the OPA-compatibility property), and deadline-monotonic order is
    a total order independent of insertion order.  Probing a new task
    therefore leaves every DM level above its insertion point with an
    unchanged higher-priority set — the context memoizes
    ``(task, hp-set) -> feasible`` verdicts so those levels are never
    recomputed, across probes and commits alike.
    """

    def __init__(self, test: SchedulabilityTest, service=None):
        super().__init__(test, service=service)
        self._memo: dict[tuple[int, frozenset[int]], bool] = {}

    def analyze(self, task: MCTask) -> AnalysisResult:
        from repro.analysis.fixed_priority import (
            deadline_monotonic_order,
            priority_map,
        )

        if not (self._constrained and task.constrained_deadline):
            raise ValueError("AMC analyses require constrained deadlines")
        order = deadline_monotonic_order(self._tasks + [task])
        hp_ids: set[int] = set()
        for level, t in enumerate(order):
            key = (t.task_id, frozenset(hp_ids))
            try:
                feasible = self._memo[key]
            except KeyError:
                feasible = self.test._feasible_at_level(t, order[:level])
                self._memo[key] = feasible
            if not feasible:
                return AnalysisResult(
                    False,
                    priorities=priority_map(order),
                    detail=f"{t.name} fails at DM level {level}",
                )
            hp_ids.add(t.task_id)
        return AnalysisResult(True, priorities=priority_map(order))
