"""Uniprocessor MC schedulability tests (systems S2-S8 in DESIGN.md).

Every test implements :class:`~repro.analysis.interface.SchedulabilityTest`
and is *sufficient*: ``is_schedulable(ts) == True`` guarantees MC-correct
scheduling of ``ts`` on one unit-speed processor under the corresponding
runtime algorithm; ``False`` makes no claim.

Available tests:

* :class:`~repro.analysis.edf.EDFTest` — plain EDF on LO-mode parameters
  (non-MC substrate; utilization test for implicit deadlines, processor
  demand criterion for constrained deadlines).
* :class:`~repro.analysis.edf_vd.EDFVDTest` — EDF with virtual deadlines,
  utilization-based test of Baruah et al. (ECRTS 2012), implicit deadlines.
* :class:`~repro.analysis.ey.EYTest` — Ekberg-Yi demand-bound-function test
  with iterative virtual-deadline tuning (ECRTS 2012).
* :class:`~repro.analysis.ecdf.ECDFTest` — Easwaran's ECDF demand-based test
  with greedy virtual-deadline assignment and the carry-over trigger
  refinement (RTSS 2013; see DESIGN.md section 5 for fidelity notes).
* :class:`~repro.analysis.amc.AMCrtbTest` /
  :class:`~repro.analysis.amc.AMCmaxTest` — fixed-priority adaptive
  mixed-criticality response-time analyses (RTSS 2011).

Tests that admit incremental evaluation also provide a per-core
:class:`~repro.analysis.context.AnalysisContext`
(``test.make_context()``), the stateful probe/commit layer the
partitioning hot loop drives; see :mod:`repro.analysis.context` for the
protocol and its bit-identical-verdicts contract.
"""

from repro.analysis.amc import AMCmaxTest, AMCrtbTest
from repro.analysis.context import (
    AMCContext,
    AnalysisContext,
    DemandContext,
    EDFVDContext,
)
from repro.analysis.dbf import (
    demand_kernel,
    kernel_counters,
    reset_kernel_counters,
    set_demand_kernel,
)
from repro.analysis.ecdf import ECDFTest
from repro.analysis.edf import EDFTest
from repro.analysis.edf_vd import EDFVDTest, edfvd_scaling_factor
from repro.analysis.ey import EYTest
from repro.analysis.interface import (
    AnalysisResult,
    SchedulabilityTest,
    get_test,
    registered_tests,
)
from repro.analysis.prefilter import (
    PrefilterBank,
    PrefilterReport,
    default_prefilter_bank,
)

__all__ = [
    "AMCmaxTest",
    "AMCrtbTest",
    "ECDFTest",
    "EDFTest",
    "EDFVDTest",
    "EYTest",
    "AMCContext",
    "AnalysisContext",
    "AnalysisResult",
    "DemandContext",
    "EDFVDContext",
    "PrefilterBank",
    "PrefilterReport",
    "SchedulabilityTest",
    "default_prefilter_bank",
    "demand_kernel",
    "edfvd_scaling_factor",
    "get_test",
    "kernel_counters",
    "registered_tests",
    "reset_kernel_counters",
    "set_demand_kernel",
]
