"""Fixed-priority scheduling substrate (S7).

Provides the pieces the AMC analyses build on:

* classic response-time analysis (RTA) for constrained-deadline sporadic
  tasks under preemptive fixed-priority scheduling;
* deadline-monotonic (DM) priority ordering;
* Audsley's Optimal Priority Assignment (OPA) for any per-task test whose
  verdict depends only on the *set* of higher-priority tasks (both AMC-rtb
  and AMC-max qualify: their interference terms never reference relative
  priorities among the higher-priority tasks).

Priorities are represented as an ordered list of tasks, highest priority
first.  Exported priority maps use ``task_id -> index`` (0 = highest).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.model import MCTask, TaskSet
from repro.util.intmath import ceil_div

__all__ = [
    "response_time_lo",
    "deadline_monotonic_order",
    "audsley_assignment",
    "priority_map",
]


def response_time_lo(
    task: MCTask, higher_priority: Sequence[MCTask], limit: int | None = None
) -> int | None:
    """LO-mode response time of ``task`` under the given hp set.

    Solves ``R = C_L + sum_j ceil(R / T_j) * C_j^L`` by fixed-point
    iteration.  Returns None when the response time exceeds ``limit``
    (default: the task's deadline) — i.e. the task is unschedulable.
    """
    if limit is None:
        limit = task.deadline
    response = task.wcet_lo
    while True:
        interference = sum(
            ceil_div(response, hp.period) * hp.wcet_lo for hp in higher_priority
        )
        nxt = task.wcet_lo + interference
        if nxt > limit:
            return None
        if nxt == response:
            return response
        response = nxt


def deadline_monotonic_order(taskset: TaskSet) -> list[MCTask]:
    """Tasks ordered highest-priority-first by deadline (ties: period, id).

    DM is the classical choice for constrained-deadline fixed-priority
    systems and the default priority policy of the AMC tests here.
    """
    return sorted(taskset, key=lambda t: (t.deadline, t.period, t.task_id))


def audsley_assignment(
    taskset: TaskSet,
    feasible_at_level: Callable[[MCTask, Sequence[MCTask]], bool],
) -> list[MCTask] | None:
    """Audsley's OPA: build a priority order lowest level first.

    ``feasible_at_level(task, others)`` must answer "is ``task`` schedulable
    when every task in ``others`` has higher priority?" and must not depend
    on the internal order of ``others``.  Returns the order highest priority
    first, or None when no assignment exists (for OPA-compatible tests this
    is a definitive negative, not a heuristic failure).
    """
    remaining = list(taskset)
    lowest_first: list[MCTask] = []
    while remaining:
        placed = False
        # Deterministic preference: try larger deadlines at lower priority
        # first, which tends to reproduce DM when DM works.
        for task in sorted(
            remaining, key=lambda t: (t.deadline, t.period, t.task_id), reverse=True
        ):
            others = [t for t in remaining if t.task_id != task.task_id]
            if feasible_at_level(task, others):
                lowest_first.append(task)
                remaining = others
                placed = True
                break
        if not placed:
            return None
    lowest_first.reverse()
    return lowest_first


def priority_map(order: Sequence[MCTask]) -> dict[int, int]:
    """``task_id -> priority index`` (0 = highest) for an ordered list."""
    return {task.task_id: level for level, task in enumerate(order)}
