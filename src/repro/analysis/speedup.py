"""Empirical speed-up factor analysis.

The paper leans on a theoretical result (Baruah et al. 2014, Theorem 9):
partitioned EDF-VD with *any* strategy that tries every processor before
failing has a speed-up bound of 8/3 — the UDP strategies qualify.  This
module measures the *empirical* counterpart: the smallest processor speed at
which a test (or a partitioned algorithm) accepts a given task set.

Speeding a processor up by ``s`` divides execution requirements by ``s``;
:meth:`repro.model.task.MCTask.scaled` implements this with conservative
(ceiling) rounding, so the reported factor is a safe upper estimate.

Typical uses:

* verify that no generated task set that is *feasible* (passes the load
  necessary conditions) needs more than the theoretical bound;
* compare how much speed-up different partitioning strategies need on the
  same workload — a scalar summary of partitioning quality.
"""

from __future__ import annotations

from repro.model import TaskSet
from repro.analysis.interface import SchedulabilityTest

__all__ = [
    "EDFVD_PARTITIONED_SPEEDUP_BOUND",
    "scale_taskset",
    "minimum_speedup",
    "mc_feasible_load",
]

#: Theorem 9 of Baruah et al. (Real-Time Systems, 2014): partitioned EDF-VD
#: with an all-processors-before-failure strategy needs speed at most 8/3.
EDFVD_PARTITIONED_SPEEDUP_BOUND = 8.0 / 3.0


def scale_taskset(taskset: TaskSet, speed: float) -> TaskSet:
    """Every task rescaled to a processor of relative ``speed``."""
    return TaskSet(task.scaled(speed) for task in taskset)


def mc_feasible_load(taskset: TaskSet, m: int = 1) -> float:
    """The load lower bound any correct scheduler must satisfy.

    For dual-criticality systems, ``max(U_LO, U_HH) <= m`` is necessary;
    the returned value is that maximum normalized by ``m``.  A speed of
    ``mc_feasible_load(ts, m)`` is therefore necessary for any algorithm.
    """
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    util = taskset.utilization
    return max(util.u_lo, util.u_hh) / m


def minimum_speedup(
    taskset: TaskSet,
    accepts,
    lo: float = 1.0,
    hi: float = 8.0,
    tolerance: float = 0.01,
) -> float | None:
    """Smallest speed in ``[lo, hi]`` at which ``accepts`` passes.

    ``accepts`` is any predicate over a task set — a bound method like
    ``EDFVDTest().is_schedulable`` or a partitioned closure
    ``lambda ts: algo.partition(ts, m).success``.  Returns None when even
    ``hi`` does not suffice.  Bisection is valid because acceptance is
    monotone in speed for every test in this library (scaling down budgets
    never hurts any of the analyses).
    """
    if lo <= 0 or hi < lo:
        raise ValueError(f"invalid speed range [{lo}, {hi}]")
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    if accepts(scale_taskset(taskset, lo)):
        return lo
    if not accepts(scale_taskset(taskset, hi)):
        return None
    low, high = lo, hi
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if accepts(scale_taskset(taskset, mid)):
            high = mid
        else:
            low = mid
    return high


def speedup_for_test(
    taskset: TaskSet, test: SchedulabilityTest, **kwargs
) -> float | None:
    """Convenience wrapper: minimum speed-up under a uniprocessor test."""
    return minimum_speedup(taskset, test.is_schedulable, **kwargs)
