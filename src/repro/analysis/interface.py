"""Common interface for uniprocessor MC schedulability tests.

Partitioning strategies (:mod:`repro.core`) are parameterized by a test; the
experiment harness looks tests up by name through the small registry here.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable

from repro.model import TaskSet

__all__ = [
    "AnalysisResult",
    "SchedulabilityTest",
    "register_test",
    "get_test",
    "registered_tests",
]


@dataclass(frozen=True)
class AnalysisResult:
    """Outcome of a schedulability analysis.

    Attributes
    ----------
    schedulable:
        The verdict of the (sufficient) test.
    virtual_deadlines:
        For virtual-deadline algorithms (EDF-VD / EY / ECDF): mapping
        ``task_id -> LO-mode deadline``; empty otherwise.
    scaling_factor:
        EDF-VD deadline-scaling factor ``x`` (1.0 when unused).
    priorities:
        For fixed-priority algorithms: mapping ``task_id -> priority``
        (lower number = higher priority); empty otherwise.
    detail:
        Free-form diagnostic note (e.g. which condition failed).
    """

    schedulable: bool
    virtual_deadlines: dict[int, int] = field(default_factory=dict)
    scaling_factor: float = 1.0
    priorities: dict[int, int] = field(default_factory=dict)
    detail: str = ""

    def __bool__(self) -> bool:
        return self.schedulable


class SchedulabilityTest(abc.ABC):
    """A sufficient uniprocessor MC schedulability test.

    Subclasses implement :meth:`analyze`; :meth:`is_schedulable` is the
    boolean convenience used in partitioning inner loops.
    """

    #: short stable identifier (used by the registry and reports)
    name: str = "abstract"

    #: Whether a subset of a schedulable task set is always schedulable
    #: under this test — equivalently, failure of a subset implies failure
    #: of every superset.  All registered tests have this property (their
    #: demand/response terms are non-negative per task and the acceptance
    #: searches are complete on singletons); the lone-task prefilter of
    #: :mod:`repro.analysis.prefilter` relies on it, so a test without it
    #: must set this False to opt out of that filter.
    is_subset_monotone: bool = True

    @abc.abstractmethod
    def analyze(self, taskset: TaskSet) -> AnalysisResult:
        """Run the full analysis and return details."""

    def is_schedulable(self, taskset: TaskSet) -> bool:
        """True when ``taskset`` passes this test on one processor."""
        return self.analyze(taskset).schedulable

    def supports(self, taskset: TaskSet) -> bool:
        """Whether the test's model assumptions hold for ``taskset``.

        The default requires constrained deadlines; tests with stricter
        assumptions (e.g. EDF-VD's implicit-deadline requirement) override.
        """
        return taskset.is_constrained_deadline

    def supports_deadline_type(self, deadline_type: str) -> bool:
        """Whether the test can analyze task sets of ``deadline_type``.

        ``deadline_type`` uses the generator vocabulary (``"implicit"`` or
        ``"constrained"``); sweep/campaign setup uses this to reject an
        unsupported (algorithm, deadline type) pairing before any task set
        is generated, instead of failing mid-campaign.
        """
        return deadline_type in ("implicit", "constrained")

    def supports_service_model(self, service) -> bool:
        """Whether the test soundly analyzes LC tasks under ``service``.

        ``service`` is a :class:`~repro.degradation.service.ServiceModel`
        or None.  The default accepts only drop-at-switch semantics (None
        or ``FullDrop``); tests whose analysis carries the residual LC
        HI-mode demand term (EDF-VD, EY, ECDF) and tests that never drop
        LC work in the first place (EDF reservation) override to True.
        Sweep/campaign setup and :func:`repro.core.allocator.partition`
        both consult this, so an unsupported (test, service model) pairing
        fails up front with a typed error instead of silently analyzing
        degraded task sets with drop semantics.
        """
        return service is None or service.is_full_drop

    def make_context(self, service=None) -> "AnalysisContext | None":
        """A fresh incremental per-core analysis context, or None.

        Tests that admit incremental evaluation return a new
        :class:`~repro.analysis.context.AnalysisContext` whose
        probe/commit verdicts are bit-identical to :meth:`analyze` on the
        rebuilt task set; tests without one return None and partitioning
        falls back to the from-scratch path (see
        :func:`repro.core.allocator.partition`).

        ``service`` is the LC service model of the task set being
        partitioned (None = drop-at-switch); contexts carry it so candidate
        task sets and running residual-utilization sums reflect it.
        """
        return None

    def batch_screen(self) -> "ProbeScreen | None":
        """The O(1) probe decider for the columnar allocation replay.

        Tests whose admission probes are (partially) determined by the
        candidate's utilization sums alone return a
        :class:`~repro.analysis.prefilter.ProbeScreen`;
        :func:`repro.core.batch.partition_batch` replays the allocation
        loop through it and settles every task set whose walk stays inside
        the decided region.  The screen must mirror the incremental
        context's arithmetic bit-for-bit — a screen verdict and a context
        probe verdict may never disagree.  None (the default) disables the
        replay for this test.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


_REGISTRY: dict[str, Callable[[], SchedulabilityTest]] = {}


def register_test(name: str, factory: Callable[[], SchedulabilityTest]) -> None:
    """Register a test factory under ``name`` (idempotent re-registration)."""
    _REGISTRY[name] = factory


def get_test(name: str) -> SchedulabilityTest:
    """Instantiate the registered test called ``name``.

    Raises ``KeyError`` with the list of known names when unknown.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown test {name!r}; known tests: {known}") from None
    return factory()


def registered_tests() -> tuple[str, ...]:
    """Names of all registered tests, sorted."""
    return tuple(sorted(_REGISTRY))
