"""Virtual-deadline tuning engine shared by the EY and ECDF tests.

Both demand-based tests search for per-HC-task virtual deadlines ``Dv_i``
such that the LO-mode and HI-mode dbf checks of
:class:`~repro.analysis.dbf.DemandScenario` pass simultaneously.  Shrinking
``Dv_i`` moves demand from the HI window into the LO window:

* LO-mode demand of task i *increases* (its jobs get earlier deadlines);
* HI-mode demand of task i *decreases* (its carry-over gets more residual
  time, ``D_i - Dv_i``).

The engine implements the descent loop both published algorithms share:

1. start from ``Dv_i = D_i``; if LO already fails, reject (shrinking only
   makes LO worse);
2. while the HI check fails at its earliest violation ``l*``: pick one HC
   task by a *policy* and shrink its ``Dv`` just enough to clear the
   deficit at ``l*`` (or as far as LO-mode feasibility allows);
3. accept when the HI check passes; reject when no task can make progress.

Policies (see DESIGN.md §5 for fidelity notes):

* ``"steepest"`` (EY, Ekberg-Yi ECRTS 2012): pick the task with the largest
  HI-demand reduction at ``l*``.  The published algorithm shrinks one time
  unit per iteration; this implementation batches consecutive unit steps of
  the same pick, which follows the same descent path whenever the pick stays
  the best candidate.
* ``"ratio"`` (ECDF greedy assignment, Easwaran RTSS 2013): pick the task
  with the best HI-demand reduction per unit of LO-mode density increase —
  a benefit/cost greedy rule.

HI-demand of a task is monotonically non-increasing in ``Dv`` shrinkage, so
the minimal sufficient shrink is found by binary search with scalar dbf
evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model import MCTask, TaskSet
from repro.analysis.dbf import DemandScenario, HorizonExceeded, hi_mode_dbf

__all__ = ["TuningOutcome", "tune_virtual_deadlines"]

#: Hard cap on descent iterations per analysis (each iteration makes at
#: least one unit of demand progress at the current violation; the cap only
#: guards against pathological thrashing across violation points).
_MAX_ITERATIONS = 400


@dataclass(frozen=True)
class TuningOutcome:
    """Result of the virtual-deadline search."""

    schedulable: bool
    virtual_deadlines: dict[int, int]
    iterations: int
    detail: str = ""


def _scenario(
    taskset: TaskSet, vd: dict[int, int], horizon_cap: int
) -> DemandScenario:
    return DemandScenario(taskset, vd, horizon_cap=horizon_cap)


def _lo_feasible(taskset: TaskSet, vd: dict[int, int], horizon_cap: int) -> bool:
    try:
        return _scenario(taskset, vd, horizon_cap).lo_violation() is None
    except HorizonExceeded:
        return False


def _hi_gain(task: MCTask, vd_now: int, shrink: int, length: int) -> int:
    """HI-demand reduction at ``length`` when ``Dv`` shrinks by ``shrink``."""
    return hi_mode_dbf(task, vd_now, length) - hi_mode_dbf(
        task, vd_now - shrink, length
    )


def _min_shrink_for_gain(task: MCTask, vd_now: int, length: int) -> int | None:
    """Smallest shrink with positive HI-demand gain at ``length``; None if
    no shrink up to the structural limit (``Dv >= C_L``) helps."""
    max_shrink = vd_now - task.wcet_lo
    if max_shrink <= 0:
        return None
    residual = task.deadline - vd_now
    x = length - residual
    if x < 0:
        return None  # shrinking moves the carry-over even further out
    r0 = x % task.period
    # Inside the carry-over ramp every unit shrink gains one unit; above the
    # ramp the first ``r0 - C_L + 1`` units gain nothing.
    first = 1 if r0 < task.wcet_lo else (r0 - task.wcet_lo + 1)
    if first > max_shrink:
        return None
    return first


def _shrink_to_clear(
    task: MCTask, vd_now: int, length: int, deficit: int
) -> int:
    """Smallest shrink whose HI gain at ``length`` reaches
    ``min(deficit, the task's maximum achievable gain)``.

    When the task alone cannot clear the deficit, this still returns the
    *minimal* shrink realizing its best contribution — over-shrinking would
    needlessly inflate LO-mode demand and strand later adjustments.
    Relies on HI-demand being non-increasing in the shrink amount.
    """
    max_shrink = vd_now - task.wcet_lo
    target = min(deficit, _hi_gain(task, vd_now, max_shrink, length))
    if target <= 0:
        return max_shrink
    lo, hi = 1, max_shrink
    while lo < hi:
        mid = (lo + hi) // 2
        if _hi_gain(task, vd_now, mid, length) >= target:
            hi = mid
        else:
            lo = mid + 1
    return lo


def _max_lo_feasible_shrink(
    taskset: TaskSet,
    vd: dict[int, int],
    task: MCTask,
    desired: int,
    horizon_cap: int,
) -> int:
    """Largest shrink ``<= desired`` keeping the LO-mode check feasible.

    LO demand grows monotonically with the shrink, so feasibility is a
    prefix property and binary search applies.  Probes go through
    :class:`~repro.analysis.dbf.LoShrinkProbe`, which precomputes the other
    tasks' demand once instead of rebuilding the whole scenario per probe.
    """
    try:
        probe = _scenario(taskset, vd, horizon_cap).lo_shrink_probe(task)
    except HorizonExceeded:
        return 0
    base = vd[task.task_id]

    if probe.feasible(base - desired):
        return desired
    lo, hi = 0, desired - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if probe.feasible(base - mid):
            lo = mid
        else:
            hi = mid - 1
    return lo


def tune_virtual_deadlines(
    taskset: TaskSet,
    policy: str,
    refine: bool,
    horizon_cap: int,
) -> TuningOutcome:
    """Run the descent loop; see module docstring.

    Parameters
    ----------
    taskset:
        Tasks on one processor (any mix of criticalities).
    policy:
        ``"steepest"`` (EY) or ``"ratio"`` (ECDF).
    refine:
        Enable the carry-over trigger refinement in the HI check (ECDF).
    horizon_cap:
        Passed through to :class:`DemandScenario`; exceeding it rejects.
    """
    if policy not in ("steepest", "ratio"):
        raise ValueError(f"unknown tuning policy {policy!r}")

    high_tasks = list(taskset.high_tasks)
    vd = {t.task_id: t.deadline for t in high_tasks}

    # Quick necessary conditions — saves dbf work on hopeless sets.
    util = taskset.utilization
    if util.u_lo > 1.0 + 1e-9 or util.u_hh > 1.0 + 1e-9:
        return TuningOutcome(False, vd, 0, "utilization above 1")

    # Certified fast accept (implicit deadlines): with U_LL + U_HH <= 1 the
    # plain-EDF reservation argument (EDF-VD, x = 1) already guarantees
    # MC-correctness with untouched deadlines — no tuning needed.  Both
    # published tests accept this region after tuning anyway; taking the
    # shortcut only changes the certificate, not the verdict.
    if (
        taskset.is_implicit_deadline
        and util.u_ll + util.u_hh <= 1.0 + 1e-9
    ):
        return TuningOutcome(True, vd, 0, "plain-EDF reserve (a + c <= 1)")

    if not _lo_feasible(taskset, vd, horizon_cap):
        return TuningOutcome(False, vd, 0, "LO-mode infeasible at full deadlines")

    # Definitive fast reject: HI demand is monotone non-increasing in every
    # virtual deadline, so ``Dv_i = C_i^L`` minimizes it.  If even that
    # fails, no assignment can pass the HI check.
    if high_tasks:
        floor_vd = {t.task_id: t.wcet_lo for t in high_tasks}
        try:
            floor_violation = _scenario(
                taskset, floor_vd, horizon_cap
            ).hi_violation(refine=refine)
        except HorizonExceeded:
            return TuningOutcome(False, vd, 0, "HI horizon cap exceeded")
        if floor_violation is not None:
            return TuningOutcome(
                False, vd, 0, f"HI infeasible even at minimal Dv (l*={floor_violation})"
            )

    # Fast path: uniform deadline scaling.  ``vd_i(x) = floor(x * D_i)``
    # (clamped to the model range) is monotone in ``x``: HI demand is
    # non-increasing as ``x`` shrinks, LO demand non-decreasing.  Binary-
    # searching the largest HI-feasible ``x`` and checking LO there settles
    # most accepts in O(log D) demand evaluations, where the per-violation
    # descent needs one iteration per violation point.  The descent below
    # remains the completion pass (per-task deadlines can succeed where
    # uniform scaling cannot), so this is acceptance-neutral or better.
    if high_tasks:
        uniform = _uniform_scaling_search(
            taskset, high_tasks, refine, horizon_cap
        )
        if uniform is not None:
            return uniform

    return _descend(taskset, high_tasks, vd, policy, refine, horizon_cap)


def _scaled_deadlines(high_tasks: list[MCTask], x: float) -> dict[int, int]:
    """Per-task virtual deadlines under uniform scaling factor ``x``."""
    return {
        t.task_id: max(t.wcet_lo, min(t.deadline, int(x * t.deadline)))
        for t in high_tasks
    }


def _uniform_scaling_search(
    taskset: TaskSet,
    high_tasks: list[MCTask],
    refine: bool,
    horizon_cap: int,
) -> TuningOutcome | None:
    """Largest-``x`` uniform scaling that passes both checks, or None.

    Returns a successful :class:`TuningOutcome` when some uniform scaling
    works; None when the caller should fall through to the per-task
    descent (including on horizon-cap trouble, which the descent handles
    with its own conservative semantics).
    """

    def hi_ok(vd: dict[int, int]) -> bool | None:
        try:
            scenario = _scenario(taskset, vd, horizon_cap)
            return scenario.hi_violation(refine=refine) is None
        except HorizonExceeded:
            return None

    granularity = 1.0 / (2 * max(t.deadline for t in high_tasks))
    lo_x, hi_x = 0.0, 1.0
    # Invariant target: find the largest x whose scaling is HI-feasible.
    verdict = hi_ok(_scaled_deadlines(high_tasks, hi_x))
    if verdict is None:
        return None
    if not verdict:
        while hi_x - lo_x > granularity:
            mid = (lo_x + hi_x) / 2.0
            verdict = hi_ok(_scaled_deadlines(high_tasks, mid))
            if verdict is None:
                return None
            if verdict:
                lo_x = mid
            else:
                hi_x = mid
        best = _scaled_deadlines(high_tasks, lo_x)
        if not hi_ok(best):
            return None
    else:
        best = _scaled_deadlines(high_tasks, hi_x)
    if not _lo_feasible(taskset, best, horizon_cap):
        return None
    return TuningOutcome(True, best, 0, "uniform deadline scaling")


def _descend(
    taskset: TaskSet,
    high_tasks: list[MCTask],
    vd: dict[int, int],
    policy: str,
    refine: bool,
    horizon_cap: int,
) -> TuningOutcome:
    """The shrink-descent loop from an LO-feasible starting assignment."""
    vd = dict(vd)
    frozen: set[int] = set()
    for iteration in range(1, _MAX_ITERATIONS + 1):
        try:
            scenario = _scenario(taskset, vd, horizon_cap)
            violation = scenario.hi_violation(refine=refine)
        except HorizonExceeded:
            return TuningOutcome(False, vd, iteration, "HI horizon cap exceeded")
        if violation is None:
            return TuningOutcome(True, vd, iteration)

        deficit = scenario.hi_demand_at(violation, refine=refine) - violation
        candidate = _pick_candidate(
            high_tasks, vd, frozen, violation, deficit, policy
        )
        if candidate is None:
            return TuningOutcome(
                False, vd, iteration, f"no shrinkable task at l*={violation}"
            )
        task, desired = candidate
        shrink = _max_lo_feasible_shrink(taskset, vd, task, desired, horizon_cap)
        if shrink == 0 or _hi_gain(task, vd[task.task_id], shrink, violation) <= 0:
            frozen.add(task.task_id)
            continue
        vd[task.task_id] -= shrink
        frozen.clear()  # shrinking one task may unfreeze others elsewhere

    return TuningOutcome(False, vd, _MAX_ITERATIONS, "iteration cap reached")


def _pick_candidate(
    high_tasks: list[MCTask],
    vd: dict[int, int],
    frozen: set[int],
    violation: int,
    deficit: int,
    policy: str,
) -> tuple[MCTask, int] | None:
    """Choose the task to shrink and the desired shrink amount."""
    best: tuple[float, int, MCTask, int] | None = None
    for task in high_tasks:
        if task.task_id in frozen:
            continue
        vd_now = vd[task.task_id]
        first = _min_shrink_for_gain(task, vd_now, violation)
        if first is None:
            continue
        desired = _shrink_to_clear(task, vd_now, violation, deficit)
        desired = max(desired, first)
        gain = _hi_gain(task, vd_now, desired, violation)
        if gain <= 0:
            continue
        if policy == "steepest":
            score = float(gain)
        else:  # ratio: HI gain per unit of LO density increase
            density_now = task.wcet_lo / vd_now
            density_new = task.wcet_lo / (vd_now - desired)
            cost = max(density_new - density_now, 1e-12)
            score = gain / cost
        # Tie-break: prefer more remaining slack, then stable task order.
        key = (score, vd_now - task.wcet_lo, -task.task_id)
        if best is None or key > (best[0], best[1], -best[2].task_id):
            best = (key[0], key[1], task, desired)
    if best is None:
        return None
    return best[2], best[3]
