"""Virtual-deadline tuning engine shared by the EY and ECDF tests.

Both demand-based tests search for per-HC-task virtual deadlines ``Dv_i``
such that the LO-mode and HI-mode dbf checks of
:class:`~repro.analysis.dbf.DemandScenario` pass simultaneously.  Shrinking
``Dv_i`` moves demand from the HI window into the LO window:

* LO-mode demand of task i *increases* (its jobs get earlier deadlines);
* HI-mode demand of task i *decreases* (its carry-over gets more residual
  time, ``D_i - Dv_i``).

The engine implements the descent loop both published algorithms share:

1. start from ``Dv_i = D_i``; if LO already fails, reject (shrinking only
   makes LO worse);
2. while the HI check fails at its earliest violation ``l*``: pick one HC
   task by a *policy* and shrink its ``Dv`` just enough to clear the
   deficit at ``l*`` (or as far as LO-mode feasibility allows);
3. accept when the HI check passes; reject when no task can make progress.

Policies (see DESIGN.md §5 for fidelity notes):

* ``"steepest"`` (EY, Ekberg-Yi ECRTS 2012): pick the task with the largest
  HI-demand reduction at ``l*``.  The published algorithm shrinks one time
  unit per iteration; this implementation batches consecutive unit steps of
  the same pick, which follows the same descent path whenever the pick stays
  the best candidate.
* ``"ratio"`` (ECDF greedy assignment, Easwaran RTSS 2013): pick the task
  with the best HI-demand reduction per unit of LO-mode density increase —
  a benefit/cost greedy rule.

HI-demand of a task is monotonically non-increasing in ``Dv`` shrinkage, so
the minimal sufficient shrink is found by binary search with scalar dbf
evaluations.

Evaluation layer
----------------
All dbf queries the descent issues go through a :class:`DemandEngine`.  A
fresh engine (the default) reproduces the historical from-scratch behavior.
When constructed with a shared ``memo`` dict — as done by the incremental
:class:`~repro.analysis.context.DemandContext` used in partitioning hot
loops — results of the *pure* scenario queries (LO/HI violations, shrink
searches, :class:`~repro.analysis.dbf.LoShrinkProbe` instances) are reused
across repeated evaluations.  Every memoized value is keyed by the exact
task parameters and virtual deadlines it was computed from, so reuse is an
identity-preserving optimization: verdicts, virtual deadlines and detail
strings are bit-identical with or without a memo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.model import MCTask, TaskSet
from repro import obs as _obs
from repro.util import env as _env
from repro.analysis import dbf as _dbf
from repro.analysis import dbf_block as _blk
from repro.analysis import dbf_vec as _vec
from repro.analysis import verdict_cache as _vcache
from repro.analysis.dbf import (
    DemandScenario,
    HorizonExceeded,
    LoShrinkProbe,
    _ModeTask,
    _hi_point_demand,
    approx_accepts,
    hi_mode_dbf,
    lc_hi_mode_entries,
    overload_marker,
    qpa_violation_search,
)

__all__ = [
    "DemandEngine",
    "TuningOutcome",
    "tune_virtual_deadlines",
    "run_tuning_stages",
]

#: Hard cap on descent iterations per analysis (each iteration makes at
#: least one unit of demand progress at the current violation; the cap only
#: guards against pathological thrashing across violation points).
_MAX_ITERATIONS = 400

#: Breakpoints the scalar peek checks past the violation front before the
#: vectorized window / QPA machinery takes over (pure cost knob: every
#: kernel decides the same predicate).
_MICRO_WALK = 2

#: Screen calls per scaffolding entry before the qpa kernel stops
#: screening and pays the exact probe (the ``REPRO_DBF_SCREEN_VALVE``
#: knob).  Screens are accept-only, so the valve is a pure cost policy.
_SCREEN_VALVE = _env.screen_valve_from_env()


@dataclass(frozen=True)
class TuningOutcome:
    """Result of the virtual-deadline search."""

    schedulable: bool
    virtual_deadlines: dict[int, int]
    iterations: int
    detail: str = ""


def _hi_gain(task: MCTask, vd_now: int, shrink: int, length: int) -> int:
    """HI-demand reduction at ``length`` when ``Dv`` shrinks by ``shrink``."""
    return hi_mode_dbf(task, vd_now, length) - hi_mode_dbf(
        task, vd_now - shrink, length
    )


def _min_shrink_for_gain(task: MCTask, vd_now: int, length: int) -> int | None:
    """Smallest shrink with positive HI-demand gain at ``length``; None if
    no shrink up to the structural limit (``Dv >= C_L``) helps."""
    max_shrink = vd_now - task.wcet_lo
    if max_shrink <= 0:
        return None
    residual = task.deadline - vd_now
    x = length - residual
    if x < 0:
        return None  # shrinking moves the carry-over even further out
    r0 = x % task.period
    # Inside the carry-over ramp every unit shrink gains one unit; above the
    # ramp the first ``r0 - C_L + 1`` units gain nothing.
    first = 1 if r0 < task.wcet_lo else (r0 - task.wcet_lo + 1)
    if first > max_shrink:
        return None
    return first


def _shrink_to_clear(
    task: MCTask, vd_now: int, length: int, deficit: int
) -> int:
    """Smallest shrink whose HI gain at ``length`` reaches
    ``min(deficit, the task's maximum achievable gain)``.

    When the task alone cannot clear the deficit, this still returns the
    *minimal* shrink realizing its best contribution — over-shrinking would
    needlessly inflate LO-mode demand and strand later adjustments.
    Relies on HI-demand being non-increasing in the shrink amount; the
    minimal shrink is recovered in closed form by inverting the task's
    single-task HI staircase (:func:`_invert_shrink`), which the
    differential suite checks against the historical bisection
    (:func:`_shrink_to_clear_bisect`) point for point.
    """
    max_shrink = vd_now - task.wcet_lo
    target = min(deficit, _hi_gain(task, vd_now, max_shrink, length))
    if target <= 0:
        return max_shrink
    return _invert_shrink(task, vd_now, length, target)


def _invert_shrink(task: MCTask, vd_now: int, length: int, target: int) -> int:
    """Minimal ``s >= 1`` with ``_hi_gain(task, vd_now, s, length) >= target``.

    ``gain(s) = H(x) - H(x - s)`` for the task's single-task HI staircase
    ``H(y) = (y//T + 1) C_H - max(0, C_L - y mod T)`` (0 for ``y < 0``) and
    ``x = length - (D - vd_now)``.  ``H`` is non-decreasing, so the minimal
    shrink is ``x - y*`` for ``y*`` the largest ``y <= x - 1`` with
    ``H(y) <= H(x) - target`` — found by inverting one staircase window.
    The caller guarantees a reaching shrink exists within
    ``vd_now - C_L``.
    """
    period, wcet_lo, wcet_hi = task.period, task.wcet_lo, task.wcet_hi
    x = length - (task.deadline - vd_now)
    if x >= 0:
        d_now = (x // period + 1) * wcet_hi - max(0, wcet_lo - x % period)
    else:
        d_now = 0
    level = d_now - target
    # Largest y >= 0 with H(y) <= level; -1 when no such y (H(-1) = 0).
    jobs = (level + wcet_lo) // wcet_hi - 1
    if jobs < 0:
        y_star = -1
    else:
        need = (jobs + 1) * wcet_hi - level
        if need <= 0:
            y_star = jobs * period + period - 1
        else:
            y_star = jobs * period + wcet_lo - need
    return max(1, x - y_star)


def _shrink_to_clear_bisect(
    task: MCTask, vd_now: int, length: int, deficit: int
) -> int:
    """The historical bisection — the differential oracle for
    :func:`_shrink_to_clear` (identical results, O(log D) gain probes)."""
    max_shrink = vd_now - task.wcet_lo
    target = min(deficit, _hi_gain(task, vd_now, max_shrink, length))
    if target <= 0:
        return max_shrink
    lo, hi = 1, max_shrink
    while lo < hi:
        mid = (lo + hi) // 2
        if _hi_gain(task, vd_now, mid, length) >= target:
            hi = mid
        else:
            lo = mid + 1
    return lo


def _window_points(
    tasks, horizon: int, lo: int, hi: int, ramps: bool
) -> np.ndarray:
    """Breakpoints of ``tasks`` in ``[lo, hi)`` ∩ ``[0, horizon]``, sorted.

    Produces exactly the slice of :meth:`DemandScenario._breakpoints`
    (same multiset, same appended horizon point) that falls inside the
    window, without materializing the other windows — the windowed
    violation scan below tiles the axis with these.
    """
    top = min(hi - 1, horizon)
    families = []
    for t in tasks:
        if t.deadline > horizon:
            continue
        k0 = 0 if t.deadline >= lo else -((t.deadline - lo) // t.period)
        if t.deadline + k0 * t.period <= top:
            families.append(
                np.arange(
                    t.deadline + k0 * t.period, top + 1, t.period, dtype=np.int64
                )
            )
        if ramps and t.wcet_lo > 0:
            offset = t.deadline + min(t.wcet_lo, t.period)
            k0 = 0 if offset >= lo else -((offset - lo) // t.period)
            first = offset + k0 * t.period
            # ``top`` is already ``min(hi - 1, horizon)``, so no further
            # horizon clamp is needed for the ramp family either.
            if first <= top:
                families.append(
                    np.arange(first, top + 1, t.period, dtype=np.int64)
                )
    if lo <= horizon < hi:
        families.append(np.asarray([horizon], dtype=np.int64))
    if not families:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.concatenate(families))


def _hi_demand_columns(tasks: list[_ModeTask]) -> tuple[np.ndarray, ...]:
    """Per-task parameter columns for the 2D HI demand evaluation."""
    deadline = np.array([t.deadline for t in tasks], dtype=np.int64)[:, None]
    period = np.array([t.period for t in tasks], dtype=np.int64)[:, None]
    wcet = np.array([t.wcet for t in tasks], dtype=np.int64)[:, None]
    wcet_lo = np.array([t.wcet_lo for t in tasks], dtype=np.int64)[:, None]
    return deadline, period, wcet, wcet_lo


def _hi_demand_2d(
    columns: tuple[np.ndarray, ...],
    points: np.ndarray,
    refine: bool,
    n_trigger: int | None = None,
) -> np.ndarray:
    """:meth:`DemandScenario._hi_demand` vectorized across tasks.

    Same integer arithmetic on a (tasks × points) grid — the per-point
    totals and the refinement min are sums/minima of the identical int64
    terms, so the result array equals the per-task loop's exactly.  As in
    the scenario path, the carry-over reduction is clamped at the HI
    budget (inert for HC rows) and only the first ``n_trigger`` rows (the
    HC tasks; degraded LC rows come after) feed the trigger-refinement min.
    """
    deadline, period, wcet, wcet_lo = columns
    x = points[None, :] - deadline
    active = x >= 0
    xa = np.where(active, x, 0)
    jobs = xa // period + 1
    residue = xa % period
    reduction = np.minimum(wcet, np.maximum(0, wcet_lo - residue))
    total = np.where(active, jobs * wcet - reduction, 0).sum(axis=0)
    if refine:
        cut = np.where(active, np.minimum(wcet_lo, residue), 0)
        if n_trigger is not None:
            cut = cut[:n_trigger]
        total -= cut.min(axis=0)
    return total


def _windowed_hi_check(
    tasks: list[_ModeTask],
    meta: tuple,
    refine: bool,
    not_before: int,
    n_trigger: int | None = None,
) -> tuple[int | None, int | None]:
    """Fused :meth:`DemandScenario.hi_violation` + demand-at-violation via
    lazily generated windows.

    Identical results (same horizon handling, same check-point multiset,
    same first-violation semantics, and the demand value is the very term
    the violation comparison used); the difference is purely cost: points
    are generated window by window from ``not_before`` onward — starting
    narrow and widening geometrically — so an early violation (the common
    case inside the tuning descent, whose violation front only ever moves
    forward) never pays for constructing and sorting the full breakpoint
    set.  ``tasks`` is the HI-mode :class:`_ModeTask` list exactly as
    :class:`DemandScenario` would build it; ``meta`` is the cached
    ``(columns, horizon state, density)`` triple from
    :meth:`DemandEngine._hi_meta`.
    """
    if not tasks:
        return (None, None)
    columns, state, density = meta
    if state[0] == "raise":
        raise state[1]
    horizon = state[1]
    if horizon is None:
        # Utilization above 1: report the shared overload marker (see the
        # contract on repro.analysis.dbf.overload_marker — a marker, not
        # the earliest violating length).
        violation = overload_marker(tasks)
        return (violation, _hi_point_demand(tasks, violation, refine, n_trigger))
    width = max(int(64 / density), 1)
    start = not_before
    while start <= horizon:
        points = _window_points(tasks, horizon, start, start + width, ramps=True)
        if len(points):
            demand = _hi_demand_2d(columns, points, refine, n_trigger)
            mask = demand > points
            if mask.any():
                where = int(np.argmax(mask))
                return (int(points[where]), int(demand[where]))
        start += width
        width *= 8
    return (None, None)


class DemandEngine:
    """Evaluation layer between the descent loop and the dbf machinery.

    One engine serves one candidate ``taskset``.  Without a ``memo`` the
    engine only keeps the single most recent :class:`DemandScenario` (the
    descent queries each virtual-deadline assignment a couple of times in a
    row), matching the historical from-scratch cost profile.  With a shared
    ``memo`` dict — one per core, owned by an incremental analysis context —
    all pure query results persist and are reused across probes and across
    the multi-stage ECDF fallback chain.

    Memo keys embed the task ids and the exact virtual deadlines a value was
    computed from (HI-mode keys cover HC tasks only, because LC tasks
    contribute no HI demand — this lets LC probes on the same core share
    all HI-mode work).  Values are therefore reusable only where the fresh
    computation would return the identical result, which is what makes the
    incremental path bit-identical to the from-scratch path by construction.
    """

    def __init__(
        self,
        taskset: TaskSet,
        horizon_cap: int,
        memo: dict | None = None,
        committed: int = 0,
    ):
        self.taskset = taskset
        self.horizon_cap = horizon_cap
        self._memo = memo
        self._committed = committed
        self._last: tuple[tuple[int, ...], DemandScenario] | None = None
        self._high = tuple(t for t in taskset if t.is_high)
        self._high_ids = tuple(t.task_id for t in self._high)
        #: degraded LC tasks' HI-mode abstraction (empty under drop
        #: semantics) — vd-independent, appended after the HC entries —
        #: plus their identity suffix for HI-mode memo keys: with degraded
        #: service the HI checks depend on the candidate's LC tasks too, so
        #: probes with different LC members must not share HI entries.
        #: Both stay empty (hence key-shape preserving) under drop
        #: semantics.  The abstraction itself comes from the single shared
        #: definition in :func:`repro.analysis.dbf.lc_hi_mode_entries`.
        entries = lc_hi_mode_entries(taskset)
        self._lc_hi = [mode_task for _, mode_task in entries]
        self._lc_sig = tuple(task_id for task_id, _ in entries)
        #: per-candidate cache of the uniform-scaling search outcome
        self._uniform: dict[bool, tuple] = {}
        #: QPA warm-start anchor, learned from *unrefined* runs at the
        #: *full-deadline* assignment — the componentwise maximum of every
        #: assignment, whose unrefined HI demand therefore dominates all
        #: others pointwise.  Such a run proves "no unrefined violation
        #: above t" (t = the largest violation, or 0 on a pass); every
        #: dominated assignment inherits that certificate, and since the
        #: trigger refinement only subtracts demand *of the same
        #: assignment*, the certificate covers refined queries too.
        #: Refined runs never anchor: the trigger cut's residues move with
        #: the residual deadlines, so refined demand is not monotone under
        #: deadline domination.  None = not yet learned (learned lazily by
        #: a dedicated unrefined run, see :meth:`_ensure_anchor`); -1 =
        #: unavailable (the full-deadline horizon overruns the cap or the
        #: search aborted).
        self._qpa_anchor: int | None = None
        self._full_sig_high = tuple(
            (t.task_id, t.deadline) for t in self._high
        )
        if self._lc_sig:
            self._full_sig_high = self._full_sig_high + (
                ("lc",) + self._lc_sig,
            )

    def _hi_tasks(self, vd: dict[int, int]) -> list[_ModeTask]:
        """HI-mode :class:`_ModeTask` list for ``vd`` — field-identical to
        ``DemandScenario(...)._hi + ._hi_lc``, built from the shared memo
        without touching the LO side (the HI checks never read it)."""
        memo = self._memo
        out = []
        for t in self._high:
            key = ("mt", t.task_id, vd[t.task_id])
            mode_task = memo.get(key)
            if mode_task is None:
                mode_task = _ModeTask(
                    t.wcet_hi, t.deadline - vd[t.task_id], t.period, t.wcet_lo
                )
                memo[key] = mode_task
            out.append(mode_task)
        out.extend(self._lc_hi)
        return out

    # -- signatures ---------------------------------------------------------
    def _sig_all(self, vd: dict[int, int]) -> tuple:
        """(id, effective LO deadline) for every task, in candidate order."""
        return tuple(
            (t.task_id, vd.get(t.task_id, t.deadline)) for t in self.taskset
        )

    def _sig_high(self, vd: dict[int, int]) -> tuple:
        """(id, Dv) for the HC tasks, plus the degraded-LC identity suffix.

        Under drop semantics the HI checks ignore LC tasks entirely and the
        suffix is empty — the historical key shape.  Under a degraded
        service model the LC members contribute HI demand, so they join the
        key (ids only: their parameters derive from the engine's fixed
        service model).
        """
        sig = tuple((tid, vd[tid]) for tid in self._high_ids)
        if self._lc_sig:
            return sig + (("lc",) + self._lc_sig,)
        return sig

    def _sig_others(self, vd: dict[int, int], excluded: int) -> tuple:
        """(id, effective LO deadline) for every task except ``excluded``."""
        return tuple(
            (t.task_id, vd.get(t.task_id, t.deadline))
            for t in self.taskset
            if t.task_id != excluded
        )

    # -- scenario construction ----------------------------------------------
    def scenario(self, vd: dict[int, int]) -> DemandScenario:
        """The :class:`DemandScenario` for ``vd`` (cached)."""
        sig = tuple(vd.get(t.task_id, t.deadline) for t in self.taskset)
        if self._last is not None and self._last[0] == sig:
            return self._last[1]
        scenario = DemandScenario(self.taskset, vd, horizon_cap=self.horizon_cap)
        self._last = (sig, scenario)
        return scenario

    # -- memoized queries ----------------------------------------------------
    def _cached(self, key: tuple, compute):
        """Memo lookup; exceptions are cached and re-raised like values."""
        if self._memo is None:
            return compute()
        try:
            hit = self._memo[key]
        except KeyError:
            try:
                value = compute()
            except HorizonExceeded as exc:
                self._memo[key] = ("raise", exc)
                raise
            self._memo[key] = ("value", value)
            return value
        kind, payload = hit
        if kind == "raise":
            raise payload
        return payload

    def lo_feasible(self, vd: dict[int, int]) -> bool:
        """LO-mode dbf check verdict (conservative False on horizon cap)."""

        def compute() -> bool:
            if (
                self._committed
                and len(self.taskset) == self._committed + 1
                and all(
                    vd.get(t.task_id, t.deadline) == t.deadline
                    for t in self.taskset
                )
            ):
                return self._lo_feasible_overlay()
            try:
                return self.scenario(vd).lo_violation() is None
            except HorizonExceeded:
                return False

        return self._cached(("lo", self._sig_all(vd)), compute)

    def _lo_feasible_overlay(self) -> bool:
        """Full-deadline LO check via the cached committed-demand profile.

        The opening LO check of every tuning run evaluates the candidate at
        untouched deadlines, where the committed tasks' contribution is a
        fixed step function; the context caches its breakpoints and demand
        values once per commit state and each probe only overlays its own
        task.  Horizon bookkeeping (fold order of the float sums, the
        ``U > 1`` marker, the cap) transcribes
        :meth:`DemandScenario._horizon` / :meth:`~DemandScenario.
        lo_violation` term by term, and the committed step values at the
        probe's check points equal the joint evaluation exactly, so the
        verdict is identical to the scenario path.
        """
        import math

        memo = self._memo
        committed = self.taskset[: self._committed]
        probe = self.taskset[self._committed]
        cids = tuple(t.task_id for t in committed)

        sums = memo.get(("lou", cids))
        if sums is None:
            total_u_c = sum(t.wcet_lo / t.period for t in committed)
            numer_c = sum(
                (t.wcet_lo / t.period) * max(0, t.period - t.deadline)
                for t in committed
            )
            sums = (total_u_c, numer_c)
            memo[("lou", cids)] = sums
        total_u = sums[0] + probe.wcet_lo / probe.period
        numerator = sums[1] + (probe.wcet_lo / probe.period) * max(
            0, probe.period - probe.deadline
        )
        if total_u > 1.0 + 1e-12:
            return False  # guaranteed violation (marker path)
        if numerator == 0:
            return True  # horizon 0: implicit-deadline EDF, nothing to check
        if total_u >= 1.0 - 1e-12:
            return False  # diverging bound: HorizonExceeded, conservative
        horizon = math.ceil(numerator / (1.0 - total_u))
        if horizon > self.horizon_cap:
            return False  # HorizonExceeded, conservative

        profile = memo.get(("loprof", cids))
        if profile is None or profile[0] < horizon:
            store = min(max(4 * horizon, 4096), self.horizon_cap)
            mode = [
                _ModeTask(t.wcet_lo, t.deadline, t.period, t.wcet_lo)
                for t in committed
            ]
            families = [
                np.arange(t.deadline, store + 1, t.period, dtype=np.int64)
                for t in mode
                if t.deadline <= store
            ]
            if families:
                points_c = np.sort(np.concatenate(families))
            else:
                points_c = np.empty(0, dtype=np.int64)
            profile = (store, points_c, DemandScenario._lo_demand(mode, points_c))
            memo[("loprof", cids)] = profile
        _, points_c, demand_c = profile
        keep = np.searchsorted(points_c, horizon, side="right")
        points_c = points_c[:keep]
        demand_c = demand_c[:keep]

        if probe.deadline <= horizon:
            own = np.arange(probe.deadline, horizon + 1, probe.period, dtype=np.int64)
        else:
            own = np.empty(0, dtype=np.int64)
        points = np.concatenate(
            [points_c, own, np.asarray([horizon], dtype=np.int64)]
        )
        points.sort()
        if len(points_c):
            idx = np.searchsorted(points_c, points, side="right") - 1
            committed_at = np.where(idx >= 0, demand_c[np.maximum(idx, 0)], 0)
        else:
            committed_at = np.zeros(len(points), dtype=np.int64)
        x = points - probe.deadline
        probe_at = np.where(x >= 0, (x // probe.period + 1) * probe.wcet_lo, 0)
        return not np.any(committed_at + probe_at > points)

    def _hi_meta(self, sig: tuple, tasks: list[_ModeTask]) -> tuple:
        """Cached ``(demand columns, horizon state, density)`` for ``sig``.

        The horizon state is ``("h", horizon-or-None)`` or ``("raise",
        exc)`` — precomputing it once per virtual-deadline signature lets
        both refinement variants of the HI check share the float-summing
        horizon bound and the per-task numpy columns.
        """
        meta = self._memo.get(("cols", sig))
        if meta is None:
            try:
                horizon = DemandScenario._horizon(tasks, self.horizon_cap)
                if horizon is not None:
                    horizon = max(horizon, max(t.deadline for t in tasks))
                    if horizon > self.horizon_cap:
                        raise HorizonExceeded(
                            f"bound {horizon} exceeds cap {self.horizon_cap}"
                        )
                state = ("h", horizon)
            except HorizonExceeded as exc:
                state = ("raise", exc)
            meta = (
                _hi_demand_columns(tasks),
                state,
                sum(2.0 / t.period for t in tasks),
            )
            self._memo[("cols", sig)] = meta
        return meta

    def hi_check(
        self, vd: dict[int, int], refine: bool, not_before: int = 0
    ) -> tuple[int | None, int | None]:
        """Earliest HI-mode violation and the demand there, fused.

        Returns ``(None, None)`` on a pass; may raise
        :class:`HorizonExceeded` exactly as the underlying scenario does.
        ``not_before`` is a scan hint for callers that can prove no
        violation exists below it (see
        :meth:`DemandScenario.hi_violation`); the returned values are the
        same with or without it, so memo entries ignore the hint.  The
        stateless (memo-free) engine also ignores it, preserving the
        published full-scan behavior of the from-scratch path.
        """
        if self._memo is None:
            scenario = self.scenario(vd)
            violation = scenario.hi_violation(refine=refine)
            if violation is None:
                return (None, None)
            return (violation, scenario.hi_demand_at(violation, refine=refine))
        sig = self._sig_high(vd)
        memo = self._memo
        key = ("hi", sig, refine)
        hit = memo.get(key)
        if hit is not None:
            if hit[0] == "raise":
                raise hit[1]
            return hit[1]
        # Upgrade a boolean-level entry (left by hi_feasible): a pass is
        # already the full answer; a known violation needs only the
        # earliest-point localization the forward scan provides.
        banked = memo.get(("hib", sig, refine))
        if banked is not None:
            if banked:
                value: tuple[int | None, int | None] = (None, None)
            else:
                tasks = self._hi_tasks(vd)
                value = _windowed_hi_check(
                    tasks,
                    self._hi_meta(sig, tasks),
                    refine,
                    not_before,
                    len(self._high),
                )
            memo[key] = ("value", value)
            return value

        def compute() -> tuple[int | None, int | None]:
            # No local HC task means no local mode switch: degraded LC
            # demand never materializes, so the check passes vacuously
            # (mirrors DemandScenario.hi_violation's empty-_hi early out).
            if not self._high:
                return (None, None)
            tasks = self._hi_tasks(vd)
            meta = self._hi_meta(sig, tasks)
            if _dbf._KERNEL == "forward":
                return _windowed_hi_check(
                    tasks, meta, refine, not_before, len(self._high)
                )
            return self._qpa_hi_check(sig, tasks, meta, refine, not_before)

        return self._cached(key, compute)

    def _qpa_hi_check(
        self,
        sig: tuple,
        tasks: list[_ModeTask],
        meta: tuple,
        refine: bool,
        not_before: int,
    ) -> tuple[int | None, int | None]:
        """QPA-kerneled :func:`_windowed_hi_check` — identical results.

        Three layers, ordered so each call site pays its cheapest decider:

        1. one forward window from ``not_before`` — the tuning descent's
           violation front moves slowly, so most *violations* are caught
           here at the historical cost;
        2. the O(n·k) upper-bound screen, then the QPA backward search
           (warm-started from the full-deadline anchor) — most *passes*
           settle here without ever materializing the breakpoint set;
        3. a QPA witness proves a violation exists but sits at its
           *largest* length, so the earliest one — the value the descent
           consumes — is recovered by resuming the forward windowed scan
           (whose tiling covers the same check-point multiset).
        """
        n_trigger = len(self._high)
        columns, state, density = meta
        if state[0] == "raise":
            raise state[1]
        horizon = state[1]
        if horizon is None:
            violation = overload_marker(tasks)
            return (
                violation,
                _hi_point_demand(tasks, violation, refine, n_trigger),
            )
        # Scalar peek: ~30% of descent violations sit on the very next
        # breakpoint past the front — check a couple of points scalar-ly
        # before building any window.
        resume = not_before
        for _ in range(_MICRO_WALK):
            point = _dbf._next_breakpoint(tasks, resume, ramps=True)
            if point is None or point > horizon:
                demand = _hi_point_demand(tasks, horizon, refine, n_trigger)
                if demand > horizon:
                    return (horizon, demand)
                return (None, None)  # every remaining check point covered
            demand = _hi_point_demand(tasks, point, refine, n_trigger)
            if demand > point:
                return (point, demand)
            resume = point + 1
        # One vectorized window from there: the bulk of the remaining
        # violations land within the historical first window.
        width = max(int(64 / density), 1)
        points = _window_points(tasks, horizon, resume, resume + width, ramps=True)
        if len(points):
            demand = _hi_demand_2d(columns, points, refine, n_trigger)
            mask = demand > points
            if mask.any():
                where = int(np.argmax(mask))
                return (int(points[where]), int(demand[where]))
        resume = resume + width
        if resume > horizon:
            return (None, None)  # the window covered the whole region
        status, _ = self._qpa_decide(sig, tasks, horizon, refine)
        if status == "pass":
            return (None, None)
        # Violation witness or aborted search: resume the forward windowed
        # scan where the micro-walk left off — its tiling covers the same
        # check-point multiset, so the earliest violation (which a witness
        # only bounds from above) comes out identical.
        return _windowed_hi_check(tasks, meta, refine, resume, n_trigger)

    def _qpa_decide(
        self, sig: tuple, tasks: list[_ModeTask], horizon: int, refine: bool
    ) -> tuple[str, int | None]:
        """Anchor-warmed QPA decision of the HI predicate on ``[0, horizon]``.

        Returns ``("pass", None)``, ``("violation", witness)`` or
        ``("abort", None)`` — abort means the caller must fall back to the
        forward oracle.  Cold searches give the upper-bound screen one
        vectorized sweep first; warm searches start at the full-deadline
        anchor, which bounds every assignment's violations from above.
        """
        self._ensure_anchor()
        start = horizon
        if self._qpa_anchor is not None and 0 <= self._qpa_anchor < start:
            start = self._qpa_anchor
        elif approx_accepts(tasks, horizon, hi=True):
            _dbf._COUNTERS["approx-accept"] += 1
            return ("pass", None)
        n_trigger = len(self._high)
        status, witness, _ = qpa_violation_search(
            tasks,
            start,
            lambda t: _hi_point_demand(tasks, t, refine, n_trigger),
            ramps=True,
        )
        if status == "pass":
            _dbf._COUNTERS["qpa-accept"] += 1
        return (status, witness)

    def _ensure_anchor(self) -> None:
        """Learn the unrefined full-deadline QPA anchor once per engine.

        One cold unrefined search at the dominating assignment buys a warm
        start for every later check of *any* assignment (see the anchor
        attribute docstring) — in particular the O(log D) feasible probes
        of the uniform-scaling bisection, which otherwise each pay a cold
        descent from the horizon.  The witness QPA stops on is the largest
        *breakpoint* violation, but a dominated assignment's breakpoints
        differ, so the anchor must bound the largest violating *integer*:
        on the piece right of the witness ``w`` the demand is flat (a
        rising piece would violate at its right breakpoint, contradicting
        ``w``'s maximality), so violations extend at most to
        ``demand(w) - 1`` — the sound anchor.  A pass anchors at 0 (no
        violations anywhere).  Unavailable (-1) when the full-deadline
        horizon overruns the cap or the search aborts.
        """
        if self._qpa_anchor is not None:
            return
        self._qpa_anchor = -1
        vd_full = {t.task_id: t.deadline for t in self._high}
        tasks = self._hi_tasks(vd_full)
        meta = self._hi_meta(self._full_sig_high, tasks)
        state = meta[1]
        if state[0] == "raise" or state[1] is None:
            return
        horizon = state[1]
        n_trigger = len(self._high)
        if approx_accepts(tasks, horizon, hi=True):
            self._qpa_anchor = 0
            return
        status, witness, _ = qpa_violation_search(
            tasks,
            horizon,
            lambda t: _hi_point_demand(tasks, t, False, n_trigger),
            ramps=True,
        )
        if status == "pass":
            self._qpa_anchor = 0
        elif status == "violation":
            demand = _hi_point_demand(tasks, witness, False, n_trigger)
            self._qpa_anchor = demand - 1

    def hi_violation(
        self, vd: dict[int, int], refine: bool, not_before: int = 0
    ) -> int | None:
        """Earliest HI-mode violation (None = pass); see :meth:`hi_check`."""
        return self.hi_check(vd, refine, not_before)[0]

    def hi_feasible(self, vd: dict[int, int], refine: bool) -> bool:
        """``hi_violation(vd, refine) is None``, with cross-refinement
        inference and witness-level evaluation.

        The trigger refinement only ever *subtracts* demand, so a refined
        violation implies an unrefined one, and an unrefined pass implies a
        refined pass.  When the requested verdict is missing from the memo
        but the other refinement's is present and decisive in that
        direction, the answer is returned without any dbf work — the ECDF
        fallback chain re-runs its uniform-scaling search with the
        refinement toggled, and this settles most of those re-evaluations.

        Boolean consumers (the uniform-scaling bisection) never need the
        *earliest* violation, only whether one exists — exactly what the
        QPA search decides on its own.  A fresh evaluation therefore stops
        at the witness level and banks a boolean ``("hib", ...)`` memo
        entry; :meth:`hi_check` upgrades it to the earliest-point form on
        demand.  Raises :class:`HorizonExceeded` exactly like
        :meth:`hi_violation`.
        """
        memo = self._memo
        if memo is None:
            return self.hi_violation(vd, refine) is None
        sig = self._sig_high(vd)
        key = ("hi", sig, refine)
        hit = memo.get(key)
        if hit is not None:
            if hit[0] == "raise":
                raise hit[1]
            return hit[1][0] is None
        banked = memo.get(("hib", sig, refine))
        if banked is not None:
            return banked
        other = memo.get(("hi", sig, not refine))
        if other is not None and other[0] == "value":
            if refine and other[1][0] is None:
                return True  # unrefined pass => refined pass
            if not refine and other[1][0] is not None:
                return False  # refined violation => unrefined one
        obool = memo.get(("hib", sig, not refine))
        if obool is not None:
            if refine and obool:
                return True
            if not refine and not obool:
                return False
        if _dbf._KERNEL == "forward":
            return self.hi_violation(vd, refine) is None
        if not self._high:
            memo[("hib", sig, refine)] = True
            return True
        tasks = self._hi_tasks(vd)
        try:
            meta = self._hi_meta(sig, tasks)
            columns, state, density = meta
            if state[0] == "raise":
                raise state[1]
        except HorizonExceeded as exc:
            memo[key] = ("raise", exc)
            raise
        horizon = state[1]
        if horizon is None:
            # Overload: a violation is guaranteed (the marker contract).
            memo[("hib", sig, refine)] = False
            return False
        status, _ = self._qpa_decide(sig, tasks, horizon, refine)
        if status == "abort":
            # Hand the whole question to the forward oracle and keep its
            # earliest-form answer.
            value = _windowed_hi_check(tasks, meta, refine, 0, len(self._high))
            memo[key] = ("value", value)
            return value[0] is None
        feasible = status == "pass"
        memo[("hib", sig, refine)] = feasible
        return feasible

    def hi_demand_at(self, vd: dict[int, int], length: int, refine: bool) -> int:
        """Total HI-mode demand at one interval length."""
        if self._memo is None:
            return self.scenario(vd).hi_demand_at(length, refine=refine)
        return self._cached(
            ("hid", self._sig_high(vd), length, refine),
            lambda: _hi_point_demand(
                self._hi_tasks(vd), length, refine, len(self._high)
            ),
        )

    def hi_gain(self, task: MCTask, vd_now: int, shrink: int, length: int) -> int:
        if self._memo is None:
            return _hi_gain(task, vd_now, shrink, length)
        # Inlined hi_mode_dbf difference on plain ints (the caller
        # guarantees an HC task): identical arithmetic, no attribute hops.
        period, wcet_lo, wcet_hi = task.period, task.wcet_lo, task.wcet_hi
        x_now = length - (task.deadline - vd_now)
        x_new = x_now - shrink
        if x_now >= 0:
            d_now = (x_now // period + 1) * wcet_hi - max(0, wcet_lo - x_now % period)
        else:
            d_now = 0
        if x_new >= 0:
            d_new = (x_new // period + 1) * wcet_hi - max(0, wcet_lo - x_new % period)
        else:
            d_new = 0
        return d_now - d_new

    def min_shrink_for_gain(
        self, task: MCTask, vd_now: int, length: int
    ) -> int | None:
        return _min_shrink_for_gain(task, vd_now, length)

    def shrink_to_clear(
        self, task: MCTask, vd_now: int, length: int, deficit: int
    ) -> int:
        if self._memo is None:
            return _shrink_to_clear(task, vd_now, length, deficit)

        def compute() -> int:
            # _shrink_to_clear with the closed-form staircase inversion —
            # same minimal shrink the historical bisection found.
            max_shrink = vd_now - task.wcet_lo
            target = min(deficit, self.hi_gain(task, vd_now, max_shrink, length))
            if target <= 0:
                return max_shrink
            return _invert_shrink(task, vd_now, length, target)

        return self._cached(("stc", task.task_id, vd_now, length, deficit), compute)

    def lo_shrink_probe(self, vd: dict[int, int], task: MCTask):
        """The (immutable, hence shareable) :class:`LoShrinkProbe` for
        varying ``task``'s deadline with every other task fixed at ``vd``."""
        return self._cached(
            ("lsp", task.task_id, self._sig_others(vd, task.task_id)),
            lambda: self.scenario(vd).lo_shrink_probe(task),
        )

    def _lo_others_entry(
        self, vd: dict[int, int], task: MCTask, sig_o: tuple
    ) -> list:
        """The cached per-``(task, others)`` LO scaffolding.

        ``[others mode-task tuple, worst-case horizon (None = the probe
        would raise or mark always-infeasible), others' density, smallest
        screen-accepted deadline, screen-call count, cached vec split
        screen (None until the vec kernel's first full screen)]`` —
        shared by the accept screens and the fast probe construction so
        the descent's repeated picks of one task build it once per
        surrounding assignment.
        """
        key = ("lofp", task.task_id, sig_o)
        prepared = self._memo.get(key)
        if prepared is None:
            others = []
            density = 0.0
            for t in self.taskset:
                if t.task_id == task.task_id:
                    continue
                deadline = vd.get(t.task_id, t.deadline)
                others.append(_ModeTask(t.wcet_lo, deadline, t.period, t.wcet_lo))
                density += t.wcet_lo / min(deadline, t.period)
            worst = others + [
                _ModeTask(task.wcet_lo, task.wcet_lo, task.period, task.wcet_lo)
            ]
            try:
                horizon = DemandScenario._horizon(worst, self.horizon_cap)
            except HorizonExceeded:
                horizon = None  # decline exactly where the probe would raise
            prepared = [tuple(others), horizon, density, None, 0, None]
            self._memo[key] = prepared
        return prepared

    def _lo_probe_fast(
        self, vd: dict[int, int], task: MCTask, sig_o: tuple
    ) -> LoShrinkProbe:
        """Field-identical :class:`LoShrinkProbe` from cached scaffolding.

        Skips the :class:`DemandScenario` construction the ``("lsp", ...)``
        path pays: the cached others list and worst-case horizon are the
        very values the probe's ``__init__`` derives (same fold order, same
        formulas), so the replica's verdict methods behave identically.
        When the scaffolding marks the horizon unavailable, the replica is
        returned always-infeasible *without* entering the ``("lsp")`` memo
        — the real constructor would have raised there, and the V* caller
        treats both outcomes as "no feasible shrink".
        """
        memo = self._memo
        key = ("lsp", task.task_id, sig_o)
        hit = memo.get(key)
        if hit is not None:
            if hit[0] == "raise":
                raise hit[1]
            return hit[1]
        entry = self._lo_others_entry(vd, task, sig_o)
        others, horizon = entry[0], entry[1]
        probe = LoShrinkProbe.__new__(LoShrinkProbe)
        probe._task = task
        probe._infeasible_always = horizon is None
        probe._horizon = horizon or 0
        if probe._infeasible_always or probe._horizon == 0:
            probe._points_o = np.empty(0, dtype=np.int64)
            probe._slack_o = np.empty(0, dtype=np.int64)
            if probe._infeasible_always:
                return probe  # conflates raise/overload: same caller outcome
        else:
            points = DemandScenario._breakpoints(
                list(others), probe._horizon, ramps=False
            )
            demand = DemandScenario._lo_demand(list(others), points)
            probe._points_o = points
            probe._slack_o = points - demand
        memo[key] = ("value", probe)
        return probe

    def _lo_fast_feasible(
        self, vd: dict[int, int], task: MCTask, v: int, sig_o: tuple
    ) -> bool:
        """Layered LO accept screens for ``task`` at deadline ``v``.

        True proves ``LoShrinkProbe.feasible(v)`` — the verdict the V*
        search inverts — so callers may skip the probe entirely.  Layers,
        cheapest first: the memoized smallest already-accepted deadline
        (verdicts are monotone in ``v``), the O(1) density condition
        ``sum C_i / D_i <= 1 - 1e-9`` (each dbf is bounded by its density
        line through the step corners; the margin absorbs float folding),
        and the O(n·k) dbf upper-bound screen.  All are gated behind the
        probe's conservative worst-case horizon checks — recomputed with
        the identical float folds — so a screen accept implies the probe
        accepts.  False proves nothing (accept-only screens).  The
        ``("lofp", ...)`` memo entry caches the mode-task list, the
        worst-case horizon and the others' density across the descent's
        repeated picks of the same task.
        """
        prepared = self._lo_others_entry(vd, task, sig_o)
        others, horizon, density, accepted_v = prepared[:4]
        if horizon is None:
            return False
        if accepted_v is not None and v >= accepted_v:
            # Memoized monotone hit — not a fresh screen settle, so the
            # approx-accept diagnostics counter stays untouched.
            return True
        if horizon == 0:
            ok = True  # implicit-deadline region: the probe accepts too
        elif density + task.wcet_lo / min(v, task.period) <= 1.0 - 1e-9:
            ok = True
        else:
            prepared[4] += 1
            if _dbf._KERNEL in ("vec", "block"):
                # Split screen, engaged lazily: the first shot on an entry
                # uses the one-shot screen (cheaper than building the split
                # cache for an entry that may never be screened again); from
                # the second shot on the others' half is cached once and
                # each call adds only the probe's own terms.  The O(k)
                # marginal cost is low enough that the vec kernel keeps
                # screening where qpa's valve below gives up and pays the
                # exact probe — screens are accept-only, so this is a pure
                # cost policy with verdict-identical results.
                if prepared[4] == 1:
                    candidate = list(others)
                    candidate.append(
                        _ModeTask(task.wcet_lo, v, task.period, task.wcet_lo)
                    )
                    ok = approx_accepts(candidate, horizon, hi=False)
                else:
                    screen = prepared[5]
                    if screen is None:
                        screen = _vec.lo_screen_prepare(
                            others, horizon, _dbf._APPROX_K
                        )
                        prepared[5] = screen
                    ok = _vec.lo_screen_accepts(
                        screen, task.wcet_lo, task.period, v, horizon,
                        _dbf._APPROX_K,
                    )
            else:
                # The descent re-picks the same task with ever-smaller
                # deadlines; after a couple of full O(n·k) screen
                # evaluations it is cheaper to let the exact V* search run
                # once and serve every later request from its memo entry (a
                # pure cost policy — the V* path returns the identical
                # shrink).
                if prepared[4] > _SCREEN_VALVE:
                    return False
                candidate = list(others)
                candidate.append(
                    _ModeTask(task.wcet_lo, v, task.period, task.wcet_lo)
                )
                ok = approx_accepts(candidate, horizon, hi=False)
        if ok:
            _dbf._COUNTERS["approx-accept"] += 1
            prepared[3] = v if accepted_v is None else min(accepted_v, v)
        return ok

    def max_lo_feasible_shrink(
        self,
        vd: dict[int, int],
        task: MCTask,
        desired: int,
        _sig_o: tuple | None = None,
    ) -> int:
        """Largest shrink ``<= desired`` keeping the LO-mode check feasible.

        LO demand grows monotonically with the shrink, so feasibility is a
        prefix property of the shrink — equivalently, the probed task has a
        *minimal LO-feasible virtual deadline* ``V*`` (given the other
        tasks' deadlines) and the answer is ``min(desired, base - V*)``.
        Probes go through :class:`~repro.analysis.dbf.LoShrinkProbe`, which
        precomputes the other tasks' demand once instead of rebuilding the
        whole scenario per probe; the memoized engine additionally caches
        ``V*``, which is independent of the task's own current deadline —
        so every later descent iteration that re-picks this task (with any
        remaining ``base``, against any deficit) costs one lookup.

        ``_sig_o`` optionally supplies the precomputed
        :meth:`_sig_others` tuple for ``(vd, task)`` — a pure-value reuse
        hook for the vec kernel's speculation batches (which build all
        candidate signatures in one pass); passing it never changes the
        result.
        """
        base = vd[task.task_id]

        if self._memo is None:
            # From-scratch behavior: desired-bounded binary search per call.
            try:
                probe = self.lo_shrink_probe(vd, task)
            except HorizonExceeded:
                return 0
            if probe.feasible(base - desired):
                return desired
            lo, hi = 0, desired - 1
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if probe.feasible(base - mid):
                    lo = mid
                else:
                    hi = mid - 1
            return lo

        # Warm path: most descent iterations ask for a shrink that is
        # plainly LO-feasible.  Prove it cheaply — an O(1) density accept,
        # then the O(n·k) upper-bound screen, both gated behind the
        # probe's conservative worst-case horizon checks so a screen
        # accept implies the probe accepts — and skip the LoShrinkProbe
        # construction and the V* search.  Screen verdicts are monotone in
        # the probed deadline, so the smallest accepted deadline is cached
        # per surrounding assignment and repeated picks cost one lookup.
        sig_o = (
            _sig_o if _sig_o is not None else self._sig_others(vd, task.task_id)
        )
        if _dbf._KERNEL != "forward":
            target = base - desired
            if (
                target >= task.wcet_lo
                and self._memo.get(("vmin", task.task_id, sig_o)) is None
                and self._lo_fast_feasible(vd, task, target, sig_o)
            ):
                return desired

        v_min = self.lo_min_deadline(vd, task, sig_o)
        if v_min is None:
            return 0
        return min(desired, max(0, base - v_min))

    def lo_min_deadline(
        self, vd: dict[int, int], task: MCTask, sig_o: tuple | None = None
    ) -> int | None:
        """Smallest LO-feasible virtual deadline ``V*`` for ``task``; None
        when even the task's full deadline is infeasible under the probe's
        verdicts.  Memoized per surrounding assignment (requires the warm
        engine) — the scalar descent's :meth:`max_lo_feasible_shrink` and
        the block planner share the entry.

        The probe's first check (own demand against the other tasks'
        slack at *their* breakpoints) inverts in closed form: at slack
        ``s`` the task may place at most ``s // C_L`` jobs, giving a
        per-point lower bound on the deadline.  The max of those bounds
        is verified with one :meth:`LoShrinkProbe.feasible` call (the
        own-breakpoint check can still push higher, in which case the
        bisection resumes above the bound) — same verdict function,
        same minimum, far fewer probe evaluations.
        """
        if sig_o is None:
            sig_o = self._sig_others(vd, task.task_id)

        def compute() -> int | None:
            try:
                probe = self._lo_probe_fast(vd, task, sig_o)
            except HorizonExceeded:
                return None
            points_o, slack_o = probe._points_o, probe._slack_o
            if probe._infeasible_always:
                return None
            floor_v = task.wcet_lo
            if len(points_o):
                if int(slack_o.min()) < 0:
                    return None  # the other tasks alone overrun: never feasible
                bounds = points_o - (slack_o // task.wcet_lo) * task.period + 1
                floor_v = max(floor_v, int(bounds.max()))
            if floor_v > task.deadline:
                return None
            # At or above floor_v the other-breakpoint half holds by the
            # closed-form inversion, so only the own-breakpoint half of
            # feasible() remains to test.
            if _dbf._KERNEL in ("vec", "block") and task.wcet_lo <= task.period:
                # Same boundary, no bisection: above floor_v the own half
                # is the whole (monotone) verdict, and its largest failing
                # deadline inverts in closed form over the others' slack
                # regions (see dbf_vec.vstar_own).
                return _vec.vstar_own(
                    points_o,
                    slack_o,
                    task.wcet_lo,
                    task.period,
                    task.deadline,
                    floor_v,
                    probe._horizon,
                )
            if probe._own_feasible(floor_v):
                return floor_v
            if not probe._own_feasible(task.deadline):
                return None
            lo, hi = floor_v + 1, task.deadline
            while lo < hi:
                mid = (lo + hi) // 2
                if probe._own_feasible(mid):
                    hi = mid
                else:
                    lo = mid + 1
            return lo

        return self._cached(("vmin", task.task_id, sig_o), compute)


def tune_virtual_deadlines(
    taskset: TaskSet,
    policy: str,
    refine: bool,
    horizon_cap: int,
    engine: DemandEngine | None = None,
) -> TuningOutcome:
    """Run the descent loop; see module docstring.

    With recording on (:mod:`repro.obs`) each call — i.e. each tuning
    probe — contributes its trajectory length to the
    ``descent.iterations`` histogram and ticks a per-outcome counter;
    pure observation, the outcome itself is untouched.

    Parameters
    ----------
    taskset:
        Tasks on one processor (any mix of criticalities).
    policy:
        ``"steepest"`` (EY) or ``"ratio"`` (ECDF).
    refine:
        Enable the carry-over trigger refinement in the HI check (ECDF).
    horizon_cap:
        Passed through to :class:`DemandScenario`; exceeding it rejects.
    engine:
        Evaluation layer to issue dbf queries through; a fresh
        :class:`DemandEngine` (from-scratch behavior) when omitted.
        Callers passing a memo-backed engine (the incremental contexts)
        get identical outcomes with repeated work deduplicated.
    """
    outcome = _tune_virtual_deadlines_impl(
        taskset, policy, refine, horizon_cap, engine
    )
    if _obs.active():
        _obs.REGISTRY.observe("descent.iterations", float(outcome.iterations))
        _obs.REGISTRY.add(
            "descent.accepted" if outcome.schedulable else "descent.rejected"
        )
    return outcome


def _tune_virtual_deadlines_impl(
    taskset: TaskSet,
    policy: str,
    refine: bool,
    horizon_cap: int,
    engine: DemandEngine | None,
) -> TuningOutcome:
    if policy not in ("steepest", "ratio"):
        raise ValueError(f"unknown tuning policy {policy!r}")
    if engine is None:
        engine = _default_engine(taskset, horizon_cap)

    high_tasks = list(taskset.high_tasks)
    vd = {t.task_id: t.deadline for t in high_tasks}

    # Quick necessary conditions — saves dbf work on hopeless sets.
    util = taskset.utilization
    if util.u_lo > 1.0 + 1e-9 or util.u_hh > 1.0 + 1e-9:
        return TuningOutcome(False, vd, 0, "utilization above 1")

    # Certified fast accept (implicit deadlines): with U_LL + U_HH <= 1 the
    # plain-EDF reservation argument (EDF-VD, x = 1) already guarantees
    # MC-correctness with untouched deadlines — no tuning needed.  Both
    # published tests accept this region after tuning anyway; taking the
    # shortcut only changes the certificate, not the verdict.
    if (
        taskset.is_implicit_deadline
        and util.u_ll + util.u_hh <= 1.0 + 1e-9
    ):
        return TuningOutcome(True, vd, 0, "plain-EDF reserve (a + c <= 1)")

    if not engine.lo_feasible(vd):
        return TuningOutcome(False, vd, 0, "LO-mode infeasible at full deadlines")

    # Definitive fast reject: HI demand is monotone non-increasing in every
    # virtual deadline, so ``Dv_i = C_i^L`` minimizes it.  If even that
    # fails, no assignment can pass the HI check.
    if high_tasks:
        floor_vd = {t.task_id: t.wcet_lo for t in high_tasks}
        try:
            floor_violation = engine.hi_violation(floor_vd, refine)
        except HorizonExceeded:
            return TuningOutcome(False, vd, 0, "HI horizon cap exceeded")
        if floor_violation is not None:
            return TuningOutcome(
                False, vd, 0, f"HI infeasible even at minimal Dv (l*={floor_violation})"
            )

    # Fast path: uniform deadline scaling.  ``vd_i(x) = floor(x * D_i)``
    # (clamped to the model range) is monotone in ``x``: HI demand is
    # non-increasing as ``x`` shrinks, LO demand non-decreasing.  Binary-
    # searching the largest HI-feasible ``x`` and checking LO there settles
    # most accepts in O(log D) demand evaluations, where the per-violation
    # descent needs one iteration per violation point.  The descent below
    # remains the completion pass (per-task deadlines can succeed where
    # uniform scaling cannot), so this is acceptance-neutral or better.
    if high_tasks:
        uniform = _uniform_scaling_search(high_tasks, refine, engine)
        if uniform is not None:
            return uniform

    if _dbf._KERNEL == "block" and engine._memo is not None:
        return _descend_block(high_tasks, vd, policy, refine, engine)
    return _descend(high_tasks, vd, policy, refine, engine)


def run_tuning_stages(
    taskset: TaskSet,
    stages: tuple[tuple[str, bool], ...],
    horizon_cap: int,
    engine: DemandEngine | None = None,
) -> TuningOutcome:
    """Run ``(policy, refine)`` stages in order until one accepts.

    This is the fallback-chain shape of :class:`~repro.analysis.ecdf.
    ECDFTest` (and, with a single stage, of :class:`~repro.analysis.ey.
    EYTest`): later stages only run when every earlier stage rejected, and
    the last outcome is returned either way.  When ``engine`` is omitted
    every stage builds a fresh engine, reproducing the historical
    from-scratch cost; the incremental contexts pass one memo-backed engine
    so the stages share all common dbf work.

    With the opt-in verdict cache on (``REPRO_VERDICT_CACHE=on``) the
    canonical ``(taskset, stages, horizon_cap, service)`` key is
    consulted before any stage runs and the final outcome is recorded —
    repeated probes of one parameter multiset (across buckets,
    strategies or campaign resumes) never pay the descent twice.
    """
    if not stages:
        raise ValueError("at least one tuning stage is required")
    cached = _vcache.lookup_tuning(taskset, stages, horizon_cap)
    if cached is not None:
        return cached
    if engine is None:
        engine = _default_engine(taskset, horizon_cap)
    outcome: TuningOutcome | None = None
    for policy, refine in stages:
        outcome = tune_virtual_deadlines(
            taskset, policy, refine, horizon_cap, engine=engine
        )
        if outcome.schedulable:
            break
    _vcache.store_tuning(taskset, stages, horizon_cap, outcome)
    return outcome


def _default_engine(taskset: TaskSet, horizon_cap: int) -> DemandEngine:
    """The engine a caller gets when it passes none.

    Under the QPA and vec kernels the engine carries a private per-run
    memo so the whole kernel machinery (warm anchors, witness-level
    checks, screen caches, speculation batches) serves the from-scratch
    path too — memoization only
    deduplicates pure queries, so outcomes are identical either way (the
    property the memo/no-memo differential tests assert).  Under the
    forward oracle kernel the engine stays memo-free, preserving the
    historical from-scratch cost profile the benchmarks baseline against.
    """
    if _dbf._KERNEL != "forward":
        return DemandEngine(taskset, horizon_cap, memo={})
    return DemandEngine(taskset, horizon_cap)


def _scaled_deadlines(high_tasks: list[MCTask], x: float) -> dict[int, int]:
    """Per-task virtual deadlines under uniform scaling factor ``x``."""
    return {
        t.task_id: max(t.wcet_lo, min(t.deadline, int(x * t.deadline)))
        for t in high_tasks
    }


def _uniform_scaling_search(
    high_tasks: list[MCTask],
    refine: bool,
    engine: DemandEngine,
) -> TuningOutcome | None:
    """Largest-``x`` uniform scaling that passes both checks, or None.

    Returns a successful :class:`TuningOutcome` when some uniform scaling
    works; None when the caller should fall through to the per-task
    descent (including on horizon-cap trouble, which the descent handles
    with its own conservative semantics).

    The search never consults the descent policy, so on a memo-backed
    engine its outcome is cached per refinement flag — the ECDF fallback
    chain's second stage skips the bisection entirely.
    """
    if engine._memo is not None:
        # Cached on the engine, not the cross-probe memo: the outcome
        # depends on the whole candidate, and an engine serves exactly one.
        cached = engine._uniform.get(refine)
        if cached is None:
            cached = (_uniform_scaling_search_impl(high_tasks, refine, engine),)
            engine._uniform[refine] = cached
        return cached[0]
    return _uniform_scaling_search_impl(high_tasks, refine, engine)


def _uniform_scaling_search_impl(
    high_tasks: list[MCTask],
    refine: bool,
    engine: DemandEngine,
) -> TuningOutcome | None:
    """The bisection behind :func:`_uniform_scaling_search`.

    Split into a HI phase (the bisection — a pure function of the HC
    tasks, the refinement flag and, under degraded service, the LC
    members) and a LO verdict on the winning assignment.  On a memo-backed
    engine the HI phase is cached across *candidates*: probing different
    LC tasks onto the same core leaves the HC set unchanged, so only the
    final LO check differs — the same sharing the per-``(HC, Dv)`` HI memo
    entries already exploit, lifted to the whole search.
    """
    best = _uniform_hi_phase(high_tasks, refine, engine)
    if best is None:
        return None
    if not engine.lo_feasible(best):
        return None
    return TuningOutcome(True, best, 0, "uniform deadline scaling")


def _uniform_hi_phase(
    high_tasks: list[MCTask],
    refine: bool,
    engine: DemandEngine,
) -> dict[int, int] | None:
    """Largest-``x`` HI-feasible uniform assignment, or None.

    None covers both "no scaling is HI-feasible" and "a check overran the
    horizon cap" — in either case the caller falls back to the per-task
    descent, exactly as the historical single-function search did.
    """
    memo = engine._memo
    key = None
    if memo is not None:
        key = ("unib", engine._high_ids, engine._lc_sig, refine)
        hit = memo.get(key)
        if hit is not None:
            best = hit[0]
            return dict(best) if best is not None else None

    def hi_ok(vd: dict[int, int]) -> bool | None:
        try:
            return engine.hi_feasible(vd, refine)
        except HorizonExceeded:
            return None

    def store(best: dict[int, int] | None) -> dict[int, int] | None:
        if key is not None:
            memo[key] = (dict(best) if best is not None else None,)
        return best

    granularity = 1.0 / (2 * max(t.deadline for t in high_tasks))
    lo_x, hi_x = 0.0, 1.0
    # Invariant target: find the largest x whose scaling is HI-feasible.
    verdict = hi_ok(_scaled_deadlines(high_tasks, hi_x))
    if verdict is None:
        return store(None)
    if not verdict:
        while hi_x - lo_x > granularity:
            mid = (lo_x + hi_x) / 2.0
            verdict = hi_ok(_scaled_deadlines(high_tasks, mid))
            if verdict is None:
                return store(None)
            if verdict:
                lo_x = mid
            else:
                hi_x = mid
        best = _scaled_deadlines(high_tasks, lo_x)
        if not hi_ok(best):
            return store(None)
    else:
        best = _scaled_deadlines(high_tasks, hi_x)
    return store(best)


def _descend(
    high_tasks: list[MCTask],
    vd: dict[int, int],
    policy: str,
    refine: bool,
    engine: DemandEngine,
) -> TuningOutcome:
    """The shrink-descent loop from an LO-feasible starting assignment.

    The historical loop re-ran the HI check and re-scored every candidate
    on each iteration, including the *freeze* iterations that only rule a
    task out (its LO-feasible shrink came back 0).  Neither input changes
    while ``vd`` is fixed: the memoized check returns the identical
    ``(violation, demand)`` pair and the candidate scores are independent
    of the frozen set — so the candidates are ranked **once per
    assignment** and freeze iterations simply advance to the next entry.
    Iteration accounting, pick order (the descending ranking's first
    non-frozen entry equals the historical per-iteration argmax: the score
    key embeds ``-task_id``, a total order) and every outcome are
    unchanged; only the redundant re-evaluations are gone.

    Under the vec kernel a :class:`~repro.analysis.dbf_vec.DescentSession`
    takes over the per-assignment work: the candidate ranking runs as
    column arithmetic (entry-identical) and the next ``k`` ranked
    candidates' shrink screens are speculated in one batch — the
    trajectory consumes the speculated settle for whichever candidate it
    actually reaches and the rest is discarded on commit.  Every
    speculated value is a pure function of the probe and ``vd`` is frozen
    between commits, so trajectories, iteration counts and outcomes are
    identical with speculation on or off (the descent-trace equality
    test).
    """
    vd = dict(vd)
    session = (
        _vec.DescentSession(engine, high_tasks)
        if _dbf._KERNEL == "vec" and engine._memo is not None
        else None
    )
    frozen: set[int] = set()
    # Shrinking any Dv only lowers HI demand, so check points below the
    # last seen violation stay feasible for the rest of the descent — the
    # scan may resume there (a pure cost hint; see DemandEngine).
    front = 0
    current: tuple[int | None, int | None] | None = None
    ranked: list[tuple[tuple, MCTask, int]] | None = None
    for iteration in range(1, _MAX_ITERATIONS + 1):
        if current is None:
            try:
                current = engine.hi_check(vd, refine, not_before=front)
            except HorizonExceeded:
                if session is not None:
                    session.retire()
                return TuningOutcome(
                    False, vd, iteration, "HI horizon cap exceeded"
                )
        violation, demand = current
        if violation is None:
            if session is not None:
                session.retire()
            return TuningOutcome(True, vd, iteration)
        front = violation

        deficit = demand - violation
        if ranked is None:
            if session is not None and session.vector_rank:
                ranked = session.rank(vd, violation, deficit, policy)
            else:
                ranked = _rank_candidates(
                    high_tasks, vd, violation, deficit, policy, engine
                )
            if session is not None:
                session.speculate(ranked, vd)
        candidate = None
        for _key, task, desired in ranked:
            if task.task_id not in frozen:
                candidate = (task, desired)
                break
        if candidate is None:
            if session is not None:
                session.retire()
            return TuningOutcome(
                False, vd, iteration, f"no shrinkable task at l*={violation}"
            )
        task, desired = candidate
        shrink = sig_o = None
        if session is not None:
            shrink, sig_o = session.consume(task, desired)
        if shrink is None:
            shrink = engine.max_lo_feasible_shrink(
                vd, task, desired, _sig_o=sig_o
            )
        if shrink == 0 or engine.hi_gain(task, vd[task.task_id], shrink, violation) <= 0:
            frozen.add(task.task_id)
            continue
        vd[task.task_id] -= shrink
        frozen.clear()  # shrinking one task may unfreeze others elsewhere
        current = None
        ranked = None
        if session is not None:
            session.retire(committed=task.task_id)

    if session is not None:
        session.retire()
    return TuningOutcome(False, vd, _MAX_ITERATIONS, "iteration cap reached")


def _descend_block(
    high_tasks: list[MCTask],
    vd: dict[int, int],
    policy: str,
    refine: bool,
    engine: DemandEngine,
) -> TuningOutcome:
    """The ``block`` kernel's descent: joint boundary jumps per probe.

    Same loop shape as :func:`_descend` — one exact HI check per
    iteration, candidates ranked once per assignment — but before taking
    the scalar single-task step it asks :func:`repro.analysis.dbf_block.
    plan_block` for a joint jump of several ranked candidates straight to
    their minimal LO-feasible deadlines, each step proven exactly against
    a virtual copy of the assignment with every earlier jump already
    applied.  A committed block makes one iteration of progress
    where the scalar descent would have spent one iteration (and one
    exact probe) per task, which is the whole point: fewer distinct
    violation fronts, fewer exact QPA iterations.

    Verdict contract: any reject reached on a trajectory that committed
    at least one block falls back to a full scalar :func:`_descend` from
    the original assignment and returns *its* outcome — the block kernel
    therefore never rejects a set the scalar kernels accept.  Rejects on
    an all-scalar trajectory are returned directly (that trajectory *is*
    the scalar one: the planner only reads memoized scaffolding).
    Accepts stand on their own soundness — every committed deadline is
    LO-feasible by construction and the final exact HI check passed —
    but the descent trajectory (iteration counts, committed deadlines)
    is not bit-identical to the scalar kernels'; the fig3–fig7
    differential suite pins the *verdicts* to parity.

    Requires the memo-backed engine (the planner reads the ``("vmin",
    ...)``/``("lofp", ...)`` scaffolding); the dispatch in
    :func:`_tune_virtual_deadlines_impl` guarantees it.
    """
    vd0 = vd
    vd = dict(vd)
    frozen: set[int] = set()
    front = 0
    jumped = False
    current: tuple[int | None, int | None] | None = None
    ranked: list[tuple[tuple, MCTask, int]] | None = None

    def fallback(outcome: TuningOutcome) -> TuningOutcome:
        """A reject of the block trajectory: re-run the scalar descent
        when a block was committed (the trajectories diverged), else the
        outcome already is the scalar one."""
        if not jumped:
            return outcome
        _blk._COUNTERS["block-fallback"] += 1
        return _descend(high_tasks, dict(vd0), policy, refine, engine)

    for iteration in range(1, _MAX_ITERATIONS + 1):
        if current is None:
            try:
                current = engine.hi_check(vd, refine, not_before=front)
            except HorizonExceeded:
                return fallback(
                    TuningOutcome(False, vd, iteration, "HI horizon cap exceeded")
                )
        violation, demand = current
        if violation is None:
            return TuningOutcome(True, vd, iteration)
        front = violation

        deficit = demand - violation
        if ranked is None:
            ranked = _rank_candidates(
                high_tasks, vd, violation, deficit, policy, engine
            )

        commits = _blk.plan_block(engine, vd, ranked, frozen, violation)
        if commits:
            for tid, v_new in commits.items():
                vd[tid] = v_new
            jumped = True
            frozen.clear()
            current = None
            ranked = None
            continue

        # Residual scalar step, body-identical to _descend's.
        candidate = None
        for _key, task, desired in ranked:
            if task.task_id not in frozen:
                candidate = (task, desired)
                break
        if candidate is None:
            return fallback(
                TuningOutcome(
                    False, vd, iteration, f"no shrinkable task at l*={violation}"
                )
            )
        task, desired = candidate
        shrink = engine.max_lo_feasible_shrink(vd, task, desired)
        if shrink == 0 or engine.hi_gain(task, vd[task.task_id], shrink, violation) <= 0:
            frozen.add(task.task_id)
            continue
        vd[task.task_id] -= shrink
        frozen.clear()
        current = None
        ranked = None

    return fallback(
        TuningOutcome(False, vd, _MAX_ITERATIONS, "iteration cap reached")
    )


def _rank_candidates(
    high_tasks: list[MCTask],
    vd: dict[int, int],
    violation: int,
    deficit: int,
    policy: str,
    engine: DemandEngine,
) -> list[tuple[tuple, MCTask, int]]:
    """All shrink candidates for one assignment, best first.

    Entries are ``(key, task, desired)`` with the historical pick key
    ``(score, remaining slack, -task_id)``; sorting descending makes the
    first non-frozen entry the per-iteration argmax of the original
    :func:`_pick_candidate` for every frozen set.
    """
    ranked: list[tuple[tuple, MCTask, int]] = []
    for task in high_tasks:
        # Inlined _min_shrink_for_gain / _shrink_to_clear / _hi_gain on
        # plain ints — the identical closed forms, sans attribute hops and
        # memo round-trips, in the single hottest loop of the descent.
        vd_now = vd[task.task_id]
        period, wcet_lo, wcet_hi = task.period, task.wcet_lo, task.wcet_hi
        max_shrink = vd_now - wcet_lo
        if max_shrink <= 0:
            continue
        x = violation - (task.deadline - vd_now)
        if x < 0:
            continue  # shrinking moves the carry-over even further out
        r0 = x % period
        first = 1 if r0 < wcet_lo else (r0 - wcet_lo + 1)
        if first > max_shrink:
            continue
        d_now = (x // period + 1) * wcet_hi - max(0, wcet_lo - r0)
        x_floor = x - max_shrink
        if x_floor >= 0:
            d_floor = (x_floor // period + 1) * wcet_hi - max(
                0, wcet_lo - x_floor % period
            )
        else:
            d_floor = 0
        target = min(deficit, d_now - d_floor)
        if target <= 0:
            desired = max_shrink
        else:
            desired = _invert_shrink(task, vd_now, violation, target)
        if desired < first:
            desired = first
        x_new = x - desired
        if x_new >= 0:
            d_new = (x_new // period + 1) * wcet_hi - max(
                0, wcet_lo - x_new % period
            )
        else:
            d_new = 0
        gain = d_now - d_new
        if gain <= 0:
            continue
        if policy == "steepest":
            score = float(gain)
        else:  # ratio: HI gain per unit of LO density increase
            density_now = wcet_lo / vd_now
            density_new = wcet_lo / (vd_now - desired)
            cost = max(density_new - density_now, 1e-12)
            score = gain / cost
        # Tie-break: prefer more remaining slack, then stable task order.
        ranked.append(((score, max_shrink, -task.task_id), task, desired))
    ranked.sort(key=lambda entry: entry[0], reverse=True)
    return ranked
