"""EDF with Virtual Deadlines — utilization test of Baruah et al. (S4).

The test (ECRTS 2012, Theorems 1 and 2) for implicit-deadline dual-
criticality task systems.  With per-core sums ``a = U_LL`` (LO utilization of
LC tasks), ``b = U_LH`` (LO utilization of HC tasks) and ``c = U_HH``
(HI utilization of HC tasks):

* if ``a + c <= 1`` the set is schedulable by plain EDF with HC tasks
  budgeted at ``C_H`` (scaling factor ``x = 1``);
* otherwise it is schedulable by EDF-VD with
  ``x = b / (1 - a)`` provided ``a + b <= 1`` (Theorem 1, LO mode) and
  ``x * a + c <= 1`` (Theorem 2, HI mode).

The HI-mode condition rearranges to ``a <= (1 - c) / (1 - (c - b))``, the
exact inequality quoted in Section III of the DATE 2017 paper.  The
pessimism of the test shrinks with the *utilization difference* ``c - b``,
which is what the UDP partitioning strategies balance across cores.

This test carries an optimal speed-up bound of 4/3 on one processor, and by
Theorem 9 of Baruah et al. (Real-Time Systems, 2014), any partitioning
strategy that tries every processor before declaring failure inherits a
speed-up bound of 8/3 when paired with it — which holds for all strategies
in :mod:`repro.core`.
"""

from __future__ import annotations

from repro.model import TaskSet
from repro.analysis.interface import (
    AnalysisResult,
    SchedulabilityTest,
    register_test,
)

__all__ = [
    "EDFVDTest",
    "edfvd_admits",
    "edfvd_scaling_factor",
    "scaling_factor_from_sums",
]

_EPS = 1e-9


def edfvd_admits(
    u_ll: float, u_lh: float, u_hh: float, u_res: float = 0.0
) -> bool:
    """The EDF-VD utilization test on raw per-core sums.

    Pure-function form used by partitioners, property tests and the worked
    examples of Figures 1 and 2.

    ``u_res`` is the HI-mode utilization the LC tasks *retain* under a
    degraded service model (:mod:`repro.degradation`): 0 for the classical
    drop-at-switch semantics, ``sum(rho * u_i)``-style sums otherwise.  The
    HI-mode condition generalizes to ``x*a + (1-x)*U_res + c <= 1`` — the
    imprecise-MC EDF-VD condition (Liu et al., RTSS 2016, "EDF-VD
    scheduling of MC systems with degraded quality guarantees"), which
    degenerates term-by-term to Baruah's ``x*a + c <= 1`` at ``U_res = 0``.
    The condition is non-decreasing in ``x`` (since ``U_res <= a``), so the
    smallest LO-feasible ``x = b / (1 - a)`` remains the right choice.

    ``u_lh <= u_hh`` is a model invariant (``C_L <= C_H`` per task); inputs
    violating it are rejected to protect the ``a + c <= 1`` shortcut, which
    relies on ``b <= c``.  Similarly ``u_res <= u_ll`` (no service model
    may increase an LC task's rate).
    """
    a, b, c = u_ll, u_lh, u_hh
    if min(a, b, c) < -_EPS:
        raise ValueError(f"utilizations must be non-negative: {(a, b, c)}")
    if b > c + _EPS:
        raise ValueError(f"U_LH ({b}) exceeds U_HH ({c}); violates C_L <= C_H")
    if not -_EPS <= u_res <= a + _EPS:
        raise ValueError(
            f"U_res ({u_res}) outside [0, U_LL={a}]; residual LC "
            "utilization cannot exceed the LO-mode LC utilization"
        )
    if a + c <= 1.0 + _EPS:
        # Plain EDF with HC budgeted at C_H: covers HI mode too, because
        # U_res + c <= a + c <= 1 (degradation only removes LC demand).
        return True
    if a + b > 1.0 + _EPS or c > 1.0 + _EPS:
        return False
    # x * a + (1-x) * U_res + c <= 1 with x = b / (1 - a); guarded because
    # a < 1 here (a + b <= 1 and b > 0, else a + c <= 1 would have held).
    if a >= 1.0 - _EPS:
        return False
    x = b / (1.0 - a)
    return x * a + (1.0 - x) * u_res + c <= 1.0 + _EPS


def scaling_factor_from_sums(
    u_ll: float, u_lh: float, u_hh: float, u_res: float = 0.0
) -> float:
    """:func:`edfvd_scaling_factor` on raw per-core sums.

    Shared by the :class:`TaskSet` wrapper below and the incremental
    :class:`~repro.analysis.context.EDFVDContext`, which maintains the sums
    as running accumulators; keeping one arithmetic path guarantees both
    produce the identical float.  ``u_res`` only affects admission — the
    scaling factor itself depends on the LO-mode sums alone.
    """
    a, b, c = u_ll, u_lh, u_hh
    if not edfvd_admits(a, b, c, u_res):
        raise ValueError("task set fails the EDF-VD test; no valid scaling factor")
    if a + c <= 1.0 + _EPS or b == 0:
        return 1.0
    return min(1.0, b / (1.0 - a))


def edfvd_scaling_factor(taskset: TaskSet) -> float:
    """Deadline-scaling factor ``x`` the runtime should apply.

    Returns 1.0 when plain EDF suffices (``a + c <= 1``); otherwise
    ``b / (1 - a)``.  Raises ``ValueError`` when the task set fails the test
    (there is no correct scaling factor to return).
    """
    util = taskset.utilization
    return scaling_factor_from_sums(
        util.u_ll, util.u_lh, util.u_hh, taskset.residual_utilization
    )


class EDFVDTest(SchedulabilityTest):
    """EDF-VD utilization-based test (implicit deadlines only)."""

    name = "edf-vd"

    def supports(self, taskset: TaskSet) -> bool:
        """EDF-VD's utilization test requires implicit deadlines."""
        return taskset.is_implicit_deadline

    def supports_deadline_type(self, deadline_type: str) -> bool:
        """Only implicit-deadline sweeps can pair with EDF-VD."""
        return deadline_type == "implicit"

    def supports_service_model(self, service) -> bool:
        """The utilization test carries the residual LC HI-mode term, so
        every degradation model expressible as a residual utilization —
        i.e. all of them — is analyzable."""
        return True

    def make_context(self, service=None):
        """O(1)-probe incremental context over running utilization sums."""
        from repro.analysis.context import EDFVDContext

        return EDFVDContext(self, service=service)

    def batch_screen(self):
        """Complete probe screen — the utilization test *is* O(1)."""
        from repro.analysis.prefilter import EDFVDScreen

        return EDFVDScreen()

    def analyze(self, taskset: TaskSet) -> AnalysisResult:
        if not taskset.is_implicit_deadline:
            raise ValueError(
                "EDFVDTest requires an implicit-deadline task set; "
                "use ECDFTest/EYTest for constrained deadlines"
            )
        util = taskset.utilization
        ok = edfvd_admits(
            util.u_ll, util.u_lh, util.u_hh, taskset.residual_utilization
        )
        if not ok:
            return AnalysisResult(
                False,
                detail=(
                    f"a={util.u_ll:.4f} b={util.u_lh:.4f} c={util.u_hh:.4f} "
                    "fails EDF-VD utilization test"
                ),
            )
        return AnalysisResult(True, scaling_factor=edfvd_scaling_factor(taskset))


register_test("edf-vd", EDFVDTest)
