"""Adaptive Mixed-Criticality response-time analyses — AMC-rtb and AMC-max (S8).

Implements the two schedulability tests of Baruah, Burns and Davis,
"Response-time analysis for mixed criticality systems" (RTSS 2011), for
fixed-priority preemptive scheduling where all LC tasks are dropped at the
mode switch:

LO-mode test (all tasks)
    Classic RTA with LO-mode budgets: ``R_i^LO <= D_i``.

AMC-rtb (HC tasks)
    A single recurrence bounding the post-switch response time::

        R_i^HI = C_i^H + sum_{j in hpH(i)} ceil(R_i^HI / T_j) C_j^H
                       + sum_{j in hpL(i)} ceil(R_i^LO / T_j) C_j^L

    LC interference is frozen at the LO-mode response time (no LC job can be
    released after the switch).

AMC-max (HC tasks)
    Maximizes over the mode-switch instant ``s`` inside the busy period::

        R_i(s) = C_i^H + sum_{j in hpL(i)} (floor(s/T_j) + 1) C_j^L
               + sum_{k in hpH(i)} [ M(k,s,R) C_k^H + (ceil(R/T_k) - M(k,s,R)) C_k^L ]

    with ``M(k,s,t) = min(ceil((t - s - (T_k - D_k)) / T_k) + 1, ceil(t/T_k))``
    clamped to ``[0, ceil(t/T_k)]`` — the maximum number of τk jobs that can
    execute at HI budget inside ``[s, t]``.  The LC term only increases at LC
    release instants and the M term is non-increasing in ``s``, so it
    suffices to evaluate ``s = 0`` and ``s = a*T_j < R_i^LO`` for LC tasks j
    (the candidate set used in the original paper).

The paper's pessimism shrinks with the utilization difference of the HC
tasks on the core (the ``C_k^H - C_k^L`` gaps drive the M-term), which is
why the UDP partitioning strategies help AMC as well (Section IV of the
DATE 2017 paper).

Priority assignment is deadline-monotonic by default; Audsley's OPA is
available via ``priority_policy="opa"`` (both tests are OPA-compatible, see
:mod:`repro.analysis.fixed_priority`).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.model import MCTask, TaskSet
from repro.util.intmath import ceil_div
from repro.analysis.fixed_priority import (
    audsley_assignment,
    deadline_monotonic_order,
    priority_map,
    response_time_lo,
)
from repro.analysis.interface import (
    AnalysisResult,
    SchedulabilityTest,
    register_test,
)

__all__ = ["AMCrtbTest", "AMCmaxTest", "amc_rtb_response", "amc_max_response"]


def _split_hp(higher_priority: Sequence[MCTask]) -> tuple[list[MCTask], list[MCTask]]:
    hp_high = [t for t in higher_priority if t.is_high]
    hp_low = [t for t in higher_priority if not t.is_high]
    return hp_high, hp_low


def amc_rtb_response(
    task: MCTask, higher_priority: Sequence[MCTask]
) -> int | None:
    """AMC-rtb HI-mode response-time bound for an HC ``task``.

    Returns None when the bound exceeds the deadline (unschedulable) —
    including the case where the LO-mode response time already fails.
    """
    if not task.is_high:
        raise ValueError(f"{task.name}: AMC HI analysis applies to HC tasks only")
    r_lo = response_time_lo(task, higher_priority)
    if r_lo is None:
        return None
    hp_high, hp_low = _split_hp(higher_priority)
    lc_interference = sum(
        ceil_div(r_lo, j.period) * j.wcet_lo for j in hp_low
    )
    response = task.wcet_hi
    while True:
        nxt = (
            task.wcet_hi
            + lc_interference
            + sum(ceil_div(response, k.period) * k.wcet_hi for k in hp_high)
        )
        if nxt > task.deadline:
            return None
        if nxt == response:
            return response
        response = nxt


def _m_jobs(k: MCTask, s: int, t: int) -> int:
    """``M(k, s, t)``: max jobs of τk executing with HI budget in [s, t]."""
    total = ceil_div(t, k.period)
    hi_capable = ceil_div(t - s - (k.period - k.deadline), k.period) + 1
    return max(0, min(hi_capable, total))


def _amc_max_at_switch(
    task: MCTask,
    hp_high: Sequence[MCTask],
    hp_low: Sequence[MCTask],
    s: int,
) -> int | None:
    """Fixed point of the AMC-max recurrence for one switch instant ``s``."""
    lc_interference = sum(
        (s // j.period + 1) * j.wcet_lo for j in hp_low
    )
    response = task.wcet_hi
    while True:
        hc_interference = 0
        for k in hp_high:
            m = _m_jobs(k, s, response)
            releases = ceil_div(response, k.period)
            hc_interference += m * k.wcet_hi + (releases - m) * k.wcet_lo
        nxt = task.wcet_hi + lc_interference + hc_interference
        if nxt > task.deadline:
            return None
        if nxt == response:
            return response
        response = nxt


def amc_max_response(
    task: MCTask, higher_priority: Sequence[MCTask]
) -> int | None:
    """AMC-max HI-mode response-time bound for an HC ``task``.

    Evaluates the recurrence at every candidate switch instant (LC release
    times below the LO-mode response time) and returns the maximum, or None
    when any candidate exceeds the deadline.
    """
    if not task.is_high:
        raise ValueError(f"{task.name}: AMC HI analysis applies to HC tasks only")
    r_lo = response_time_lo(task, higher_priority)
    if r_lo is None:
        return None
    hp_high, hp_low = _split_hp(higher_priority)
    candidates = {0}
    for j in hp_low:
        release = j.period
        while release < r_lo:
            candidates.add(release)
            release += j.period
    worst = 0
    for s in sorted(candidates):
        response = _amc_max_at_switch(task, hp_high, hp_low, s)
        if response is None:
            return None
        worst = max(worst, response)
    return worst


class _AMCBase(SchedulabilityTest):
    """Shared machinery of the two AMC tests."""

    def __init__(self, priority_policy: str = "dm"):
        if priority_policy not in ("dm", "opa"):
            raise ValueError(
                f"priority_policy must be 'dm' or 'opa', got {priority_policy!r}"
            )
        self.priority_policy = priority_policy

    def _hi_response(
        self, task: MCTask, higher_priority: Sequence[MCTask]
    ) -> int | None:
        raise NotImplementedError

    def _feasible_at_level(
        self, task: MCTask, higher_priority: Sequence[MCTask]
    ) -> bool:
        if response_time_lo(task, higher_priority) is None:
            return False
        if task.is_high:
            return self._hi_response(task, higher_priority) is not None
        return True

    def analyze(self, taskset: TaskSet) -> AnalysisResult:
        if not taskset.is_constrained_deadline:
            raise ValueError("AMC analyses require constrained deadlines")
        if self.priority_policy == "opa":
            order = audsley_assignment(taskset, self._feasible_at_level)
            if order is None:
                return AnalysisResult(False, detail="no OPA assignment exists")
            return AnalysisResult(True, priorities=priority_map(order))
        order = deadline_monotonic_order(taskset)
        for level, task in enumerate(order):
            if not self._feasible_at_level(task, order[:level]):
                return AnalysisResult(
                    False,
                    priorities=priority_map(order),
                    detail=f"{task.name} fails at DM level {level}",
                )
        return AnalysisResult(True, priorities=priority_map(order))

    def make_context(self, service=None):
        """Incremental context memoizing per-level RTA verdicts (DM only).

        OPA re-derives the whole priority order per candidate, so it keeps
        the from-scratch path (None disables the incremental route).
        The AMC recurrences assume LC tasks are dropped at the switch, so
        degraded service models are rejected by ``supports_service_model``
        (the interface default) before any context is created.
        """
        if self.priority_policy != "dm":
            return None
        from repro.analysis.context import AMCContext

        return AMCContext(self, service=service)


class AMCrtbTest(_AMCBase):
    """AMC with the release-time-bound (rtb) HI-mode recurrence."""

    name = "amc-rtb"

    def _hi_response(
        self, task: MCTask, higher_priority: Sequence[MCTask]
    ) -> int | None:
        return amc_rtb_response(task, higher_priority)


class AMCmaxTest(_AMCBase):
    """AMC maximizing over mode-switch instants (dominates AMC-rtb)."""

    name = "amc-max"

    def _hi_response(
        self, task: MCTask, higher_priority: Sequence[MCTask]
    ) -> int | None:
        return amc_max_response(task, higher_priority)


register_test("amc-rtb", AMCrtbTest)
register_test("amc-max", AMCmaxTest)
register_test("amc-rtb-opa", lambda: AMCrtbTest("opa"))
register_test("amc-max-opa", lambda: AMCmaxTest("opa"))
