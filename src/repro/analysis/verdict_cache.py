"""Canonical task-set verdict cache (opt-in, two-tier).

The sweep pipeline re-derives the same verdicts over and over: the same
utilization bucket is probed under several strategies, figure variants
re-run the same ``(taskset, m, test, service)`` combinations, and a
resumed campaign replays whole shards.  The demand-engine memos only
live for one probe; this module caches at the *verdict* level, so a
repeated probe never pays the descent at all.

Keys are **canonical**: the task list is normalized to a stable sorted
order of the parameter tuples ``(period, criticality, C^L, C^H, D,
degraded fields)`` — task ids, names and submission order do not enter
the key — and hashed (sha256 over sort-keyed JSON, the shard-cache key
recipe).  The kernel never enters the key either: all four demand
kernels are verdict-identical by contract, so their outcomes are
interchangeable at this level.  The service model and the probe shape
(tuning stages + horizon cap, or ``m`` + test + strategy) are separate
key components.

Cached values carry task references as *canonical indices*, so a hit
from a differently-ordered or differently-numbered submission is mapped
back onto the caller's actual task objects before it is returned.

Two tiers: a bounded in-process LRU (``REPRO_VERDICT_CACHE_SIZE``) and
an optional persistent tier (``REPRO_VERDICT_CACHE_DIR``) that reuses
the four :class:`~repro.runner.store.ShardStore` blob primitives —
get/put/exists/discard on content-addressed JSON blobs, multi-writer
safe, any malformed or doubtful payload treated as a miss and
discarded.

**Opt-in** (``REPRO_VERDICT_CACHE=on``; default off): order-normalized
keys identify task sets *up to reordering*, while the descent's float
folds are order sensitive — two orderings of one parameter multiset are
verdict-equal for every practical purpose, but an epsilon-boundary set
could in principle fold differently.  The default therefore preserves
bit-for-bit reproducibility of unordered submissions; campaigns that
want the reuse switch the knob on.

Diagnostics live in the always-on ``verdict-cache.*`` counter scope:
``hit`` / ``miss`` / ``store`` (in-process tier), ``disk-hit`` /
``disk-reject`` (persistent tier).
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict

from repro.model import MCTask, TaskSet
from repro.obs import REGISTRY as _OBS_REGISTRY
from repro.util.env import (
    verdict_cache_dir_from_env,
    verdict_cache_from_env,
    verdict_cache_size_from_env,
)

__all__ = [
    "enabled",
    "reconfigure",
    "lookup_tuning",
    "store_tuning",
    "lookup_partition",
    "store_partition",
    "cache_counters",
    "reset_cache_counters",
]

_COUNTERS = _OBS_REGISTRY.counter_scope(
    "verdict-cache",
    (
        "hit",  # in-process LRU hits
        "miss",  # lookups that found nothing in any tier
        "store",  # verdicts written to the cache
        "disk-hit",  # persistent-tier hits promoted into the LRU
        "disk-reject",  # malformed persistent payloads discarded as misses
    ),
)

#: Schema stamp inside every persistent payload; a mismatch is a miss.
_SCHEMA = "repro-verdict-cache/1"


class _Config:
    """Knob snapshot plus the two tiers; rebuilt by :func:`reconfigure`."""

    def __init__(self) -> None:
        self.enabled = verdict_cache_from_env() == "on"
        self.size = verdict_cache_size_from_env()
        self.lru: OrderedDict[str, dict] = OrderedDict()
        self.store = None
        directory = verdict_cache_dir_from_env()
        if self.enabled and directory:
            # Deferred import: runner.store pulls the experiments layer,
            # which imports the analysis stack this module lives in.
            from repro.runner.store import create_store

            self.store = create_store("object", directory)


_CONFIG: _Config | None = None


def _config() -> _Config:
    global _CONFIG
    if _CONFIG is None:
        _CONFIG = _Config()
    return _CONFIG


def reconfigure() -> None:
    """Re-read the env knobs and drop both tiers' in-process state.

    For tests and long-lived processes that flip ``REPRO_VERDICT_CACHE``
    at runtime; the persistent tier's on-disk blobs survive (they are
    content addressed and validated on read).
    """
    global _CONFIG
    _CONFIG = None


def enabled() -> bool:
    """Whether lookups/stores are active (``REPRO_VERDICT_CACHE=on``)."""
    return _config().enabled


# -- canonicalization --------------------------------------------------------

def _canonical_order(taskset: TaskSet) -> list[MCTask]:
    """The task list in canonical order (parameter tuples, stable ties).

    Identity fields (``task_id``, ``name``) never enter the sort, so two
    submissions of one parameter multiset canonicalize identically; ties
    between identically-parameterized tasks keep submission order, which
    is irrelevant to the key (equal tuples) but makes the index mapping
    deterministic.
    """
    return sorted(taskset, key=_task_params)


def _task_params(task: MCTask) -> tuple:
    return (
        task.period,
        "HC" if task.criticality.is_high else "LC",
        task.wcet_lo,
        task.wcet_hi,
        task.deadline,
        -1 if task.wcet_degraded is None else task.wcet_degraded,
        -1 if task.period_degraded is None else task.period_degraded,
    )


def _service_spec(taskset: TaskSet) -> str:
    service = taskset.service_model
    return "full-drop" if service is None else service.spec()


def _key(kind: str, taskset: TaskSet, ordered: list[MCTask], extra: dict) -> str:
    desc = {
        "schema": _SCHEMA,
        "kind": kind,
        "tasks": [list(_task_params(t)) for t in ordered],
        "service": _service_spec(taskset),
        **extra,
    }
    blob = json.dumps(desc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- tier plumbing -----------------------------------------------------------

def _get(key: str) -> dict | None:
    cfg = _config()
    hit = cfg.lru.get(key)
    if hit is not None:
        cfg.lru.move_to_end(key)
        _COUNTERS["hit"] += 1
        return hit
    if cfg.store is not None:
        text = cfg.store.get(key)
        if text is not None:
            try:
                payload = json.loads(text)
                if not isinstance(payload, dict) or payload.get("schema") != _SCHEMA:
                    raise ValueError("schema mismatch")
            except (ValueError, TypeError):
                # Doubt means miss: discard so the slot can be rewritten.
                cfg.store.discard(key)
                _COUNTERS["disk-reject"] += 1
                _COUNTERS["miss"] += 1
                return None
            _COUNTERS["disk-hit"] += 1
            _put_lru(key, payload)
            return payload
    _COUNTERS["miss"] += 1
    return None


def _put_lru(key: str, payload: dict) -> None:
    cfg = _config()
    cfg.lru[key] = payload
    cfg.lru.move_to_end(key)
    while len(cfg.lru) > cfg.size:
        cfg.lru.popitem(last=False)


def _put(key: str, payload: dict) -> None:
    cfg = _config()
    _put_lru(key, payload)
    if cfg.store is not None and not cfg.store.exists(key):
        cfg.store.put(key, json.dumps(payload, sort_keys=True))
    _COUNTERS["store"] += 1


# -- tuning verdicts ---------------------------------------------------------

def lookup_tuning(
    taskset: TaskSet,
    stages: tuple[tuple[str, bool], ...],
    horizon_cap: int,
):
    """Cached :class:`~repro.analysis.vdtuning.TuningOutcome`, or None.

    The virtual deadlines are stored by canonical index and remapped
    onto the caller's task ids, so the returned outcome is usable
    exactly as a freshly computed one.
    """
    if not enabled():
        return None
    ordered = _canonical_order(taskset)
    key = _key(
        "tuning", taskset, ordered,
        {"stages": [list(s) for s in stages], "horizon_cap": horizon_cap},
    )
    payload = _get(key)
    if payload is None:
        return None
    from repro.analysis.vdtuning import TuningOutcome

    vd = {
        ordered[int(idx)].task_id: deadline
        for idx, deadline in payload["vd"].items()
    }
    return TuningOutcome(
        payload["schedulable"], vd, payload["iterations"], payload["detail"]
    )


def store_tuning(
    taskset: TaskSet,
    stages: tuple[tuple[str, bool], ...],
    horizon_cap: int,
    outcome,
) -> None:
    """Record a tuning verdict under its canonical key."""
    if not enabled():
        return
    ordered = _canonical_order(taskset)
    index_of = {t.task_id: i for i, t in enumerate(ordered)}
    key = _key(
        "tuning", taskset, ordered,
        {"stages": [list(s) for s in stages], "horizon_cap": horizon_cap},
    )
    _put(key, {
        "schema": _SCHEMA,
        "schedulable": outcome.schedulable,
        "iterations": outcome.iterations,
        "detail": outcome.detail,
        "vd": {
            str(index_of[tid]): deadline
            for tid, deadline in outcome.virtual_deadlines.items()
        },
    })


# -- partition verdicts ------------------------------------------------------

def _partition_extra(m: int, test, strategy) -> dict:
    # A test's verdict is determined by its registered name plus its
    # tunables; every shipped test carries them as plain attributes.
    return {
        "m": m,
        "test": [
            test.name,
            getattr(test, "horizon_cap", None),
            [list(s) for s in getattr(test, "stages", ())],
        ],
        "strategy": strategy.name,
    }


def lookup_partition(taskset: TaskSet, m: int, test, strategy):
    """Cached :class:`~repro.core.allocator.PartitionResult`, or None.

    Core membership, the assignment map (in commit order) and the failed
    task are stored as canonical indices and rebuilt around the caller's
    actual task objects — same cores, same iteration order, same ids as
    the uncached run.
    """
    if not enabled():
        return None
    ordered = _canonical_order(taskset)
    key = _key("partition", taskset, ordered, _partition_extra(m, test, strategy))
    payload = _get(key)
    if payload is None:
        return None
    from repro.core.allocator import PartitionResult

    service = taskset.service_model
    cores: list[list[MCTask]] = [[] for _ in range(m)]
    assignment: dict[int, int] = {}
    for idx, core in payload["commits"]:
        task = ordered[int(idx)]
        cores[int(core)].append(task)
        assignment[task.task_id] = int(core)
    failed = payload["failed"]
    return PartitionResult(
        success=payload["success"],
        strategy_name=strategy.name,
        test_name=test.name,
        m=m,
        cores=tuple(
            TaskSet(members, service_model=service) for members in cores
        ),
        assignment=assignment,
        failed_task=None if failed is None else ordered[int(failed)],
    )


def store_partition(taskset: TaskSet, m: int, test, strategy, result) -> None:
    """Record a partition verdict under its canonical key."""
    if not enabled():
        return
    ordered = _canonical_order(taskset)
    index_of = {t.task_id: i for i, t in enumerate(ordered)}
    key = _key("partition", taskset, ordered, _partition_extra(m, test, strategy))
    _put(key, {
        "schema": _SCHEMA,
        "success": result.success,
        # Commit order: assignment dicts iterate in placement order, so
        # replaying the pairs reproduces the uncached dict exactly.
        "commits": [
            [index_of[tid], core] for tid, core in result.assignment.items()
        ],
        "failed": (
            None
            if result.failed_task is None
            else index_of[result.failed_task.task_id]
        ),
    })


# -- diagnostics -------------------------------------------------------------

def cache_counters() -> dict[str, int]:
    """Snapshot of the process-local verdict-cache diagnostics."""
    return dict(_COUNTERS)


def reset_cache_counters() -> None:
    """Zero the verdict-cache diagnostics (process-local slice)."""
    for key in _COUNTERS:
        _COUNTERS[key] = 0
