"""Whole-task-set transformations.

Utilities for deriving workload variants from an existing task set —
used by the sensitivity experiments, the speed-up analysis and as general
library affordances (e.g. turning a constrained-deadline system back into
an implicit one for EDF-VD).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.model.taskset import TaskSet

__all__ = [
    "with_implicit_deadlines",
    "with_constrained_deadlines",
    "inflate_hi_budgets",
    "squeeze_difference",
]


def with_implicit_deadlines(taskset: TaskSet) -> TaskSet:
    """Copy with every deadline reset to the period."""
    return TaskSet(
        (replace(t, deadline=t.period) for t in taskset),
        service_model=taskset.service_model,
    )


def with_constrained_deadlines(
    taskset: TaskSet, rng: np.random.Generator
) -> TaskSet:
    """Copy with deadlines drawn uniformly from ``[C_H, T]`` per task.

    The same rule Section IV of the paper uses to derive its
    constrained-deadline workloads from the generator output.
    """
    tasks = []
    for t in taskset:
        deadline = int(rng.integers(t.wcet_hi, t.period + 1))
        tasks.append(replace(t, deadline=deadline))
    return TaskSet(tasks, service_model=taskset.service_model)


def inflate_hi_budgets(taskset: TaskSet, factor: float) -> TaskSet:
    """Copy with every HC task's ``C_H`` multiplied by ``factor`` (>= 1).

    Budgets are capped at ``min(D, T)`` so the result stays within the
    model.  Models growing assurance pessimism (Vestal's motivation): the
    more conservative the certification authority, the larger the
    utilization difference the partitioner must absorb.
    """
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1, got {factor}")
    tasks = []
    for t in taskset:
        if not t.is_high:
            tasks.append(t)
            continue
        cap = min(t.deadline, t.period)
        new_hi = min(cap, max(t.wcet_lo, int(round(t.wcet_hi * factor))))
        tasks.append(replace(t, wcet_hi=new_hi))
    return TaskSet(tasks, service_model=taskset.service_model)


def squeeze_difference(taskset: TaskSet, ratio: float) -> TaskSet:
    """Copy with each HC task's LO budget moved toward its HI budget.

    ``ratio`` in [0, 1] interpolates ``C_L' = C_L + ratio * (C_H - C_L)``
    (rounded down, kept >= original ``C_L`` at ratio 0 and == ``C_H`` at
    ratio 1).  Shrinks every per-task utilization difference by the same
    fraction — the knob the sensitivity experiment sweeps to show *when*
    UDP partitioning matters.
    """
    if not 0.0 <= ratio <= 1.0:
        raise ValueError(f"ratio must be in [0, 1], got {ratio}")
    tasks = []
    for t in taskset:
        if not t.is_high:
            tasks.append(t)
            continue
        new_lo = t.wcet_lo + int(round(ratio * (t.wcet_hi - t.wcet_lo)))
        tasks.append(replace(t, wcet_lo=min(new_lo, t.wcet_hi)))
    return TaskSet(tasks, service_model=taskset.service_model)
