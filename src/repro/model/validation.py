"""Model-level validation beyond per-field checks.

:class:`~repro.model.task.MCTask` enforces field-level invariants in its
constructor; the functions here provide whole-task and whole-set validation
with configurable strictness, raising :class:`TaskModelError` with a message
that names the offending task.
"""

from __future__ import annotations

from repro.model.task import MCTask
from repro.model.taskset import TaskSet

__all__ = ["TaskModelError", "validate_task", "validate_taskset"]


class TaskModelError(ValueError):
    """A task or task set violates the dual-criticality sporadic model."""


def validate_task(task: MCTask, require_constrained: bool = True) -> None:
    """Validate a single task.

    Parameters
    ----------
    task:
        The task to check.
    require_constrained:
        When true (default, matching the paper's model), require
        ``D_i <= T_i``.  Arbitrary-deadline tasks are outside the scope of
        every analysis in :mod:`repro.analysis`, so the default is strict.
    """
    if task.wcet_hi > task.period and task.is_high:
        # u_H > 1 on a unit-speed core can never be schedulable; keep it a
        # validation error so generators fail fast rather than analyses.
        raise TaskModelError(
            f"{task.name}: wcet_hi ({task.wcet_hi}) exceeds period ({task.period})"
        )
    if task.wcet_lo > task.deadline:
        raise TaskModelError(
            f"{task.name}: wcet_lo ({task.wcet_lo}) exceeds deadline "
            f"({task.deadline}); the task can never meet its deadline"
        )
    if task.is_high and task.wcet_hi > task.deadline:
        raise TaskModelError(
            f"{task.name}: wcet_hi ({task.wcet_hi}) exceeds deadline "
            f"({task.deadline}); the task can never meet its HI-mode deadline"
        )
    if require_constrained and task.deadline > task.period:
        raise TaskModelError(
            f"{task.name}: deadline ({task.deadline}) exceeds period "
            f"({task.period}); only constrained-deadline tasks are supported"
        )


def validate_taskset(
    taskset: TaskSet,
    require_constrained: bool = True,
    require_dual_criticality: bool = False,
) -> None:
    """Validate every task plus set-level invariants.

    Parameters
    ----------
    taskset:
        The task set to check.
    require_constrained:
        Require ``D_i <= T_i`` for every task.
    require_dual_criticality:
        When true, require at least one HC and one LC task (the generator's
        default regime); analyses themselves accept single-criticality sets.
    """
    for task in taskset:
        validate_task(task, require_constrained=require_constrained)
    names = [t.name for t in taskset]
    if len(set(names)) != len(names):
        raise TaskModelError("task names are not unique")
    if require_dual_criticality:
        if not taskset.high_tasks:
            raise TaskModelError("task set has no HC tasks")
        if not taskset.low_tasks:
            raise TaskModelError("task set has no LC tasks")
