"""Columnar task-set batches — the struct-of-arrays twin of ``TaskSet``.

The sweep engines process thousands of generated task sets per utilization
bucket.  Holding each as a :class:`~repro.model.taskset.TaskSet` of frozen
:class:`~repro.model.task.MCTask` objects is convenient for the analyses but
wasteful for the cross-taskset axis: most buckets are settled by pure
arithmetic over per-task utilization columns (exact prefilters, the
utilization-ledger replay in :mod:`repro.core.batch`), and object
materialization is only ever needed for the sets that fall through to the
full per-taskset analysis path.

:class:`TaskSetBatch` therefore stores one flat int64/float64 column per
task field across *all* sets of a batch, plus an ``offsets`` index marking
the per-set segments (``offsets[i]:offsets[i+1]`` are set ``i``'s rows —
the CSR layout).  Task sets materialize lazily and individually:
:meth:`TaskSetBatch.taskset` builds (and caches) real ``MCTask`` objects
for one set only when a consumer genuinely needs them.

Numeric equivalence contract
----------------------------
Every derived column equals the corresponding ``MCTask`` property float-for-
float: utilizations are computed with the same ``wcet / period`` division on
the same integers, so a pipeline that sums batch columns in task order
reproduces the object path's arithmetic exactly.  This is what lets the
batched sweep pipeline (:mod:`repro.experiments.acceptance`) stay
bit-identical to the scalar one.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.model.criticality import Criticality
from repro.model.task import MCTask
from repro.model.taskset import TaskSet

__all__ = ["TaskColumns", "TaskSetBatch"]


def _decode_degraded(high: bool, value: int) -> int | None:
    """The one -1-sentinel decode for degraded-service column fields.

    Degraded budgets/periods apply to LC tasks only and -1 encodes "unset"
    — every consumer building tasks or task proxies from columns goes
    through this helper so the convention cannot drift between them.
    """
    return None if (high or value < 0) else value


def _row_task(
    period: int,
    wcet_lo: int,
    wcet_hi: int,
    deadline: int,
    high: bool,
    wcet_degraded: int,
    period_degraded: int,
) -> MCTask:
    """One column row as a freshly constructed ``MCTask``."""
    return MCTask(
        period=period,
        criticality=Criticality.HC if high else Criticality.LC,
        wcet_lo=wcet_lo,
        wcet_hi=wcet_hi,
        deadline=deadline,
        wcet_degraded=_decode_degraded(high, wcet_degraded),
        period_degraded=_decode_degraded(high, period_degraded),
    )


@dataclass(frozen=True)
class TaskColumns:
    """Numeric columns of a single task set (one generator realization).

    The column-level unit the generator produces before any ``MCTask``
    exists; :meth:`materialize` packages it into a ``TaskSet`` with tasks
    constructed in column order (HC rows first by generator convention),
    which assigns task ids and names exactly as the scalar generation loop
    always did.  ``wcet_degraded`` uses -1 for "unset" (``None``).
    """

    period: np.ndarray  #: int64
    wcet_lo: np.ndarray  #: int64
    wcet_hi: np.ndarray  #: int64
    deadline: np.ndarray  #: int64
    is_high: np.ndarray  #: bool
    wcet_degraded: np.ndarray  #: int64, -1 = None
    period_degraded: np.ndarray  #: int64, -1 = None

    def __len__(self) -> int:
        return len(self.period)

    def materialize(self, service_model=None) -> TaskSet:
        """Build the equivalent ``TaskSet`` (fresh task ids, in order)."""
        tasks = [
            _row_task(
                int(self.period[i]),
                int(self.wcet_lo[i]),
                int(self.wcet_hi[i]),
                int(self.deadline[i]),
                bool(self.is_high[i]),
                int(self.wcet_degraded[i]),
                int(self.period_degraded[i]),
            )
            for i in range(len(self.period))
        ]
        return TaskSet(tasks, service_model=service_model)

    @classmethod
    def from_taskset(cls, taskset: TaskSet) -> "TaskColumns":
        """Columns of an existing task set (row order = task order)."""
        n = len(taskset)
        period = np.empty(n, dtype=np.int64)
        wcet_lo = np.empty(n, dtype=np.int64)
        wcet_hi = np.empty(n, dtype=np.int64)
        deadline = np.empty(n, dtype=np.int64)
        is_high = np.empty(n, dtype=bool)
        wcet_degraded = np.full(n, -1, dtype=np.int64)
        period_degraded = np.full(n, -1, dtype=np.int64)
        for i, task in enumerate(taskset):
            period[i] = task.period
            wcet_lo[i] = task.wcet_lo
            wcet_hi[i] = task.wcet_hi
            deadline[i] = task.deadline
            is_high[i] = task.is_high
            if task.wcet_degraded is not None:
                wcet_degraded[i] = task.wcet_degraded
            if task.period_degraded is not None:
                period_degraded[i] = task.period_degraded
        return cls(
            period, wcet_lo, wcet_hi, deadline, is_high,
            wcet_degraded, period_degraded,
        )


@dataclass(frozen=True)
class _TaskRow:
    """The numeric task surface service models read, without an ``MCTask``.

    Exposes exactly the fields and derived properties the registered
    :class:`~repro.degradation.service.ServiceModel` implementations touch;
    anything beyond it raises ``AttributeError``, which callers treat as
    "materialize the real tasks instead" — never a silently wrong value.
    """

    period: int
    wcet_lo: int
    wcet_hi: int
    deadline: int
    is_high: bool
    wcet_degraded: int | None
    period_degraded: int | None

    @property
    def utilization_lo(self) -> float:
        return self.wcet_lo / self.period

    @property
    def utilization_hi(self) -> float:
        return self.wcet_hi / self.period


def _concat(columns: Sequence[TaskColumns], field: str, dtype) -> np.ndarray:
    if not columns:
        return np.empty(0, dtype=dtype)
    return np.concatenate([getattr(c, field) for c in columns])


class TaskSetBatch:
    """A batch of task sets in struct-of-arrays (CSR) layout.

    ``len(batch)`` is the number of *sets*; ``batch.n_tasks`` the total row
    count.  Carries the same optional LC service model a ``TaskSet`` does
    (string specs parse, ``FullDrop`` normalizes to the drop-at-switch
    default), and propagates it into every materialized set.
    """

    __slots__ = (
        "offsets", "period", "wcet_lo", "wcet_hi", "deadline", "is_high",
        "wcet_degraded", "period_degraded", "_service", "_sets",
        "_u_lo", "_u_hi", "_u_res", "replay_cache",
    )

    def __init__(self, columns: Sequence[TaskColumns], service_model=None):
        if isinstance(service_model, str):
            from repro.degradation.service import parse_service_model

            service_model = parse_service_model(service_model)
        counts = np.fromiter(
            (len(c) for c in columns), dtype=np.int64, count=len(columns)
        )
        self.offsets = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        self.period = _concat(columns, "period", np.int64)
        self.wcet_lo = _concat(columns, "wcet_lo", np.int64)
        self.wcet_hi = _concat(columns, "wcet_hi", np.int64)
        self.deadline = _concat(columns, "deadline", np.int64)
        self.is_high = _concat(columns, "is_high", bool)
        self.wcet_degraded = _concat(columns, "wcet_degraded", np.int64)
        self.period_degraded = _concat(columns, "period_degraded", np.int64)
        self._service = service_model
        #: lazily materialized TaskSet per set index
        self._sets: dict[int, TaskSet] = {}
        self._u_lo: np.ndarray | None = None
        self._u_hi: np.ndarray | None = None
        self._u_res: np.ndarray | None = None
        #: scratch memo for per-set derived values consumers recompute
        #: across passes (e.g. the allocation replay's per-set lists when
        #: several algorithms walk the same batch); purely a cost cache
        self.replay_cache: dict = {}

    # -- construction --------------------------------------------------------
    @classmethod
    def from_tasksets(
        cls, tasksets: Iterable[TaskSet], service_model=None
    ) -> "TaskSetBatch":
        """Columnar view of existing task sets.

        The originals are kept and returned by :meth:`taskset`, so a
        round-trip through the batch preserves object identity (task ids,
        names and all).  ``service_model`` defaults to the first set's; a
        mixed-service batch is rejected — one batch, one service contract.
        """
        tasksets = list(tasksets)
        if service_model is None and tasksets:
            service_model = tasksets[0].service_model
        batch = cls(
            [TaskColumns.from_taskset(ts) for ts in tasksets],
            service_model=service_model,
        )
        batch_key = (
            None
            if batch._service is None or batch._service.is_full_drop
            else batch._service.key()
        )
        for i, ts in enumerate(tasksets):
            if ts._service_key() != batch_key:
                raise ValueError(
                    "mixed service models in one batch: set "
                    f"{i} carries {ts.service_model!r}"
                )
            batch._sets[i] = ts
        return batch

    # -- sizing --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_tasks(self) -> int:
        """Total task rows across all sets."""
        return int(self.offsets[-1])

    @property
    def service_model(self):
        """The batch-wide LC service model (None = drop-at-switch)."""
        return self._service

    def set_slice(self, index: int) -> slice:
        """Row slice of set ``index`` into the flat columns."""
        return slice(int(self.offsets[index]), int(self.offsets[index + 1]))

    # -- materialization -----------------------------------------------------
    def columns(self, index: int) -> TaskColumns:
        """The :class:`TaskColumns` of one set (views, no copies)."""
        rows = self.set_slice(index)
        return TaskColumns(
            self.period[rows], self.wcet_lo[rows], self.wcet_hi[rows],
            self.deadline[rows], self.is_high[rows],
            self.wcet_degraded[rows], self.period_degraded[rows],
        )

    def row_task(self, row: int) -> MCTask:
        """One flat column row as a fresh ``MCTask`` (no set materialized).

        Shares the sentinel decode and construction of
        :meth:`TaskColumns.materialize`, so a row-built singleton is
        parameterized exactly like the task a full materialization would
        contain (ids/names aside) — the lone-task prefilter relies on this.
        """
        return _row_task(
            int(self.period[row]),
            int(self.wcet_lo[row]),
            int(self.wcet_hi[row]),
            int(self.deadline[row]),
            bool(self.is_high[row]),
            int(self.wcet_degraded[row]),
            int(self.period_degraded[row]),
        )

    def taskset(self, index: int) -> TaskSet:
        """Materialize (and cache) set ``index`` as a real ``TaskSet``."""
        ts = self._sets.get(index)
        if ts is None:
            ts = self.columns(index).materialize(service_model=self._service)
            self._sets[index] = ts
        return ts

    def to_tasksets(self) -> list[TaskSet]:
        """All sets, materialized."""
        return [self.taskset(i) for i in range(len(self))]

    # -- derived columns -----------------------------------------------------
    @property
    def u_lo(self) -> np.ndarray:
        """Per-task LO utilization column (``wcet_lo / period``, float64).

        Elementwise IEEE division on the same integers as
        :attr:`MCTask.utilization_lo` — bit-identical per entry.
        """
        if self._u_lo is None:
            self._u_lo = self.wcet_lo / self.period
        return self._u_lo

    @property
    def u_hi(self) -> np.ndarray:
        """Per-task HI utilization column (``wcet_hi / period``)."""
        if self._u_hi is None:
            self._u_hi = self.wcet_hi / self.period
        return self._u_hi

    @property
    def u_res(self) -> np.ndarray:
        """Per-task residual HI-mode utilization under the service model.

        All zeros under drop-at-switch.  For degraded models each value
        comes from :meth:`ServiceModel.residual_utilization` — the one
        authoritative implementation, consulted through a lightweight
        column-row proxy so the whole batch need not materialize task
        objects just for this column.  A model reaching beyond the numeric
        task surface falls back to the materialized tasks (exact either
        way, just slower).
        """
        if self._u_res is None:
            service = self._service
            if service is None or service.is_full_drop:
                self._u_res = np.zeros(self.n_tasks)
            else:
                column = np.zeros(self.n_tasks)
                for row in range(self.n_tasks):
                    high = bool(self.is_high[row])
                    proxy = _TaskRow(
                        int(self.period[row]),
                        int(self.wcet_lo[row]),
                        int(self.wcet_hi[row]),
                        int(self.deadline[row]),
                        high,
                        _decode_degraded(high, int(self.wcet_degraded[row])),
                        _decode_degraded(high, int(self.period_degraded[row])),
                    )
                    try:
                        column[row] = service.residual_utilization(proxy)
                    except AttributeError:
                        return self._u_res_materialized()
                self._u_res = column
        return self._u_res

    def _u_res_materialized(self) -> np.ndarray:
        """Residual column via real task objects (exotic-model fallback)."""
        column = np.zeros(self.n_tasks)
        for i in range(len(self)):
            rows = self.set_slice(i)
            column[rows] = [
                self._service.residual_utilization(t) for t in self.taskset(i)
            ]
        self._u_res = column
        return column

    def sum_per_set(self, column: np.ndarray) -> np.ndarray:
        """Per-set sums of a task column (float64, one entry per set).

        Summation order within a segment is numpy's (pairwise), which may
        differ from the object path's left fold in the last few ulps —
        consumers comparing against per-core thresholds must use a margin
        (see :mod:`repro.analysis.prefilter` for the soundness argument).
        """
        if len(self) == 0:
            return np.empty(0)
        sums = np.add.reduceat(
            np.concatenate([column, np.zeros(1)]), self.offsets[:-1]
        )
        # reduceat on an empty segment returns the element at the offset
        # (the first element of the *next* segment); force empty sets to 0.
        empty = self.offsets[:-1] == self.offsets[1:]
        if empty.any():
            sums = np.where(empty, 0.0, sums)
        return sums

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskSetBatch({len(self)} sets, {self.n_tasks} tasks)"
