"""The mixed-criticality sporadic task type."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.model.criticality import Criticality

__all__ = ["MCTask"]

_TASK_COUNTER = 0


def _next_task_id() -> int:
    global _TASK_COUNTER
    _TASK_COUNTER += 1
    return _TASK_COUNTER


@dataclass(frozen=True)
class MCTask:
    """A dual-criticality sporadic task ``(T, chi, C_L, C_H, D)``.

    Attributes
    ----------
    period:
        Minimum release separation ``T_i`` (positive integer).
    criticality:
        ``Criticality.LC`` or ``Criticality.HC``.
    wcet_lo:
        LO-mode (low-criticality) execution requirement ``C_i^L``.
    wcet_hi:
        HI-mode execution requirement ``C_i^H``; for LC tasks this must equal
        ``wcet_lo`` (an LC task is abandoned rather than extended in HI mode).
    deadline:
        Relative deadline ``D_i``; defaults to ``period`` (implicit deadline).
    wcet_degraded:
        Optional per-task degraded HI-mode budget for LC tasks (``0 <=
        wcet_degraded <= wcet_lo``); consulted by degradation-aware service
        models (:mod:`repro.degradation`) ahead of their uniform formula.
        Must be None for HC tasks.
    period_degraded:
        Optional per-task stretched HI-mode period for LC tasks
        (``period_degraded >= period``); the elastic-period counterpart of
        ``wcet_degraded``.  Must be None for HC tasks.
    name:
        Optional human-readable label; auto-generated when omitted.
    task_id:
        Stable unique integer identity (used by partitioners and the
        simulator); auto-assigned when omitted.

    The class is frozen so tasks can be shared between task sets, used as
    dictionary keys, and safely cached by the analyses.
    """

    period: int
    criticality: Criticality
    wcet_lo: int
    wcet_hi: int
    deadline: int = -1  # placeholder replaced in __post_init__
    wcet_degraded: int | None = None
    period_degraded: int | None = None
    name: str = ""
    task_id: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "criticality", Criticality.parse(self.criticality))
        if self.deadline == -1:
            object.__setattr__(self, "deadline", self.period)
        if self.task_id == -1:
            object.__setattr__(self, "task_id", _next_task_id())
        if not self.name:
            prefix = "hc" if self.criticality.is_high else "lc"
            object.__setattr__(self, "name", f"{prefix}{self.task_id}")
        _check_fields(self)

    # -- utilization -----------------------------------------------------
    @property
    def utilization_lo(self) -> float:
        """LO-mode utilization ``u_i^L = C_i^L / T_i``."""
        return self.wcet_lo / self.period

    @property
    def utilization_hi(self) -> float:
        """HI-mode utilization ``u_i^H = C_i^H / T_i``."""
        return self.wcet_hi / self.period

    @property
    def utilization_at_own_level(self) -> float:
        """``u_i^H`` for HC tasks, ``u_i^L`` for LC tasks.

        This is the sort key used by every "sorted by utilization values at
        their respective criticality levels" rule in the paper.
        """
        if self.criticality.is_high:
            return self.utilization_hi
        return self.utilization_lo

    @property
    def utilization_difference(self) -> float:
        """``u_i^H - u_i^L`` (zero for LC tasks); the UDP balancing quantity."""
        return self.utilization_hi - self.utilization_lo

    @property
    def density_lo(self) -> float:
        """LO-mode density ``C_i^L / min(D_i, T_i)``."""
        return self.wcet_lo / min(self.deadline, self.period)

    @property
    def density_hi(self) -> float:
        """HI-mode density ``C_i^H / min(D_i, T_i)``."""
        return self.wcet_hi / min(self.deadline, self.period)

    @property
    def is_high(self) -> bool:
        """True for HC tasks."""
        return self.criticality.is_high

    @property
    def implicit_deadline(self) -> bool:
        """True when ``D_i == T_i``."""
        return self.deadline == self.period

    @property
    def constrained_deadline(self) -> bool:
        """True when ``D_i <= T_i`` (includes implicit)."""
        return self.deadline <= self.period

    # -- convenience -----------------------------------------------------
    def with_deadline(self, deadline: int) -> "MCTask":
        """Copy of this task with a different relative deadline."""
        return replace(self, deadline=deadline)

    def scaled(self, speed: float) -> "MCTask":
        """Copy of this task on a processor of relative ``speed`` > 0.

        Execution requirements shrink by the speed factor (rounded up to
        preserve the integer time model and soundness).  Used by the speed-up
        bound experiments.
        """
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        import math

        lo = max(1, math.ceil(self.wcet_lo / speed))
        hi = max(lo, math.ceil(self.wcet_hi / speed))
        if not self.criticality.is_high:
            hi = lo
        return replace(self, wcet_lo=lo, wcet_hi=hi)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSON-friendly).

        Degraded-service fields appear only when set, so task sets without
        degradation serialize exactly as before.
        """
        data = {
            "name": self.name,
            "period": self.period,
            "criticality": self.criticality.name,
            "wcet_lo": self.wcet_lo,
            "wcet_hi": self.wcet_hi,
            "deadline": self.deadline,
        }
        if self.wcet_degraded is not None:
            data["wcet_degraded"] = self.wcet_degraded
        if self.period_degraded is not None:
            data["period_degraded"] = self.period_degraded
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MCTask":
        """Inverse of :meth:`to_dict` (ignores unknown keys)."""
        wcet_degraded = data.get("wcet_degraded")
        period_degraded = data.get("period_degraded")
        return cls(
            period=int(data["period"]),
            criticality=Criticality.parse(data["criticality"]),
            wcet_lo=int(data["wcet_lo"]),
            wcet_hi=int(data["wcet_hi"]),
            deadline=int(data.get("deadline", data["period"])),
            wcet_degraded=None if wcet_degraded is None else int(wcet_degraded),
            period_degraded=None if period_degraded is None else int(period_degraded),
            name=str(data.get("name", "")),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}({self.criticality.name}, T={self.period}, "
            f"C_L={self.wcet_lo}, C_H={self.wcet_hi}, D={self.deadline})"
        )


def _check_fields(task: MCTask) -> None:
    """Validate basic well-formedness; full checks live in validation.py."""
    if task.period <= 0:
        raise ValueError(f"{task.name}: period must be positive, got {task.period}")
    if task.wcet_lo <= 0:
        raise ValueError(f"{task.name}: wcet_lo must be positive, got {task.wcet_lo}")
    if task.wcet_hi < task.wcet_lo:
        raise ValueError(
            f"{task.name}: wcet_hi ({task.wcet_hi}) < wcet_lo ({task.wcet_lo})"
        )
    if not task.criticality.is_high and task.wcet_hi != task.wcet_lo:
        raise ValueError(
            f"{task.name}: LC task must have wcet_hi == wcet_lo "
            f"({task.wcet_hi} != {task.wcet_lo})"
        )
    if task.deadline <= 0:
        raise ValueError(f"{task.name}: deadline must be positive, got {task.deadline}")
    if task.criticality.is_high:
        if task.wcet_degraded is not None or task.period_degraded is not None:
            raise ValueError(
                f"{task.name}: degraded-service fields apply to LC tasks "
                "only (HC tasks always receive their HI budget)"
            )
    else:
        if task.wcet_degraded is not None and not (
            0 <= task.wcet_degraded <= task.wcet_lo
        ):
            raise ValueError(
                f"{task.name}: wcet_degraded ({task.wcet_degraded}) outside "
                f"[0, wcet_lo={task.wcet_lo}]"
            )
        if task.period_degraded is not None and task.period_degraded < task.period:
            raise ValueError(
                f"{task.name}: period_degraded ({task.period_degraded}) "
                f"must be >= period ({task.period})"
            )
    for attr in ("period", "wcet_lo", "wcet_hi", "deadline"):
        value = getattr(task, attr)
        if not isinstance(value, int):
            raise TypeError(
                f"{task.name}: {attr} must be an int (integer time model), "
                f"got {type(value).__name__}"
            )
    for attr in ("wcet_degraded", "period_degraded"):
        value = getattr(task, attr)
        if value is not None and not isinstance(value, int):
            raise TypeError(
                f"{task.name}: {attr} must be an int or None, "
                f"got {type(value).__name__}"
            )
