"""Dual-criticality sporadic task model (system S1 in DESIGN.md).

The model follows Section II of the paper: each task is a tuple
``(T, chi, C_L, C_H, D)`` with criticality ``chi`` in ``{LC, HC}``, LO/HI-mode
execution requirements ``C_L <= C_H`` (``C_L == C_H`` for LC tasks by
convention), minimum release separation ``T`` and relative deadline ``D``
(``D == T`` implicit-deadline, ``D <= T`` constrained-deadline).
"""

from repro.model.batch import TaskColumns, TaskSetBatch
from repro.model.criticality import Criticality
from repro.model.task import MCTask
from repro.model.taskset import TaskSet, UtilizationSummary
from repro.model.validation import (
    TaskModelError,
    validate_task,
    validate_taskset,
)

__all__ = [
    "Criticality",
    "MCTask",
    "TaskColumns",
    "TaskSet",
    "TaskSetBatch",
    "UtilizationSummary",
    "TaskModelError",
    "validate_task",
    "validate_taskset",
]

# repro.model.transforms is import-cycle-free but pulls in numpy; import it
# lazily through its own module path (documented in the package docstring).
