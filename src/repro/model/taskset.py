"""Task-set container with the utilization aggregates used throughout.

``TaskSet`` is an immutable sequence of :class:`~repro.model.task.MCTask`
with cached system-level utilization sums.  The names mirror the paper:
``U_LL`` (LO utilization of LC tasks), ``U_LH`` (LO utilization of HC tasks)
and ``U_HH`` (HI utilization of HC tasks), either raw (per processor) or
normalized by a processor count ``m``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from functools import cached_property
from typing import Any

from repro.model.criticality import Criticality
from repro.model.task import MCTask
from repro.util.intmath import hyperperiod

__all__ = ["TaskSet", "UtilizationSummary"]


@dataclass(frozen=True)
class UtilizationSummary:
    """System-level utilization sums of a task set (un-normalized)."""

    u_ll: float  #: sum of u_i^L over LC tasks
    u_lh: float  #: sum of u_i^L over HC tasks
    u_hh: float  #: sum of u_i^H over HC tasks

    @property
    def u_lo(self) -> float:
        """Total LO-mode utilization ``U_LL + U_LH``."""
        return self.u_ll + self.u_lh

    @property
    def difference(self) -> float:
        """The UDP quantity ``U_HH - U_LH``."""
        return self.u_hh - self.u_lh

    @property
    def bound(self) -> float:
        """``UB = max(U_LH + U_LL, U_HH)`` — the paper's load metric."""
        return max(self.u_lo, self.u_hh)

    def normalized(self, m: int) -> "UtilizationSummary":
        """Summary divided by processor count ``m``."""
        if m <= 0:
            raise ValueError(f"m must be positive, got {m}")
        return UtilizationSummary(self.u_ll / m, self.u_lh / m, self.u_hh / m)


class TaskSet(Sequence[MCTask]):
    """Immutable ordered collection of MC tasks.

    Supports the usual sequence protocol plus utilization aggregates,
    criticality filtering and cheap functional updates (``with_task``).
    Instances hash by task identity (plus the service-model key, when one
    is attached) so analyses can memoize on them.

    ``service_model`` optionally attaches a
    :class:`~repro.degradation.service.ServiceModel` describing the HI-mode
    service LC tasks receive (a model instance or a spec string like
    ``"imprecise:0.5"``).  None — the default — means the classical
    drop-at-switch semantics; an explicit ``FullDrop`` compares equal to
    None so the default path stays canonical.  The model propagates through
    every functional update (``with_task``, slicing, sorting, the
    criticality views).
    """

    __slots__ = ("_tasks", "_hash", "_service", "__dict__")

    def __init__(self, tasks: Iterable[MCTask] = (), service_model=None):
        tasks = tuple(tasks)
        for task in tasks:
            if not isinstance(task, MCTask):
                raise TypeError(f"TaskSet items must be MCTask, got {type(task)!r}")
        ids = [t.task_id for t in tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("TaskSet contains duplicate task_ids")
        if isinstance(service_model, str):
            from repro.degradation.service import parse_service_model

            service_model = parse_service_model(service_model)
        object.__setattr__(self, "_tasks", tasks)
        object.__setattr__(self, "_service", service_model)
        object.__setattr__(
            self, "_hash", hash((tuple(ids), self._service_key()))
        )

    def _service_key(self):
        """Normalized hashable identity of the attached service model.

        None both for an absent model and for ``FullDrop`` — the two spell
        the same drop-at-switch semantics, and normalizing keeps task sets
        interchangeable between the historical and the degradation-aware
        call paths.
        """
        if self._service is None or self._service.is_full_drop:
            return None
        return self._service.key()

    # -- sequence protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[MCTask]:
        return iter(self._tasks)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return TaskSet(self._tasks[index], service_model=self._service)
        return self._tasks[index]

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskSet):
            return NotImplemented
        return (
            self._tasks == other._tasks
            and self._service_key() == other._service_key()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskSet({len(self._tasks)} tasks, UB={self.utilization.bound:.3f})"

    # -- construction -------------------------------------------------------
    def with_task(self, task: MCTask) -> "TaskSet":
        """New task set with ``task`` appended."""
        return TaskSet(self._tasks + (task,), service_model=self._service)

    def without_task(self, task: MCTask) -> "TaskSet":
        """New task set with ``task`` (by task_id) removed."""
        remaining = tuple(t for t in self._tasks if t.task_id != task.task_id)
        if len(remaining) == len(self._tasks):
            raise KeyError(f"task {task.name} not in task set")
        return TaskSet(remaining, service_model=self._service)

    def sorted_by(self, key, reverse: bool = False) -> "TaskSet":
        """New task set sorted by ``key`` (stable)."""
        return TaskSet(
            sorted(self._tasks, key=key, reverse=reverse),
            service_model=self._service,
        )

    # -- service model -------------------------------------------------------
    @property
    def service_model(self):
        """The attached LC service model, or None (drop-at-switch)."""
        return self._service

    @property
    def effective_service(self):
        """The attached service model, with None resolved to ``FULL_DROP``."""
        if self._service is not None:
            return self._service
        from repro.degradation.service import FULL_DROP

        return FULL_DROP

    def with_service_model(self, service_model) -> "TaskSet":
        """New task set (same tasks) carrying ``service_model``."""
        return TaskSet(self._tasks, service_model=service_model)

    @cached_property
    def residual_utilization(self) -> float:
        """HI-mode utilization the LC tasks retain under the service model.

        0.0 under drop-at-switch (no model, or ``FullDrop``); otherwise the
        sum of per-task residual utilizations — the ``U_res`` term of the
        extended EDF-VD test and the residual-aware UDP difference metric.
        """
        service = self._service
        if service is None or service.is_full_drop:
            return 0.0
        return sum(
            service.residual_utilization(t) for t in self._tasks if not t.is_high
        )

    # -- criticality views ---------------------------------------------------
    @cached_property
    def high_tasks(self) -> "TaskSet":
        """The HC tasks, in order."""
        return TaskSet(
            (t for t in self._tasks if t.is_high), service_model=self._service
        )

    @cached_property
    def low_tasks(self) -> "TaskSet":
        """The LC tasks, in order."""
        return TaskSet(
            (t for t in self._tasks if not t.is_high), service_model=self._service
        )

    def of_criticality(self, level: Criticality) -> "TaskSet":
        """Tasks at exactly criticality ``level``."""
        level = Criticality.parse(level)
        return self.high_tasks if level.is_high else self.low_tasks

    # -- aggregates ----------------------------------------------------------
    @cached_property
    def utilization(self) -> UtilizationSummary:
        """Un-normalized system utilization sums (U_LL, U_LH, U_HH)."""
        u_ll = sum(t.utilization_lo for t in self._tasks if not t.is_high)
        u_lh = sum(t.utilization_lo for t in self._tasks if t.is_high)
        u_hh = sum(t.utilization_hi for t in self._tasks if t.is_high)
        return UtilizationSummary(u_ll, u_lh, u_hh)

    @property
    def utilization_lo(self) -> float:
        """Total LO-mode utilization of all tasks."""
        return self.utilization.u_lo

    @property
    def utilization_hi(self) -> float:
        """Total HI-mode utilization of HC tasks (``U_HH``)."""
        return self.utilization.u_hh

    @cached_property
    def max_deadline(self) -> int:
        """Largest relative deadline (0 for an empty set)."""
        return max((t.deadline for t in self._tasks), default=0)

    @cached_property
    def hyperperiod(self) -> int:
        """LCM of all periods (1 for an empty set)."""
        if not self._tasks:
            return 1
        return hyperperiod(t.period for t in self._tasks)

    @property
    def is_implicit_deadline(self) -> bool:
        """True when every task has ``D == T``."""
        return all(t.implicit_deadline for t in self._tasks)

    @property
    def is_constrained_deadline(self) -> bool:
        """True when every task has ``D <= T``."""
        return all(t.constrained_deadline for t in self._tasks)

    # -- serialization ---------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        """JSON-friendly list-of-dicts form."""
        return [t.to_dict() for t in self._tasks]

    @classmethod
    def from_dicts(cls, rows: Iterable[dict[str, Any]]) -> "TaskSet":
        """Inverse of :meth:`to_dicts`."""
        return cls(MCTask.from_dict(row) for row in rows)

    def describe(self) -> str:
        """Multi-line human-readable summary (used by examples)."""
        util = self.utilization
        lines = [
            f"TaskSet: {len(self)} tasks "
            f"({len(self.high_tasks)} HC / {len(self.low_tasks)} LC)",
            f"  U_LL={util.u_ll:.3f}  U_LH={util.u_lh:.3f}  U_HH={util.u_hh:.3f}"
            f"  UB={util.bound:.3f}",
        ]
        for task in self._tasks:
            lines.append(f"  {task}")
        return "\n".join(lines)
