"""Criticality levels for dual-criticality systems."""

from __future__ import annotations

import enum

__all__ = ["Criticality"]


class Criticality(enum.IntEnum):
    """Task criticality level.

    The paper considers dual-criticality systems with levels LC
    (low-criticality) and HC (high-criticality).  ``IntEnum`` ordering gives
    ``LC < HC``, which matches "higher value = more critical" and lets
    criticality-aware allocation sort directly on the enum.
    """

    LC = 0
    HC = 1

    @property
    def is_high(self) -> bool:
        """True for HC tasks."""
        return self is Criticality.HC

    @classmethod
    def parse(cls, value: "Criticality | str | int") -> "Criticality":
        """Coerce ``value`` ('LC'/'HC', 0/1 or enum) to a :class:`Criticality`.

        ``bool`` is rejected explicitly: ``True`` is an ``int`` subclass and
        would silently parse as HC, which in practice hides an argument-order
        bug at the call site (e.g. passing ``is_high`` where a criticality
        was expected).
        """
        if isinstance(value, Criticality):
            return value
        if isinstance(value, bool):
            raise ValueError(
                f"criticality must be 'LC'/'HC', 0/1 or Criticality, not a "
                f"bool ({value!r}); pass Criticality.HC/LC explicitly"
            )
        if isinstance(value, str):
            try:
                return cls[value.upper()]
            except KeyError:
                raise ValueError(f"unknown criticality name: {value!r}") from None
        return cls(value)
