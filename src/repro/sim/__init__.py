"""Discrete-event mixed-criticality simulator (system S11 in DESIGN.md).

Simulates preemptive uniprocessor scheduling of dual-criticality task sets
under the runtime algorithms whose tests live in :mod:`repro.analysis`:

* EDF and EDF-VD (dynamic priority, virtual deadlines in LO mode);
* fixed-priority AMC (static priorities, LC tasks dropped at mode switch);

with faithful mode semantics: the processor switches LO→HI at the first
instant a HC job executes beyond its LO budget, drops LC work if the policy
says so, and returns to LO at the next idle instant.  A *partitioned* run
simulates each core independently — mode switches never propagate across
cores, the isolation property Section II of the paper highlights.

The simulator's role in this reproduction is adversarial validation: for any
task set accepted by an analysis, no simulated scenario may ever produce an
MC-criterion deadline miss (HC misses are always violations, LC misses only
in LO mode).  See :mod:`repro.sim.validate`.
"""

from repro.sim.policies import (
    AMCPolicy,
    EDFPolicy,
    EDFVDPolicy,
    SchedulingPolicy,
)
from repro.sim.scenario import (
    FixedOverrunScenario,
    NominalScenario,
    RandomScenario,
    Scenario,
)
from repro.sim.uniprocessor import MissRecord, SimResult, UniprocessorSim
from repro.sim.partitioned import PartitionedSim, PartitionedSimResult
from repro.sim.validate import policy_for, validate_against_simulation

__all__ = [
    "SchedulingPolicy",
    "EDFPolicy",
    "EDFVDPolicy",
    "AMCPolicy",
    "Scenario",
    "NominalScenario",
    "FixedOverrunScenario",
    "RandomScenario",
    "UniprocessorSim",
    "SimResult",
    "MissRecord",
    "PartitionedSim",
    "PartitionedSimResult",
    "policy_for",
    "validate_against_simulation",
]
